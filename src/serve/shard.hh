/**
 * @file
 * Deterministic suite sharding: split a resolved workload batch across
 * N independent processes (or machines) so each shard computes a
 * disjoint subset against a shared artifact cache, then merge the
 * per-shard outputs back into one artifact that is byte-identical to
 * an unsharded run.
 *
 * Shard assignment hashes the canonical workload name (SHA-256, first
 * eight bytes big-endian, mod N), so it depends on nothing but the
 * name and the shard count — not on suite order, thread count, or
 * which machine evaluates it. Every shard resolves the *full* batch
 * and filters it; a hash over the resolved name list travels with each
 * shard's status artifact so a merge can reject shards produced from
 * diverging suites.
 */

#ifndef BSYN_SERVE_SHARD_HH
#define BSYN_SERVE_SHARD_HH

#include <string>
#include <vector>

#include "pipeline/run_sink.hh"
#include "workloads/suite.hh"

namespace bsyn::serve
{

/** One shard of an N-way split. Indices are 1-based ("shard 2 of 3");
 *  1/1 is the unsharded identity every merge result also carries. */
struct ShardSpec
{
    unsigned index = 1;
    unsigned count = 1;

    bool isAll() const { return count == 1; }

    /** "2/3" */
    std::string str() const;
};

/**
 * Parse and validate an "i/N" shard spec. fatal() on anything
 * malformed: missing '/', non-numeric fields, N = 0, i = 0 (indices
 * are 1-based), or i > N.
 */
ShardSpec parseShardSpec(const std::string &text);

/** Stable 0-based shard assignment of a canonical workload name for an
 *  N-way split (first 8 bytes of SHA-256 of the name, mod @p count). */
unsigned shardOf(const std::string &name, unsigned count);

/** A batch filtered down to one shard, keeping enough provenance to
 *  reassemble and validate the whole suite later. */
struct ShardedBatch
{
    ShardSpec spec;

    /** This shard's workloads, in full-batch order. */
    std::vector<workloads::Workload> workloads;

    /** Global index (position in the full resolved batch) of each kept
     *  workload — parallel to @ref workloads. */
    std::vector<size_t> indices;

    /** Size of the full resolved batch. */
    size_t total = 0;

    /** SHA-256 over the full batch's canonical names (length-prefixed):
     *  two shards merge only if they resolved identical suites. */
    std::string suiteHash;
};

/** Hash of a resolved batch's canonical names (see ShardedBatch). */
std::string suiteHashOf(const std::vector<workloads::Workload> &all);

/** Filter the full batch @p all down to shard @p spec. A 1/1 spec
 *  keeps everything (with indices and hash still filled in). */
ShardedBatch filterShard(const std::vector<workloads::Workload> &all,
                         ShardSpec spec);

/**
 * The per-run suite status artifact (`suite_status.json`): which
 * workloads this shard covered and how each ended, plus the shard
 * provenance a merge validates. Deterministic — cache hit/miss
 * provenance is excluded, so cold and warm runs of the same batch
 * write identical bytes, and a merged N-shard status is byte-identical
 * to an unsharded (1/1) run's.
 */
struct SuiteStatus
{
    ShardSpec shard;
    size_t total = 0;
    std::string suiteHash;

    /** Per-workload outcomes with *global* batch indices, sorted. */
    std::vector<pipeline::RunStatus> workloads;

    Json toJson() const;
    static SuiteStatus fromJson(const Json &j);

    /** Serialized file content (dump(2) + trailing newline). */
    std::string serialize() const;

    /** Parse a suite_status.json file; fatal() on malformed input. */
    static SuiteStatus loadFrom(const std::string &path);

    void saveTo(const std::string &path) const;
};

/** File name of the status artifact inside a suite output directory. */
extern const char *const kSuiteStatusFile;

/**
 * Build the status artifact for one processed shard: @p statuses are
 * Session::processSuite results over @p batch.workloads (indices local
 * to the shard); they are remapped to global indices and sorted.
 */
SuiteStatus makeSuiteStatus(const ShardedBatch &batch,
                            const std::vector<pipeline::RunStatus> &statuses);

} // namespace bsyn::serve

#endif // BSYN_SERVE_SHARD_HH
