/**
 * @file
 * The long-running `bsyn serve` worker: claims jobs from a Spool and
 * executes them against one warm pipeline::Session, so every job after
 * the first rides the session's decoded-program memo and — with a
 * cache directory — the shared content-addressed ArtifactCache (a job
 * re-submitted against a warm cache recomputes nothing). A failing job
 * (unknown workload, malformed job file, synthesis error) produces a
 * structured !ok status via the same per-run isolation the batch
 * pipeline uses; the worker itself keeps serving.
 */

#ifndef BSYN_SERVE_WORKER_HH
#define BSYN_SERVE_WORKER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "pipeline/session.hh"
#include "serve/spool.hh"

namespace bsyn::serve
{

/** Configuration for one worker process. */
struct WorkerOptions
{
    std::string spoolDir;

    /** Shared artifact cache directory; empty disables disk caching. */
    std::string cacheDir;

    /** Session worker threads (calibration fan-out); 0 = hardware. */
    unsigned threads = 0;

    /** Exit after this many processed jobs; 0 = no limit. */
    uint64_t maxJobs = 0;

    /** Exit once a scan finds nothing claimable, instead of polling —
     *  process-everything-then-quit mode for scripts and tests. */
    bool drain = false;

    /** Starting idle poll interval between scans of new/. Must be
     *  positive; consecutive empty scans back off exponentially from
     *  here up to @ref pollMaxMs, and any progress resets it. */
    unsigned pollMs = 50;

    /** Cap of the exponential idle backoff (clamped up to pollMs if
     *  set lower). */
    unsigned pollMaxMs = 1000;

    /** Before each scan, move claims older than this many seconds
     *  back to new/ — recovery for jobs stranded in claimed/ by a
     *  worker that died mid-job. 0 disables reclaiming. */
    double reclaimAfterS = 0.0;

    /** Per-job progress lines on stderr. */
    bool verbose = false;

    /** Atomically drop a `metrics.json` snapshot of the worker's
     *  registry into the spool root at least this often while serving
     *  (and once on exit) — anything that can read the spool can
     *  scrape the worker. 0 disables periodic telemetry (the final
     *  snapshot and `worker_status.json` are still written). */
    double metricsEveryS = 5.0;
};

/** Counters of one worker run. Since the observability layer landed
 *  this is a *view* over the worker's named metrics ("serve.jobs.*",
 *  "serve.claims.*" in the worker's scoped obs::Registry), which also
 *  aggregate process-wide through the parent chain. */
struct WorkerStats
{
    uint64_t processed = 0;  ///< jobs claimed and finished by this worker
    uint64_t succeeded = 0;  ///< of which ok
    uint64_t failed = 0;     ///< of which !ok (worker kept serving)
    uint64_t lostClaims = 0; ///< claim races lost to another worker
    uint64_t reclaimed = 0;  ///< stale claims moved back to new/
};

/** A serve worker bound to one spool and one session. */
class Worker
{
  public:
    explicit Worker(WorkerOptions opts);

    /**
     * Serve until drained (opts.drain), the job budget (opts.maxJobs)
     * is spent, or a stop is requested — via requestStop() (the CLI's
     * signal handler calls it) or the spool's stop flag file. Always
     * finishes the job in flight before exiting (graceful drain).
     */
    WorkerStats run();

    /** Ask the loop to exit after the current job. Thread- and
     *  signal-safe (a single atomic store). */
    void requestStop() { stop_.store(true); }

    pipeline::Session &session() { return session_; }
    const Spool &spool() const { return spool_; }

    /** The worker's scoped metrics registry — job/claim counters plus,
     *  via the parent chain, its session's cache traffic. */
    obs::Registry &metrics() { return metrics_; }

  private:
    bool stopping() const;

    /** Sleep for @p ms, in short slices so a stop request interrupts
     *  a backed-off wait promptly instead of after the full interval. */
    void idleSleep(unsigned ms) const;

    /** Execute one claimed job; never throws — any failure becomes a
     *  structured !ok status. @return the terminal status JSON. */
    Json processClaimed(const std::string &id);

    /** Publish metrics.json (atomic) into the spool root. */
    void publishMetrics() const;

    /** Publish the final worker_status.json ("bsyn.worker.v1"). */
    void publishStatus(const WorkerStats &stats) const;

    WorkerOptions opts_;
    Spool spool_;

    /** Declared before session_: the session chains into this registry
     *  (metricsParent), so one scrape of the worker sees everything. */
    obs::Registry metrics_;
    obs::Counter &jobsProcessed_;
    obs::Counter &jobsSucceeded_;
    obs::Counter &jobsFailed_;
    obs::Counter &claimsLost_;
    obs::Counter &claimsReclaimed_;

    pipeline::Session session_;
    std::atomic<bool> stop_{false};
};

} // namespace bsyn::serve

#endif // BSYN_SERVE_WORKER_HH
