#include "serve/shard.hh"

#include <algorithm>

#include "support/error.hh"
#include "support/hash.hh"
#include "support/string_util.hh"

namespace bsyn::serve
{

const char *const kSuiteStatusFile = "suite_status.json";

std::string
ShardSpec::str() const
{
    return strprintf("%u/%u", index, count);
}

namespace
{

/** Parse one side of "i/N"; fatal() with the full spec on junk. */
unsigned
parseShardField(const std::string &field, const std::string &spec)
{
    if (field.empty())
        fatal("invalid --shard spec '%s': expected i/N", spec.c_str());
    uint64_t v = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            fatal("invalid --shard spec '%s': '%s' is not a number",
                  spec.c_str(), field.c_str());
        v = v * 10 + static_cast<uint64_t>(c - '0');
        if (v > 1u << 20)
            fatal("invalid --shard spec '%s': '%s' is out of range",
                  spec.c_str(), field.c_str());
    }
    return static_cast<unsigned>(v);
}

} // namespace

ShardSpec
parseShardSpec(const std::string &text)
{
    size_t slash = text.find('/');
    if (slash == std::string::npos)
        fatal("invalid --shard spec '%s': expected i/N (e.g. 2/3)",
              text.c_str());
    ShardSpec spec;
    spec.index = parseShardField(text.substr(0, slash), text);
    spec.count = parseShardField(text.substr(slash + 1), text);
    if (spec.count == 0)
        fatal("invalid --shard spec '%s': shard count must be >= 1",
              text.c_str());
    if (spec.index == 0)
        fatal("invalid --shard spec '%s': shard indices are 1-based "
              "(1/%u .. %u/%u)",
              text.c_str(), spec.count, spec.count, spec.count);
    if (spec.index > spec.count)
        fatal("invalid --shard spec '%s': index %u exceeds shard count "
              "%u",
              text.c_str(), spec.index, spec.count);
    return spec;
}

unsigned
shardOf(const std::string &name, unsigned count)
{
    BSYN_ASSERT(count > 0, "shardOf: zero shard count");
    if (count == 1)
        return 0;
    // First 8 bytes of the hex digest, read big-endian: stable across
    // platforms and endianness, exactly like the cache keys.
    std::string hex = sha256Hex(name);
    uint64_t v = 0;
    for (size_t i = 0; i < 16; ++i) {
        char c = hex[i];
        v = (v << 4) |
            static_cast<uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    }
    return static_cast<unsigned>(v % count);
}

std::string
suiteHashOf(const std::vector<workloads::Workload> &all)
{
    Sha256 ctx;
    for (const auto &w : all) {
        // Length-prefix so ("ab","c") and ("a","bc") cannot collide.
        std::string name = w.name();
        uint64_t n = name.size();
        uint8_t lenb[8];
        for (int i = 0; i < 8; ++i)
            lenb[i] = static_cast<uint8_t>(n >> (8 * (7 - i)));
        ctx.update(lenb, sizeof(lenb));
        ctx.update(name);
    }
    return ctx.hexDigest();
}

ShardedBatch
filterShard(const std::vector<workloads::Workload> &all, ShardSpec spec)
{
    ShardedBatch out;
    out.spec = spec;
    out.total = all.size();
    out.suiteHash = suiteHashOf(all);
    for (size_t i = 0; i < all.size(); ++i) {
        if (shardOf(all[i].name(), spec.count) == spec.index - 1) {
            out.workloads.push_back(all[i]);
            out.indices.push_back(i);
        }
    }
    return out;
}

// ---------------------------------------------------------- SuiteStatus

Json
SuiteStatus::toJson() const
{
    Json root = Json::object();
    root.set("schema", Json("bsyn.suite.v1"));
    Json sh = Json::object();
    sh.set("index", Json(static_cast<uint64_t>(shard.index)));
    sh.set("count", Json(static_cast<uint64_t>(shard.count)));
    root.set("shard", std::move(sh));
    root.set("total", Json(static_cast<uint64_t>(total)));
    root.set("suiteHash", Json(suiteHash));
    Json list = Json::array();
    for (const auto &st : workloads)
        list.push(pipeline::runStatusToJson(st));
    root.set("workloads", std::move(list));
    return root;
}

SuiteStatus
SuiteStatus::fromJson(const Json &j)
{
    if (j.get("schema").asString() != "bsyn.suite.v1")
        fatal("suite status: unknown schema '%s'",
              j.get("schema").asString().c_str());
    SuiteStatus s;
    const Json &sh = j.get("shard");
    s.shard.index = static_cast<unsigned>(sh.get("index").asInt());
    s.shard.count = static_cast<unsigned>(sh.get("count").asInt());
    if (s.shard.count == 0 || s.shard.index == 0 ||
        s.shard.index > s.shard.count)
        fatal("suite status: invalid shard %u/%u", s.shard.index,
              s.shard.count);
    s.total = static_cast<size_t>(j.get("total").asInt());
    s.suiteHash = j.get("suiteHash").asString();
    const Json &list = j.get("workloads");
    for (size_t i = 0; i < list.size(); ++i)
        s.workloads.push_back(pipeline::runStatusFromJson(list.at(i)));
    return s;
}

std::string
SuiteStatus::serialize() const
{
    return toJson().dump(2) + "\n";
}

SuiteStatus
SuiteStatus::loadFrom(const std::string &path)
{
    return fromJson(Json::parse(readFile(path)));
}

void
SuiteStatus::saveTo(const std::string &path) const
{
    writeFile(path, serialize());
}

SuiteStatus
makeSuiteStatus(const ShardedBatch &batch,
                const std::vector<pipeline::RunStatus> &statuses)
{
    BSYN_ASSERT(statuses.size() == batch.workloads.size(),
                "suite status: %zu statuses for %zu shard workloads",
                statuses.size(), batch.workloads.size());
    SuiteStatus s;
    s.shard = batch.spec;
    s.total = batch.total;
    s.suiteHash = batch.suiteHash;
    s.workloads = statuses;
    for (size_t i = 0; i < s.workloads.size(); ++i)
        s.workloads[i].index = batch.indices[i];
    std::sort(s.workloads.begin(), s.workloads.end(),
              [](const pipeline::RunStatus &a,
                 const pipeline::RunStatus &b) { return a.index < b.index; });
    return s;
}

} // namespace bsyn::serve
