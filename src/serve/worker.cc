#include "serve/worker.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "gen/fidelity.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::serve
{

namespace
{

pipeline::SessionOptions
sessionOptionsFor(const WorkerOptions &opts)
{
    pipeline::SessionOptions so;
    so.cacheDir = opts.cacheDir;
    so.threads = opts.threads;
    return so;
}

} // namespace

Worker::Worker(WorkerOptions opts)
    : opts_(std::move(opts)), spool_(opts_.spoolDir),
      session_(sessionOptionsFor(opts_))
{
    // A zero interval would turn the idle loop into a directory-scan
    // busy wait. The CLI rejects it at parse time; this guards every
    // other embedder.
    if (opts_.pollMs == 0)
        fatal("worker poll interval must be positive");
    if (opts_.pollMaxMs < opts_.pollMs)
        opts_.pollMaxMs = opts_.pollMs;
    if (opts_.reclaimAfterS < 0.0)
        fatal("worker reclaim age must not be negative");
}

bool
Worker::stopping() const
{
    return stop_.load() || spool_.stopRequested();
}

void
Worker::idleSleep(unsigned ms) const
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms);
    while (!stopping()) {
        auto now = std::chrono::steady_clock::now();
        if (now >= until)
            break;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            until - now);
        std::this_thread::sleep_for(
            std::min(left, std::chrono::milliseconds(20)));
    }
}

Json
Worker::processClaimed(const std::string &id)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string kind, workload, error;
    bool ok = true;
    bool profileCached = false, synthCached = false;
    Json outputs = Json::array();

    try {
        Job job =
            Job::fromJson(Json::parse(readFile(spool_.claimedPath(id))));
        if (job.id != id)
            fatal("job file '%s' carries mismatched id '%s'", id.c_str(),
                  job.id.c_str());
        kind = job.kind;
        workload = job.workload;
        const workloads::Workload &w =
            workloads::findWorkload(job.workload);

        if (job.kind == "profile") {
            auto prof = session_.profile(w, &profileCached);
            prof.saveTo(spool_.outPath(id, ".profile.json"));
            outputs.push(Json("out/" + id + ".profile.json"));
        } else if (job.kind == "synth") {
            // Same per-workload seed derivation as `bsyn suite`, so a
            // job's clone is byte-identical to — and cache-shared
            // with — a suite run at the same base seed.
            synth::SynthesisOptions so = session_.options().synthesis;
            so.targetInstructions = job.targetInstr;
            so.seed = pipeline::deriveWorkloadSeed(job.seed, w.name());
            pipeline::RunStatus rst;
            auto run = session_.process(w, so, &rst);
            profileCached = rst.profileCached;
            synthCached = rst.synthCached;
            writeFile(spool_.outPath(id, ".c"), run.synthetic.cSource);
            run.profile.saveTo(spool_.outPath(id, ".profile.json"));
            outputs.push(Json("out/" + id + ".c"));
            outputs.push(Json("out/" + id + ".profile.json"));
        } else { // "fidelity" (Job::validate admits nothing else)
            gen::FidelityOptions fo;
            fo.synthesis = session_.options().synthesis;
            fo.synthesis.targetInstructions = job.targetInstr;
            fo.synthesis.seed = job.seed;
            fo.timing = job.timing;
            auto report = gen::scoreFidelity(session_, {w}, fo);
            writeFile(spool_.outPath(id, ".fidelity.json"),
                      report.resultsJson().dump(2) + "\n");
            outputs.push(Json("out/" + id + ".fidelity.json"));
            if (!report.instances.empty() && !report.instances[0].ok) {
                ok = false;
                error = report.instances[0].error;
            }
        }
    } catch (const std::exception &e) {
        ok = false;
        error = e.what();
    }

    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    Json status = Json::object();
    status.set("schema", Json("bsyn.result.v1"));
    status.set("id", Json(id));
    status.set("kind", Json(kind));
    status.set("workload", Json(workload));
    status.set("ok", Json(ok));
    if (!ok)
        status.set("error", Json(error));
    status.set("profileCached", Json(profileCached));
    status.set("synthCached", Json(synthCached));
    status.set("secs", Json(secs));
    status.set("outputs", std::move(outputs));
    return status;
}

WorkerStats
Worker::run()
{
    WorkerStats stats;
    unsigned idleMs = opts_.pollMs;
    while (!stopping()) {
        bool progressed = false;
        if (opts_.reclaimAfterS > 0.0) {
            for (const auto &id : spool_.scanStale(opts_.reclaimAfterS)) {
                if (!spool_.reclaim(id))
                    continue; // owner finished or another worker won
                ++stats.reclaimed;
                if (opts_.verbose)
                    std::fprintf(stderr,
                                 "[bsyn] job %-24s reclaimed (claim "
                                 "older than %.0fs)\n",
                                 id.c_str(), opts_.reclaimAfterS);
            }
        }
        for (const auto &id : spool_.pending()) {
            if (stopping())
                break;
            if (!spool_.claim(id)) {
                // Another worker on this spool won the rename race.
                ++stats.lostClaims;
                continue;
            }
            Json status = processClaimed(id);
            spool_.finish(id, status);
            progressed = true;
            ++stats.processed;
            bool ok = status.get("ok").asBool();
            ok ? ++stats.succeeded : ++stats.failed;
            if (opts_.verbose)
                std::fprintf(stderr, "[bsyn] job %-24s %s (%.2fs)%s\n",
                             id.c_str(), ok ? "ok" : "FAILED",
                             status.get("secs").asNumber(),
                             status.get("profileCached").asBool() &&
                                     status.get("synthCached").asBool()
                                 ? " (cached)"
                                 : "");
            if (opts_.maxJobs && stats.processed >= opts_.maxJobs)
                return stats;
        }
        if (stopping())
            break;
        if (!progressed) {
            if (opts_.drain)
                break;
            idleSleep(idleMs);
            // Exponential backoff: an idle worker converges to one
            // scan per pollMaxMs instead of hammering the directory.
            idleMs = std::min(idleMs * 2, opts_.pollMaxMs);
        } else {
            idleMs = opts_.pollMs;
        }
    }
    return stats;
}

} // namespace bsyn::serve
