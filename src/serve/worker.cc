#include "serve/worker.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "gen/fidelity.hh"
#include "obs/log.hh"
#include "obs/trace.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::serve
{

namespace
{

pipeline::SessionOptions
sessionOptionsFor(const WorkerOptions &opts, obs::Registry *metrics)
{
    pipeline::SessionOptions so;
    so.cacheDir = opts.cacheDir;
    so.threads = opts.threads;
    so.metricsParent = metrics;
    return so;
}

} // namespace

Worker::Worker(WorkerOptions opts)
    : opts_(std::move(opts)), spool_(opts_.spoolDir),
      metrics_(&obs::Registry::global()),
      jobsProcessed_(metrics_.counter("serve.jobs.processed")),
      jobsSucceeded_(metrics_.counter("serve.jobs.succeeded")),
      jobsFailed_(metrics_.counter("serve.jobs.failed")),
      claimsLost_(metrics_.counter("serve.claims.lost")),
      claimsReclaimed_(metrics_.counter("serve.claims.reclaimed")),
      session_(sessionOptionsFor(opts_, &metrics_))
{
    // A zero interval would turn the idle loop into a directory-scan
    // busy wait. The CLI rejects it at parse time; this guards every
    // other embedder.
    if (opts_.pollMs == 0)
        fatal("worker poll interval must be positive");
    if (opts_.pollMaxMs < opts_.pollMs)
        opts_.pollMaxMs = opts_.pollMs;
    if (opts_.reclaimAfterS < 0.0)
        fatal("worker reclaim age must not be negative");
}

bool
Worker::stopping() const
{
    return stop_.load() || spool_.stopRequested();
}

void
Worker::idleSleep(unsigned ms) const
{
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(ms);
    while (!stopping()) {
        auto now = std::chrono::steady_clock::now();
        if (now >= until)
            break;
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            until - now);
        std::this_thread::sleep_for(
            std::min(left, std::chrono::milliseconds(20)));
    }
}

Json
Worker::processClaimed(const std::string &id)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string kind, workload, error;
    bool ok = true;
    bool profileCached = false, synthCached = false;
    Json outputs = Json::array();

    try {
        Job job =
            Job::fromJson(Json::parse(readFile(spool_.claimedPath(id))));
        if (job.id != id)
            fatal("job file '%s' carries mismatched id '%s'", id.c_str(),
                  job.id.c_str());
        kind = job.kind;
        workload = job.workload;
        const workloads::Workload &w =
            workloads::findWorkload(job.workload);

        if (job.kind == "profile") {
            auto prof = session_.profile(w, &profileCached);
            prof.saveTo(spool_.outPath(id, ".profile.json"));
            outputs.push(Json("out/" + id + ".profile.json"));
        } else if (job.kind == "synth") {
            // Same per-workload seed derivation as `bsyn suite`, so a
            // job's clone is byte-identical to — and cache-shared
            // with — a suite run at the same base seed.
            synth::SynthesisOptions so = session_.options().synthesis;
            so.targetInstructions = job.targetInstr;
            so.seed = pipeline::deriveWorkloadSeed(job.seed, w.name());
            pipeline::RunStatus rst;
            auto run = session_.process(w, so, &rst);
            profileCached = rst.profileCached;
            synthCached = rst.synthCached;
            writeFile(spool_.outPath(id, ".c"), run.synthetic.cSource);
            run.profile.saveTo(spool_.outPath(id, ".profile.json"));
            outputs.push(Json("out/" + id + ".c"));
            outputs.push(Json("out/" + id + ".profile.json"));
        } else { // "fidelity" (Job::validate admits nothing else)
            gen::FidelityOptions fo;
            fo.synthesis = session_.options().synthesis;
            fo.synthesis.targetInstructions = job.targetInstr;
            fo.synthesis.seed = job.seed;
            fo.timing = job.timing;
            auto report = gen::scoreFidelity(session_, {w}, fo);
            writeFile(spool_.outPath(id, ".fidelity.json"),
                      report.resultsJson().dump(2) + "\n");
            outputs.push(Json("out/" + id + ".fidelity.json"));
            if (!report.instances.empty() && !report.instances[0].ok) {
                ok = false;
                error = report.instances[0].error;
            }
        }
    } catch (const std::exception &e) {
        ok = false;
        error = e.what();
    }

    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    Json status = Json::object();
    status.set("schema", Json("bsyn.result.v1"));
    status.set("id", Json(id));
    status.set("kind", Json(kind));
    status.set("workload", Json(workload));
    status.set("ok", Json(ok));
    if (!ok)
        status.set("error", Json(error));
    status.set("profileCached", Json(profileCached));
    status.set("synthCached", Json(synthCached));
    status.set("secs", Json(secs));
    status.set("outputs", std::move(outputs));
    return status;
}

void
Worker::publishMetrics() const
{
    spool_.publish("metrics.json", metrics_.snapshot().dump(2) + "\n");
}

void
Worker::publishStatus(const WorkerStats &stats) const
{
    Json status = Json::object();
    status.set("schema", Json("bsyn.worker.v1"));
    status.set("processed", Json(stats.processed));
    status.set("succeeded", Json(stats.succeeded));
    status.set("failed", Json(stats.failed));
    status.set("lostClaims", Json(stats.lostClaims));
    status.set("reclaimed", Json(stats.reclaimed));
    spool_.publish("worker_status.json", status.dump(2) + "\n");
}

WorkerStats
Worker::run()
{
    // run() reports its own activity even if called twice on one
    // worker: the registry counters are worker-lifetime, so take the
    // delta against their values at entry.
    const WorkerStats base{jobsProcessed_.value(), jobsSucceeded_.value(),
                           jobsFailed_.value(), claimsLost_.value(),
                           claimsReclaimed_.value()};
    auto statsNow = [&] {
        WorkerStats s;
        s.processed = jobsProcessed_.value() - base.processed;
        s.succeeded = jobsSucceeded_.value() - base.succeeded;
        s.failed = jobsFailed_.value() - base.failed;
        s.lostClaims = claimsLost_.value() - base.lostClaims;
        s.reclaimed = claimsReclaimed_.value() - base.reclaimed;
        return s;
    };
    auto finish = [&] {
        WorkerStats s = statsNow();
        publishMetrics();
        publishStatus(s);
        return s;
    };

    auto lastPublish = std::chrono::steady_clock::now();
    auto maybePublish = [&] {
        if (opts_.metricsEveryS <= 0.0)
            return;
        auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - lastPublish).count() <
            opts_.metricsEveryS)
            return;
        lastPublish = now;
        publishMetrics();
    };

    unsigned idleMs = opts_.pollMs;
    while (!stopping()) {
        bool progressed = false;
        if (opts_.reclaimAfterS > 0.0) {
            for (const auto &id : spool_.scanStale(opts_.reclaimAfterS)) {
                if (!spool_.reclaim(id))
                    continue; // owner finished or another worker won
                claimsReclaimed_.add();
                obs::Trace::instant("reclaim", {{"id", id}});
                if (opts_.verbose)
                    obs::logf(obs::LogLevel::Info,
                              "[bsyn] job %-24s reclaimed (claim "
                              "older than %.0fs)",
                              id.c_str(), opts_.reclaimAfterS);
            }
        }
        for (const auto &id : spool_.pending()) {
            if (stopping())
                break;
            bool claimed;
            {
                obs::Span claimSpan("spool-claim", "id", id);
                claimed = spool_.claim(id);
            }
            if (!claimed) {
                // Another worker on this spool won the rename race.
                claimsLost_.add();
                continue;
            }
            Json status;
            {
                obs::Span jobSpan("job", "id", id);
                status = processClaimed(id);
                jobSpan.arg("kind", status.get("kind").asString());
                jobSpan.arg("workload", status.get("workload").asString());
                jobSpan.arg("ok",
                            status.get("ok").asBool() ? "true" : "false");
            }
            spool_.finish(id, status);
            progressed = true;
            jobsProcessed_.add();
            bool ok = status.get("ok").asBool();
            (ok ? jobsSucceeded_ : jobsFailed_).add();
            if (opts_.verbose)
                obs::logf(obs::LogLevel::Info,
                          "[bsyn] job %-24s %s (%.2fs)%s", id.c_str(),
                          ok ? "ok" : "FAILED",
                          status.get("secs").asNumber(),
                          status.get("profileCached").asBool() &&
                                  status.get("synthCached").asBool()
                              ? " (cached)"
                              : "");
            maybePublish();
            if (opts_.maxJobs && statsNow().processed >= opts_.maxJobs)
                return finish();
        }
        if (stopping())
            break;
        maybePublish();
        if (!progressed) {
            if (opts_.drain)
                break;
            idleSleep(idleMs);
            // Exponential backoff: an idle worker converges to one
            // scan per pollMaxMs instead of hammering the directory.
            idleMs = std::min(idleMs * 2, opts_.pollMaxMs);
        } else {
            idleMs = opts_.pollMs;
        }
    }
    return finish();
}

} // namespace bsyn::serve
