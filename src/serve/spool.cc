#include "serve/spool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "support/error.hh"
#include "support/string_util.hh"

namespace fs = std::filesystem;

namespace bsyn::serve
{

namespace
{

/** Write @p text to @p path atomically (unique temp + rename), so a
 *  concurrent reader sees either nothing or the whole file. */
void
atomicWrite(const std::string &path, const std::string &text)
{
    static std::atomic<uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(counter.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write spool file '%s'", tmp.c_str());
        out << text;
        if (!out.good())
            fatal("short write to spool file '%s'", tmp.c_str());
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        fatal("cannot finalize spool file '%s'", path.c_str());
    }
}

/** Sorted job ids of the "<id>.json" files directly under @p dir. */
std::vector<std::string>
listIds(const std::string &dir)
{
    std::vector<std::string> ids;
    std::error_code ec;
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        std::string name = it->path().filename().string();
        // In-flight ".tmp." files are not yet submitted jobs.
        if (name.size() <= 5 || name.substr(name.size() - 5) != ".json")
            continue;
        if (name.find(".tmp.") != std::string::npos)
            continue;
        ids.push_back(name.substr(0, name.size() - 5));
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

} // namespace

bool
validJobId(const std::string &id)
{
    if (id.empty() || id.size() > 200)
        return false;
    for (char c : id) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

Json
Job::toJson() const
{
    Json j = Json::object();
    j.set("schema", Json("bsyn.job.v1"));
    j.set("id", Json(id));
    j.set("kind", Json(kind));
    j.set("workload", Json(workload));
    j.set("seed", Json(seed));
    j.set("targetInstr", Json(targetInstr));
    j.set("timing", Json(timing));
    return j;
}

Job
Job::fromJson(const Json &j)
{
    if (j.get("schema").asString() != "bsyn.job.v1")
        fatal("job: unknown schema '%s'",
              j.get("schema").asString().c_str());
    Job job;
    job.id = j.get("id").asString();
    job.kind = j.get("kind").asString();
    job.workload = j.get("workload").asString();
    job.seed = static_cast<uint64_t>(j.get("seed").asNumber());
    job.targetInstr =
        static_cast<uint64_t>(j.get("targetInstr").asNumber());
    if (j.has("timing"))
        job.timing = j.get("timing").asBool();
    job.validate();
    return job;
}

void
Job::validate() const
{
    if (!validJobId(id))
        fatal("job id '%s' is invalid (need 1..200 chars of "
              "[A-Za-z0-9._-])",
              id.c_str());
    if (kind != "profile" && kind != "synth" && kind != "fidelity")
        fatal("job kind '%s' is invalid (profile|synth|fidelity)",
              kind.c_str());
    if (workload.empty())
        fatal("job '%s' names no workload", id.c_str());
}

Spool::Spool(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        fatal("spool directory must not be empty");
    for (const char *sub : {"new", "claimed", "done", "out"}) {
        std::error_code ec;
        fs::create_directories(root_ + "/" + sub, ec);
        if (ec)
            fatal("cannot create spool directory '%s/%s': %s",
                  root_.c_str(), sub, ec.message().c_str());
    }
}

std::string
Spool::newPath(const std::string &id) const
{
    return root_ + "/new/" + id + ".json";
}

std::string
Spool::claimedPath(const std::string &id) const
{
    return root_ + "/claimed/" + id + ".json";
}

std::string
Spool::donePath(const std::string &id) const
{
    return root_ + "/done/" + id + ".json";
}

std::string
Spool::outPath(const std::string &id, const std::string &suffix) const
{
    return root_ + "/out/" + id + suffix;
}

bool
Spool::idExists(const std::string &id) const
{
    std::error_code ec;
    return fs::exists(newPath(id), ec) || fs::exists(claimedPath(id), ec) ||
           fs::exists(donePath(id), ec);
}

void
Spool::submit(const Job &job) const
{
    job.validate();
    if (idExists(job.id))
        fatal("job id '%s' already exists in spool '%s'", job.id.c_str(),
              root_.c_str());
    atomicWrite(newPath(job.id), job.toJson().dump(2) + "\n");
}

std::vector<std::string>
Spool::pending() const
{
    return listIds(root_ + "/new");
}

std::vector<std::string>
Spool::finished() const
{
    return listIds(root_ + "/done");
}

bool
Spool::claim(const std::string &id) const
{
    // rename(2) is atomic: of any number of workers racing for one
    // job, exactly one rename succeeds and the rest see ENOENT.
    std::error_code ec;
    fs::rename(newPath(id), claimedPath(id), ec);
    if (ec)
        return false;
    // rename preserves the submit-time mtime, which would make a
    // long-queued job look instantly stale; stamp the claim time.
    fs::last_write_time(claimedPath(id), fs::file_time_type::clock::now(),
                        ec);
    return true;
}

std::vector<std::string>
Spool::scanStale(double maxAgeS) const
{
    std::vector<std::string> stale;
    auto now = fs::file_time_type::clock::now();
    for (const auto &id : listIds(root_ + "/claimed")) {
        std::error_code ec;
        auto mtime = fs::last_write_time(claimedPath(id), ec);
        if (ec)
            continue; // finished or reclaimed while we scanned
        double age = std::chrono::duration<double>(now - mtime).count();
        if (age >= maxAgeS)
            stale.push_back(id);
    }
    return stale;
}

bool
Spool::reclaim(const std::string &id) const
{
    // Atomic like claim(): if the owner was alive after all and
    // finished first, the claim file is gone and this is a no-op.
    std::error_code ec;
    fs::rename(claimedPath(id), newPath(id), ec);
    return !ec;
}

void
Spool::finish(const std::string &id, const Json &status) const
{
    // Status first, then retire the claim: a crash between the two
    // leaves a claimed file with a status — visibly done — rather than
    // a result that vanished.
    atomicWrite(donePath(id), status.dump(2) + "\n");
    std::error_code ec;
    fs::remove(claimedPath(id), ec);
}

bool
Spool::result(const std::string &id, Json &out) const
{
    std::error_code ec;
    if (!fs::exists(donePath(id), ec))
        return false;
    out = Json::parse(readFile(donePath(id)));
    return true;
}

std::string
Spool::freeId(const std::string &base) const
{
    if (!idExists(base))
        return base;
    for (uint64_t n = 2;; ++n) {
        std::string candidate = base + "-" + std::to_string(n);
        if (!idExists(candidate))
            return candidate;
    }
}

void
Spool::publish(const std::string &name, const std::string &text) const
{
    if (name.empty() || name.find('/') != std::string::npos)
        fatal("spool publish name '%s' must be a plain filename",
              name.c_str());
    atomicWrite(root_ + "/" + name, text);
}

void
Spool::requestStop() const
{
    atomicWrite(root_ + "/stop", "stop\n");
}

bool
Spool::stopRequested() const
{
    std::error_code ec;
    return fs::exists(root_ + "/stop", ec);
}

void
Spool::clearStop() const
{
    std::error_code ec;
    fs::remove(root_ + "/stop", ec);
}

const char *
waitOutcomeName(WaitOutcome outcome)
{
    switch (outcome) {
    case WaitOutcome::Done:
        return "done";
    case WaitOutcome::Timeout:
        return "timeout";
    case WaitOutcome::Stopped:
        return "stopped";
    case WaitOutcome::Vanished:
        return "vanished";
    }
    return "unknown";
}

WaitOutcome
waitForResult(const Spool &spool, const std::string &id, Json &status,
              double timeoutS, unsigned pollMs)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(timeoutS));
    if (pollMs == 0)
        pollMs = 1;
    for (;;) {
        // Done first: finish() publishes the status before retiring
        // the claim, so a finish in flight can never read as lost.
        if (spool.result(id, status))
            return WaitOutcome::Done;

        std::error_code ec;
        bool inNew = fs::exists(spool.newPath(id), ec);
        bool inClaimed = fs::exists(spool.claimedPath(id), ec);
        if (!inNew && !inClaimed) {
            // The job may have hopped state between the two checks
            // (claim or reclaim renames); only a re-check that still
            // finds it nowhere means it is really gone.
            if (spool.result(id, status))
                return WaitOutcome::Done;
            if (!fs::exists(spool.newPath(id), ec) &&
                !fs::exists(spool.claimedPath(id), ec) &&
                !spool.result(id, status))
                return WaitOutcome::Vanished;
        } else if (inNew && spool.stopRequested()) {
            // Workers drain and exit on the stop flag; an unclaimed
            // job will sit in new/ forever. (A claimed job still
            // finishes — its worker completes the job in flight.)
            return WaitOutcome::Stopped;
        }

        if (std::chrono::steady_clock::now() >= deadline)
            return WaitOutcome::Timeout;
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

} // namespace bsyn::serve
