#include "serve/merge.hh"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>

#include "obs/trace.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace fs = std::filesystem;

namespace bsyn::serve
{

namespace
{

/**
 * Validate that @p seen (shard spec per input, in input order) forms a
 * complete disjoint 1..N cover and that every input agreed on
 * @p what's suite identity. @return N.
 */
unsigned
checkShardCover(const std::vector<ShardSpec> &seen, const char *what)
{
    if (seen.empty())
        fatal("%s merge: no inputs", what);
    unsigned count = seen[0].count;
    std::set<unsigned> indices;
    for (const auto &spec : seen) {
        if (spec.count != count)
            fatal("%s merge: mixed shard counts (%u-way vs %u-way)",
                  what, spec.count, count);
        if (!indices.insert(spec.index).second)
            fatal("%s merge: shard %s appears twice", what,
                  spec.str().c_str());
    }
    if (indices.size() != count)
        for (unsigned i = 1; i <= count; ++i)
            if (!indices.count(i))
                fatal("%s merge: missing shard %u/%u", what, i, count);
    return count;
}

} // namespace

MergeResult
mergeSuiteDirs(const std::string &outDir,
               const std::vector<std::string> &shardDirs)
{
    obs::Span span("merge", "kind", "suite");
    span.arg("shards", std::to_string(shardDirs.size()));
    // Load and cross-validate every shard's status artifact first —
    // nothing is written until the cover is proven complete.
    std::vector<SuiteStatus> statuses;
    std::vector<ShardSpec> specs;
    for (const auto &dir : shardDirs) {
        statuses.push_back(
            SuiteStatus::loadFrom(dir + "/" + kSuiteStatusFile));
        specs.push_back(statuses.back().shard);
    }
    checkShardCover(specs, "suite");
    for (const auto &st : statuses) {
        if (st.suiteHash != statuses[0].suiteHash)
            fatal("suite merge: shard %s was produced from a different "
                  "suite (suiteHash mismatch)",
                  st.shard.str().c_str());
        if (st.total != statuses[0].total)
            fatal("suite merge: shard %s covers a %zu-workload suite, "
                  "expected %zu",
                  st.shard.str().c_str(), st.total, statuses[0].total);
    }

    SuiteStatus merged;
    merged.shard = ShardSpec{}; // 1/1 — indistinguishable from unsharded
    merged.total = statuses[0].total;
    merged.suiteHash = statuses[0].suiteHash;
    std::set<size_t> globalIndices;
    for (const auto &st : statuses) {
        for (const auto &w : st.workloads) {
            if (w.index >= merged.total)
                fatal("suite merge: workload index %zu out of range "
                      "(suite has %zu)",
                      w.index, merged.total);
            if (!globalIndices.insert(w.index).second)
                fatal("suite merge: workload '%s' (index %zu) appears "
                      "in two shards",
                      w.workload.c_str(), w.index);
            merged.workloads.push_back(w);
        }
    }
    if (merged.workloads.size() != merged.total)
        fatal("suite merge: shards cover %zu of %zu workloads",
              merged.workloads.size(), merged.total);
    std::sort(merged.workloads.begin(), merged.workloads.end(),
              [](const pipeline::RunStatus &a,
                 const pipeline::RunStatus &b) { return a.index < b.index; });

    std::error_code ec;
    fs::create_directories(outDir, ec);
    if (ec)
        fatal("cannot create merge output directory '%s': %s",
              outDir.c_str(), ec.message().c_str());

    MergeResult result;
    result.shards = shardDirs.size();
    result.workloads = merged.workloads.size();
    for (const auto &st : merged.workloads)
        if (!st.ok)
            ++result.failed;

    // Byte-copy every artifact file; collisions mean the inputs were
    // not the disjoint shards the statuses claimed.
    std::set<std::string> copied;
    for (const auto &dir : shardDirs) {
        for (const auto &entry : fs::directory_iterator(dir)) {
            std::string name = entry.path().filename().string();
            if (name == kSuiteStatusFile)
                continue;
            if (!entry.is_regular_file())
                fatal("suite merge: unexpected non-file entry '%s' in "
                      "shard directory '%s'",
                      name.c_str(), dir.c_str());
            if (!copied.insert(name).second)
                fatal("suite merge: file '%s' produced by two shards",
                      name.c_str());
            writeFile(outDir + "/" + name,
                      readFile(entry.path().string()));
            ++result.files;
        }
    }
    merged.saveTo(outDir + "/" + kSuiteStatusFile);
    return result;
}

Json
mergeFidelityReports(const std::vector<Json> &shardReports)
{
    obs::Span span("merge", "kind", "fidelity");
    span.arg("shards", std::to_string(shardReports.size()));
    // Shard provenance: every report must carry the section `bsyn
    // fidelity --shard` writes, agree on suite identity, and cover
    // 1..N exactly once.
    std::vector<ShardSpec> specs;
    for (const auto &rep : shardReports) {
        if (!rep.has("shard"))
            fatal("fidelity merge: input has no shard section (was it "
                  "produced with --shard?)");
        const Json &sh = rep.get("shard");
        ShardSpec spec;
        spec.index = static_cast<unsigned>(sh.get("index").asInt());
        spec.count = static_cast<unsigned>(sh.get("count").asInt());
        specs.push_back(spec);
    }
    checkShardCover(specs, "fidelity");
    const Json &first = shardReports[0];
    const std::string schema = first.get("schema").asString();
    const std::string suiteHash =
        first.get("shard").get("suiteHash").asString();
    const uint64_t total = static_cast<uint64_t>(
        first.get("shard").get("total").asInt());
    for (const auto &rep : shardReports) {
        if (rep.get("schema").asString() != schema)
            fatal("fidelity merge: mixed schemas '%s' vs '%s'",
                  rep.get("schema").asString().c_str(), schema.c_str());
        const Json &sh = rep.get("shard");
        if (sh.get("suiteHash").asString() != suiteHash)
            fatal("fidelity merge: shard produced from a different "
                  "suite (suiteHash mismatch)");
        if (static_cast<uint64_t>(sh.get("total").asInt()) != total)
            fatal("fidelity merge: shards disagree on the suite size");
    }

    // Collect instances and restore full-batch order by global index.
    std::vector<const Json *> instances;
    for (const auto &rep : shardReports) {
        const Json &list = rep.get("instances");
        for (size_t i = 0; i < list.size(); ++i)
            instances.push_back(&list.at(i));
    }
    std::sort(instances.begin(), instances.end(),
              [](const Json *a, const Json *b) {
                  return a->get("index").asInt() < b->get("index").asInt();
              });
    std::set<int64_t> seen;
    for (const Json *inst : instances)
        if (!seen.insert(inst->get("index").asInt()).second)
            fatal("fidelity merge: instance index %lld appears in two "
                  "shards",
                  static_cast<long long>(inst->get("index").asInt()));
    if (instances.size() != total)
        fatal("fidelity merge: shards cover %zu of %llu instances",
              instances.size(), static_cast<unsigned long long>(total));

    // Rebuild the unsharded results document. The summary accumulates
    // over instances in restored batch order, so the floating-point
    // sums — and therefore the serialized bytes — match an unsharded
    // run exactly.
    Json root = Json::object();
    root.set("schema", Json(schema));
    Json list = Json::array();
    std::vector<std::string> metricOrder;
    std::map<std::string, std::pair<double, double>> metricAgg; // sum,max
    size_t okCount = 0;
    double phaseSum = 0, phaseMax = 0;
    double cpiSum = 0, cpiMax = 0;
    for (const Json *inst : instances) {
        list.push(*inst);
        if (!inst->get("ok").asBool())
            continue;
        ++okCount;
        const Json &metrics = inst->get("metrics");
        for (const auto &name : metrics.keys()) {
            double err = metrics.get(name).get("relError").asNumber();
            auto it = metricAgg.find(name);
            if (it == metricAgg.end()) {
                metricOrder.push_back(name);
                metricAgg[name] = {err, err};
            } else {
                it->second.first += err;
                it->second.second = std::max(it->second.second, err);
            }
        }
        double worst =
            inst->get("phases").get("worstMixError").asNumber();
        phaseSum += worst;
        phaseMax = std::max(phaseMax, worst);
        double worstCpi =
            inst->get("phases").get("worstCpiError").asNumber();
        cpiSum += worstCpi;
        cpiMax = std::max(cpiMax, worstCpi);
    }
    root.set("instances", std::move(list));

    Json summary = Json::object();
    for (const auto &name : metricOrder) {
        const auto &agg = metricAgg.at(name);
        Json entry = Json::object();
        entry.set("mean",
                  Json(okCount ? agg.first / double(okCount) : 0.0));
        entry.set("max", Json(agg.second));
        summary.set(name, std::move(entry));
    }
    {
        Json entry = Json::object();
        entry.set("mean",
                  Json(okCount ? phaseSum / double(okCount) : 0.0));
        entry.set("max", Json(phaseMax));
        summary.set("phaseWorstMix", std::move(entry));
    }
    {
        Json entry = Json::object();
        entry.set("mean",
                  Json(okCount ? cpiSum / double(okCount) : 0.0));
        entry.set("max", Json(cpiMax));
        summary.set("phaseWorstCpi", std::move(entry));
    }
    root.set("summary", std::move(summary));
    root.set("scored", Json(static_cast<uint64_t>(okCount)));
    root.set("failed",
             Json(static_cast<uint64_t>(instances.size() - okCount)));
    return root;
}

} // namespace bsyn::serve
