/**
 * @file
 * The merge half of shard-and-serve: reunify per-shard artifacts into
 * the single artifact an unsharded run would have produced, validating
 * along the way that the shards actually form one complete, disjoint
 * cover of one suite (same resolved batch, same shard count, every
 * shard index 1..N present exactly once, every global workload index
 * accounted for).
 *
 * Two artifact kinds merge:
 *  - suite output directories (`bsyn suite --shard i/N -o dir_i`):
 *    clone/profile files are byte-copied and the per-shard
 *    suite_status.json files fold into one 1/1 status — the result is
 *    byte-identical to `bsyn suite -o dir` without --shard;
 *  - fidelity reports (`bsyn fidelity --shard i/N -o f_i.json`):
 *    instances are re-sorted by global index and the per-metric
 *    summary is recomputed in batch order, so the merged results JSON
 *    is byte-identical to an unsharded `--results-only` report
 *    (floating-point accumulation order and all).
 */

#ifndef BSYN_SERVE_MERGE_HH
#define BSYN_SERVE_MERGE_HH

#include <string>
#include <vector>

#include "serve/shard.hh"
#include "support/json.hh"

namespace bsyn::serve
{

/** Outcome of a directory merge. */
struct MergeResult
{
    size_t shards = 0;    ///< input shard directories
    size_t workloads = 0; ///< status entries in the merged artifact
    size_t failed = 0;    ///< of which !ok
    size_t files = 0;     ///< artifact files copied
};

/**
 * Merge N shard output directories into @p outDir (created if needed).
 * Every file except suite_status.json is byte-copied; the status files
 * are validated (complete disjoint 1..N cover of one suiteHash) and
 * merged into a 1/1 suite_status.json. fatal() on incomplete,
 * overlapping, or mismatched shards.
 */
MergeResult mergeSuiteDirs(const std::string &outDir,
                           const std::vector<std::string> &shardDirs);

/**
 * Merge N sharded fidelity reports (parsed JSON, any order) into the
 * results-only report of the equivalent unsharded run. Each input must
 * carry the "shard" section `bsyn fidelity --shard` writes. fatal() on
 * mismatched or incomplete shards.
 */
Json mergeFidelityReports(const std::vector<Json> &shardReports);

} // namespace bsyn::serve

#endif // BSYN_SERVE_MERGE_HH
