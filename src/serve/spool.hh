/**
 * @file
 * The job-spool protocol behind `bsyn serve`: a plain directory is the
 * whole control plane, so any number of clients and workers — possibly
 * on different machines sharing a filesystem — coordinate without
 * sockets or locks. Life of a job:
 *
 *   new/<id>.json       submitted by a client (write-temp + rename)
 *   claimed/<id>.json   a worker claimed it (atomic rename: exactly
 *                       one worker wins a duplicate-claim race)
 *   out/<id>.*          result artifacts the worker produced
 *   done/<id>.json      terminal status (ok or structured error)
 *   stop                drain flag: workers finish the current job,
 *                       claim nothing more, and exit
 *
 * Every state transition is a single atomic rename or
 * write-temp-then-rename, so observers never see torn files and two
 * workers can never both own one job.
 */

#ifndef BSYN_SERVE_SPOOL_HH
#define BSYN_SERVE_SPOOL_HH

#include <string>
#include <vector>

#include "support/json.hh"

namespace bsyn::serve
{

/** One unit of work a client drops into the spool. */
struct Job
{
    /** Unique, filename-safe ([A-Za-z0-9._-]) identifier. */
    std::string id;

    /** "profile" (profile only), "synth" (profile + synthesize), or
     *  "fidelity" (profile, synthesize, score the clone). */
    std::string kind;

    /** Canonical workload name — a suite instance ("crc32/small") or
     *  a generated-family spec ("pointer_chase/nodes=1024,seed=3"). */
    std::string workload;

    /** Batch base seed; the worker applies deriveWorkloadSeed exactly
     *  like `bsyn suite`, so a job's artifacts are byte-identical to
     *  (and cache-shared with) a suite run at the same seed. */
    uint64_t seed = 0xb5e9c0de;

    /** Synthesis instruction budget. */
    uint64_t targetInstr = 120000;

    /** fidelity jobs: include the (slow) timing-model CPI metric. */
    bool timing = false;

    Json toJson() const;
    static Job fromJson(const Json &j);

    /** fatal() unless id/kind/workload are well-formed. */
    void validate() const;
};

/** True if @p id is non-empty and uses only [A-Za-z0-9._-]. */
bool validJobId(const std::string &id);

/** A job spool rooted at a directory (subdirectories created on
 *  construction). All operations are safe against concurrent clients
 *  and workers sharing the root. */
class Spool
{
  public:
    explicit Spool(std::string root);

    const std::string &root() const { return root_; }

    std::string newPath(const std::string &id) const;
    std::string claimedPath(const std::string &id) const;
    std::string donePath(const std::string &id) const;

    /** Result-artifact path for a job: `<root>/out/<id><suffix>`. */
    std::string outPath(const std::string &id,
                        const std::string &suffix) const;

    /** Atomically submit @p job. fatal() on an invalid job or if the
     *  id already exists anywhere in the spool. */
    void submit(const Job &job) const;

    /** Ids waiting in new/, sorted (deterministic claim order). */
    std::vector<std::string> pending() const;

    /** Ids with a terminal status in done/, sorted. */
    std::vector<std::string> finished() const;

    /** Try to claim a pending job: atomic rename new/ -> claimed/,
     *  then re-stamp the file's mtime so a stale scan measures time
     *  since the claim, not time spent queued in new/.
     *  @return false if another worker won the race (or the job
     *  vanished). */
    bool claim(const std::string &id) const;

    /** Ids whose claim file is at least @p maxAgeS seconds old —
     *  claims most likely stranded by a worker that died mid-job
     *  (finish() removes the claim file, so a live worker's claim
     *  only ages while the job is actually running). Sorted. */
    std::vector<std::string> scanStale(double maxAgeS) const;

    /** Move a (presumed stale) claimed job back to new/ so any worker
     *  can claim it afresh. Atomic rename. @return false if the claim
     *  vanished first — its owner finished after all, or another
     *  reclaimer won. */
    bool reclaim(const std::string &id) const;

    /** Publish the terminal @p status (atomic) and retire the claimed
     *  job file. */
    void finish(const std::string &id, const Json &status) const;

    /** Load done/<id>.json into @p out if present. */
    bool result(const std::string &id, Json &out) const;

    /** First free id derived from @p base: @p base itself, then
     *  "<base>-2", "<base>-3", ... — deterministic, no clocks. */
    std::string freeId(const std::string &base) const;

    /** Atomically publish a telemetry/status file at `<root>/<name>`
     *  (write-temp + rename) — readers scraping the spool never see a
     *  torn file. @p name must be a plain filename, not a path. */
    void publish(const std::string &name, const std::string &text) const;

    /** Drain flag (`<root>/stop`): ask every worker on this spool to
     *  finish its current job and exit. */
    void requestStop() const;
    bool stopRequested() const;
    void clearStop() const;

  private:
    bool idExists(const std::string &id) const;

    std::string root_;
};

/** Why waitForResult() returned. */
enum class WaitOutcome {
    Done,     ///< terminal status loaded
    Timeout,  ///< deadline passed with the job still in flight
    Stopped,  ///< spool stop flag set while the job sat unclaimed —
              ///< no worker will ever take it
    Vanished, ///< job in neither new/, claimed/ nor done/ — deleted
              ///< or never submitted
};

/** Lowercase name of @p outcome (for messages). */
const char *waitOutcomeName(WaitOutcome outcome);

/**
 * Poll the spool until @p id has a terminal status (loaded into
 * @p status), failing fast when no result can arrive anymore: a stop
 * flag with the job still unclaimed, or a job that is nowhere in the
 * spool at all. A claimed job keeps the wait alive even under a stop
 * flag — workers always finish the job in flight.
 */
WaitOutcome waitForResult(const Spool &spool, const std::string &id,
                          Json &status, double timeoutS,
                          unsigned pollMs = 50);

} // namespace bsyn::serve

#endif // BSYN_SERVE_SPOOL_HH
