/**
 * @file
 * The job-spool protocol behind `bsyn serve`: a plain directory is the
 * whole control plane, so any number of clients and workers — possibly
 * on different machines sharing a filesystem — coordinate without
 * sockets or locks. Life of a job:
 *
 *   new/<id>.json       submitted by a client (write-temp + rename)
 *   claimed/<id>.json   a worker claimed it (atomic rename: exactly
 *                       one worker wins a duplicate-claim race)
 *   out/<id>.*          result artifacts the worker produced
 *   done/<id>.json      terminal status (ok or structured error)
 *   stop                drain flag: workers finish the current job,
 *                       claim nothing more, and exit
 *
 * Every state transition is a single atomic rename or
 * write-temp-then-rename, so observers never see torn files and two
 * workers can never both own one job.
 */

#ifndef BSYN_SERVE_SPOOL_HH
#define BSYN_SERVE_SPOOL_HH

#include <string>
#include <vector>

#include "support/json.hh"

namespace bsyn::serve
{

/** One unit of work a client drops into the spool. */
struct Job
{
    /** Unique, filename-safe ([A-Za-z0-9._-]) identifier. */
    std::string id;

    /** "profile" (profile only), "synth" (profile + synthesize), or
     *  "fidelity" (profile, synthesize, score the clone). */
    std::string kind;

    /** Canonical workload name — a suite instance ("crc32/small") or
     *  a generated-family spec ("pointer_chase/nodes=1024,seed=3"). */
    std::string workload;

    /** Batch base seed; the worker applies deriveWorkloadSeed exactly
     *  like `bsyn suite`, so a job's artifacts are byte-identical to
     *  (and cache-shared with) a suite run at the same seed. */
    uint64_t seed = 0xb5e9c0de;

    /** Synthesis instruction budget. */
    uint64_t targetInstr = 120000;

    /** fidelity jobs: include the (slow) timing-model CPI metric. */
    bool timing = false;

    Json toJson() const;
    static Job fromJson(const Json &j);

    /** fatal() unless id/kind/workload are well-formed. */
    void validate() const;
};

/** True if @p id is non-empty and uses only [A-Za-z0-9._-]. */
bool validJobId(const std::string &id);

/** A job spool rooted at a directory (subdirectories created on
 *  construction). All operations are safe against concurrent clients
 *  and workers sharing the root. */
class Spool
{
  public:
    explicit Spool(std::string root);

    const std::string &root() const { return root_; }

    std::string newPath(const std::string &id) const;
    std::string claimedPath(const std::string &id) const;
    std::string donePath(const std::string &id) const;

    /** Result-artifact path for a job: `<root>/out/<id><suffix>`. */
    std::string outPath(const std::string &id,
                        const std::string &suffix) const;

    /** Atomically submit @p job. fatal() on an invalid job or if the
     *  id already exists anywhere in the spool. */
    void submit(const Job &job) const;

    /** Ids waiting in new/, sorted (deterministic claim order). */
    std::vector<std::string> pending() const;

    /** Ids with a terminal status in done/, sorted. */
    std::vector<std::string> finished() const;

    /** Try to claim a pending job: atomic rename new/ -> claimed/.
     *  @return false if another worker won the race (or the job
     *  vanished). */
    bool claim(const std::string &id) const;

    /** Publish the terminal @p status (atomic) and retire the claimed
     *  job file. */
    void finish(const std::string &id, const Json &status) const;

    /** Load done/<id>.json into @p out if present. */
    bool result(const std::string &id, Json &out) const;

    /** First free id derived from @p base: @p base itself, then
     *  "<base>-2", "<base>-3", ... — deterministic, no clocks. */
    std::string freeId(const std::string &base) const;

    /** Drain flag (`<root>/stop`): ask every worker on this spool to
     *  finish its current job and exit. */
    void requestStop() const;
    bool stopRequested() const;
    void clearStop() const;

  private:
    bool idExists(const std::string &id) const;

    std::string root_;
};

} // namespace bsyn::serve

#endif // BSYN_SERVE_SPOOL_HH
