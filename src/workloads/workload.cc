#include "workloads/workload.hh"

#include "lang/frontend.hh"

namespace bsyn::workloads
{

ir::Module
compileWorkload(const Workload &w)
{
    return lang::compile(w.source, w.name());
}

} // namespace bsyn::workloads
