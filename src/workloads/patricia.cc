/**
 * @file
 * patricia — PATRICIA trie for IP-style route lookups (MiBench network
 * analogue), using index-based node storage (MiniC has no pointers).
 * Pointer-chasing loads with data-dependent branches. The paper only
 * evaluates patricia/small.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *patriciaCommon = R"(
uint nodeKey[8192];
int nodeBit[8192];
int nodeLeft[8192];
int nodeRight[8192];
int numNodes;
int rootNode;
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

int bitOf(uint key, int bit) {
  if (bit > 31) return 0;
  return (int)((key >> (31 - bit)) & 1);
}

/* Search to the closest leaf-ish node (classic PATRICIA descent,
 * stopping when the bit index stops increasing). */
int descend(uint key) {
  int cur = rootNode;
  int prevBit = -1;
  while (nodeBit[cur] > prevBit) {
    prevBit = nodeBit[cur];
    if (bitOf(key, nodeBit[cur]))
      cur = nodeRight[cur];
    else
      cur = nodeLeft[cur];
  }
  return cur;
}

void insert(uint key) {
  if (numNodes == 0) {
    nodeKey[0] = key;
    nodeBit[0] = 0;
    nodeLeft[0] = 0;
    nodeRight[0] = 0;
    rootNode = 0;
    numNodes = 1;
    return;
  }
  int found = descend(key);
  uint diff = nodeKey[found] ^ key;
  if (diff == 0) return; /* already present */
  /* first differing bit */
  int bit = 0;
  while (bit < 32 && ((diff >> (31 - bit)) & 1) == 0) bit = bit + 1;
  /* re-descend to the insertion point */
  int parent = -1;
  int cur = rootNode;
  int prevBit = -1;
  while (nodeBit[cur] > prevBit && nodeBit[cur] < bit) {
    prevBit = nodeBit[cur];
    parent = cur;
    if (bitOf(key, nodeBit[cur]))
      cur = nodeRight[cur];
    else
      cur = nodeLeft[cur];
  }
  int fresh = numNodes;
  numNodes = numNodes + 1;
  nodeKey[fresh] = key;
  nodeBit[fresh] = bit;
  if (bitOf(key, bit)) {
    nodeLeft[fresh] = cur;
    nodeRight[fresh] = fresh;
  } else {
    nodeLeft[fresh] = fresh;
    nodeRight[fresh] = cur;
  }
  if (parent < 0) {
    rootNode = fresh;
  } else if (bitOf(key, nodeBit[parent])) {
    nodeRight[parent] = fresh;
  } else {
    nodeLeft[parent] = fresh;
  }
}

int lookup(uint key) {
  int found = descend(key);
  if (nodeKey[found] == key) return 1;
  return 0;
}
)";

Workload
make(const std::string &input, int inserts, int lookups)
{
    Workload w;
    w.benchmark = "patricia";
    w.input = input;
    w.source = std::string(patriciaCommon) + strprintf(R"(
int main() {
  int i;
  uint hits = 0;
  numNodes = 0;
  rngState = 31337u;
  for (i = 0; i < %d; i++)
    insert(nextRand() & 0xFFFFFF00);
  for (i = 0; i < %d; i++) {
    uint probe = nextRand() & 0xFFFFFF00;
    hits = hits + (uint)lookup(probe);
    if (i & 1) hits = hits + (uint)lookup((uint)i << 8);
  }
  printf("patricia_%s=%%u_%%d\n", hits, numNodes);
  return (int)hits;
}
)",
                                                      inserts, lookups,
                                                      input.c_str());
    w.expectedOutput = "patricia_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
patriciaWorkloads()
{
    return {
        make("small", 2500, 12000),
    };
}

} // namespace bsyn::workloads
