/**
 * @file
 * fft — iterative radix-2 Cooley-Tukey FFT on doubles with Taylor-series
 * trigonometry (MiBench telecom analogue). The heaviest floating-point
 * benchmark — the paper's highest-CPI workload in Figure 10. large1 is
 * forward transforms, large2 round-trips (forward + inverse), small1 is
 * a reduced forward run.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *fftCommon = R"(
double re[1024];
double im[1024];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

/* sin via Taylor series with range reduction into [-pi, pi]. */
double tsin(double x) {
  double pi = 3.14159265358979;
  double twopi = 6.28318530717959;
  while (x > pi) x = x - twopi;
  while (x < -pi) x = x + twopi;
  double x2 = x * x;
  double term = x;
  double sum = x;
  int k;
  for (k = 1; k <= 9; k++) {
    term = -term * x2 / (double)((2 * k) * (2 * k + 1));
    sum = sum + term;
  }
  return sum;
}

double tcos(double x) { return tsin(x + 1.5707963267949); }

/* In-place iterative radix-2 FFT; dir = 1 forward, -1 inverse. */
void fftRun(int n, int dir) {
  int i, j, len;
  /* bit reversal permutation */
  j = 0;
  for (i = 1; i < n; i++) {
    int bit = n >> 1;
    while (j & bit) {
      j = j ^ bit;
      bit = bit >> 1;
    }
    j = j | bit;
    if (i < j) {
      double tr = re[i]; re[i] = re[j]; re[j] = tr;
      double ti = im[i]; im[i] = im[j]; im[j] = ti;
    }
  }
  for (len = 2; len <= n; len = len << 1) {
    double ang = 6.28318530717959 / (double)len * (double)dir;
    for (i = 0; i < n; i = i + len) {
      int half = len >> 1;
      for (j = 0; j < half; j++) {
        /* Like the original MiBench fft, the twiddle factors are
         * computed with trigonometric calls inside the inner loop. */
        double phase = ang * (double)j;
        double curR = tcos(phase);
        double curI = tsin(phase);
        int a = i + j;
        int b = i + j + half;
        double xr = re[b] * curR - im[b] * curI;
        double xi = re[b] * curI + im[b] * curR;
        re[b] = re[a] - xr;
        im[b] = im[a] - xi;
        re[a] = re[a] + xr;
        im[a] = im[a] + xi;
      }
    }
  }
  if (dir < 0) {
    for (i = 0; i < n; i++) {
      re[i] = re[i] / (double)n;
      im[i] = im[i] / (double)n;
    }
  }
}

void fillSignal(int n) {
  int i;
  for (i = 0; i < n; i++) {
    re[i] = (double)((int)(nextRand() & 2047) - 1024) / 512.0;
    im[i] = 0.0;
  }
}
)";

Workload
make(const std::string &input, int n, int reps, bool inverse)
{
    Workload w;
    w.benchmark = "fft";
    w.input = input;
    w.source = std::string(fftCommon) + strprintf(R"(
int main() {
  int r, i;
  double acc = 0.0;
  rngState = 2024u;
  for (r = 0; r < %d; r++) {
    fillSignal(%d);
    fftRun(%d, 1);
    if (%d) fftRun(%d, -1);
    for (i = 0; i < 8; i++) acc = acc + re[i * 37 %% %d] + im[i * 53 %% %d];
  }
  int scaled = (int)(acc * 1000.0);
  printf("fft_%s=%%d\n", scaled);
  return scaled;
}
)",
                                                  reps, n, n,
                                                  inverse ? 1 : 0, n, n,
                                                  n, input.c_str());
    w.expectedOutput = "fft_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
fftWorkloads()
{
    return {
        make("large1", 1024, 3, false),
        make("large2", 1024, 1, true),
        make("small1", 256, 2, false),
    };
}

} // namespace bsyn::workloads
