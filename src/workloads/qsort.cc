/**
 * @file
 * qsort — recursive quicksort with insertion-sort leaves over
 * pseudo-random keys (MiBench automotive analogue). Exercises deep
 * call/return behaviour and data-dependent branches. The paper only
 * evaluates qsort/large.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *qsortCommon = R"(
uint data[32768];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

void insertionSort(int lo, int hi) {
  int i, j;
  for (i = lo + 1; i <= hi; i++) {
    uint key = data[i];
    j = i - 1;
    while (j >= lo && data[j] > key) {
      data[j + 1] = data[j];
      j = j - 1;
    }
    data[j + 1] = key;
  }
}

void quickSort(int lo, int hi) {
  if (hi - lo < 12) {
    insertionSort(lo, hi);
    return;
  }
  /* median-of-three pivot */
  int mid = lo + ((hi - lo) >> 1);
  uint a = data[lo];
  uint b = data[mid];
  uint c = data[hi];
  uint pivot = a;
  if (a > b) { if (b > c) pivot = b; else if (a > c) pivot = c; }
  else { if (a > c) pivot = a; else if (b > c) pivot = c; else pivot = b; }
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (data[i] < pivot) i = i + 1;
    while (data[j] > pivot) j = j - 1;
    if (i <= j) {
      uint tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
      i = i + 1;
      j = j - 1;
    }
  }
  if (lo < j) quickSort(lo, j);
  if (i < hi) quickSort(i, hi);
}
)";

Workload
make(const std::string &input, int n, int rounds)
{
    Workload w;
    w.benchmark = "qsort";
    w.input = input;
    w.source = std::string(qsortCommon) + strprintf(R"(
int main() {
  int r, i;
  uint check = 0;
  rngState = 8675309u;
  for (r = 0; r < %d; r++) {
    for (i = 0; i < %d; i++) data[i] = nextRand();
    quickSort(0, %d - 1);
    for (i = 1; i < %d; i++)
      if (data[i - 1] > data[i]) check = 0xDEAD0000;
    check = check * 31 + data[%d / 2] + data[7];
  }
  printf("qsort_%s=%%u\n", check);
  return (int)check;
}
)",
                                                    rounds, n, n, n, n,
                                                    input.c_str());
    w.expectedOutput = "qsort_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
qsortWorkloads()
{
    return {
        make("large", 12000, 2),
    };
}

} // namespace bsyn::workloads
