/**
 * @file
 * dijkstra — all-pairs-ish shortest paths by repeated Dijkstra runs over
 * a dense adjacency matrix (MiBench network analogue). The matrix scan
 * makes it the paper's most cache-size-sensitive benchmark (Fig 7).
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *dijkstraCommon = R"(
uint adj[16384];     /* up to 128 x 128 dense matrix */
uint dist[128];
int visited[128];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

void buildGraph(int n) {
  int i, j;
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      uint wgt = (nextRand() >> 16) & 1023;
      if (wgt == 0) wgt = 1;
      adj[i * n + j] = wgt;
    }
  }
}

uint runDijkstra(int n, int source) {
  int i, k;
  for (i = 0; i < n; i++) {
    dist[i] = 0xFFFFFFF;
    visited[i] = 0;
  }
  dist[source] = 0;
  for (k = 0; k < n; k++) {
    int best = -1;
    uint bestDist = 0xFFFFFFF;
    for (i = 0; i < n; i++) {
      if (!visited[i] && dist[i] < bestDist) {
        bestDist = dist[i];
        best = i;
      }
    }
    if (best < 0) break;
    visited[best] = 1;
    for (i = 0; i < n; i++) {
      uint cand = dist[best] + adj[best * n + i];
      if (cand < dist[i]) dist[i] = cand;
    }
  }
  uint sum = 0;
  for (i = 0; i < n; i++) sum = sum + dist[i];
  return sum;
}
)";

Workload
make(const std::string &input, int n, int sources)
{
    Workload w;
    w.benchmark = "dijkstra";
    w.input = input;
    w.source = std::string(dijkstraCommon) + strprintf(R"(
int main() {
  int s;
  uint check = 0;
  rngState = 424242u;
  buildGraph(%d);
  for (s = 0; s < %d; s++)
    check = check * 17 + runDijkstra(%d, s %% %d);
  printf("dijkstra_%s=%%u\n", check);
  return (int)check;
}
)",
                                                       n, sources, n, n,
                                                       input.c_str());
    w.expectedOutput = "dijkstra_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
dijkstraWorkloads()
{
    return {
        make("large", 96, 48),
        make("small", 48, 16),
    };
}

} // namespace bsyn::workloads
