/**
 * @file
 * gsm — simplified GSM full-rate speech codec front end (MiBench telecom
 * analogue): per-frame preemphasis, autocorrelation, Schur reflection
 * coefficients and LTP lag search in saturating fixed point. large1/
 * small1 run analysis (encode side), large2/small2 add the synthesis
 * filter (decode side).
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *gsmCommon = R"(
int frame[160];
int prevFrame[160];
int acf[9];
int refc[8];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

int saturate(int x) {
  if (x > 32767) return 32767;
  if (x < -32768) return -32768;
  return x;
}

void fillFrame(int t) {
  int i;
  for (i = 0; i < 160; i++) {
    int tri = ((t + i) & 255) - 128;
    if (tri < 0) tri = -tri;
    int noise = (int)((nextRand() >> 21) & 511) - 256;
    frame[i] = saturate(tri * 90 + noise * 16 - 8192);
  }
}

void preemphasis() {
  int i;
  int prev = 0;
  for (i = 0; i < 160; i++) {
    int s = frame[i];
    frame[i] = saturate(s - ((prev * 28180) >> 15));
    prev = s;
  }
}

void autocorrelation() {
  int k, i;
  for (k = 0; k <= 8; k++) {
    int sum = 0;
    for (i = k; i < 160; i++)
      sum = sum + ((frame[i] >> 3) * (frame[i - k] >> 3) >> 6);
    acf[k] = sum;
  }
}

void schurReflection() {
  int p[9];
  int k[9];
  int i, n;
  for (i = 0; i <= 8; i++) p[i] = acf[i];
  for (n = 0; n < 8; n++) {
    int denom = p[0];
    if (denom == 0) denom = 1;
    int r = -(p[n + 1] * 256) / denom;
    if (r > 255) r = 255;
    if (r < -255) r = -255;
    refc[n] = r;
    for (i = 0; i <= 7 - n; i++) {
      int pn = p[i + n + 1];
      p[i + n + 1] = pn + ((r * p[i + n]) >> 8);
    }
  }
}

int ltpLagSearch() {
  int lag, i;
  int bestLag = 40;
  int bestScore = -2147483647;
  for (lag = 40; lag < 120; lag++) {
    int score = 0;
    for (i = 0; i < 40; i++)
      score = score + ((frame[i + 40] >> 4) * (prevFrame[(i + 160 - lag) %% 160] >> 4) >> 4);
    if (score > bestScore) { bestScore = score; bestLag = lag; }
  }
  return bestLag;
}

void synthesisFilter() {
  int i, n;
  for (i = 0; i < 160; i++) {
    int acc2 = frame[i] << 4;
    for (n = 0; n < 8; n++)
      acc2 = acc2 - ((refc[n] * (i > n ? frame[i - n - 1] : prevFrame[160 - 1 - n])) >> 8);
    frame[i] = saturate(acc2 >> 4);
  }
}
)";

Workload
make(const std::string &input, int frames, bool decode)
{
    Workload w;
    w.benchmark = "gsm";
    w.input = input;
    // The common body uses %% for the one literal modulo; rebuild it.
    std::string common = gsmCommon;
    std::string fixed;
    for (size_t i = 0; i < common.size(); ++i) {
        if (common[i] == '%' && i + 1 < common.size() &&
            common[i + 1] == '%') {
            fixed += '%';
            ++i;
        } else {
            fixed += common[i];
        }
    }
    w.source = fixed + strprintf(R"(
int main() {
  int f, i;
  uint check = 0;
  rngState = 909u;
  for (i = 0; i < 160; i++) prevFrame[i] = 0;
  for (f = 0; f < %d; f++) {
    fillFrame(f * 160);
    preemphasis();
    autocorrelation();
    schurReflection();
    int lag = ltpLagSearch();
    if (%d) {
      synthesisFilter();
      check = check * 31 + (uint)(frame[40] & 65535);
    }
    for (i = 0; i < 8; i++) check = check * 31 + (uint)(refc[i] & 1023);
    check = check * 31 + (uint)lag;
    for (i = 0; i < 160; i++) prevFrame[i] = frame[i];
  }
  printf("gsm_%s=%%u\n", check);
  return (int)check;
}
)",
                                 frames, decode ? 1 : 0, input.c_str());
    w.expectedOutput = "gsm_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
gsmWorkloads()
{
    return {
        make("large1", 60, false),
        make("large2", 60, true),
        make("small1", 12, false),
        make("small2", 12, true),
    };
}

} // namespace bsyn::workloads
