/**
 * @file
 * basicmath — cubic-equation solving, integer square roots and
 * degree/radian conversions (MiBench automotive analogue). Double-heavy
 * with Newton iterations; integer sqrt is pure bit manipulation.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *basicmathCommon = R"(
double solx1;
double solx2;
double solx3;
int nsols;

/* Newton cube root (no libm in MiniC). */
double cbrtApprox(double x) {
  int i;
  double neg = 0.0;
  if (x < 0.0) { neg = 1.0; x = -x; }
  if (x == 0.0) return 0.0;
  double guess = x;
  if (guess > 1.0) guess = x / 3.0 + 0.5;
  for (i = 0; i < 24; i++) {
    double g2 = guess * guess;
    guess = guess - (guess * g2 - x) / (3.0 * g2 + 0.000000001);
  }
  if (neg > 0.5) return -guess;
  return guess;
}

double sqrtApprox(double x) {
  int i;
  if (x <= 0.0) return 0.0;
  double guess = x * 0.5 + 0.5;
  for (i = 0; i < 20; i++)
    guess = 0.5 * (guess + x / guess);
  return guess;
}

/* Solve x^3 + a x^2 + b x + c = 0 (Cardano-style, trig-free variant
 * using iterative root polishing from a bracketing estimate). */
void solveCubic(double a, double b, double c) {
  double a3 = a / 3.0;
  double p = b - a * a3;
  double q = c + (2.0 * a * a * a - 9.0 * a * b) / 27.0;
  double disc = q * q / 4.0 + p * p * p / 27.0;
  if (disc >= 0.0) {
    double sd = sqrtApprox(disc);
    double u = cbrtApprox(-q / 2.0 + sd);
    double v = cbrtApprox(-q / 2.0 - sd);
    solx1 = u + v - a3;
    nsols = 1;
  } else {
    /* three real roots: polish three spaced starting points */
    int k;
    double start = -2.0;
    nsols = 0;
    for (k = 0; k < 3; k++) {
      double x = start + (double)k * 2.0;
      int i;
      for (i = 0; i < 30; i++) {
        double f = ((x + a) * x + b) * x + c;
        double fp = (3.0 * x + 2.0 * a) * x + b;
        if (fp < 0.000001) { if (fp > -0.000001) fp = 0.000001; }
        x = x - f / fp;
      }
      if (k == 0) solx1 = x;
      if (k == 1) solx2 = x;
      if (k == 2) solx3 = x;
      nsols = nsols + 1;
    }
  }
}

uint isqrt(uint x) {
  uint result = 0;
  uint bit = 1073741824u;
  while (bit > x) bit = bit >> 2;
  while (bit != 0) {
    if (x >= result + bit) {
      x = x - (result + bit);
      result = (result >> 1) + bit;
    } else {
      result = result >> 1;
    }
    bit = bit >> 2;
  }
  return result;
}

double deg2rad(double deg) { return deg * 3.14159265358979 / 180.0; }
double rad2deg(double rad) { return rad * 180.0 / 3.14159265358979; }
)";

Workload
make(const std::string &input, int cubics, int sqrts, int angles)
{
    Workload w;
    w.benchmark = "basicmath";
    w.input = input;
    w.source = std::string(basicmathCommon) + strprintf(R"(
int main() {
  int i;
  double acc = 0.0;
  uint ich = 0;
  for (i = 0; i < %d; i++) {
    double a = (double)(i %% 40) - 20.0;
    double b = (double)((i * 7) %% 60) - 30.0;
    double c = (double)((i * 13) %% 30) - 15.0;
    solveCubic(a, b, c);
    acc = acc + solx1;
    if (nsols > 1) acc = acc + solx2 * 0.5 + solx3 * 0.25;
  }
  for (i = 0; i < %d; i++)
    ich = ich * 3 + isqrt((uint)i * 37u + 1000u);
  for (i = 0; i < %d; i++) {
    double r = deg2rad((double)(i %% 360));
    acc = acc + rad2deg(r) * 0.001;
  }
  int scaled = (int)(acc * 100.0);
  printf("basicmath_%s=%%d_%%u\n", scaled, ich);
  return scaled;
}
)",
                                                        cubics, sqrts,
                                                        angles,
                                                        input.c_str());
    w.expectedOutput = "basicmath_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
basicmathWorkloads()
{
    return {
        make("large", 2500, 20000, 20000),
        make("small", 500, 4000, 4000),
    };
}

} // namespace bsyn::workloads
