/**
 * @file
 * Workload definitions: MiBench-analogue kernels written in MiniC, each
 * with the small/large input instances the paper evaluates (31 workload
 * instances across 13 benchmarks, matching Figure 4's x-axis).
 */

#ifndef BSYN_WORKLOADS_WORKLOAD_HH
#define BSYN_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace bsyn::workloads
{

/** One benchmark instance (benchmark + input size). */
struct Workload
{
    std::string benchmark; ///< e.g. "crc32"
    std::string input;     ///< e.g. "large"
    std::string source;    ///< MiniC/C source text

    /** Substring the program must print (correctness check). */
    std::string expectedOutput;

    /** "crc32/large" */
    std::string
    name() const
    {
        return benchmark + "/" + input;
    }
};

/** Compile a workload's source to an IR module (-O0 shape). */
ir::Module compileWorkload(const Workload &w);

// Per-benchmark instance factories (defined in one file each).
std::vector<Workload> adpcmWorkloads();
std::vector<Workload> basicmathWorkloads();
std::vector<Workload> bitcountWorkloads();
std::vector<Workload> crc32Workloads();
std::vector<Workload> dijkstraWorkloads();
std::vector<Workload> fftWorkloads();
std::vector<Workload> gsmWorkloads();
std::vector<Workload> jpegWorkloads();
std::vector<Workload> patriciaWorkloads();
std::vector<Workload> qsortWorkloads();
std::vector<Workload> shaWorkloads();
std::vector<Workload> stringsearchWorkloads();
std::vector<Workload> susanWorkloads();

} // namespace bsyn::workloads

#endif // BSYN_WORKLOADS_WORKLOAD_HH
