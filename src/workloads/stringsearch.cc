/**
 * @file
 * stringsearch — Boyer-Moore-Horspool substring search over generated
 * text (MiBench office analogue). Skip-table loads with highly variable
 * inner-loop trip counts.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *searchCommon = R"(
int text[16384];
int pat[32];
int skip[64];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

/* English-ish text over a 27-letter alphabet with word structure. */
void makeText(int n) {
  int i;
  for (i = 0; i < n; i++) {
    uint r = nextRand();
    if ((r & 7) == 0) text[i] = 26;           /* space */
    else text[i] = (int)((r >> 8) %% 26);
  }
}

void makePattern(int plen, int seedPos) {
  int i;
  for (i = 0; i < plen; i++)
    pat[i] = text[(seedPos + i) %% 16384];
}

int searchAll(int n, int plen) {
  int i, j, k;
  int found = 0;
  for (k = 0; k < 64; k++) skip[k] = plen;
  for (k = 0; k < plen - 1; k++) skip[pat[k]] = plen - 1 - k;
  i = plen - 1;
  while (i < n) {
    j = plen - 1;
    k = i;
    while (j >= 0 && text[k] == pat[j]) {
      j = j - 1;
      k = k - 1;
    }
    if (j < 0) found = found + 1;
    i = i + skip[text[i]];
  }
  return found;
}
)";

Workload
make(const std::string &input, int text_len, int patterns)
{
    Workload w;
    w.benchmark = "stringsearch";
    w.input = input;
    std::string common = searchCommon;
    std::string fixed;
    for (size_t i = 0; i < common.size(); ++i) {
        if (common[i] == '%' && i + 1 < common.size() &&
            common[i + 1] == '%') {
            fixed += '%';
            ++i;
        } else {
            fixed += common[i];
        }
    }
    w.source = fixed + strprintf(R"(
int main() {
  int p;
  uint total = 0;
  rngState = 60606u;
  makeText(%d);
  for (p = 0; p < %d; p++) {
    int plen = 3 + (p %% 14);
    makePattern(plen, p * 389);
    total = total * 31 + (uint)searchAll(%d, plen);
  }
  printf("stringsearch_%s=%%u\n", total);
  return (int)total;
}
)",
                                 text_len, patterns, text_len,
                                 input.c_str());
    w.expectedOutput = "stringsearch_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
stringsearchWorkloads()
{
    return {
        make("large", 16384, 90),
        make("small", 8192, 24),
    };
}

} // namespace bsyn::workloads
