/**
 * @file
 * jpeg — JPEG-style forward path (MiBench consumer analogue): an 8x8
 * integer DCT, quantization and zig-zag run-length accounting over a
 * procedurally generated image. Integer multiply heavy with block-local
 * memory behaviour. The paper only evaluates jpeg/large1.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *jpegCommon = R"(
int image[65536];   /* up to 256 x 256 */
int block[64];
int coef[64];
int quantTable[64];
int zigzag[64] = {
   0,  1,  8, 16,  9,  2,  3, 10,
  17, 24, 32, 25, 18, 11,  4,  5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13,  6,  7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63 };
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

void initQuant(int quality) {
  int i;
  for (i = 0; i < 64; i++) {
    int base = 16 + ((i & 7) + (i >> 3)) * 3;
    int q = (base * quality) / 50;
    if (q < 1) q = 1;
    if (q > 255) q = 255;
    quantTable[i] = q;
  }
}

void makeImage(int w, int h) {
  int x, y;
  for (y = 0; y < h; y++) {
    for (x = 0; x < w; x++) {
      int v = ((x * x + y * y) >> 3) & 255;
      v = v + (int)((nextRand() >> 24) & 31);
      image[y * w + x] = (v & 255) - 128;
    }
  }
}

/* 1-D integer DCT on 8 values (fixed point, scale 2^10). */
void dct1d(int s0, int s1, int s2, int s3, int s4, int s5, int s6, int s7) {
  /* constants: cos(k*pi/16) * 1024 */
  int c1 = 1004; int c2 = 946; int c3 = 851;
  int c4 = 724; int c5 = 569; int c6 = 392; int c7 = 200;
  coef[0] = ((s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7) * c4) >> 10;
  coef[1] = (s0*c1 + s1*c3 + s2*c5 + s3*c7 - s4*c7 - s5*c5 - s6*c3 - s7*c1) >> 10;
  coef[2] = ((s0 - s3 - s4 + s7)*c2 + (s1 - s2 - s5 + s6)*c6) >> 10;
  coef[3] = (s0*c3 - s1*c7 - s2*c1 - s3*c5 + s4*c5 + s5*c1 + s6*c7 - s7*c3) >> 10;
  coef[4] = ((s0 - s1 - s2 + s3 + s4 - s5 - s6 + s7) * c4) >> 10;
  coef[5] = (s0*c5 - s1*c1 + s2*c7 + s3*c3 - s4*c3 - s5*c7 + s6*c1 - s7*c5) >> 10;
  coef[6] = ((s0 - s3 - s4 + s7)*c6 - (s1 - s2 - s5 + s6)*c2) >> 10;
  coef[7] = (s0*c7 - s1*c5 + s2*c3 - s3*c1 + s4*c1 - s5*c3 + s6*c5 - s7*c7) >> 10;
}

uint encodeBlock8x8(int w, int bx, int by) {
  int r, c2, i;
  /* load block */
  for (r = 0; r < 8; r++)
    for (c2 = 0; c2 < 8; c2++)
      block[r * 8 + c2] = image[(by * 8 + r) * w + bx * 8 + c2];
  /* rows */
  for (r = 0; r < 8; r++) {
    int base = r * 8;
    dct1d(block[base], block[base+1], block[base+2], block[base+3],
          block[base+4], block[base+5], block[base+6], block[base+7]);
    for (i = 0; i < 8; i++) block[base + i] = coef[i];
  }
  /* columns */
  for (c2 = 0; c2 < 8; c2++) {
    dct1d(block[c2], block[c2+8], block[c2+16], block[c2+24],
          block[c2+32], block[c2+40], block[c2+48], block[c2+56]);
    for (i = 0; i < 8; i++) block[c2 + i * 8] = coef[i];
  }
  /* quantize + zig-zag run-length checksum */
  uint check = 0;
  int run = 0;
  for (i = 0; i < 64; i++) {
    int q = block[zigzag[i]] / quantTable[i];
    if (q == 0) {
      run = run + 1;
    } else {
      check = check * 31 + (uint)(q & 65535) + (uint)run;
      run = 0;
    }
  }
  return check;
}
)";

Workload
make(const std::string &input, int dim, int passes)
{
    Workload w;
    w.benchmark = "jpeg";
    w.input = input;
    w.source = std::string(jpegCommon) + strprintf(R"(
int main() {
  int p, bx, by;
  uint check = 0;
  rngState = 5150u;
  makeImage(%d, %d);
  for (p = 0; p < %d; p++) {
    initQuant(25 + p * 25);
    for (by = 0; by < %d; by++)
      for (bx = 0; bx < %d; bx++)
        check = check * 7 + encodeBlock8x8(%d, bx, by);
  }
  printf("jpeg_%s=%%u\n", check);
  return (int)check;
}
)",
                                                   dim, dim, passes,
                                                   dim / 8, dim / 8, dim,
                                                   input.c_str());
    w.expectedOutput = "jpeg_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
jpegWorkloads()
{
    return {
        make("large1", 128, 2),
    };
}

} // namespace bsyn::workloads
