/**
 * @file
 * susan — SUSAN image processing (MiBench automotive analogue): the
 * three MiBench modes map to large1/small1 smoothing, large2/small2
 * edge response and large3/small3 corner detection, all built on the
 * brightness-similarity lookup table of the original algorithm.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *susanCommon = R"(
int img[16384];    /* up to 128 x 128 */
int out[16384];
int lut[512];      /* brightness similarity, index diff+256 */
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

void makeImage(int w, int h) {
  int x, y;
  for (y = 0; y < h; y++) {
    for (x = 0; x < w; x++) {
      int v = ((x * 5) ^ (y * 3)) & 127;
      if (((x >> 4) + (y >> 4)) & 1) v = v + 96;  /* blocks -> edges */
      v = v + (int)((nextRand() >> 26) & 15);
      img[y * w + x] = v & 255;
    }
  }
}

/* exp(-(d/t)^6)-style similarity, computed in fixed point without libm:
 * s = 4096 / (1 + (d/t)^6), monotone and saturating like the original. */
void makeLut(int threshold) {
  int d;
  for (d = -256; d < 256; d++) {
    int ad = d; if (ad < 0) ad = -ad;
    int r = (ad * 64) / threshold;       /* scaled ratio */
    if (r > 100) r = 100;                /* keep r^6 inside 32 bits */
    int r2 = (r * r) >> 6;
    int r6 = (r2 * r2 >> 6) * r2 >> 6;
    lut[d + 256] = 4096 / (1 + r6);
  }
}

void smooth(int w, int h) {
  int x, y, dx, dy;
  for (y = 1; y < h - 1; y++) {
    for (x = 1; x < w - 1; x++) {
      int center = img[y * w + x];
      int num = 0;
      int den = 0;
      for (dy = -1; dy <= 1; dy++) {
        for (dx = -1; dx <= 1; dx++) {
          int pix = img[(y + dy) * w + x + dx];
          int wgt = lut[pix - center + 256];
          num = num + pix * wgt;
          den = den + wgt;
        }
      }
      if (den == 0) den = 1;
      out[y * w + x] = num / den;
    }
  }
}

/* USAN area: small area = edge/corner response. */
void usan(int w, int h, int radius) {
  int x, y, dx, dy;
  for (y = radius; y < h - radius; y++) {
    for (x = radius; x < w - radius; x++) {
      int center = img[y * w + x];
      int area = 0;
      for (dy = -radius; dy <= radius; dy++) {
        for (dx = -radius; dx <= radius; dx++) {
          int pix = img[(y + dy) * w + x + dx];
          area = area + lut[pix - center + 256];
        }
      }
      out[y * w + x] = area;
    }
  }
}

uint cornerScan(int w, int h, int radius, int geom) {
  int x, y;
  uint corners = 0;
  for (y = radius; y < h - radius; y++) {
    for (x = radius; x < w - radius; x++) {
      int area = out[y * w + x];
      if (area < geom) {
        /* local minimum check in 3x3 */
        int best = 1;
        int dy2, dx2;
        for (dy2 = -1; dy2 <= 1; dy2++)
          for (dx2 = -1; dx2 <= 1; dx2++)
            if (out[(y + dy2) * w + x + dx2] < area) best = 0;
        if (best) corners = corners + 1;
      }
    }
  }
  return corners;
}
)";

Workload
make(const std::string &input, int dim, int mode)
{
    Workload w;
    w.benchmark = "susan";
    w.input = input;
    w.source = std::string(susanCommon) + strprintf(R"(
int main() {
  int i;
  uint check = 0;
  rngState = 11211u;
  makeImage(%d, %d);
  makeLut(20);
  if (%d == 1) {
    smooth(%d, %d);
    smooth(%d, %d);
  } else if (%d == 2) {
    usan(%d, %d, 1);
  } else {
    usan(%d, %d, 2);
    check = check + cornerScan(%d, %d, 2, 60000);
  }
  for (i = 0; i < 64; i++)
    check = check * 31 + (uint)(out[i * 97 %% (%d * %d)] & 65535);
  printf("susan_%s=%%u\n", check);
  return (int)check;
}
)",
                                                    dim, dim, mode, dim,
                                                    dim, dim, dim, mode,
                                                    dim, dim, dim, dim,
                                                    dim, dim, dim, dim,
                                                    input.c_str());
    w.expectedOutput = "susan_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
susanWorkloads()
{
    return {
        make("large1", 128, 1),
        make("large2", 128, 2),
        make("large3", 128, 3),
        make("small1", 64, 1),
        make("small2", 64, 2),
        make("small3", 64, 3),
    };
}

} // namespace bsyn::workloads
