#include "workloads/suite.hh"

#include <set>

#include "gen/registry.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::workloads
{

const std::vector<Workload> &
mibenchSuite()
{
    static const std::vector<Workload> suite = [] {
        std::vector<Workload> all;
        auto add = [&](std::vector<Workload> group) {
            for (auto &w : group)
                all.push_back(std::move(w));
        };
        // Figure 4 order.
        add(adpcmWorkloads());
        add(basicmathWorkloads());
        add(bitcountWorkloads());
        add(crc32Workloads());
        add(dijkstraWorkloads());
        add(fftWorkloads());
        add(gsmWorkloads());
        add(jpegWorkloads());
        add(patriciaWorkloads());
        add(qsortWorkloads());
        add(shaWorkloads());
        add(stringsearchWorkloads());
        add(susanWorkloads());
        return all;
    }();
    return suite;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto &w : mibenchSuite())
        if (w.name() == name)
            return w;

    // Not a suite instance: a registered generator family resolves on
    // demand ("pointer_chase/nodes=1024,seed=3" instantiates through
    // gen::Registry and is interned for the process lifetime).
    if (const Workload *generated = gen::findGenerated(name))
        return *generated;

    std::vector<std::string> instances;
    for (const auto &w : mibenchSuite())
        instances.push_back(w.name());
    fatal("unknown workload '%s'\n"
          "  suite instances: %s\n"
          "  generator families (as family/knob=value,...,seed=S): %s",
          name.c_str(), join(instances, ", ").c_str(),
          join(gen::Registry::global().names(), ", ").c_str());
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    std::set<std::string> seen;
    for (const auto &w : mibenchSuite()) {
        if (seen.insert(w.benchmark).second)
            names.push_back(w.benchmark);
    }
    return names;
}

} // namespace bsyn::workloads
