/**
 * @file
 * adpcm — IMA ADPCM codec (MiBench telecom analogue). large1/small1
 * encode a synthetic speech-like waveform; large2/small2 decode the
 * encoded stream back. Fixed-point, branchy, table-driven — the most
 * branch-predictor-sensitive benchmark in the paper's Figure 9.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

// Shared tables + waveform generator + encoder/decoder core.
const char *adpcmCommon = R"(
int indexTable[16] = { -1, -1, -1, -1, 2, 4, 6, 8,
                       -1, -1, -1, -1, 2, 4, 6, 8 };
int stepsizeTable[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767 };

int pcm[4096];
int code[4096];
int decoded[4096];
uint waveState;

/* Synthetic speech-ish waveform: sum of two integer oscillators plus
 * pseudo-random noise. */
int nextSample(int t) {
  waveState = waveState * 1103515245 + 12345;
  int noise = (int)((waveState >> 20) & 255) - 128;
  int tri = (t & 511) - 256;
  if (tri < 0) tri = -tri;
  int saw = (t * 37) & 1023;
  return tri * 40 + saw * 8 + noise * 6 - 16384;
}

int valpred;
int indexv;

void encodeBlock(int n) {
  int i;
  valpred = 0;
  indexv = 0;
  for (i = 0; i < n; i++) {
    int val = pcm[i];
    int step = stepsizeTable[indexv];
    int diff = val - valpred;
    int sign = 0;
    if (diff < 0) { sign = 8; diff = -diff; }
    int delta = 0;
    int vpdiff = step >> 3;
    if (diff >= step) { delta = 4; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta | 2; diff = diff - step; vpdiff = vpdiff + step; }
    step = step >> 1;
    if (diff >= step) { delta = delta | 1; vpdiff = vpdiff + step; }
    if (sign) valpred = valpred - vpdiff;
    else valpred = valpred + vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    delta = delta | sign;
    indexv = indexv + indexTable[delta];
    if (indexv < 0) indexv = 0;
    if (indexv > 88) indexv = 88;
    code[i] = delta;
  }
}

void decodeBlock(int n) {
  int i;
  valpred = 0;
  indexv = 0;
  for (i = 0; i < n; i++) {
    int delta = code[i];
    int step = stepsizeTable[indexv];
    indexv = indexv + indexTable[delta];
    if (indexv < 0) indexv = 0;
    if (indexv > 88) indexv = 88;
    int sign = delta & 8;
    delta = delta & 7;
    int vpdiff = step >> 3;
    if (delta & 4) vpdiff = vpdiff + step;
    if (delta & 2) vpdiff = vpdiff + (step >> 1);
    if (delta & 1) vpdiff = vpdiff + (step >> 2);
    if (sign) valpred = valpred - vpdiff;
    else valpred = valpred + vpdiff;
    if (valpred > 32767) valpred = 32767;
    else if (valpred < -32768) valpred = -32768;
    decoded[i] = valpred;
  }
}
)";

Workload
make(const std::string &input, int blocks, bool decode)
{
    Workload w;
    w.benchmark = "adpcm";
    w.input = input;
    std::string main_body = strprintf(R"(
int main() {
  int b, i;
  uint check = 0;
  int t = 0;
  waveState = 1u;
  for (b = 0; b < %d; b++) {
    for (i = 0; i < 1024; i++) { pcm[i] = nextSample(t); t++; }
    encodeBlock(1024);
    if (%d) {
      decodeBlock(1024);
      for (i = 0; i < 1024; i++)
        check = check * 31 + (uint)(decoded[i] & 65535);
    } else {
      for (i = 0; i < 1024; i++)
        check = check * 31 + (uint)code[i];
    }
  }
  printf("adpcm_%s=%%u\n", check);
  return (int)check;
}
)",
                                      blocks, decode ? 1 : 0,
                                      input.c_str());
    w.source = std::string(adpcmCommon) + main_body;
    w.expectedOutput = "adpcm_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
adpcmWorkloads()
{
    return {
        make("large1", 40, false), // encode, large input
        make("large2", 40, true),  // encode+decode, large input
        make("small1", 8, false),
        make("small2", 8, true),
    };
}

} // namespace bsyn::workloads
