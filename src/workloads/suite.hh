/**
 * @file
 * The full MiBench-analogue suite (31 instances), mirroring the
 * benchmark/input list of the paper's Figure 4.
 */

#ifndef BSYN_WORKLOADS_SUITE_HH
#define BSYN_WORKLOADS_SUITE_HH

#include "workloads/workload.hh"

namespace bsyn::workloads
{

/** Every workload instance, in the paper's Figure 4 order. */
const std::vector<Workload> &mibenchSuite();

/** Look up an instance by "benchmark/input" name. Names whose prefix
 *  is a registered generator family ("pointer_chase/nodes=1024,seed=3")
 *  are instantiated on demand through gen::Registry. fatal() on a
 *  miss, listing every suite instance and registered family. */
const Workload &findWorkload(const std::string &name);

/** Distinct benchmark names in suite order. */
std::vector<std::string> benchmarkNames();

} // namespace bsyn::workloads

#endif // BSYN_WORKLOADS_SUITE_HH
