/**
 * @file
 * bitcount — four bit-counting strategies over a pseudo-random stream
 * (MiBench automotive analogue): iterated shift, Kernighan sparse,
 * nibble lookup table and SWAR parallel reduction.
 */

#include "workloads/workload.hh"

#include "support/string_util.hh"

namespace bsyn::workloads
{

namespace
{

const char *bitcountCommon = R"(
uint nibbleBits[16];
uint rngState;

void initTables() {
  int i, j;
  for (i = 0; i < 16; i++) {
    uint n = 0;
    for (j = 0; j < 4; j++)
      if (i & (1 << j)) n = n + 1;
    nibbleBits[i] = n;
  }
}

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

uint countShift(uint x) {
  uint n = 0;
  while (x != 0) {
    n = n + (x & 1);
    x = x >> 1;
  }
  return n;
}

uint countSparse(uint x) {
  uint n = 0;
  while (x != 0) {
    x = x & (x - 1);
    n = n + 1;
  }
  return n;
}

uint countNibble(uint x) {
  uint n = 0;
  while (x != 0) {
    n = n + nibbleBits[x & 15];
    x = x >> 4;
  }
  return n;
}

uint countParallel(uint x) {
  x = (x & 0x55555555) + ((x >> 1) & 0x55555555);
  x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
  x = (x & 0x0F0F0F0F) + ((x >> 4) & 0x0F0F0F0F);
  x = (x & 0x00FF00FF) + ((x >> 8) & 0x00FF00FF);
  x = (x & 0x0000FFFF) + (x >> 16);
  return x;
}
)";

Workload
make(const std::string &input, int iterations)
{
    Workload w;
    w.benchmark = "bitcount";
    w.input = input;
    w.source = std::string(bitcountCommon) + strprintf(R"(
int main() {
  int i;
  uint total = 0;
  initTables();
  rngState = 12345u;
  for (i = 0; i < %d; i++) {
    uint x = nextRand();
    total = total + countShift(x);
    total = total + countSparse(x);
    total = total + countNibble(x);
    total = total + countParallel(x);
  }
  printf("bitcount_%s=%%u\n", total);
  return (int)total;
}
)",
                                                       iterations,
                                                       input.c_str());
    w.expectedOutput = "bitcount_" + input + "=";
    return w;
}

} // namespace

std::vector<Workload>
bitcountWorkloads()
{
    return {
        make("large", 9000),
        make("small", 1800),
    };
}

} // namespace bsyn::workloads
