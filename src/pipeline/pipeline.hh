/**
 * @file
 * End-to-end convenience layer tying the whole framework together:
 * compile a workload at an optimization level, lower it for a target,
 * execute/profile it, synthesize its clone, and recompile the clone —
 * the exact flow of the paper's Figure 1, used by every experiment
 * harness, example and integration test.
 */

#ifndef BSYN_PIPELINE_PIPELINE_HH
#define BSYN_PIPELINE_PIPELINE_HH

#include <string>

#include "opt/pipeline.hh"
#include "profile/profiler.hh"
#include "sim/machine.hh"
#include "synth/synthesizer.hh"
#include "workloads/suite.hh"

namespace bsyn::pipeline
{

/** Compile source at a level (optionally scheduling for in-order). */
ir::Module compileSource(const std::string &source, const std::string &name,
                         opt::OptLevel level,
                         bool schedule_for_in_order = false);

/** Compile + lower + execute; @return functional execution stats. */
sim::ExecStats runSource(const std::string &source, const std::string &name,
                         opt::OptLevel level, const isa::TargetInfo &target);

/** Dynamic instruction count of a source at O0/x86 (calibration). */
uint64_t measureInstructions(const std::string &source);

/** One fully processed workload: profile + synthetic clone. */
struct WorkloadRun
{
    workloads::Workload workload;
    profile::StatisticalProfile profile; ///< measured at -O0
    synth::SyntheticBenchmark synthetic;
};

/** Profile @p w at -O0 and synthesize its clone. */
WorkloadRun processWorkload(const workloads::Workload &w,
                            const synth::SynthesisOptions &opts = {});

/** Default synthesis options used across the evaluation (fixed seed,
 *  paper-equivalent instruction budget). */
synth::SynthesisOptions defaultSynthesisOptions();

/**
 * Compile source for a machine (its ISA decides scheduling) at a level
 * and run the timing model. @return timing stats.
 */
sim::TimingStats timeOnMachine(const std::string &source,
                               const std::string &name,
                               opt::OptLevel level,
                               const sim::MachineSpec &machine);

} // namespace bsyn::pipeline

#endif // BSYN_PIPELINE_PIPELINE_HH
