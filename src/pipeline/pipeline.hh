/**
 * @file
 * End-to-end convenience layer tying the whole framework together:
 * compile a workload at an optimization level, lower it for a target,
 * execute/profile it, synthesize its clone, and recompile the clone —
 * the exact flow of the paper's Figure 1.
 *
 * The stage-oriented entry point is pipeline::Session (session.hh),
 * which adds a content-addressed artifact cache and streaming RunSink
 * delivery; the free functions here are single-shot conveniences and
 * compatibility shims over it.
 */

#ifndef BSYN_PIPELINE_PIPELINE_HH
#define BSYN_PIPELINE_PIPELINE_HH

#include <functional>
#include <string>
#include <vector>

#include "opt/pipeline.hh"
#include "profile/profiler.hh"
#include "sim/machine.hh"
#include "support/thread_pool.hh"
#include "synth/synthesizer.hh"
#include "workloads/suite.hh"

namespace bsyn::pipeline
{

/** Compile source at a level (optionally scheduling for in-order). */
ir::Module compileSource(const std::string &source, const std::string &name,
                         opt::OptLevel level,
                         bool schedule_for_in_order = false);

/** Compile + lower + execute; @return functional execution stats. */
sim::ExecStats runSource(const std::string &source, const std::string &name,
                         opt::OptLevel level, const isa::TargetInfo &target);

/** Dynamic instruction count of a source at O0/x86 (calibration). */
uint64_t measureInstructions(const std::string &source);

/** One fully processed workload: profile + synthetic clone. */
struct WorkloadRun
{
    workloads::Workload workload;
    profile::StatisticalProfile profile; ///< measured at -O0
    synth::SyntheticBenchmark synthetic;
};

/** Profile @p w at -O0 and synthesize its clone. */
WorkloadRun processWorkload(const workloads::Workload &w,
                            const synth::SynthesisOptions &opts = {});

/** Default synthesis options used across the evaluation (fixed seed,
 *  paper-equivalent instruction budget). */
synth::SynthesisOptions defaultSynthesisOptions();

/**
 * Derive the synthesis seed for one workload of a batch from the batch
 * base seed and the workload's name. Depends on nothing else — not on
 * suite order, thread count or scheduling — so a batch run reproduces
 * byte-identical clones no matter how it is parallelized, while each
 * workload still draws from its own RNG stream.
 */
uint64_t deriveWorkloadSeed(uint64_t baseSeed, const std::string &name);

/** Options controlling a whole-suite batch run. */
struct SuiteOptions
{
    /** Synthesis configuration; its seed is the batch *base* seed that
     *  deriveWorkloadSeed() specializes per workload. */
    synth::SynthesisOptions synthesis;

    /** Worker threads: 0 = one per hardware thread, 1 = sequential.
     *  Ignored when @ref pool is set. */
    unsigned threads = 0;

    /** Run on this existing pool instead of creating a fresh one —
     *  lets harnesses that batch repeatedly share one set of workers.
     *  Not owned; must outlive the processSuite() call. */
    ThreadPool *pool = nullptr;

    /** Optional completion hook, invoked once per workload as it
     *  finishes. Called from worker threads (concurrently, out of
     *  order); synchronize inside if needed. */
    std::function<void(const WorkloadRun &)> progress;

    SuiteOptions();
};

/** Resolve a requested worker count for a batch of @p suiteSize jobs:
 *  0 means one per hardware thread; the result is clamped to the batch
 *  size so a wide pool never idles on a narrow suite. */
unsigned resolveSuiteThreads(unsigned requested, size_t suiteSize);

/**
 * Profile + synthesize every workload in @p suite, fanning
 * processWorkload() across a work-stealing thread pool. Results come
 * back in suite order and are byte-identical to a sequential
 * (threads = 1) run of the same batch. Convenience shim over
 * Session::processSuite() — use a Session directly for caching,
 * streaming sinks, or per-workload failure isolation.
 */
std::vector<WorkloadRun>
processSuite(const std::vector<workloads::Workload> &suite,
             const SuiteOptions &opts = {});

/** Batch-process the full MiBench-analogue suite. */
std::vector<WorkloadRun> processSuite(const SuiteOptions &opts = {});

/**
 * Compile source for a machine (its ISA decides scheduling) at a level
 * and run the timing model. @return timing stats.
 */
sim::TimingStats timeOnMachine(const std::string &source,
                               const std::string &name,
                               opt::OptLevel level,
                               const sim::MachineSpec &machine);

/** Timing of one source cut at normalized execution points. */
struct PhasedTiming
{
    sim::TimingStats stats; ///< whole-run timing (identical to
                            ///< timeOnMachine over the same source)

    /** Absolute retired-instruction boundary for each requested cut
     *  (cut fraction scaled by the run's instruction count). */
    std::vector<uint64_t> cutInstructions;

    /** Cycle count at each boundary; parallel to cutInstructions. */
    std::vector<uint64_t> cutCycles;
};

/**
 * Compile source for a machine and run the timing model with cycle
 * checkpoints at the given normalized execution fractions (0 < f < 1,
 * strictly increasing). The segment between consecutive cuts yields a
 * per-interval CPI — the fidelity report uses this to score clone CPI
 * per detected phase of the original. Checkpoints do not perturb the
 * timing result.
 */
PhasedTiming timeOnMachinePhased(const std::string &source,
                                 const std::string &name,
                                 opt::OptLevel level,
                                 const sim::MachineSpec &machine,
                                 const std::vector<double> &cuts);

} // namespace bsyn::pipeline

#endif // BSYN_PIPELINE_PIPELINE_HH
