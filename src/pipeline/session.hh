/**
 * @file
 * pipeline::Session — the stage-oriented entry point to the paper's
 * Figure-1 flow. A Session owns the worker thread pool and a
 * content-addressed ArtifactCache, and exposes each stage (compile,
 * profile, synthesize, process, processSuite) as a first-class call so
 * any prefix of the flow can be reused or resumed: a warm cache makes a
 * suite re-run skip every profile and synthesis while producing
 * byte-identical output, and batch results stream into a RunSink
 * instead of accumulating in memory.
 */

#ifndef BSYN_PIPELINE_SESSION_HH
#define BSYN_PIPELINE_SESSION_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "pipeline/artifact_cache.hh"
#include "pipeline/pipeline.hh"
#include "pipeline/run_sink.hh"
#include "profile/profiler.hh"

namespace bsyn::pipeline
{

/** Configuration for a Session. */
struct SessionOptions
{
    /** Artifact cache directory; empty disables disk caching. */
    std::string cacheDir;

    /** Worker threads for batch stages: 0 = one per hardware thread.
     *  Ignored when @ref pool is set. The pool is created lazily, so a
     *  session used only for single-workload stages spawns no threads. */
    unsigned threads = 0;

    /** Run batches on this existing pool instead of owning one. Not
     *  owned; must outlive the Session. */
    ThreadPool *pool = nullptr;

    /** Synthesis configuration used when a call does not pass its own;
     *  its seed is the batch *base* seed that deriveWorkloadSeed()
     *  specializes per workload. */
    synth::SynthesisOptions synthesis;

    /** Profiling configuration (slice interval, checkpoint budget,
     *  phase threshold). Part of the profile cache fingerprint. */
    bsyn::profile::ProfileOptions profiling;

    /** Registry the session's scoped metrics chain into (and through
     *  it, transitively, into obs::Registry::global()). Null means the
     *  global registry directly. Not owned; must outlive the Session.
     *  A serve::Worker passes its own registry here so one scrape of
     *  the worker sees its session's cache traffic too. */
    obs::Registry *metricsParent = nullptr;

    SessionOptions();
};

/** Snapshot of a session's cache-hit counters (per stage). Since the
 *  observability layer landed this is a *view* over the session's
 *  named metrics ("pipeline.cache.*" in the session's scoped
 *  obs::Registry) — the counters themselves live in the registry and
 *  also aggregate process-wide through the parent chain. */
struct CacheStats
{
    uint64_t profileHits = 0;
    uint64_t profileMisses = 0;
    uint64_t synthHits = 0;
    uint64_t synthMisses = 0;

    /** In-memory decoded-program cache for calibration measurements;
     *  tracked separately from the on-disk artifact counters (hits()
     *  and misses() describe artifact-cache traffic only). */
    uint64_t decodeHits = 0;
    uint64_t decodeMisses = 0;

    uint64_t hits() const { return profileHits + synthHits; }
    uint64_t misses() const { return profileMisses + synthMisses; }
};

/**
 * A pipeline session: stage entry points plus the shared state — thread
 * pool, artifact cache, hit/miss counters — that lets stages compose
 * and repeated runs reuse earlier work. Stage calls are thread-safe and
 * may be issued from the session's own pool workers (the batch path
 * does exactly that).
 */
class Session
{
  public:
    explicit Session(SessionOptions opts = SessionOptions());
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    // ------------------------------------------------------------ stages

    /** Compile source at a level (optionally scheduling for in-order).
     *  Never cached: IR modules are cheap and not serializable. */
    ir::Module compile(const std::string &source, const std::string &name,
                       opt::OptLevel level,
                       bool schedule_for_in_order = false) const;

    /** Profile @p source at -O0 (cached by source content + name).
     *  @p cached, when non-null, reports whether the cache served it. */
    bsyn::profile::StatisticalProfile
    profile(const std::string &source, const std::string &name,
            bool *cached = nullptr);

    /** Profile a suite workload (cached). */
    bsyn::profile::StatisticalProfile
    profile(const workloads::Workload &w, bool *cached = nullptr);

    /** Synthesize a clone of @p prof (cached by profile content +
     *  options). Calibration runs only on a cache miss. */
    synth::SyntheticBenchmark
    synthesize(const bsyn::profile::StatisticalProfile &prof,
               const synth::SynthesisOptions &opts, bool *cached = nullptr);

    /** Synthesize with the session's default synthesis options. */
    synth::SyntheticBenchmark
    synthesize(const bsyn::profile::StatisticalProfile &prof);

    /** Profile + synthesize one workload with explicit options (the
     *  seed is used as-is; batch seed derivation happens in
     *  processSuite). @p st, when non-null, receives stage provenance. */
    WorkloadRun process(const workloads::Workload &w,
                        const synth::SynthesisOptions &opts,
                        RunStatus *st = nullptr);

    /** Profile + synthesize with the session's default options. */
    WorkloadRun process(const workloads::Workload &w);

    /**
     * Dynamic instruction count of @p source at O0/x86 — the
     * calibration measurement. The compiled, lowered and predecoded
     * program is memoized by source content, so re-measuring an
     * unchanged candidate (across calibration rounds, workloads or
     * repeated synthesize() calls in one session) costs one predecoded
     * execution and nothing else.
     */
    uint64_t measureInstructions(const std::string &source);

    // ----------------------------------------------------------- batches

    /**
     * Profile + synthesize every workload of @p suite, fanned across
     * the session pool, streaming each finished run into @p sink.
     * Per-workload seeds derive from @p base's seed and the workload
     * name, so results are byte-identical for any thread count and for
     * cold vs. warm cache. A workload failure is reported as a !ok
     * RunStatus (on the sink and in the returned vector, which is in
     * suite order) and never aborts the rest of the batch.
     */
    std::vector<RunStatus>
    processSuite(const std::vector<workloads::Workload> &suite,
                 RunSink &sink, const synth::SynthesisOptions &base);

    /** Batch with the session's default synthesis options. */
    std::vector<RunStatus>
    processSuite(const std::vector<workloads::Workload> &suite,
                 RunSink &sink);

    /** Convenience batch: collect to a vector in suite order. Strict —
     *  rethrows the first per-workload failure as FatalError. */
    std::vector<WorkloadRun>
    processSuite(const std::vector<workloads::Workload> &suite);

    /** Batch-process the full MiBench-analogue suite (strict). */
    std::vector<WorkloadRun> processSuite();

    /** Run fn(0)..fn(n-1) on the session pool (barrier at the end) —
     *  lets harnesses fan their own per-run measurement loops out with
     *  the same workers the batch stages use. */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    // ------------------------------------------------------------- state

    /** The session's worker pool (created on first use). */
    ThreadPool &pool();

    ArtifactCache &cache() { return cache_; }
    const SessionOptions &options() const { return options_; }

    /** Per-stage cache hit/miss counters since construction. */
    CacheStats cacheStats() const;

    /** The session's scoped metrics registry ("pipeline.cache.*",
     *  "pipeline.suite.*", this session's thread-pool metrics). */
    obs::Registry &metrics() { return metrics_; }

  private:
    /** A measurement program: the lowered MachineProgram plus its
     *  predecoded form (which points back into the program, so entries
     *  are heap-pinned behind shared_ptr and never moved). */
    struct DecodedMeasure;

    std::shared_ptr<const DecodedMeasure>
    decodeForMeasure(const std::string &source);

    SessionOptions options_;
    ArtifactCache cache_;

    std::mutex poolMtx_; ///< guards lazy pool creation
    std::unique_ptr<ThreadPool> ownedPool_;

    std::mutex decodeMtx_; ///< guards the decoded-measurement cache
    std::unordered_map<std::string, std::shared_ptr<const DecodedMeasure>>
        decodeCache_; ///< keyed by SHA-256 of the source

    /** Session-scoped metric namespace; every update also flows into
     *  the parent chain (ultimately obs::Registry::global()). */
    obs::Registry metrics_;

    // Named-counter handles (stable for the registry's lifetime).
    obs::Counter &profileHits_;
    obs::Counter &profileMisses_;
    obs::Counter &synthHits_;
    obs::Counter &synthMisses_;
    obs::Counter &decodeHits_;
    obs::Counter &decodeMisses_;
};

} // namespace bsyn::pipeline

#endif // BSYN_PIPELINE_SESSION_HH
