#include "pipeline/pipeline.hh"

#include <algorithm>
#include <memory>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "support/error.hh"

namespace bsyn::pipeline
{

ir::Module
compileSource(const std::string &source, const std::string &name,
              opt::OptLevel level, bool schedule_for_in_order)
{
    ir::Module mod = lang::compile(source, name);
    opt::OptOptions oo;
    oo.scheduleForInOrder = schedule_for_in_order;
    opt::optimize(mod, level, oo);
    return mod;
}

sim::ExecStats
runSource(const std::string &source, const std::string &name,
          opt::OptLevel level, const isa::TargetInfo &target)
{
    bool in_order = target.family == isa::IsaFamily::Risc;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, target);
    return sim::execute(prog);
}

uint64_t
measureInstructions(const std::string &source)
{
    ir::Module mod = lang::compile(source, "measure");
    isa::MachineProgram prog = isa::lower(mod, isa::targetX86());
    return sim::execute(prog).instructions;
}

synth::SynthesisOptions
defaultSynthesisOptions()
{
    synth::SynthesisOptions opts;
    opts.seed = 0xb5e9c0de;
    opts.targetInstructions = 120000; // paper's 10M, scaled to suite size
    opts.calibrationRounds = 2;
    return opts;
}

WorkloadRun
processWorkload(const workloads::Workload &w,
                const synth::SynthesisOptions &opts)
{
    WorkloadRun run;
    run.workload = w;
    ir::Module mod = workloads::compileWorkload(w); // -O0 shape
    run.profile = profile::profileModule(mod);
    run.synthetic =
        synth::synthesize(run.profile, opts, &measureInstructions);
    return run;
}

uint64_t
deriveWorkloadSeed(uint64_t baseSeed, const std::string &name)
{
    // FNV-1a over the name, folded into the base seed and finished with
    // a splitmix64 round. Pure arithmetic on fixed-width integers, so
    // the derivation is identical across platforms and runs.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    uint64_t z = baseSeed ^ h;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SuiteOptions::SuiteOptions() : synthesis(defaultSynthesisOptions()) {}

unsigned
resolveSuiteThreads(unsigned requested, size_t suiteSize)
{
    unsigned threads =
        requested ? requested : ThreadPool::hardwareThreads();
    return static_cast<unsigned>(
        std::min<size_t>(threads, std::max<size_t>(suiteSize, 1)));
}

std::vector<WorkloadRun>
processSuite(const std::vector<workloads::Workload> &suite,
             const SuiteOptions &opts)
{
    // Compatibility shim over the Session API: cache-less session,
    // collect sink, strict failure semantics (first error rethrown).
    SessionOptions so;
    so.pool = opts.pool;
    if (!opts.pool)
        so.threads = resolveSuiteThreads(opts.threads, suite.size());
    so.synthesis = opts.synthesis;
    Session session(so);

    CollectSink collect;
    CallbackSink progress([&](const RunStatus &st, const WorkloadRun &r) {
        if (st.ok && opts.progress)
            opts.progress(r);
    });
    std::vector<RunSink *> sinks{&progress, &collect};
    TeeSink tee(sinks);
    auto statuses = session.processSuite(suite, tee, opts.synthesis);
    for (const auto &st : statuses)
        if (!st.ok)
            fatal("workload %s failed: %s", st.workload.c_str(),
                  st.error.c_str());
    return collect.takeRuns();
}

std::vector<WorkloadRun>
processSuite(const SuiteOptions &opts)
{
    return processSuite(workloads::mibenchSuite(), opts);
}

sim::TimingStats
timeOnMachine(const std::string &source, const std::string &name,
              opt::OptLevel level, const sim::MachineSpec &machine)
{
    bool in_order = machine.core.inOrder;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, machine.isa);
    return sim::simulateTiming(prog, machine.core);
}

} // namespace bsyn::pipeline
