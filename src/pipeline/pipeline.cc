#include "pipeline/pipeline.hh"

#include "isa/lowering.hh"
#include "lang/frontend.hh"

namespace bsyn::pipeline
{

ir::Module
compileSource(const std::string &source, const std::string &name,
              opt::OptLevel level, bool schedule_for_in_order)
{
    ir::Module mod = lang::compile(source, name);
    opt::OptOptions oo;
    oo.scheduleForInOrder = schedule_for_in_order;
    opt::optimize(mod, level, oo);
    return mod;
}

sim::ExecStats
runSource(const std::string &source, const std::string &name,
          opt::OptLevel level, const isa::TargetInfo &target)
{
    bool in_order = target.family == isa::IsaFamily::Risc;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, target);
    return sim::execute(prog);
}

uint64_t
measureInstructions(const std::string &source)
{
    ir::Module mod = lang::compile(source, "measure");
    isa::MachineProgram prog = isa::lower(mod, isa::targetX86());
    return sim::execute(prog).instructions;
}

synth::SynthesisOptions
defaultSynthesisOptions()
{
    synth::SynthesisOptions opts;
    opts.seed = 0xb5e9c0de;
    opts.targetInstructions = 120000; // paper's 10M, scaled to suite size
    opts.calibrationRounds = 2;
    return opts;
}

WorkloadRun
processWorkload(const workloads::Workload &w,
                const synth::SynthesisOptions &opts)
{
    WorkloadRun run;
    run.workload = w;
    ir::Module mod = workloads::compileWorkload(w); // -O0 shape
    run.profile = profile::profileModule(mod);
    run.synthetic =
        synth::synthesize(run.profile, opts, &measureInstructions);
    return run;
}

sim::TimingStats
timeOnMachine(const std::string &source, const std::string &name,
              opt::OptLevel level, const sim::MachineSpec &machine)
{
    bool in_order = machine.core.inOrder;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, machine.isa);
    return sim::simulateTiming(prog, machine.core);
}

} // namespace bsyn::pipeline
