#include "pipeline/pipeline.hh"

#include <algorithm>
#include <memory>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "obs/trace.hh"
#include "pipeline/run_sink.hh"
#include "pipeline/session.hh"
#include "sim/core_model.hh"
#include "sim/decoded_program.hh"
#include "support/error.hh"

namespace bsyn::pipeline
{

ir::Module
compileSource(const std::string &source, const std::string &name,
              opt::OptLevel level, bool schedule_for_in_order)
{
    ir::Module mod = lang::compile(source, name);
    opt::OptOptions oo;
    oo.scheduleForInOrder = schedule_for_in_order;
    opt::optimize(mod, level, oo);
    return mod;
}

sim::ExecStats
runSource(const std::string &source, const std::string &name,
          opt::OptLevel level, const isa::TargetInfo &target)
{
    bool in_order = target.family == isa::IsaFamily::Risc;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, target);
    return sim::execute(prog);
}

uint64_t
measureInstructions(const std::string &source)
{
    ir::Module mod = lang::compile(source, "measure");
    isa::MachineProgram prog = isa::lower(mod, isa::targetX86());
    return sim::execute(prog).instructions;
}

synth::SynthesisOptions
defaultSynthesisOptions()
{
    synth::SynthesisOptions opts;
    opts.seed = 0xb5e9c0de;
    opts.targetInstructions = 120000; // paper's 10M, scaled to suite size
    opts.calibrationRounds = 2;
    return opts;
}

WorkloadRun
processWorkload(const workloads::Workload &w,
                const synth::SynthesisOptions &opts)
{
    WorkloadRun run;
    run.workload = w;
    ir::Module mod = workloads::compileWorkload(w); // -O0 shape
    run.profile = profile::profileModule(mod);
    run.synthetic =
        synth::synthesize(run.profile, opts, &measureInstructions);
    return run;
}

uint64_t
deriveWorkloadSeed(uint64_t baseSeed, const std::string &name)
{
    // FNV-1a over the name, folded into the base seed and finished with
    // a splitmix64 round. Pure arithmetic on fixed-width integers, so
    // the derivation is identical across platforms and runs.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    uint64_t z = baseSeed ^ h;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SuiteOptions::SuiteOptions() : synthesis(defaultSynthesisOptions()) {}

unsigned
resolveSuiteThreads(unsigned requested, size_t suiteSize)
{
    unsigned threads =
        requested ? requested : ThreadPool::hardwareThreads();
    return static_cast<unsigned>(
        std::min<size_t>(threads, std::max<size_t>(suiteSize, 1)));
}

std::vector<WorkloadRun>
processSuite(const std::vector<workloads::Workload> &suite,
             const SuiteOptions &opts)
{
    // Compatibility shim over the Session API: cache-less session,
    // collect sink, strict failure semantics (first error rethrown).
    SessionOptions so;
    so.pool = opts.pool;
    if (!opts.pool)
        so.threads = resolveSuiteThreads(opts.threads, suite.size());
    so.synthesis = opts.synthesis;
    Session session(so);

    CollectSink collect;
    CallbackSink progress([&](const RunStatus &st, const WorkloadRun &r) {
        if (st.ok && opts.progress)
            opts.progress(r);
    });
    std::vector<RunSink *> sinks{&progress, &collect};
    TeeSink tee(sinks);
    auto statuses = session.processSuite(suite, tee, opts.synthesis);
    for (const auto &st : statuses)
        if (!st.ok)
            fatal("workload %s failed: %s", st.workload.c_str(),
                  st.error.c_str());
    return collect.takeRuns();
}

std::vector<WorkloadRun>
processSuite(const SuiteOptions &opts)
{
    return processSuite(workloads::mibenchSuite(), opts);
}

sim::TimingStats
timeOnMachine(const std::string &source, const std::string &name,
              opt::OptLevel level, const sim::MachineSpec &machine)
{
    obs::Span span("timing", "workload", name);
    span.arg("machine", machine.name);
    bool in_order = machine.core.inOrder;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, machine.isa);
    return sim::simulateTiming(prog, machine.core);
}

PhasedTiming
timeOnMachinePhased(const std::string &source, const std::string &name,
                    opt::OptLevel level,
                    const sim::MachineSpec &machine,
                    const std::vector<double> &cuts)
{
    obs::Span span("timing", "workload", name);
    span.arg("machine", machine.name);
    bool in_order = machine.core.inOrder;
    ir::Module mod = compileSource(source, name, level, in_order);
    isa::MachineProgram prog = isa::lower(mod, machine.isa);
    sim::DecodedProgram decoded(prog);

    // The cut fractions are relative to the run's retired-instruction
    // count, which the timing model only knows after the fact — one
    // fast-path run (cheap next to the timed run) resolves them to
    // absolute boundaries.
    uint64_t total = sim::execute(decoded).instructions;
    PhasedTiming out;
    uint64_t prev = 0;
    for (double f : cuts) {
        auto b = static_cast<uint64_t>(f * static_cast<double>(total));
        // Clamp to the run's interior and keep boundaries strictly
        // increasing even when adjacent fractions round together.
        b = std::min(std::max<uint64_t>(b, prev + 1),
                     total > 1 ? total - 1 : 1);
        if (b <= prev)
            break;
        out.cutInstructions.push_back(b);
        prev = b;
    }

    auto phased = sim::simulateTimingPhased(decoded, machine.core,
                                            out.cutInstructions);
    out.stats = phased.stats;
    out.cutCycles = std::move(phased.checkpointCycles);
    // A boundary past the run's end never fires; truncate the request
    // list to the checkpoints actually taken so the two stay parallel.
    if (out.cutCycles.size() < out.cutInstructions.size())
        out.cutInstructions.resize(out.cutCycles.size());
    return out;
}

} // namespace bsyn::pipeline
