#include "pipeline/session.hh"

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "obs/trace.hh"
#include "sim/decoded_program.hh"
#include "support/error.hh"
#include "support/hash.hh"
#include "support/json.hh"
#include "support/string_util.hh"

namespace bsyn::pipeline
{

namespace
{

/** Every synthesis knob that influences the generated clone, rendered
 *  as a stable string for the cache key. Adding an option field without
 *  extending this fingerprint would serve stale clones — keep in sync
 *  with synth::SynthesisOptions. */
std::string
synthesisFingerprint(const synth::SynthesisOptions &o)
{
    return strprintf(
        "seed=%llu;R=%llu;target=%llu;cal=%d;"
        "phaseAware=%d;maxPhases=%d;"
        "maxFuncs=%d;loopInfo=%d;cold=%.17g;hot=%.17g;"
        "stream=%llu;minPeriod=%d;maxPeriod=%d;"
        "maxOps=%d;intTemps=%d;fpTemps=%d;patterns=%d",
        static_cast<unsigned long long>(o.seed),
        static_cast<unsigned long long>(o.reductionFactor),
        static_cast<unsigned long long>(o.targetInstructions),
        o.calibrationRounds, int(o.phaseAware), o.maxPhases,
        o.skeleton.maxFunctions,
        int(o.skeleton.useLoopInfo), o.skeleton.coldThreshold,
        o.skeleton.hotThreshold,
        static_cast<unsigned long long>(o.emitter.streamElems),
        o.emitter.minPeriod, o.emitter.maxPeriod,
        o.emitter.pattern.maxOperandsPerStatement,
        o.emitter.pattern.numIntTemps, o.emitter.pattern.numFpTemps,
        int(o.emitter.pattern.usePatterns));
}

/** Every profiling knob that shapes the stored profile — the slice
 *  stream and phase detection feed the v3 phase list, so two sessions
 *  profiling with different slicing must not share cache entries. */
std::string
profilingFingerprint(const bsyn::profile::ProfileOptions &o)
{
    return strprintf(
        "slice=%llu;maxSlices=%u;phaseThresh=%.17g;minPhase=%.17g",
        static_cast<unsigned long long>(o.sliceBaseLength),
        o.maxSliceCheckpoints, o.phaseThreshold, o.minPhaseFraction);
}

Json
benchmarkToJson(const synth::SyntheticBenchmark &b)
{
    Json root = Json::object();
    root.set("name", Json(b.name));
    root.set("cSource", Json(b.cSource));
    root.set("reductionFactor", Json(b.reductionFactor));
    root.set("phases", Json(static_cast<uint64_t>(b.phases)));
    Json ps = Json::object();
    ps.set("coveredInstrs", Json(b.patternStats.coveredInstrs));
    ps.set("uncoveredInstrs", Json(b.patternStats.uncoveredInstrs));
    ps.set("statements", Json(b.patternStats.statements));
    ps.set("compensationStmts", Json(b.patternStats.compensationStmts));
    root.set("patternStats", ps);
    return root;
}

synth::SyntheticBenchmark
benchmarkFromJson(const Json &j)
{
    synth::SyntheticBenchmark b;
    b.name = j.get("name").asString();
    b.cSource = j.get("cSource").asString();
    b.reductionFactor =
        static_cast<uint64_t>(j.get("reductionFactor").asNumber());
    if (j.has("phases"))
        b.phases = static_cast<uint32_t>(j.get("phases").asNumber());
    const Json &ps = j.get("patternStats");
    b.patternStats.coveredInstrs =
        static_cast<uint64_t>(ps.get("coveredInstrs").asNumber());
    b.patternStats.uncoveredInstrs =
        static_cast<uint64_t>(ps.get("uncoveredInstrs").asNumber());
    b.patternStats.statements =
        static_cast<uint64_t>(ps.get("statements").asNumber());
    b.patternStats.compensationStmts =
        static_cast<uint64_t>(ps.get("compensationStmts").asNumber());
    return b;
}

} // namespace

SessionOptions::SessionOptions() : synthesis(defaultSynthesisOptions()) {}

/** See the declaration: pinned on the heap so the DecodedProgram's
 *  back-reference into prog stays valid for the entry's lifetime. */
struct Session::DecodedMeasure
{
    isa::MachineProgram prog;
    std::unique_ptr<sim::DecodedProgram> decoded;
};

std::shared_ptr<const Session::DecodedMeasure>
Session::decodeForMeasure(const std::string &source)
{
    Sha256 h;
    h.update(source);
    std::string key = h.hexDigest();

    {
        std::lock_guard<std::mutex> lock(decodeMtx_);
        auto it = decodeCache_.find(key);
        if (it != decodeCache_.end()) {
            decodeHits_.add();
            return it->second;
        }
    }
    decodeMisses_.add();

    // Build outside the lock — calibration measurements run from pool
    // workers concurrently, and a duplicate build on a race is merely
    // redundant work (both builds are deterministic and identical).
    auto entry = std::make_shared<DecodedMeasure>();
    ir::Module mod = lang::compile(source, "measure");
    entry->prog = isa::lower(mod, isa::targetX86());
    entry->decoded = std::make_unique<sim::DecodedProgram>(entry->prog);

    std::lock_guard<std::mutex> lock(decodeMtx_);
    // Calibration touches a handful of candidate sources per workload;
    // the clamp only exists so a pathological caller measuring endless
    // distinct sources cannot grow the session without bound.
    if (decodeCache_.size() >= 512)
        decodeCache_.clear();
    auto [it, inserted] = decodeCache_.emplace(key, std::move(entry));
    (void)inserted;
    return it->second;
}

uint64_t
Session::measureInstructions(const std::string &source)
{
    return sim::execute(*decodeForMeasure(source)->decoded).instructions;
}

Session::Session(SessionOptions opts)
    : options_(std::move(opts)), cache_(options_.cacheDir),
      metrics_(options_.metricsParent ? options_.metricsParent
                                      : &obs::Registry::global()),
      profileHits_(metrics_.counter("pipeline.cache.profile.hits")),
      profileMisses_(metrics_.counter("pipeline.cache.profile.misses")),
      synthHits_(metrics_.counter("pipeline.cache.synth.hits")),
      synthMisses_(metrics_.counter("pipeline.cache.synth.misses")),
      decodeHits_(metrics_.counter("pipeline.memo.decode.hits")),
      decodeMisses_(metrics_.counter("pipeline.memo.decode.misses"))
{
}

Session::~Session() = default;

ThreadPool &
Session::pool()
{
    if (options_.pool)
        return *options_.pool;
    std::lock_guard<std::mutex> lock(poolMtx_);
    if (!ownedPool_)
        ownedPool_ =
            std::make_unique<ThreadPool>(options_.threads, &metrics_);
    return *ownedPool_;
}

CacheStats
Session::cacheStats() const
{
    CacheStats s;
    s.profileHits = profileHits_.value();
    s.profileMisses = profileMisses_.value();
    s.synthHits = synthHits_.value();
    s.synthMisses = synthMisses_.value();
    s.decodeHits = decodeHits_.value();
    s.decodeMisses = decodeMisses_.value();
    return s;
}

// --------------------------------------------------------------- stages

ir::Module
Session::compile(const std::string &source, const std::string &name,
                 opt::OptLevel level, bool schedule_for_in_order) const
{
    return compileSource(source, name, level, schedule_for_in_order);
}

bsyn::profile::StatisticalProfile
Session::profile(const std::string &source, const std::string &name,
                 bool *cached)
{
    // v3: profiles became time-sliced with a per-phase sub-profile
    // list (v2 entries lack the slice stream and must not be reused);
    // the slicing knobs join the key so sessions with different phase
    // detection settings keep distinct entries.
    obs::Span span("profile", "workload", name);
    std::string key = ArtifactCache::key(
        "profile.v3",
        {name, source, profilingFingerprint(options_.profiling)});
    std::string text;
    bool hit;
    {
        obs::Span probe("cache-probe", "stage", "profile");
        hit = cache_.load(key, text);
    }
    if (hit) {
        profileHits_.add();
        span.arg("cache", "hit");
        if (cached)
            *cached = true;
        return bsyn::profile::StatisticalProfile::deserialize(text);
    }
    profileMisses_.add();
    span.arg("cache", "miss");
    if (cached)
        *cached = false;
    ir::Module mod;
    {
        obs::Span cspan("compile", "workload", name);
        mod = lang::compile(source, name); // -O0 shape
    }
    auto prof = bsyn::profile::profileModule(mod, options_.profiling);
    cache_.store(key, prof.serialize());
    return prof;
}

bsyn::profile::StatisticalProfile
Session::profile(const workloads::Workload &w, bool *cached)
{
    return profile(w.source, w.name(), cached);
}

synth::SyntheticBenchmark
Session::synthesize(const bsyn::profile::StatisticalProfile &prof,
                    const synth::SynthesisOptions &opts, bool *cached)
{
    // v3: synthesis became phase-aware (one stitched skeleton per
    // profile phase) — v2 clones of multi-phase profiles must not be
    // reused, and the benchmark JSON gained the phase count.
    obs::Span span("synthesize", "workload", prof.workloadName);
    std::string key = ArtifactCache::key(
        "synth.v3", {synthesisFingerprint(opts), prof.serialize()});
    std::string text;
    bool hit;
    {
        obs::Span probe("cache-probe", "stage", "synthesize");
        hit = cache_.load(key, text);
    }
    if (hit) {
        synthHits_.add();
        span.arg("cache", "hit");
        if (cached)
            *cached = true;
        return benchmarkFromJson(Json::parse(text));
    }
    synthMisses_.add();
    span.arg("cache", "miss");
    if (cached)
        *cached = false;
    // Calibration candidates fan across the session pool (intra-
    // workload parallelism); under processSuite the nested parallelFor
    // degrades to inline execution on the worker, and either way the
    // clone bytes are schedule-independent.
    auto syn = synth::synthesize(
        prof, opts,
        [this](const std::string &src) { return measureInstructions(src); },
        [this](size_t n, const std::function<void(size_t)> &fn) {
            if (n <= 1) {
                for (size_t i = 0; i < n; ++i)
                    fn(i);
                return;
            }
            parallelFor(n, fn);
        });
    cache_.store(key, benchmarkToJson(syn).dump(-1));
    return syn;
}

synth::SyntheticBenchmark
Session::synthesize(const bsyn::profile::StatisticalProfile &prof)
{
    return synthesize(prof, options_.synthesis);
}

WorkloadRun
Session::process(const workloads::Workload &w,
                 const synth::SynthesisOptions &opts, RunStatus *st)
{
    WorkloadRun run;
    run.workload = w;
    bool profCached = false, synCached = false;
    run.profile = profile(w, &profCached);
    run.synthetic = synthesize(run.profile, opts, &synCached);
    if (st) {
        st->workload = w.name();
        st->ok = true;
        st->profileCached = profCached;
        st->synthCached = synCached;
    }
    return run;
}

WorkloadRun
Session::process(const workloads::Workload &w)
{
    return process(w, options_.synthesis);
}

// -------------------------------------------------------------- batches

std::vector<RunStatus>
Session::processSuite(const std::vector<workloads::Workload> &suite,
                      RunSink &sink, const synth::SynthesisOptions &base)
{
    std::vector<RunStatus> statuses(suite.size());
    if (suite.empty())
        return statuses;

    pool().parallelFor(suite.size(), [&](size_t i) {
        obs::Span span("workload", "workload", suite[i].name());
        RunStatus st;
        st.index = i;
        st.workload = suite[i].name();
        WorkloadRun run;
        run.workload = suite[i];
        try {
            synth::SynthesisOptions so = base;
            so.seed = deriveWorkloadSeed(so.seed, suite[i].name());
            run = process(suite[i], so, &st);
            st.index = i; // process() fills the other fields
        } catch (const std::exception &e) {
            st.ok = false;
            st.error = e.what();
        }
        metrics_
            .counter(st.ok ? "pipeline.suite.workloads.ok"
                           : "pipeline.suite.workloads.failed")
            .add();
        statuses[i] = st;
        sink.consume(st, run);
    });
    return statuses;
}

std::vector<RunStatus>
Session::processSuite(const std::vector<workloads::Workload> &suite,
                      RunSink &sink)
{
    return processSuite(suite, sink, options_.synthesis);
}

std::vector<WorkloadRun>
Session::processSuite(const std::vector<workloads::Workload> &suite)
{
    CollectSink collect;
    auto statuses = processSuite(suite, collect);
    for (const auto &st : statuses)
        if (!st.ok)
            fatal("workload %s failed: %s", st.workload.c_str(),
                  st.error.c_str());
    return collect.takeRuns();
}

std::vector<WorkloadRun>
Session::processSuite()
{
    return processSuite(workloads::mibenchSuite());
}

void
Session::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    pool().parallelFor(n, fn);
}

} // namespace bsyn::pipeline
