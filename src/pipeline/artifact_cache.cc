#include "pipeline/artifact_cache.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "support/error.hh"
#include "support/hash.hh"

namespace fs = std::filesystem;

namespace bsyn::pipeline
{

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        return;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create cache directory '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

std::string
ArtifactCache::key(const std::string &stage,
                   const std::vector<std::string> &parts)
{
    Sha256 ctx;
    auto feed = [&](const std::string &s) {
        // Length-prefix each part so ("ab","c") != ("a","bc"). The
        // length is serialized big-endian so keys are identical across
        // host endianness (the cache is a cross-machine artifact).
        uint64_t n = s.size();
        uint8_t lenb[8];
        for (int i = 0; i < 8; ++i)
            lenb[i] = static_cast<uint8_t>(n >> (8 * (7 - i)));
        ctx.update(lenb, sizeof(lenb));
        ctx.update(s);
    };
    feed(stage);
    for (const auto &p : parts)
        feed(p);
    return ctx.hexDigest();
}

std::string
ArtifactCache::path(const std::string &key) const
{
    // Two-level fan-out keeps directory listings small for big suites.
    return dir_ + "/" + key.substr(0, 2) + "/" + key + ".json";
}

bool
ArtifactCache::load(const std::string &key, std::string &text) const
{
    if (!enabled())
        return false;
    std::ifstream in(path(key), std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!in.good() && !in.eof())
        return false;
    text = ss.str();
    return true;
}

void
ArtifactCache::store(const std::string &key, const std::string &text) const
{
    if (!enabled())
        return;
    std::string final_path = path(key);
    std::error_code ec;
    fs::create_directories(fs::path(final_path).parent_path(), ec);
    if (ec)
        fatal("cannot create cache subdirectory for '%s': %s",
              final_path.c_str(), ec.message().c_str());

    // Unique temp name per writer, then an atomic rename: readers (and
    // concurrent writers of the same key) see either nothing or a
    // complete entry.
    static std::atomic<uint64_t> counter{0};
    std::ostringstream tmp;
    tmp << final_path << ".tmp." << ::getpid() << "."
        << counter.fetch_add(1);
    {
        std::ofstream out(tmp.str(), std::ios::binary | std::ios::trunc);
        if (!out)
            fatal("cannot write cache entry '%s'", tmp.str().c_str());
        out << text;
        if (!out.good())
            fatal("short write to cache entry '%s'", tmp.str().c_str());
    }
    fs::rename(tmp.str(), final_path, ec);
    if (ec) {
        fs::remove(tmp.str(), ec);
        fatal("cannot finalize cache entry '%s'", final_path.c_str());
    }
}

} // namespace bsyn::pipeline
