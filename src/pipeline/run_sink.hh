/**
 * @file
 * Streaming result delivery for batch pipeline runs. Instead of every
 * batch materializing a std::vector<WorkloadRun> (each run holds a full
 * profile and clone source — prohibitive for very large suites), a
 * Session pushes each finished run into a RunSink as it completes:
 * collect into memory, stream straight to disk, or tee to several
 * consumers. Per-workload failures arrive as structured RunStatus
 * records instead of aborting the whole batch.
 */

#ifndef BSYN_PIPELINE_RUN_SINK_HH
#define BSYN_PIPELINE_RUN_SINK_HH

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "pipeline/pipeline.hh"
#include "support/json.hh"

namespace bsyn::pipeline
{

/** Outcome of one workload of a batch (always produced, ok or not). */
struct RunStatus
{
    size_t index = 0;       ///< position in the submitted batch
    std::string workload;   ///< "crc32/small"
    bool ok = true;
    std::string error;      ///< failure description when !ok

    /** Stage provenance: true when the artifact came out of the
     *  session's cache instead of being recomputed. */
    bool profileCached = false;
    bool synthCached = false;
};

/**
 * Deterministic JSON of one status: index, workload, ok and (when !ok)
 * error. Cache provenance is deliberately excluded so a cold and a warm
 * run of the same batch serialize identically — this is what the suite
 * status artifact and shard merging compare byte-for-byte.
 */
Json runStatusToJson(const RunStatus &st);

/** Inverse of runStatusToJson (cache provenance stays defaulted). */
RunStatus runStatusFromJson(const Json &j);

/**
 * Consumer of batch results. consume() is called exactly once per
 * workload, from pool worker threads, concurrently and in no particular
 * order; implementations synchronize internally. On failure (!st.ok)
 * @p run carries only the workload descriptor. The run is borrowed —
 * it dies when consume() returns — so observers (logging, streaming to
 * disk) cost nothing and only owning sinks copy what they keep.
 */
class RunSink
{
  public:
    virtual ~RunSink() = default;
    virtual void consume(const RunStatus &st, const WorkloadRun &run) = 0;
};

/** Collects runs (and statuses) in memory, restoring batch order. */
class CollectSink : public RunSink
{
  public:
    void consume(const RunStatus &st, const WorkloadRun &run) override;

    /** Successful runs sorted by batch index (failures omitted). */
    std::vector<WorkloadRun> takeRuns();

    /** Every status, sorted by batch index. */
    std::vector<RunStatus> statuses() const;

  private:
    mutable std::mutex mtx_;
    std::vector<std::pair<size_t, WorkloadRun>> runs_;
    std::vector<RunStatus> statuses_;
};

/**
 * Streams each successful run to disk as it finishes — `<dir>/
 * <benchmark>_<input>.c` and `.profile.json` — holding nothing in
 * memory. File names depend only on the workload, so output is
 * byte-identical for any completion order or thread count.
 */
class DirectorySink : public RunSink
{
  public:
    /** Writes under @p dir (created immediately; fatal() on failure). */
    explicit DirectorySink(std::string dir);

    void consume(const RunStatus &st, const WorkloadRun &run) override;

    /** Number of runs written so far. */
    size_t written() const;

  private:
    std::string dir_;
    mutable std::mutex mtx_;
    size_t written_ = 0;
};

/** Invokes a callback per run (progress reporting, custom handling).
 *  The callback is serialized under an internal mutex. */
class CallbackSink : public RunSink
{
  public:
    using Fn = std::function<void(const RunStatus &, const WorkloadRun &)>;
    explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

    void consume(const RunStatus &st, const WorkloadRun &run) override;

  private:
    Fn fn_;
    std::mutex mtx_;
};

/** Fans each run out to several child sinks (not owned). */
class TeeSink : public RunSink
{
  public:
    explicit TeeSink(std::vector<RunSink *> children);

    void consume(const RunStatus &st, const WorkloadRun &run) override;

  private:
    std::vector<RunSink *> children_;
};

} // namespace bsyn::pipeline

#endif // BSYN_PIPELINE_RUN_SINK_HH
