/**
 * @file
 * Content-addressed on-disk cache for pipeline artifacts. A key is the
 * SHA-256 of everything that determines an artifact — stage tag,
 * workload source, serialized options — so a cache entry can never be
 * stale: any input change produces a different key, and an unchanged
 * workload re-run out of the cache is byte-identical to recomputation.
 * This is what lets `bsyn profile` and `bsyn suite` share one cache
 * directory and lets a warm suite re-run skip every profile and
 * synthesis (ROADMAP "shared profile cache").
 */

#ifndef BSYN_PIPELINE_ARTIFACT_CACHE_HH
#define BSYN_PIPELINE_ARTIFACT_CACHE_HH

#include <string>
#include <vector>

namespace bsyn::pipeline
{

/**
 * Disk-backed artifact store keyed by content hash. Thread-safe: loads
 * and stores may run concurrently from pool workers; stores are
 * write-to-temp + atomic rename, so concurrent processes sharing one
 * cache directory never observe torn entries. A default-constructed
 * cache is disabled (every load misses, stores are dropped).
 */
class ArtifactCache
{
  public:
    /** Disabled cache: load() always misses, store() is a no-op. */
    ArtifactCache() = default;

    /** Cache rooted at @p dir (created on first use; fatal() if the
     *  directory cannot be created). Empty @p dir means disabled. */
    explicit ArtifactCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Build a cache key: SHA-256 over the stage tag and every input
     * part, length-prefixed so distinct part lists never collide.
     */
    static std::string key(const std::string &stage,
                           const std::vector<std::string> &parts);

    /** Look up @p key; on hit fills @p text and returns true. */
    bool load(const std::string &key, std::string &text) const;

    /** Insert @p text under @p key (atomically; last writer wins). */
    void store(const std::string &key, const std::string &text) const;

  private:
    std::string path(const std::string &key) const;

    std::string dir_;
};

} // namespace bsyn::pipeline

#endif // BSYN_PIPELINE_ARTIFACT_CACHE_HH
