#include "pipeline/run_sink.hh"

#include <algorithm>
#include <filesystem>

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::pipeline
{

// ----------------------------------------------------------------- Status

Json
runStatusToJson(const RunStatus &st)
{
    Json j = Json::object();
    j.set("index", Json(static_cast<uint64_t>(st.index)));
    j.set("workload", Json(st.workload));
    j.set("ok", Json(st.ok));
    if (!st.ok)
        j.set("error", Json(st.error));
    return j;
}

RunStatus
runStatusFromJson(const Json &j)
{
    RunStatus st;
    st.index = static_cast<size_t>(j.get("index").asInt());
    st.workload = j.get("workload").asString();
    st.ok = j.get("ok").asBool();
    if (j.has("error"))
        st.error = j.get("error").asString();
    return st;
}

// ---------------------------------------------------------------- Collect

void
CollectSink::consume(const RunStatus &st, const WorkloadRun &run)
{
    std::lock_guard<std::mutex> lock(mtx_);
    statuses_.push_back(st);
    if (st.ok)
        runs_.emplace_back(st.index, run); // owning sink: copies
}

std::vector<WorkloadRun>
CollectSink::takeRuns()
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::sort(runs_.begin(), runs_.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    std::vector<WorkloadRun> out;
    out.reserve(runs_.size());
    for (auto &entry : runs_)
        out.push_back(std::move(entry.second));
    runs_.clear();
    return out;
}

std::vector<RunStatus>
CollectSink::statuses() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::vector<RunStatus> out = statuses_;
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.index < b.index;
    });
    return out;
}

// -------------------------------------------------------------- Directory

DirectorySink::DirectorySink(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create output directory '%s': %s", dir_.c_str(),
              ec.message().c_str());
}

void
DirectorySink::consume(const RunStatus &st, const WorkloadRun &run)
{
    if (!st.ok)
        return;
    // File writes race-free without the lock (distinct files per
    // workload); only the counter needs guarding.
    std::string base =
        dir_ + "/" + run.workload.benchmark + "_" + run.workload.input;
    writeFile(base + ".c", run.synthetic.cSource);
    run.profile.saveTo(base + ".profile.json");
    std::lock_guard<std::mutex> lock(mtx_);
    ++written_;
}

size_t
DirectorySink::written() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return written_;
}

// --------------------------------------------------------------- Callback

void
CallbackSink::consume(const RunStatus &st, const WorkloadRun &run)
{
    if (!fn_)
        return;
    std::lock_guard<std::mutex> lock(mtx_);
    fn_(st, run);
}

// -------------------------------------------------------------------- Tee

TeeSink::TeeSink(std::vector<RunSink *> children)
    : children_(std::move(children))
{
}

void
TeeSink::consume(const RunStatus &st, const WorkloadRun &run)
{
    for (RunSink *child : children_)
        child->consume(st, run);
}

} // namespace bsyn::pipeline
