/**
 * @file
 * Pattern-driven C statement generation (paper §III-B.4 + Table II):
 * the recognizer scans each profiled basic block's instruction-type
 * sequence and emits C statements whose compiled form reproduces those
 * sequences — mem[i] = mem[j] op mem[k], mem[i] = mem[j] op cst,
 * mem[i] = cst, and register-temporary arithmetic chains. Constants are
 * chosen randomly (obfuscation), coverage is deliberately below 100%,
 * and a compensation mechanism pays back accumulated per-class deficits
 * with extra loads/stores, as the paper describes.
 */

#ifndef BSYN_SYNTH_PATTERN_HH
#define BSYN_SYNTH_PATTERN_HH

#include <string>
#include <vector>

#include "profile/sfgl.hh"
#include "support/rng.hh"
#include "synth/memory_streams.hh"

namespace bsyn::synth
{

/** Per-function emission context: which locals the body used. */
struct FunctionCtx
{
    int maxLoopDepth = 0;      ///< iterators i0..i{depth-1}
    bool usesCounter = false;  ///< 'cnt' for top-level hard branches
    std::vector<bool> intTemps; ///< t0..tN
    std::vector<bool> fpTemps;  ///< ft0..ftN
    std::vector<bool> intIdx = std::vector<bool>(16, false);
    std::vector<bool> fpIdx = std::vector<bool>(16, false);

    /** Innermost live loop iterator name, or "cnt" fallback. */
    std::string iteratorName(int depth) const;
};

/** Pattern-generation statistics (Table II's coverage row). */
struct PatternStats
{
    uint64_t coveredInstrs = 0;   ///< descriptors turned into statements
    uint64_t uncoveredInstrs = 0; ///< skipped (compensated later)
    uint64_t statements = 0;
    uint64_t compensationStmts = 0;

    double
    coverage() const
    {
        uint64_t total = coveredInstrs + uncoveredInstrs;
        return total ? double(coveredInstrs) / double(total) : 1.0;
    }
};

/** Generation knobs. */
struct PatternOptions
{
    int maxOperandsPerStatement = 3; ///< Table II's longest pattern
    int numIntTemps = 4;
    int numFpTemps = 2;

    /**
     * Ablation: when false, ignore the observed instruction sequences
     * and draw statement shapes from the block's aggregate class
     * histogram instead (the "statistics, not patterns" prior work the
     * paper differentiates itself from).
     */
    bool usePatterns = true;
};

/** The pattern recognizer / statement generator. */
class PatternCodegen
{
  public:
    PatternCodegen(Rng &rng, StreamPlan &streams,
                   const PatternOptions &opts);

    /**
     * Emit C statements reproducing @p block's instruction sequence.
     *
     * @param block the profiled block.
     * @param ctx per-function local-variable usage tracking.
     * @param loop_depth current loop nesting (selects the iterator).
     * @param out statement strings (no indentation) appended here.
     */
    void emitBlock(const profile::SfglBlock &block, FunctionCtx &ctx,
                   int loop_depth, std::vector<std::string> &out);

    /** Statements for a guarded never-executed path (prints results). */
    std::vector<std::string> neverTakenBody(FunctionCtx &ctx);

    const PatternStats &stats() const { return stats_; }

  private:
    struct Operand
    {
        std::string expr;
        bool isFp = false;
    };

    Operand memOperand(int miss_class, bool is_fp, FunctionCtx &ctx,
                       std::vector<std::string> &out, int offset_slot);
    std::string advanceIndex(int miss_class, bool is_fp, uint64_t count,
                             FunctionCtx &ctx);
    std::string intTemp(FunctionCtx &ctx);
    std::string fpTemp(FunctionCtx &ctx);
    const char *opToken(ir::Opcode op, bool is_fp, bool &needs_guard);

    void flushPending(FunctionCtx &ctx, std::vector<std::string> &out);
    void emitStore(const profile::InstrDescriptor &store, FunctionCtx &ctx,
                   std::vector<std::string> &out);
    void compensate(FunctionCtx &ctx, std::vector<std::string> &out);

    Rng &rng;
    StreamPlan &streams;
    PatternOptions opts;
    PatternStats stats_;

    // Pending pattern state while scanning a block.
    struct PendingLoad
    {
        int missClass = 0;
        bool isFp = false;
    };
    std::vector<PendingLoad> pendingLoads;
    std::vector<ir::Opcode> pendingOps;
    bool pendingFp = false;

    // Benchmark-wide class deficits (paper's compensation counters).
    int64_t loadDeficit = 0;
    int64_t storeDeficit = 0;
    int64_t intOpDeficit = 0;
    int64_t fpOpDeficit = 0;
};

} // namespace bsyn::synth

#endif // BSYN_SYNTH_PATTERN_HH
