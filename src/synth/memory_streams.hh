/**
 * @file
 * Memory stream planning (paper §III-B.4 + Table I): the synthetic
 * benchmark walks pre-allocated arrays with per-class strides so every
 * memory access reproduces its profiled hit/miss ratio. One integer and
 * one double stream exist per miss-rate class actually used; class-0
 * (always hit) accesses use a small array with constant indices.
 */

#ifndef BSYN_SYNTH_MEMORY_STREAMS_HH
#define BSYN_SYNTH_MEMORY_STREAMS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hh"
#include "profile/memory_profile.hh"

namespace bsyn::synth
{

/** Planning and expression generation for the mStream/dStream arrays. */
class StreamPlan
{
  public:
    /** Elements per striding stream; must be a power of two and large
     *  enough that the walk defeats every cache size under study. */
    explicit StreamPlan(uint64_t stream_elems = 16384);

    /** Mark a class as used by integer (or fp) accesses. */
    void use(int miss_class, bool is_fp);

    /** Array name for a class ("mStream2" / "dStream2"). */
    std::string arrayName(int miss_class, bool is_fp) const;

    /** Index-variable name for a class ("x2" / "fx2"). */
    std::string indexVar(int miss_class, bool is_fp) const;

    /**
     * Elements the index advances per access so the byte stride matches
     * Table I (4*class bytes for 4-byte ints; doubles approximate).
     */
    uint64_t strideElems(int miss_class, bool is_fp) const;

    /** The "& mask" constant for striding streams. */
    uint64_t mask() const { return streamElems - 1; }

    uint64_t elems() const { return streamElems; }

    /** Global array declarations for every used stream. */
    std::vector<std::string> globalDecls() const;

    /** Index-variable declarations needed inside a function. */
    std::vector<std::string> indexDecls() const;

    /** All (class, is_fp) pairs in use. */
    std::vector<std::pair<int, bool>> used() const;

    /** An expression reading a representative cell of each used stream
     *  (for the final checksum printf). */
    std::string checksumExpr() const;

  private:
    uint64_t streamElems;
    std::array<bool, profile::numMissClasses> intUsed{};
    std::array<bool, profile::numMissClasses> fpUsed{};
};

} // namespace bsyn::synth

#endif // BSYN_SYNTH_MEMORY_STREAMS_HH
