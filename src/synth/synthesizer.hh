/**
 * @file
 * The Synthesizer facade: statistical profile in, synthetic C benchmark
 * out. Wires together reduction-factor selection, SFGL scale-down,
 * skeleton generation and C emission, with an optional calibration loop
 * that retunes R until the clone's dynamic instruction count lands near
 * the requested budget (the paper chooses R empirically so clones run
 * ~10M instructions).
 */

#ifndef BSYN_SYNTH_SYNTHESIZER_HH
#define BSYN_SYNTH_SYNTHESIZER_HH

#include <functional>
#include <string>

#include "profile/statistical_profile.hh"
#include "synth/c_emitter.hh"
#include "synth/skeleton.hh"

namespace bsyn::synth
{

/** Full synthesis configuration. */
struct SynthesisOptions
{
    uint64_t seed = 0xb5e9c0de;

    /** Fixed reduction factor; 0 selects automatically from the target. */
    uint64_t reductionFactor = 0;

    /** Dynamic-instruction budget for the clone (paper: ~10M; scaled
     *  down here because whole suites run through an interpreter). */
    uint64_t targetInstructions = 200000;

    /** Re-measure and retune R this many times (0 = trust the first
     *  estimate). Requires a measurement callback, see synthesize(). */
    int calibrationRounds = 2;

    /** Stitch one skeleton per profile phase (v3 profiles). When off —
     *  or when the profile is single-phase — the clone is generated
     *  from the aggregate exactly as before. */
    bool phaseAware = true;

    /** Profiles with more phases than this synthesize from the
     *  aggregate. Each phase gets its own skeleton, so the clone's
     *  static footprint grows with the phase count — and a profile
     *  cut into that many phases is usually oscillation noise, not
     *  macro structure worth duplicating code for. */
    int maxPhases = 8;

    SkeletonOptions skeleton;
    EmitterOptions emitter;
};

/** The synthesized clone. */
struct SyntheticBenchmark
{
    std::string name;
    std::string cSource;
    uint64_t reductionFactor = 1;
    /** Profile phases the clone was stitched from (1 = aggregate). */
    uint32_t phases = 1;
    PatternStats patternStats;
};

/**
 * Callback that compiles+runs a candidate source and returns its
 * dynamic instruction count. Sessions pass a closure over their decode
 * cache so repeated calibration measurements skip recompilation.
 */
using MeasureFn = std::function<uint64_t(const std::string &source)>;

/**
 * Callback that runs fn(0)..fn(n-1), possibly concurrently (must
 * block until all are done). Sessions pass Session::parallelFor so
 * one clone's calibration candidates are generated and measured
 * across the pool; an empty function runs them serially. The parallel
 * runner only schedules work — the synthesized bytes are identical
 * with or without it.
 */
using ParallelFn =
    std::function<void(size_t, const std::function<void(size_t)> &)>;

/**
 * Generate a synthetic clone of @p prof.
 *
 * When the first calibration measurement lands outside the accepted
 * band, the retune does not iterate serially: it fans a deterministic
 * ladder of candidate reduction factors (the analytic retune plus a
 * geometric bracket, wider for more calibrationRounds) through
 * @p measure — concurrently when @p parallel is given — and keeps the
 * candidate whose measured count lands closest to the budget.
 *
 * @param prof the statistical profile (possibly consolidated).
 * @param opts synthesis configuration.
 * @param measure optional measurement callback (used by the calibration
 *        loop); pass an empty function to skip calibration.
 * @param parallel optional concurrent runner for the candidate ladder.
 */
SyntheticBenchmark
synthesize(const profile::StatisticalProfile &prof,
           const SynthesisOptions &opts = {},
           const MeasureFn &measure = {},
           const ParallelFn &parallel = {});

} // namespace bsyn::synth

#endif // BSYN_SYNTH_SYNTHESIZER_HH
