#include "synth/skeleton.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/error.hh"

namespace bsyn::synth
{

using profile::Sfgl;
using profile::SfglBlock;
using profile::SfglLoop;
using profile::SfglTerm;

namespace
{

class SkeletonBuilder
{
  public:
    SkeletonBuilder(const Sfgl &g, Rng &r, const SkeletonOptions &o)
        : sfgl(g), rng(r), opts(o)
    {
        remaining.resize(sfgl.blocks.size());
        for (size_t i = 0; i < sfgl.blocks.size(); ++i)
            remaining[i] = sfgl.blocks[i].execCount;
        loopEntriesLeft.resize(sfgl.loops.size());
        for (size_t i = 0; i < sfgl.loops.size(); ++i)
            loopEntriesLeft[i] = sfgl.loops[i].entries;
    }

    Skeleton
    run()
    {
        std::vector<SynNode> segments;
        // Bounded by the number of blocks plus loops; every iteration
        // provably zeroes at least one counter.
        size_t guard = 4 * (sfgl.blocks.size() + sfgl.loops.size()) + 64;
        while (guard-- > 0) {
            int b = pickBlock();
            if (b < 0)
                break;
            int outer = opts.useLoopInfo ? outermostLoopOf(b) : -1;
            if (outer >= 0 && loopEntriesLeft[static_cast<size_t>(outer)] >
                                  0) {
                segments.push_back(buildLoopNode(outer));
            } else {
                segments.push_back(buildChain(b));
            }
        }
        // Anything left (counter-rounding residue) becomes repeat
        // wrappers so the instruction budget is honoured.
        for (size_t i = 0; i < remaining.size(); ++i) {
            if (remaining[i] == 0)
                continue;
            segments.push_back(makeRepeat(static_cast<int>(i),
                                          remaining[i]));
            remaining[i] = 0;
        }
        return assignFunctions(std::move(segments));
    }

  private:
    // --- Selection -------------------------------------------------------

    int
    pickBlock()
    {
        std::vector<double> weights(remaining.size());
        double total = 0;
        for (size_t i = 0; i < remaining.size(); ++i) {
            weights[i] = double(remaining[i]) *
                         double(sfgl.blocks[i].bodySize() + 1);
            total += weights[i];
        }
        if (total <= 0)
            return -1;
        return static_cast<int>(rng.nextWeighted(weights));
    }

    int
    outermostLoopOf(int block)
    {
        int loop = sfgl.blocks[static_cast<size_t>(block)].loopId;
        if (loop < 0)
            return -1;
        while (sfgl.loops[static_cast<size_t>(loop)].parent >= 0)
            loop = sfgl.loops[static_cast<size_t>(loop)].parent;
        return loop;
    }

    // --- Loop structures ---------------------------------------------------

    /**
     * Build the structure for loop @p loop_id: a counted loop whose body
     * holds the member blocks at this nesting level (header first,
     * conditional members wrapped per their per-iteration probability)
     * and nested Loop nodes for the direct child loops. Consumes all
     * remaining entries of the loop.
     */
    SynNode
    buildLoopNode(int loop_id)
    {
        const SfglLoop &loop = sfgl.loops[static_cast<size_t>(loop_id)];
        uint64_t entries = loopEntriesLeft[static_cast<size_t>(loop_id)];
        loopEntriesLeft[static_cast<size_t>(loop_id)] = 0;
        if (entries == 0)
            entries = 1;

        uint64_t iters = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(loop.avgIterations)));

        SynNode loop_node;
        loop_node.kind = SynNode::Kind::Loop;
        loop_node.iterations = iters;
        loop_node.body = buildLoopBody(loop_id, entries, iters);

        if (entries > 1) {
            SynNode rep;
            rep.kind = SynNode::Kind::Repeat;
            rep.iterations = entries;
            rep.body.push_back(std::move(loop_node));
            return rep;
        }
        return loop_node;
    }

    std::vector<SynNode>
    buildLoopBody(int loop_id, uint64_t entries, uint64_t iters)
    {
        const SfglLoop &loop = sfgl.loops[static_cast<size_t>(loop_id)];
        uint64_t header_exec = entries * iters;

        // Direct children and their member sets.
        std::set<int> nested_blocks;
        std::vector<int> children;
        for (size_t li = 0; li < sfgl.loops.size(); ++li) {
            if (sfgl.loops[li].parent == loop_id) {
                children.push_back(static_cast<int>(li));
                for (int b : sfgl.loops[li].blocks)
                    nested_blocks.insert(b);
            }
        }

        std::vector<SynNode> body;
        // Own members (not in any child loop), in block-id order with the
        // header first.
        std::vector<int> members = loop.blocks;
        std::sort(members.begin(), members.end());
        std::stable_partition(members.begin(), members.end(),
                              [&](int b) { return b == loop.header; });

        for (int b : members) {
            if (nested_blocks.count(b))
                continue;
            const SfglBlock &blk = sfgl.blocks[static_cast<size_t>(b)];
            double prob =
                header_exec
                    ? std::min(1.0, double(remaining[
                                        static_cast<size_t>(b)]) /
                                        double(header_exec))
                    : 0.0;
            // The header itself always executes.
            if (b == loop.header)
                prob = 1.0;
            if (prob <= 0.0 && b != loop.header)
                continue;

            uint64_t consumed = std::min(
                remaining[static_cast<size_t>(b)],
                static_cast<uint64_t>(
                    std::llround(prob * double(header_exec))));
            remaining[static_cast<size_t>(b)] -=
                std::min(remaining[static_cast<size_t>(b)], consumed);

            SynNode block_node;
            block_node.kind = SynNode::Kind::Block;
            block_node.sfglBlock = b;

            if (prob >= opts.hotThreshold) {
                body.push_back(std::move(block_node));
            } else {
                SynNode cond = makeIf(blk, prob);
                cond.body.push_back(std::move(block_node));
                body.push_back(std::move(cond));
            }
        }

        // Nested loops.
        for (int child : children) {
            const SfglLoop &cl = sfgl.loops[static_cast<size_t>(child)];
            uint64_t child_entries =
                loopEntriesLeft[static_cast<size_t>(child)];
            loopEntriesLeft[static_cast<size_t>(child)] = 0;
            if (child_entries == 0)
                continue;
            uint64_t citers = std::max<uint64_t>(
                1,
                static_cast<uint64_t>(std::llround(cl.avgIterations)));

            // How often does one outer iteration enter the child?
            double enter_prob =
                header_exec ? std::min(1.0, double(child_entries) /
                                                double(header_exec))
                            : 1.0;

            SynNode child_node;
            child_node.kind = SynNode::Kind::Loop;
            child_node.iterations = citers;
            child_node.body = buildLoopBody(child, child_entries, citers);

            if (enter_prob >= opts.hotThreshold) {
                body.push_back(std::move(child_node));
            } else {
                const SfglBlock &chb =
                    sfgl.blocks[static_cast<size_t>(cl.header)];
                SynNode cond = makeIf(chb, enter_prob);
                cond.body.push_back(std::move(child_node));
                body.push_back(std::move(cond));
            }
        }
        return body;
    }

    /** Build an If node modelling a branch with probability @p prob. */
    SynNode
    makeIf(const SfglBlock &governed, double prob)
    {
        SynNode cond;
        cond.kind = SynNode::Kind::If;
        cond.execProb = prob;
        // Classification: use the governing block's own branch profile
        // when it ends in a conditional branch, else derive from the
        // probability (cold path = easy/never-taken).
        if (governed.term == SfglTerm::Branch) {
            cond.easyBranch = governed.easyBranch;
            cond.transitionRate = governed.transitionRate;
        } else {
            cond.easyBranch = prob < opts.coldThreshold ||
                              prob > (1.0 - opts.coldThreshold);
            cond.transitionRate = std::min(prob, 1.0 - prob) * 2.0;
        }
        if (prob < opts.coldThreshold)
            cond.easyBranch = true;
        return cond;
    }

    // --- Straight-line chains ---------------------------------------------

    SynNode
    makeRepeat(int block, uint64_t count)
    {
        SynNode block_node;
        block_node.kind = SynNode::Kind::Block;
        block_node.sfglBlock = block;
        if (count <= 1)
            return block_node;
        SynNode rep;
        rep.kind = SynNode::Kind::Repeat;
        rep.iterations = count;
        rep.body.push_back(std::move(block_node));
        return rep;
    }

    /**
     * Build a straight-line chain starting at @p start: follow the
     * heaviest remaining successor edge until the trail goes cold
     * (paper: "if there are no successors ... restart the generation
     * algorithm").
     */
    SynNode
    buildChain(int start)
    {
        SynNode seq;
        seq.kind = SynNode::Kind::Repeat;
        seq.iterations = 1;

        int cur = start;
        std::set<int> visited;
        while (cur >= 0 && remaining[static_cast<size_t>(cur)] > 0 &&
               !visited.count(cur)) {
            visited.insert(cur);
            --remaining[static_cast<size_t>(cur)];
            SynNode bn;
            bn.kind = SynNode::Kind::Block;
            bn.sfglBlock = cur;
            seq.body.push_back(std::move(bn));

            const SfglBlock &blk = sfgl.blocks[static_cast<size_t>(cur)];
            // Pick the heaviest successor with remaining budget that is
            // not inside a loop (loops are generated as structures).
            int next = -1;
            uint64_t best = 0;
            for (const auto &e : blk.succs) {
                const SfglBlock &succ =
                    sfgl.blocks[static_cast<size_t>(e.to)];
                if (remaining[static_cast<size_t>(e.to)] == 0)
                    continue;
                if (opts.useLoopInfo && succ.loopId >= 0)
                    continue;
                if (e.count > best) {
                    best = e.count;
                    next = e.to;
                }
            }
            cur = next;
        }
        return seq;
    }

    // --- Function assignment (paper §III-B.3) --------------------------------

    Skeleton
    assignFunctions(std::vector<SynNode> segments)
    {
        Skeleton sk;
        if (segments.empty()) {
            sk.funcs.push_back({opts.funcPrefix + "0", {}});
            return sk;
        }
        size_t nfuncs = std::min<size_t>(
            static_cast<size_t>(std::max(1, opts.maxFunctions)),
            segments.size());
        // Contiguous runs keep rough phase order; the split points are
        // random, which detaches the synthetic's functions from the
        // original program's (information hiding).
        std::vector<size_t> cuts{0, segments.size()};
        while (cuts.size() < nfuncs + 1) {
            size_t c = 1 + rng.nextBounded(segments.size());
            cuts.push_back(c);
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

        size_t fi = 0;
        for (size_t c = 0; c + 1 < cuts.size(); ++c) {
            SynFunction fn;
            fn.name = opts.funcPrefix + std::to_string(fi++);
            for (size_t s = cuts[c]; s < cuts[c + 1]; ++s)
                fn.roots.push_back(std::move(segments[s]));
            if (!fn.roots.empty())
                sk.funcs.push_back(std::move(fn));
        }
        if (sk.funcs.empty())
            sk.funcs.push_back({opts.funcPrefix + "0", {}});
        return sk;
    }

    const Sfgl &sfgl;
    Rng &rng;
    const SkeletonOptions &opts;

    std::vector<uint64_t> remaining;
    std::vector<uint64_t> loopEntriesLeft;
};

} // namespace

Skeleton
buildSkeleton(const Sfgl &scaled, Rng &rng, const SkeletonOptions &opts)
{
    return SkeletonBuilder(scaled, rng, opts).run();
}

} // namespace bsyn::synth
