/**
 * @file
 * SFGL scale-down (paper §III-B.1, Fig 2): divide basic-block execution
 * counts, edge counts and loop iteration counts by a reduction factor R;
 * blocks executed fewer than R times disappear. Nested loops scale outer
 * first: when a loop's entry count cannot absorb the whole factor, the
 * remainder comes out of its iteration count.
 */

#ifndef BSYN_SYNTH_SCALE_DOWN_HH
#define BSYN_SYNTH_SCALE_DOWN_HH

#include "profile/sfgl.hh"

namespace bsyn::synth
{

/**
 * Scale @p sfgl down by @p reduction_factor.
 *
 * @return a new SFGL whose block ids are preserved (dropped blocks keep
 * their slot with execCount == 0 so loop membership lists stay valid).
 */
profile::Sfgl scaleDown(const profile::Sfgl &sfgl, uint64_t reduction_factor);

/**
 * Pick the reduction factor that brings @p dynamic_instructions down to
 * roughly @p target_instructions, clamped to the paper's observed range
 * [1, 250].
 */
uint64_t chooseReductionFactor(uint64_t dynamic_instructions,
                               uint64_t target_instructions);

} // namespace bsyn::synth

#endif // BSYN_SYNTH_SCALE_DOWN_HH
