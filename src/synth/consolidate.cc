#include "synth/consolidate.hh"

#include "support/error.hh"

namespace bsyn::synth
{

profile::StatisticalProfile
consolidate(const std::vector<profile::StatisticalProfile> &profiles,
            const std::string &name)
{
    BSYN_ASSERT(!profiles.empty(), "consolidating zero profiles");

    profile::StatisticalProfile out;
    out.workloadName = name;

    int block_base = 0;
    int loop_base = 0;
    int func_base = 0;
    for (const auto &p : profiles) {
        out.dynamicInstructions += p.dynamicInstructions;
        out.mix.merge(p.mix);

        for (auto b : p.sfgl.blocks) {
            b.id += block_base;
            b.funcId += func_base;
            for (auto &e : b.succs)
                e.to += block_base;
            if (b.loopId >= 0)
                b.loopId += loop_base;
            out.sfgl.blocks.push_back(std::move(b));
        }
        for (auto l : p.sfgl.loops) {
            l.id += loop_base;
            l.header += block_base;
            for (auto &b : l.blocks)
                b += block_base;
            if (l.parent >= 0)
                l.parent += loop_base;
            out.sfgl.loops.push_back(std::move(l));
        }
        for (const auto &fname : p.sfgl.funcNames)
            out.sfgl.funcNames.push_back(p.workloadName + "." + fname);

        block_base = static_cast<int>(out.sfgl.blocks.size());
        loop_base = static_cast<int>(out.sfgl.loops.size());
        func_base = static_cast<int>(out.sfgl.funcNames.size());
    }
    return out;
}

} // namespace bsyn::synth
