#include "synth/profile_builder.hh"

#include <cmath>

#include "support/error.hh"

namespace bsyn::synth
{

using profile::InstrDescriptor;
using profile::SfglBlock;
using profile::SfglLoop;
using profile::SfglTerm;

ProfileBuilder::ProfileBuilder(std::string name)
    : workloadName(std::move(name))
{}

int
ProfileBuilder::addLoop(double avg_iterations, uint64_t entries,
                        int parent)
{
    BSYN_ASSERT(avg_iterations >= 1.0, "loops iterate at least once");
    BSYN_ASSERT(parent < static_cast<int>(loops.size()),
                "parent loop %d not declared yet", parent);
    loops.push_back({avg_iterations, entries, parent});
    return static_cast<int>(loops.size()) - 1;
}

int
ProfileBuilder::addBlock(int loop, const BlockSpec &spec)
{
    BSYN_ASSERT(loop < static_cast<int>(loops.size()),
                "loop %d not declared", loop);
    blocks.emplace_back(loop, spec);
    return static_cast<int>(blocks.size()) - 1;
}

profile::StatisticalProfile
ProfileBuilder::build() const
{
    profile::StatisticalProfile prof;
    prof.workloadName = workloadName;
    prof.sfgl.funcNames.push_back("spec");

    // Every declared loop receives an implicit header block (executes
    // entries * iterations times, tiny integer body). This gives each
    // loop a distinct header with a well-defined execution count, which
    // the skeleton generator's probability arithmetic relies on.
    std::vector<std::pair<int, BlockSpec>> all_blocks = blocks;
    std::vector<int> header_of(loops.size(), -1);
    for (size_t li = 0; li < loops.size(); ++li) {
        BlockSpec header;
        header.execCount = static_cast<uint64_t>(
            std::llround(double(loops[li].entries) *
                         loops[li].iterations));
        header.loads = 0;
        header.stores = 0;
        header.intOps = 2;
        header.fpOps = 0;
        header_of[li] = static_cast<int>(all_blocks.size());
        all_blocks.emplace_back(static_cast<int>(li), header);
    }

    // Blocks.
    for (size_t i = 0; i < all_blocks.size(); ++i) {
        const auto &[loop, spec] = all_blocks[i];
        SfglBlock b;
        b.id = static_cast<int>(i);
        b.funcId = 0;
        b.irBlockId = b.id;
        b.execCount = spec.execCount;
        b.loopId = loop;

        auto push = [&](ir::Opcode op, isa::MClass cls, bool reads,
                        bool writes, int miss_class, bool fp) {
            InstrDescriptor d;
            d.op = op;
            d.type = fp ? ir::Type::F64 : ir::Type::U32;
            d.cls = cls;
            d.readsMem = reads;
            d.writesMem = writes;
            d.missClass = miss_class;
            b.code.push_back(d);
        };
        for (int k = 0; k < spec.loads; ++k)
            push(ir::Opcode::Load, isa::MClass::Load, true, false,
                 spec.loadMissClass, spec.fpMemory);
        for (int k = 0; k < spec.intOps; ++k)
            push(k % 3 == 2 ? ir::Opcode::Xor : ir::Opcode::Add,
                 isa::MClass::IntAlu, false, false, 0, false);
        for (int k = 0; k < spec.fpOps; ++k)
            push(k % 2 ? ir::Opcode::FMul : ir::Opcode::FAdd,
                 k % 2 ? isa::MClass::FpMul : isa::MClass::FpAlu, false,
                 false, 0, true);
        for (int k = 0; k < spec.stores; ++k)
            push(ir::Opcode::Store, isa::MClass::Store, false, true,
                 spec.storeMissClass, spec.fpMemory);

        if (spec.endsInBranch) {
            b.term = SfglTerm::Branch;
            b.takenRate = spec.takenRate;
            b.transitionRate = spec.transitionRate;
            profile::BranchClassifier cls;
            b.easyBranch = cls.isEasy(spec.transitionRate);
            InstrDescriptor br;
            br.op = ir::Opcode::Nop;
            br.cls = isa::MClass::Branch;
            br.isControl = true;
            // Measured profiles annotate every CondBr descriptor with
            // its own rates; declared ones carry them too so consumers
            // can treat both shapes uniformly.
            br.branchExecutions = spec.execCount;
            br.takenRate = spec.takenRate;
            br.transitionRate = spec.transitionRate;
            b.code.push_back(br);
        } else {
            b.term = SfglTerm::Jump;
        }
        prof.sfgl.blocks.push_back(std::move(b));
    }

    // Loops: membership = declared blocks of the loop and of its
    // descendants; header = the loop's first declared block.
    for (size_t li = 0; li < loops.size(); ++li) {
        SfglLoop l;
        l.id = static_cast<int>(li);
        l.parent = loops[li].parent;
        l.entries = loops[li].entries;
        l.avgIterations = loops[li].iterations;
        int depth = 1;
        for (int p = l.parent; p >= 0;
             p = loops[static_cast<size_t>(p)].parent)
            ++depth;
        l.depth = depth;

        auto isInside = [&](int candidate) {
            for (int cur = candidate; cur >= 0;
                 cur = loops[static_cast<size_t>(cur)].parent)
                if (cur == static_cast<int>(li))
                    return true;
            return false;
        };
        for (size_t bi = 0; bi < all_blocks.size(); ++bi)
            if (all_blocks[bi].first >= 0 &&
                isInside(all_blocks[bi].first))
                l.blocks.push_back(static_cast<int>(bi));
        l.header = header_of[li];
        prof.sfgl.loops.push_back(std::move(l));
    }

    // Edges: scale-down and skeleton generation recompute loop entry
    // counts from edges into the loop headers, so the declared entry
    // counts must be materialized as edges — from the parent loop's
    // header for nested loops, and from an implicit function-entry
    // block for top-level loops.
    {
        SfglBlock entry;
        entry.id = static_cast<int>(prof.sfgl.blocks.size());
        entry.funcId = 0;
        entry.irBlockId = entry.id;
        entry.execCount = 1;
        InstrDescriptor nop;
        nop.op = ir::Opcode::MovImm;
        nop.cls = isa::MClass::IntAlu;
        entry.code.push_back(nop);
        int entry_id = entry.id;
        prof.sfgl.blocks.push_back(std::move(entry));

        for (size_t li = 0; li < loops.size(); ++li) {
            int from = loops[li].parent >= 0
                           ? header_of[static_cast<size_t>(
                                 loops[li].parent)]
                           : entry_id;
            prof.sfgl.blocks[static_cast<size_t>(from)].succs.push_back(
                {header_of[li], loops[li].entries});
        }
    }

    // Totals.
    for (const auto &b : prof.sfgl.blocks) {
        for (const auto &d : b.code)
            prof.mix.add(d.cls, b.execCount);
    }
    prof.dynamicInstructions = prof.sfgl.dynamicInstructions();
    return prof;
}

} // namespace bsyn::synth
