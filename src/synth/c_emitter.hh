/**
 * @file
 * The C source emitter: renders the synthetic skeleton + generated
 * statements into a single self-contained C file. The output is valid
 * C (compilable with a real compiler) and valid MiniC (recompilable
 * in-framework at every optimization level), which is exactly the
 * paper's point of synthesizing at the high-level-language level.
 */

#ifndef BSYN_SYNTH_C_EMITTER_HH
#define BSYN_SYNTH_C_EMITTER_HH

#include <string>
#include <vector>

#include "synth/pattern.hh"
#include "synth/skeleton.hh"

namespace bsyn::synth
{

/** Emission result. */
struct EmitResult
{
    std::string source;
    PatternStats patternStats;
};

/** Emitter knobs. */
struct EmitterOptions
{
    uint64_t streamElems = 16384; ///< striding stream size (power of 2)
    PatternOptions pattern;

    /** Hard-branch modulo period bounds (paper: modulo 1/transition). */
    int minPeriod = 2;
    int maxPeriod = 64;
};

/**
 * Render the synthetic benchmark.
 *
 * @param sfgl the scaled-down SFGL (provides per-block code).
 * @param skeleton the structural skeleton.
 * @param rng the seeded generator (constants, obfuscation choices).
 * @param opts emission knobs.
 */
EmitResult emitC(const profile::Sfgl &sfgl, const Skeleton &skeleton,
                 Rng &rng, const EmitterOptions &opts = {});

/** One phase's inputs to the stitched emitter. Pointees must outlive
 *  the emitC call. */
struct EmitPhase
{
    const profile::Sfgl *sfgl = nullptr;
    const Skeleton *skeleton = nullptr;
};

/**
 * Render a phase-aware benchmark: one skeleton per phase, stitched into
 * a single file behind one main() that drives the phases in profile
 * order. All phases share one stream plan, one pattern generator and
 * one rng, so memory behaviour stays consistent across the file and a
 * one-phase call is byte-identical to emitC.
 */
EmitResult emitCPhases(const std::vector<EmitPhase> &phases, Rng &rng,
                       const EmitterOptions &opts = {});

} // namespace bsyn::synth

#endif // BSYN_SYNTH_C_EMITTER_HH
