#include "synth/pattern.hh"

#include <algorithm>

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::synth
{

using ir::Opcode;
using ir::Type;
using isa::MClass;
using profile::InstrDescriptor;
using profile::SfglBlock;

std::string
FunctionCtx::iteratorName(int depth) const
{
    if (depth > 0)
        return strprintf("i%d", depth - 1);
    return "cnt";
}

PatternCodegen::PatternCodegen(Rng &r, StreamPlan &s,
                               const PatternOptions &o)
    : rng(r), streams(s), opts(o)
{}

std::string
PatternCodegen::intTemp(FunctionCtx &ctx)
{
    if (ctx.intTemps.empty())
        ctx.intTemps.assign(static_cast<size_t>(opts.numIntTemps), false);
    size_t k = rng.nextBounded(ctx.intTemps.size());
    ctx.intTemps[k] = true;
    return strprintf("t%zu", k);
}

std::string
PatternCodegen::fpTemp(FunctionCtx &ctx)
{
    if (ctx.fpTemps.empty())
        ctx.fpTemps.assign(static_cast<size_t>(opts.numFpTemps), false);
    size_t k = rng.nextBounded(ctx.fpTemps.size());
    ctx.fpTemps[k] = true;
    return strprintf("ft%zu", k);
}

std::string
PatternCodegen::advanceIndex(int miss_class, bool is_fp, uint64_t count,
                             FunctionCtx &ctx)
{
    streams.use(miss_class, is_fp);
    if (miss_class == 0)
        return "";
    auto &used = is_fp ? ctx.fpIdx : ctx.intIdx;
    used[static_cast<size_t>(miss_class)] = true;
    uint64_t step = streams.strideElems(miss_class, is_fp) * count;
    return strprintf("%s = (%s + %llu) & %llu;",
                     streams.indexVar(miss_class, is_fp).c_str(),
                     streams.indexVar(miss_class, is_fp).c_str(),
                     static_cast<unsigned long long>(step),
                     static_cast<unsigned long long>(streams.mask()));
}

PatternCodegen::Operand
PatternCodegen::memOperand(int miss_class, bool is_fp, FunctionCtx &ctx,
                           std::vector<std::string> &, int offset_slot)
{
    streams.use(miss_class, is_fp);
    Operand op;
    op.isFp = is_fp;
    if (miss_class == 0) {
        // Always-hit: small array, constant index (the paper's
        // mStream0[7] style).
        op.expr = strprintf("%s[%llu]",
                            streams.arrayName(0, is_fp).c_str(),
                            static_cast<unsigned long long>(
                                rng.nextBounded(64)));
        return op;
    }
    auto &used = is_fp ? ctx.fpIdx : ctx.intIdx;
    used[static_cast<size_t>(miss_class)] = true;
    uint64_t stride = streams.strideElems(miss_class, is_fp);
    uint64_t off = stride * static_cast<uint64_t>(offset_slot);
    if (off == 0) {
        op.expr = strprintf("%s[%s]",
                            streams.arrayName(miss_class, is_fp).c_str(),
                            streams.indexVar(miss_class, is_fp).c_str());
    } else {
        op.expr = strprintf(
            "%s[(%s + %llu) & %llu]",
            streams.arrayName(miss_class, is_fp).c_str(),
            streams.indexVar(miss_class, is_fp).c_str(),
            static_cast<unsigned long long>(off),
            static_cast<unsigned long long>(streams.mask()));
    }
    return op;
}

const char *
PatternCodegen::opToken(Opcode op, bool is_fp, bool &needs_guard)
{
    needs_guard = false;
    if (is_fp) {
        switch (op) {
          case Opcode::FSub: return "-";
          case Opcode::FMul: return "*";
          case Opcode::FDiv: needs_guard = true; return "/";
          default: return "+";
        }
    }
    switch (op) {
      case Opcode::Sub: return "-";
      case Opcode::Mul: return "*";
      case Opcode::Div: needs_guard = true; return "/";
      case Opcode::Rem: needs_guard = true; return "%";
      case Opcode::And: return "&";
      case Opcode::Or: return "|";
      case Opcode::Xor: return "^";
      case Opcode::Shl: return "<<";
      case Opcode::Shr: return ">>";
      default: return "+";
    }
}

void
PatternCodegen::emitBlock(const SfglBlock &block, FunctionCtx &ctx,
                          int loop_depth, std::vector<std::string> &out)
{
    pendingLoads.clear();
    pendingOps.clear();
    pendingFp = false;

    if (!opts.usePatterns) {
        // Ablation baseline: statement shapes from the aggregate class
        // histogram only (no sequence information).
        uint64_t loads = 0, stores = 0, iops = 0, fops = 0;
        for (const auto &d : block.code) {
            if (d.isControl)
                continue;
            if (d.readsMem)
                ++loads;
            else if (d.writesMem)
                ++stores;
            else if (d.cls == MClass::FpAlu || d.cls == MClass::FpMul ||
                     d.cls == MClass::FpDiv)
                ++fops;
            else
                ++iops;
            ++stats_.coveredInstrs;
        }
        for (uint64_t s = 0; s < std::max<uint64_t>(stores, 1); ++s) {
            InstrDescriptor fake;
            fake.op = Opcode::Store;
            fake.type = fops > iops ? Type::F64 : Type::U32;
            fake.missClass = 1;
            fake.writesMem = true;
            uint64_t per = stores ? loads / stores : loads;
            for (uint64_t l = 0; l < std::min<uint64_t>(per, 3); ++l)
                pendingLoads.push_back({1, fops > iops});
            uint64_t ops_per = stores ? (iops + fops) / stores : 2;
            for (uint64_t o = 0; o < std::min<uint64_t>(ops_per, 3); ++o)
                pendingOps.push_back(Opcode::Add);
            pendingFp = fops > iops;
            emitStore(fake, ctx, out);
        }
        return;
    }

    for (const auto &d : block.code) {
        if (d.isControl)
            continue;
        switch (d.op) {
          case Opcode::Load:
            pendingLoads.push_back({d.missClass, d.type == Type::F64});
            if (d.type == Type::F64)
                pendingFp = true;
            ++stats_.coveredInstrs;
            break;
          case Opcode::Store:
            ++stats_.coveredInstrs;
            emitStore(d, ctx, out);
            break;
          case Opcode::MovImm:
          case Opcode::Mov:
            ++stats_.coveredInstrs; // folded into constants/operands
            break;
          case Opcode::CmpEq:
          case Opcode::CmpNe:
          case Opcode::CmpLt:
          case Opcode::CmpLe:
          case Opcode::CmpGt:
          case Opcode::CmpGe:
            // Comparison work is regenerated by the control structures
            // (loop bounds, if-conditions).
            ++stats_.coveredInstrs;
            break;
          case Opcode::CvtIF:
          case Opcode::CvtFI:
            pendingFp = true;
            ++stats_.coveredInstrs;
            break;
          case Opcode::Call:
          case Opcode::Print:
          case Opcode::Nop:
            // Not representable as data statements: structural or I/O.
            // The work they stood for accrues as class deficits that
            // later statements pay back (the paper's compensation).
            flushPending(ctx, out);
            ++stats_.uncoveredInstrs;
            ++intOpDeficit;
            if (d.op == Opcode::Call)
                ++storeDeficit; // caller-side argument traffic
            break;
          default:
            // Arithmetic.
            pendingOps.push_back(d.op);
            if (d.type == Type::F64 || d.op == Opcode::FAdd ||
                d.op == Opcode::FSub || d.op == Opcode::FMul ||
                d.op == Opcode::FDiv || d.op == Opcode::FNeg)
                pendingFp = true;
            ++stats_.coveredInstrs;
            break;
        }
        if (pendingLoads.size() >
                static_cast<size_t>(2 * opts.maxOperandsPerStatement) ||
            pendingOps.size() > 6)
            flushPending(ctx, out);
    }
    flushPending(ctx, out);
    compensate(ctx, out);

    // Occasionally store the loop iterator (the paper's mStream0[6]=i;).
    if (loop_depth > 0 && rng.nextBool(0.10)) {
        streams.use(0, false);
        out.push_back(strprintf("mStream0[%llu] = (unsigned int)%s;",
                                static_cast<unsigned long long>(
                                    rng.nextBounded(64)),
                                ctx.iteratorName(loop_depth).c_str()));
        ++stats_.statements;
    }
}

void
PatternCodegen::emitStore(const InstrDescriptor &store, FunctionCtx &ctx,
                          std::vector<std::string> &out)
{
    bool fp = store.type == Type::F64;

    // Count accesses per (class, fp) in this statement for the index
    // advances: the store plus every memory operand.
    std::vector<std::pair<int, bool>> classes;
    auto bump = [&](int cls, bool f) {
        classes.emplace_back(cls, f);
    };
    bump(store.missClass, fp);

    // Choose operands: memory loads first (honouring pending loads and
    // the load deficit), then constants/temps/iterator.
    size_t terms = std::min<size_t>(
        pendingOps.size() + 1,
        static_cast<size_t>(opts.maxOperandsPerStatement) + 1);
    if (terms < 1)
        terms = 1;

    std::vector<Operand> operands;
    std::vector<int> slot_of_class(profile::numMissClasses * 2, 1);
    auto slotFor = [&](int cls, bool f) {
        return slot_of_class[static_cast<size_t>(cls) * 2 + (f ? 1 : 0)]++;
    };
    while (operands.size() < terms && !pendingLoads.empty()) {
        PendingLoad pl = pendingLoads.front();
        pendingLoads.erase(pendingLoads.begin());
        operands.push_back(memOperand(pl.missClass, pl.isFp, ctx, out,
                                      slotFor(pl.missClass, pl.isFp)));
        bump(pl.missClass, pl.isFp);
    }
    // Spend the load deficit on extra memory operands (the paper's
    // "generate load-load-arith-store instead of load-arith-store").
    while (operands.size() < terms && loadDeficit > 0) {
        operands.push_back(
            memOperand(1, fp, ctx, out, slotFor(1, fp)));
        bump(1, fp);
        --loadDeficit;
    }
    while (operands.size() < terms) {
        double roll = rng.nextDouble();
        Operand op;
        op.isFp = fp;
        if (roll < 0.55) {
            op.expr = fp ? strprintf("%llu.%llu",
                                     static_cast<unsigned long long>(
                                         rng.nextBounded(16)),
                                     static_cast<unsigned long long>(
                                         1 + rng.nextBounded(9)))
                         : strprintf("%llu",
                                     static_cast<unsigned long long>(
                                         1 + rng.nextBounded(255)));
        } else if (roll < 0.85) {
            op.expr = fp ? fpTemp(ctx) : intTemp(ctx);
        } else {
            op.expr = fp ? fpTemp(ctx) : intTemp(ctx);
        }
        operands.push_back(std::move(op));
    }

    // Index-advance statements (one per distinct class used).
    std::sort(classes.begin(), classes.end());
    for (size_t i = 0; i < classes.size();) {
        size_t j = i;
        while (j < classes.size() && classes[j] == classes[i])
            ++j;
        std::string adv = advanceIndex(classes[i].first, classes[i].second,
                                       j - i, ctx);
        if (!adv.empty()) {
            out.push_back(adv);
            ++stats_.statements;
        }
        i = j;
    }

    // Build the right-hand side.
    std::string rhs;
    for (size_t i = 0; i < operands.size(); ++i) {
        std::string term = operands[i].expr;
        if (fp && !operands[i].isFp)
            term = "(double)" + term;
        if (!fp && operands[i].isFp)
            term = "(unsigned int)" + term;
        if (i == 0) {
            rhs = term;
            continue;
        }
        Opcode op = Opcode::Add;
        if (!pendingOps.empty()) {
            op = pendingOps.front();
            pendingOps.erase(pendingOps.begin());
        }
        bool guard = false;
        const char *tok = opToken(op, fp, guard);
        if (!fp && (op == Opcode::Shl || op == Opcode::Shr)) {
            term = strprintf("%llu", static_cast<unsigned long long>(
                                         1 + rng.nextBounded(7)));
        } else if (guard) {
            term = fp ? "(" + term + " + 1.000001)"
                      : "(" + term + " | 1)";
        }
        rhs = "(" + rhs + " " + tok + " " + term + ")";
    }
    // Surplus operators fold in as constant terms.
    while (!pendingOps.empty()) {
        Opcode op = pendingOps.front();
        pendingOps.erase(pendingOps.begin());
        bool guard = false;
        const char *tok = opToken(op, fp, guard);
        std::string term =
            fp ? strprintf("%llu.5", static_cast<unsigned long long>(
                                         1 + rng.nextBounded(7)))
               : strprintf("%llu", static_cast<unsigned long long>(
                                       1 + rng.nextBounded(31)));
        if (!fp && (op == Opcode::Shl || op == Opcode::Shr))
            term = strprintf("%llu", static_cast<unsigned long long>(
                                         1 + rng.nextBounded(7)));
        rhs = "(" + rhs + " " + tok + " " + term + ")";
    }

    // Left-hand side.
    Operand lhs = memOperand(store.missClass, fp, ctx, out,
                             0 /* store goes to the walk head */);
    out.push_back(lhs.expr + " = " + rhs + ";");
    ++stats_.statements;
    pendingFp = false;
}

void
PatternCodegen::flushPending(FunctionCtx &ctx,
                             std::vector<std::string> &out)
{
    while (!pendingLoads.empty()) {
        size_t take = std::min<size_t>(
            pendingLoads.size(),
            static_cast<size_t>(opts.maxOperandsPerStatement));
        bool fp = false;
        for (size_t i = 0; i < take; ++i)
            fp |= pendingLoads[i].isFp;
        std::string dst = fp ? fpTemp(ctx) : intTemp(ctx);
        std::string rhs;
        std::vector<int> slot_of_class(profile::numMissClasses * 2, 1);
        for (size_t i = 0; i < take; ++i) {
            PendingLoad pl = pendingLoads.front();
            pendingLoads.erase(pendingLoads.begin());
            int slot =
                slot_of_class[static_cast<size_t>(pl.missClass) * 2 +
                              (pl.isFp ? 1 : 0)]++;
            std::string adv = advanceIndex(pl.missClass, pl.isFp, 1, ctx);
            if (!adv.empty()) {
                out.push_back(adv);
                ++stats_.statements;
            }
            Operand op = memOperand(pl.missClass, pl.isFp, ctx, out, slot);
            std::string term = op.expr;
            if (fp && !op.isFp)
                term = "(double)" + term;
            if (!fp && op.isFp)
                term = "(unsigned int)" + term;
            rhs = rhs.empty() ? term : "(" + rhs + " + " + term + ")";
        }
        out.push_back(dst + " = " + rhs + ";");
        ++stats_.statements;
    }
    // Leftover operators become temp arithmetic (register chains).
    while (!pendingOps.empty()) {
        Opcode op = pendingOps.front();
        pendingOps.erase(pendingOps.begin());
        bool fp = pendingFp && (op == Opcode::FAdd || op == Opcode::FSub ||
                                op == Opcode::FMul || op == Opcode::FDiv ||
                                op == Opcode::FNeg);
        bool guard = false;
        const char *tok = opToken(op, fp, guard);
        std::string t = fp ? fpTemp(ctx) : intTemp(ctx);
        std::string cst;
        if (fp) {
            cst = strprintf("%llu.25", static_cast<unsigned long long>(
                                           1 + rng.nextBounded(7)));
        } else if (op == Opcode::Shl || op == Opcode::Shr) {
            cst = strprintf("%llu", static_cast<unsigned long long>(
                                        1 + rng.nextBounded(7)));
        } else if (guard) {
            cst = strprintf("%llu", static_cast<unsigned long long>(
                                        1 + rng.nextBounded(31)));
        } else {
            cst = strprintf("%llu", static_cast<unsigned long long>(
                                        1 + rng.nextBounded(255)));
        }
        out.push_back(t + " = " + t + " " + tok + " " + cst + ";");
        ++stats_.statements;
    }
    pendingFp = false;
}

void
PatternCodegen::compensate(FunctionCtx &ctx, std::vector<std::string> &out)
{
    // Pay back accumulated store deficit with store-immediate patterns
    // (the paper's "generate an additional store pattern").
    int emitted = 0;
    while (storeDeficit > 0 && emitted < 2) {
        streams.use(0, false);
        out.push_back(strprintf(
            "mStream0[%llu] = %llu;",
            static_cast<unsigned long long>(rng.nextBounded(64)),
            static_cast<unsigned long long>(rng.nextBounded(255))));
        ++stats_.statements;
        ++stats_.compensationStmts;
        --storeDeficit;
        ++emitted;
    }
    // Integer-op deficit: temp arithmetic.
    emitted = 0;
    while (intOpDeficit > 1 && emitted < 2) {
        std::string t = intTemp(ctx);
        out.push_back(strprintf(
            "%s = (%s ^ %llu) + %llu;", t.c_str(), t.c_str(),
            static_cast<unsigned long long>(rng.nextBounded(255)),
            static_cast<unsigned long long>(rng.nextBounded(255))));
        ++stats_.statements;
        ++stats_.compensationStmts;
        intOpDeficit -= 2;
        ++emitted;
    }
    (void)ctx;
}

std::vector<std::string>
PatternCodegen::neverTakenBody(FunctionCtx &ctx)
{
    (void)ctx;
    std::vector<std::string> out;
    auto used = streams.used();
    size_t n = 1 + rng.nextBounded(2);
    for (size_t i = 0; i < n; ++i) {
        if (used.empty()) {
            streams.use(0, false);
            out.push_back("printf(\"%u;\", mStream0[0]);");
            continue;
        }
        auto [cls, fp] = used[rng.nextBounded(used.size())];
        if (fp) {
            out.push_back(strprintf(
                "printf(\"%%f;\", %s[%llu]);",
                streams.arrayName(cls, fp).c_str(),
                static_cast<unsigned long long>(rng.nextBounded(16))));
        } else {
            out.push_back(strprintf(
                "printf(\"%%u;\", %s[%llu]);",
                streams.arrayName(cls, fp).c_str(),
                static_cast<unsigned long long>(rng.nextBounded(16))));
        }
    }
    stats_.statements += n;
    return out;
}

} // namespace bsyn::synth
