/**
 * @file
 * Benchmark consolidation (paper §II-B.e): merge the statistical
 * profiles of several workloads into one, so a single synthetic
 * benchmark can stand in for the whole set (also one more layer of
 * information hiding). Used by the Figure 11 experiment.
 */

#ifndef BSYN_SYNTH_CONSOLIDATE_HH
#define BSYN_SYNTH_CONSOLIDATE_HH

#include <vector>

#include "profile/statistical_profile.hh"

namespace bsyn::synth
{

/**
 * Merge @p profiles into one consolidated profile. Block/loop ids are
 * re-based so the SFGLs stay disjoint; function name lists concatenate;
 * instruction mixes and dynamic counts add up.
 */
profile::StatisticalProfile
consolidate(const std::vector<profile::StatisticalProfile> &profiles,
            const std::string &name = "consolidated");

} // namespace bsyn::synth

#endif // BSYN_SYNTH_CONSOLIDATE_HH
