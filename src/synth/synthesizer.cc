#include "synth/synthesizer.hh"

#include <algorithm>

#include "support/error.hh"
#include "synth/scale_down.hh"

namespace bsyn::synth
{

namespace
{

SyntheticBenchmark
generateOnce(const profile::StatisticalProfile &prof, uint64_t r,
             const SynthesisOptions &opts)
{
    Rng rng(opts.seed ^ (r * 0x9e3779b97f4a7c15ULL));
    profile::Sfgl scaled = scaleDown(prof.sfgl, r);

    // Big (consolidated) profiles must split across more functions:
    // recompiling the clone is part of its job description, and a
    // compiler's per-function analyses scale super-linearly, so a
    // 100k-instruction main() would be as unusable for compiler teams
    // as it would be unrealistic.
    SkeletonOptions sk = opts.skeleton;
    size_t live_blocks = 0;
    for (const auto &b : scaled.blocks)
        if (b.execCount > 0)
            ++live_blocks;
    int adaptive =
        static_cast<int>(std::min<size_t>(64, live_blocks / 12));
    sk.maxFunctions = std::max(sk.maxFunctions, adaptive);

    Skeleton skeleton = buildSkeleton(scaled, rng, sk);
    EmitResult emitted = emitC(scaled, skeleton, rng, opts.emitter);

    SyntheticBenchmark syn;
    syn.name = prof.workloadName + "_syn";
    syn.cSource = std::move(emitted.source);
    syn.reductionFactor = r;
    syn.patternStats = emitted.patternStats;
    return syn;
}

} // namespace

SyntheticBenchmark
synthesize(const profile::StatisticalProfile &prof,
           const SynthesisOptions &opts, const MeasureFn &measure)
{
    uint64_t r = opts.reductionFactor
                     ? opts.reductionFactor
                     : chooseReductionFactor(prof.dynamicInstructions,
                                             opts.targetInstructions);
    SyntheticBenchmark syn = generateOnce(prof, r, opts);

    if (!measure || opts.calibrationRounds <= 0 ||
        opts.reductionFactor != 0)
        return syn;

    // Calibration: the analytic R misses when control structure (loop
    // overheads, guards, index advances) shifts the clone's size;
    // remeasure and retune, as the paper does empirically.
    for (int round = 0; round < opts.calibrationRounds; ++round) {
        uint64_t measured = measure(syn.cSource);
        if (measured == 0)
            break;
        double ratio = double(measured) / double(opts.targetInstructions);
        if (ratio < 2.0 && ratio > 0.5)
            break; // close enough (within 2x)
        uint64_t new_r = std::clamp<uint64_t>(
            static_cast<uint64_t>(double(r) * ratio + 0.5), 1, 250);
        if (new_r == r)
            break;
        r = new_r;
        syn = generateOnce(prof, r, opts);
    }
    return syn;
}

} // namespace bsyn::synth
