#include "synth/synthesizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hh"
#include "synth/scale_down.hh"

namespace bsyn::synth
{

namespace
{

/** Skeleton knobs for one (possibly phase-scoped) scaled SFGL. Big
 *  (consolidated) profiles must split across more functions:
 *  recompiling the clone is part of its job description, and a
 *  compiler's per-function analyses scale super-linearly, so a
 *  100k-instruction main() would be as unusable for compiler teams as
 *  it would be unrealistic. */
SkeletonOptions
skeletonOptionsFor(const profile::Sfgl &scaled,
                   const SynthesisOptions &opts)
{
    SkeletonOptions sk = opts.skeleton;
    size_t live_blocks = 0;
    for (const auto &b : scaled.blocks)
        if (b.execCount > 0)
            ++live_blocks;
    int adaptive =
        static_cast<int>(std::min<size_t>(64, live_blocks / 12));
    sk.maxFunctions = std::max(sk.maxFunctions, adaptive);
    return sk;
}

SyntheticBenchmark
generateOnce(const profile::StatisticalProfile &prof, uint64_t r,
             const SynthesisOptions &opts)
{
    Rng rng(opts.seed ^ (r * 0x9e3779b97f4a7c15ULL));

    SyntheticBenchmark syn;
    syn.name = prof.workloadName + "_syn";
    syn.reductionFactor = r;

    bool multi = opts.phaseAware && prof.multiPhase() &&
                 prof.phases.size() <=
                     static_cast<size_t>(std::max(1, opts.maxPhases));
    if (!multi) {
        // Aggregate path — code-identical to pre-phase synthesis, so
        // single-phase workloads keep producing byte-identical clones.
        profile::Sfgl scaled = scaleDown(prof.sfgl, r);
        Skeleton skeleton =
            buildSkeleton(scaled, rng, skeletonOptionsFor(scaled, opts));
        EmitResult emitted = emitC(scaled, skeleton, rng, opts.emitter);
        syn.cSource = std::move(emitted.source);
        syn.patternStats = emitted.patternStats;
        return syn;
    }

    // Phase-aware path: every phase is scaled by the same global R (the
    // phase instruction counts sum to the aggregate, so the clone's
    // total budget — and the calibration ladder tuning it — is
    // unchanged), then gets its own skeleton, stitched into one file
    // behind a main() that drives the phases in profile order.
    std::vector<profile::Sfgl> scaled;
    scaled.reserve(prof.phases.size());
    for (const auto &ph : prof.phases)
        scaled.push_back(scaleDown(ph.sfgl, r));

    std::vector<Skeleton> skeletons;
    skeletons.reserve(scaled.size());
    for (size_t i = 0; i < scaled.size(); ++i) {
        SkeletonOptions sk = skeletonOptionsFor(scaled[i], opts);
        sk.funcPrefix = "p" + std::to_string(i) + "f";
        skeletons.push_back(buildSkeleton(scaled[i], rng, sk));
    }

    std::vector<EmitPhase> phases(scaled.size());
    for (size_t i = 0; i < scaled.size(); ++i)
        phases[i] = {&scaled[i], &skeletons[i]};
    EmitResult emitted = emitCPhases(phases, rng, opts.emitter);

    syn.cSource = std::move(emitted.source);
    syn.phases = static_cast<uint32_t>(prof.phases.size());
    syn.patternStats = emitted.patternStats;
    return syn;
}

} // namespace

SyntheticBenchmark
synthesize(const profile::StatisticalProfile &prof,
           const SynthesisOptions &opts, const MeasureFn &measure,
           const ParallelFn &parallel)
{
    uint64_t r = opts.reductionFactor
                     ? opts.reductionFactor
                     : chooseReductionFactor(prof.dynamicInstructions,
                                             opts.targetInstructions);
    SyntheticBenchmark syn = generateOnce(prof, r, opts);

    if (!measure || opts.calibrationRounds <= 0 ||
        opts.reductionFactor != 0)
        return syn;

    // Calibration: the analytic R misses when control structure (loop
    // overheads, guards, index advances) shifts the clone's size —
    // the paper retunes R empirically. Instead of a serial
    // remeasure-retune chain (whose every round depends on the one
    // before), fan one deterministic ladder of candidates — the
    // analytic retune R*ratio plus a geometric bracket around it,
    // wider for more calibrationRounds — and keep whichever measured
    // count lands closest to the budget. The candidate set and the
    // pick depend only on measurements, never on scheduling, so the
    // result is byte-identical serial, parallel, alone or in a batch.
    uint64_t measured = measure(syn.cSource);
    if (measured == 0)
        return syn;
    double ratio = double(measured) / double(opts.targetInstructions);
    if (ratio < 2.0 && ratio > 0.5)
        return syn; // close enough (within 2x)

    auto clampR = [](double v) {
        return std::clamp<uint64_t>(
            static_cast<uint64_t>(v + 0.5), 1, 250);
    };
    uint64_t base = clampR(double(r) * ratio);
    std::vector<uint64_t> ladder;
    auto push = [&](uint64_t cand) {
        if (cand == r)
            return; // already generated and measured
        for (uint64_t seen : ladder)
            if (seen == cand)
                return;
        ladder.push_back(cand);
    };
    push(base);
    double spread = 1.0;
    for (int round = 1; round < opts.calibrationRounds; ++round) {
        spread *= 1.5;
        push(clampR(double(base) * spread));
        push(clampR(double(base) / spread));
    }
    if (ladder.empty())
        return syn;

    std::vector<SyntheticBenchmark> cands(ladder.size());
    std::vector<uint64_t> counts(ladder.size(), 0);
    auto evalOne = [&](size_t i) {
        cands[i] = generateOnce(prof, ladder[i], opts);
        counts[i] = measure(cands[i].cSource);
    };
    if (parallel && ladder.size() > 1)
        parallel(ladder.size(), evalOne);
    else
        for (size_t i = 0; i < ladder.size(); ++i)
            evalOne(i);

    // Pick by log-distance to the budget; the initial (r, measured)
    // pair competes too, so the fan-out can only improve on it. Ties
    // go to the smaller R (cheaper clone).
    auto score = [&](uint64_t count) {
        if (count == 0)
            return std::numeric_limits<double>::infinity();
        return std::fabs(
            std::log(double(count) / double(opts.targetInstructions)));
    };
    double bestScore = score(measured);
    size_t best = ladder.size(); // sentinel: keep the initial clone
    for (size_t i = 0; i < ladder.size(); ++i) {
        double s = score(counts[i]);
        if (s < bestScore ||
            (s == bestScore && best < ladder.size() &&
             ladder[i] < ladder[best]) ||
            (s == bestScore && best == ladder.size() &&
             ladder[i] < r)) {
            bestScore = s;
            best = i;
        }
    }
    return best < ladder.size() ? std::move(cands[best])
                                : std::move(syn);
}

} // namespace bsyn::synth
