#include "synth/scale_down.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/error.hh"

namespace bsyn::synth
{

using profile::Sfgl;
using profile::SfglBlock;
using profile::SfglLoop;

profile::Sfgl
scaleDown(const Sfgl &sfgl, uint64_t reduction_factor)
{
    BSYN_ASSERT(reduction_factor >= 1, "reduction factor must be >= 1");
    Sfgl out = sfgl;
    uint64_t r = reduction_factor;

    // Block execution counts: integer division drops blocks with
    // execCount < R (the paper's removal rule).
    for (auto &b : out.blocks)
        b.execCount = b.execCount / r;

    // Edge counts scale the same way; edges into dropped blocks vanish.
    for (auto &b : out.blocks) {
        std::vector<profile::SfglEdge> kept;
        for (auto e : b.succs) {
            e.count = e.count / r;
            if (e.count > 0 &&
                out.blocks[static_cast<size_t>(e.to)].execCount > 0)
                kept.push_back(e);
        }
        b.succs = std::move(kept);
    }

    // Loop annotations: recompute entries from the scaled edge counts;
    // iterations absorb whatever the entry count could not.
    std::vector<SfglLoop> kept_loops;
    for (auto l : out.loops) {
        const SfglBlock &header =
            out.blocks[static_cast<size_t>(l.header)];
        if (header.execCount == 0)
            continue; // entire loop dropped
        std::set<int> members(l.blocks.begin(), l.blocks.end());
        uint64_t entries = 0;
        for (const auto &b : out.blocks) {
            if (members.count(b.id))
                continue;
            for (const auto &e : b.succs)
                if (e.to == l.header)
                    entries += e.count;
        }
        if (entries == 0)
            entries = 1; // outer scaling exhausted: keep one entry
        l.entries = entries;
        l.avgIterations = std::max(
            1.0, double(header.execCount) / double(entries));
        kept_loops.push_back(std::move(l));
    }
    out.loops = std::move(kept_loops);

    // Re-derive innermost-loop membership (ids changed).
    for (auto &b : out.blocks)
        b.loopId = -1;
    for (size_t i = 0; i < out.loops.size(); ++i) {
        for (int bid : out.loops[i].blocks) {
            SfglBlock &b = out.blocks[static_cast<size_t>(bid)];
            if (b.loopId < 0 ||
                out.loops[static_cast<size_t>(b.loopId)].blocks.size() >
                    out.loops[i].blocks.size())
                b.loopId = static_cast<int>(i);
        }
    }
    // Fix loop ids and parents after the drop-compaction above.
    std::vector<int> old_to_new(sfgl.loops.size(), -1);
    {
        size_t n = 0;
        for (const auto &l : out.loops) {
            old_to_new[static_cast<size_t>(l.id)] = static_cast<int>(n);
            ++n;
        }
    }
    for (auto &l : out.loops) {
        l.id = old_to_new[static_cast<size_t>(l.id)];
        if (l.parent >= 0)
            l.parent = old_to_new[static_cast<size_t>(l.parent)];
    }
    return out;
}

uint64_t
chooseReductionFactor(uint64_t dynamic_instructions,
                      uint64_t target_instructions)
{
    if (target_instructions == 0 ||
        dynamic_instructions <= target_instructions)
        return 1;
    uint64_t r = (dynamic_instructions + target_instructions - 1) /
                 target_instructions;
    return std::min<uint64_t>(r, 250); // paper: R ranges from 1 to 250
}

} // namespace bsyn::synth
