#include "synth/memory_streams.hh"

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::synth
{

StreamPlan::StreamPlan(uint64_t stream_elems) : streamElems(stream_elems)
{
    BSYN_ASSERT((stream_elems & (stream_elems - 1)) == 0,
                "stream size must be a power of two");
}

void
StreamPlan::use(int miss_class, bool is_fp)
{
    BSYN_ASSERT(miss_class >= 0 && miss_class < profile::numMissClasses,
                "bad miss class %d", miss_class);
    if (is_fp)
        fpUsed[static_cast<size_t>(miss_class)] = true;
    else
        intUsed[static_cast<size_t>(miss_class)] = true;
}

std::string
StreamPlan::arrayName(int miss_class, bool is_fp) const
{
    return strprintf("%sStream%d", is_fp ? "d" : "m", miss_class);
}

std::string
StreamPlan::indexVar(int miss_class, bool is_fp) const
{
    return strprintf("%sx%d", is_fp ? "f" : "", miss_class);
}

uint64_t
StreamPlan::strideElems(int miss_class, bool is_fp) const
{
    if (miss_class == 0)
        return 0;
    if (!is_fp)
        return static_cast<uint64_t>(miss_class); // 4*class bytes / 4
    // Doubles are 8 bytes: halve the element stride, rounding up so a
    // non-zero class keeps a non-zero stride.
    return static_cast<uint64_t>((miss_class + 1) / 2);
}

std::vector<std::string>
StreamPlan::globalDecls() const
{
    std::vector<std::string> out;
    for (int c = 0; c < profile::numMissClasses; ++c) {
        uint64_t n = c == 0 ? 64 : streamElems;
        if (intUsed[static_cast<size_t>(c)])
            out.push_back(strprintf("unsigned int %s[%llu];",
                                    arrayName(c, false).c_str(),
                                    static_cast<unsigned long long>(n)));
        if (fpUsed[static_cast<size_t>(c)])
            out.push_back(strprintf("double %s[%llu];",
                                    arrayName(c, true).c_str(),
                                    static_cast<unsigned long long>(n)));
    }
    return out;
}

std::vector<std::string>
StreamPlan::indexDecls() const
{
    std::vector<std::string> out;
    for (int c = 1; c < profile::numMissClasses; ++c) {
        if (intUsed[static_cast<size_t>(c)])
            out.push_back(
                strprintf("int %s = 0;", indexVar(c, false).c_str()));
        if (fpUsed[static_cast<size_t>(c)])
            out.push_back(
                strprintf("int %s = 0;", indexVar(c, true).c_str()));
    }
    return out;
}

std::vector<std::pair<int, bool>>
StreamPlan::used() const
{
    std::vector<std::pair<int, bool>> out;
    for (int c = 0; c < profile::numMissClasses; ++c) {
        if (intUsed[static_cast<size_t>(c)])
            out.emplace_back(c, false);
        if (fpUsed[static_cast<size_t>(c)])
            out.emplace_back(c, true);
    }
    return out;
}

std::string
StreamPlan::checksumExpr() const
{
    std::vector<std::string> terms;
    for (const auto &[c, fp] : used()) {
        if (fp)
            terms.push_back(
                strprintf("(unsigned int)%s[7]", arrayName(c, fp).c_str()));
        else
            terms.push_back(strprintf("%s[7]", arrayName(c, fp).c_str()));
    }
    if (terms.empty())
        return "0";
    return join(terms, " + ");
}

} // namespace bsyn::synth
