/**
 * @file
 * Programmatic statistical-profile construction — the paper's "generate
 * emerging workloads" application (§II-B.c): instead of profiling an
 * existing program, an architect specifies the behaviour a future
 * workload is expected to have (loop structure, instruction mix, memory
 * locality classes, branch behaviour) and the synthesizer turns that
 * specification directly into a runnable C benchmark.
 */

#ifndef BSYN_SYNTH_PROFILE_BUILDER_HH
#define BSYN_SYNTH_PROFILE_BUILDER_HH

#include "profile/statistical_profile.hh"

namespace bsyn::synth
{

/** Composition of one specified basic block. */
struct BlockSpec
{
    uint64_t execCount = 1000;

    int intOps = 4;     ///< integer ALU operations per execution
    int fpOps = 0;      ///< floating-point operations per execution
    int loads = 2;      ///< memory reads per execution
    int stores = 1;     ///< memory writes per execution
    int loadMissClass = 0;  ///< Table I class of the reads
    int storeMissClass = 0; ///< Table I class of the writes
    bool fpMemory = false;  ///< double streams instead of int streams

    /** Conditional terminator behaviour (ignored when not branchy). */
    bool endsInBranch = false;
    double takenRate = 0.5;
    double transitionRate = 0.5; ///< medium = hard to predict
};

/**
 * Builds a StatisticalProfile by declaration. Loops may nest; blocks
 * attach to a loop (or to the top level with loop = -1).
 */
class ProfileBuilder
{
  public:
    explicit ProfileBuilder(std::string name);

    /**
     * Declare a loop.
     *
     * @param avg_iterations iterations per entry.
     * @param entries times the loop is entered.
     * @param parent enclosing loop id, or -1 for top level.
     * @return the loop id.
     */
    int addLoop(double avg_iterations, uint64_t entries, int parent = -1);

    /**
     * Declare a basic block inside @p loop (-1 = top level).
     * @return the block id.
     */
    int addBlock(int loop, const BlockSpec &spec);

    /** Finalize into a profile the synthesizer accepts. */
    profile::StatisticalProfile build() const;

  private:
    std::string workloadName;

    struct LoopDecl
    {
        double iterations;
        uint64_t entries;
        int parent;
    };
    std::vector<LoopDecl> loops;
    std::vector<std::pair<int, BlockSpec>> blocks; ///< (loop, spec)
};

} // namespace bsyn::synth

#endif // BSYN_SYNTH_PROFILE_BUILDER_HH
