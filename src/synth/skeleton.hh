/**
 * @file
 * Skeleton generation (paper §III-B.2/3): starting from the scaled-down
 * SFGL, repeatedly pick a random basic block pro rata its remaining
 * execution count; if it belongs to a loop, generate the whole
 * (outermost-first, nested) loop structure; otherwise build a
 * straight-line chain following the dominant control-flow edges.
 * Execution counts are consumed as structures are generated; the process
 * ends when the SFGL is empty. Finally the generated structures are
 * organized into functions that deliberately do NOT correspond to the
 * original program's functions (information hiding).
 */

#ifndef BSYN_SYNTH_SKELETON_HH
#define BSYN_SYNTH_SKELETON_HH

#include <memory>
#include <vector>

#include "profile/sfgl.hh"
#include "support/rng.hh"

namespace bsyn::synth
{

/** A node of the synthetic benchmark's structural skeleton. */
struct SynNode
{
    enum class Kind : uint8_t
    {
        Block,  ///< one basic block's worth of statements
        Loop,   ///< counted for-loop
        If,     ///< conditional region (easy or hard branch model)
        Repeat, ///< residual repetition wrapper
    };

    Kind kind = Kind::Block;

    // Block
    int sfglBlock = -1;

    // Loop / Repeat
    uint64_t iterations = 0;
    std::vector<SynNode> body;

    // If
    double execProb = 1.0;       ///< probability the region executes
    bool easyBranch = true;      ///< easy: guarded never-taken else path
    double transitionRate = 0.0; ///< hard-branch modulo period source
};

/** One synthetic function: a sequence of top-level structures. */
struct SynFunction
{
    std::string name;
    std::vector<SynNode> roots;
};

/** The full skeleton. */
struct Skeleton
{
    std::vector<SynFunction> funcs; ///< called in order by main()
};

/** Skeleton-generation knobs. */
struct SkeletonOptions
{
    /** Max distinct synthetic functions (paper: function assignment is
     *  randomized, not mirrored from the original). */
    int maxFunctions = 8;

    /** Synthetic function name prefix. Phase-aware synthesis stitches
     *  one skeleton per phase into a single file, so each phase gets a
     *  distinct prefix ("p0f", "p1f", ...) to keep names unique. */
    std::string funcPrefix = "f";

    /** Use the loop annotation (the "L" in SFGL). When false, loops are
     *  flattened into Repeat wrappers — the prior-work baseline the
     *  paper compares against (ablation). */
    bool useLoopInfo = true;

    /** Member blocks with execution probability below this threshold are
     *  modeled as never-executed guarded paths. */
    double coldThreshold = 0.05;

    /** Probability above which a member block is emitted unconditionally. */
    double hotThreshold = 0.95;
};

/**
 * Generate the skeleton from a scaled-down SFGL.
 *
 * @param scaled the scaled-down SFGL (consumed counts are internal).
 * @param rng seeded generator (drives all random choices).
 * @param opts structure knobs.
 */
Skeleton buildSkeleton(const profile::Sfgl &scaled, Rng &rng,
                       const SkeletonOptions &opts = {});

} // namespace bsyn::synth

#endif // BSYN_SYNTH_SKELETON_HH
