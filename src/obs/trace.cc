#include "obs/trace.hh"

#include <atomic>
#include <chrono>
#include <mutex>

#include "support/json.hh"
#include "support/string_util.hh"

namespace bsyn::obs
{

namespace
{

using Clock = std::chrono::steady_clock;

struct Event
{
    const char *name;
    char phase; // 'X' complete, 'i' instant
    uint64_t tsNs;
    uint64_t durNs;
    uint32_t tid;
    std::vector<TraceArg> args;
};

struct TraceState
{
    std::atomic<bool> enabled{false};
    std::mutex mtx; ///< guards path/start/events
    std::string path;
    Clock::time_point start;
    std::vector<Event> events;
};

TraceState &
state()
{
    static TraceState s;
    return s;
}

/** Small stable per-thread id for the "tid" field (1-based, in span
 *  first-use order — steadier to read in Perfetto than pthread ids). */
uint32_t
threadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local uint32_t id = next.fetch_add(1);
    return id;
}

void
push(Event ev)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    // A span may outlive the session that saw it armed; drop it.
    if (!s.enabled.load(std::memory_order_relaxed))
        return;
    s.events.push_back(std::move(ev));
}

} // namespace

bool
Trace::enabled()
{
    return state().enabled.load(std::memory_order_relaxed);
}

void
Trace::begin(const std::string &path)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    s.path = path;
    s.start = Clock::now();
    s.events.clear();
    s.enabled.store(true, std::memory_order_relaxed);
}

uint64_t
Trace::nowNs()
{
    TraceState &s = state();
    if (!s.enabled.load(std::memory_order_relaxed))
        return 0;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - s.start)
        .count();
}

void
Trace::complete(const char *name, uint64_t startNs, uint64_t durNs,
                std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    push(Event{name, 'X', startNs, durNs, threadId(), std::move(args)});
}

void
Trace::instant(const char *name, std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    push(Event{name, 'i', nowNs(), 0, threadId(), std::move(args)});
}

size_t
Trace::pendingEvents()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mtx);
    return s.events.size();
}

std::string
Trace::end()
{
    TraceState &s = state();
    std::string path;
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lock(s.mtx);
        if (!s.enabled.load(std::memory_order_relaxed))
            return "";
        s.enabled.store(false, std::memory_order_relaxed);
        path = std::move(s.path);
        events = std::move(s.events);
        s.path.clear();
        s.events.clear();
    }

    Json list = Json::array();
    for (const Event &ev : events) {
        Json one = Json::object();
        one.set("name", Json(ev.name));
        one.set("cat", Json("stage"));
        one.set("ph", Json(std::string(1, ev.phase)));
        // Chrome trace timestamps are microseconds.
        one.set("ts", Json(double(ev.tsNs) / 1000.0));
        if (ev.phase == 'X')
            one.set("dur", Json(double(ev.durNs) / 1000.0));
        else
            one.set("s", Json("t")); // instant scope: thread
        one.set("pid", Json(1));
        one.set("tid", Json(static_cast<uint64_t>(ev.tid)));
        if (!ev.args.empty()) {
            Json args = Json::object();
            for (const auto &[k, v] : ev.args)
                args.set(k, Json(v));
            one.set("args", std::move(args));
        }
        list.push(std::move(one));
    }
    Json root = Json::object();
    root.set("traceEvents", std::move(list));
    root.set("displayTimeUnit", Json("ms"));
    writeFile(path, root.dump(-1) + "\n");
    return path;
}

Span::Span(const char *name) : name_(name)
{
    if (!Trace::enabled())
        return;
    active_ = true;
    startNs_ = Trace::nowNs();
}

Span::Span(const char *name, const char *key, std::string value)
    : Span(name)
{
    arg(key, std::move(value));
}

void
Span::arg(const char *key, std::string value)
{
    if (active_)
        args_.emplace_back(key, std::move(value));
}

Span::~Span()
{
    if (!active_)
        return;
    uint64_t end = Trace::nowNs();
    Trace::complete(name_, startNs_,
                    end > startNs_ ? end - startNs_ : 0,
                    std::move(args_));
}

} // namespace bsyn::obs
