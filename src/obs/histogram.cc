#include "obs/histogram.hh"

#include <algorithm>

namespace bsyn::obs
{

namespace
{

/** Midpoint of the value range bucket @p idx covers. */
uint64_t
bucketValue(size_t idx)
{
    constexpr size_t kSubBits = LatencyHistogram::kSubBits;
    constexpr uint64_t kSubs = 1ull << kSubBits;
    if (idx < kSubs)
        return idx;
    uint64_t exp = idx >> kSubBits;
    uint64_t sub = idx & (kSubs - 1);
    uint64_t lower = (kSubs + sub) << (exp - 1);
    uint64_t width = 1ull << (exp - 1);
    return lower + width / 2;
}

} // namespace

uint64_t
LatencyHistogram::quantile(double q) const
{
    uint64_t total = count_.load();
    if (total == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    // Rank of the q-th value, 1-based; q = 1 is the maximum, which we
    // report exactly rather than at bucket resolution.
    uint64_t rank = static_cast<uint64_t>(q * double(total - 1)) + 1;
    if (rank >= total)
        return max_.load();
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i].load();
        // A bucket midpoint can overshoot the largest value actually
        // recorded; keep quantile(q) <= max() always.
        if (seen >= rank)
            return std::min(bucketValue(i), max_.load());
    }
    return max_.load();
}

void
LatencyHistogram::reset()
{
    for (auto &c : counts_)
        c.store(0);
    count_.store(0);
    sum_.store(0);
    max_.store(0);
}

} // namespace bsyn::obs
