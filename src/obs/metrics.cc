#include "obs/metrics.hh"

namespace bsyn::obs
{

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        if (parent_)
            slot->parent_ = &parent_->counter(name);
    }
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        if (parent_)
            slot->parent_ = &parent_->gauge(name);
    }
    return *slot;
}

LatencyHistogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<LatencyHistogram>();
        if (parent_)
            slot->chainTo(&parent_->histogram(name));
    }
    return *slot;
}

Json
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    Json root = Json::object();
    root.set("schema", Json("bsyn.metrics.v1"));

    Json counters = Json::object();
    for (const auto &[name, c] : counters_)
        counters.set(name, Json(c->value()));
    root.set("counters", std::move(counters));

    Json gauges = Json::object();
    for (const auto &[name, g] : gauges_)
        gauges.set(name, Json(g->value()));
    root.set("gauges", std::move(gauges));

    Json histograms = Json::object();
    for (const auto &[name, h] : histograms_) {
        Json one = Json::object();
        one.set("count", Json(h->count()));
        one.set("meanNs", Json(h->mean()));
        one.set("maxNs", Json(h->max()));
        one.set("p50Ns", Json(h->quantile(0.50)));
        one.set("p99Ns", Json(h->quantile(0.99)));
        one.set("p999Ns", Json(h->quantile(0.999)));
        histograms.set(name, std::move(one));
    }
    root.set("histograms", std::move(histograms));
    return root;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto &[name, c] : counters_)
        c->value_.store(0);
    for (auto &[name, g] : gauges_)
        g->value_.store(0);
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace bsyn::obs
