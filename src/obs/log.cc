#include "obs/log.hh"

#include <atomic>
#include <cstdarg>
#include <vector>
#include <unistd.h>

#include "support/error.hh"

namespace bsyn::obs
{

namespace
{

std::atomic<int> gLevel{static_cast<int>(LogLevel::Info)};
std::atomic<std::FILE *> gSink{nullptr}; ///< null = stderr

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(gLevel.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    gLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) >=
           gLevel.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "info")
        return LogLevel::Info;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "error")
        return LogLevel::Error;
    if (name == "silent" || name == "quiet")
        return LogLevel::Silent;
    fatal("unknown log level '%s' (want debug|info|warn|error|silent)",
          name.c_str());
}

void
setLogSink(std::FILE *f)
{
    gSink.store(f, std::memory_order_relaxed);
}

void
logf(LogLevel level, const char *fmt, ...)
{
    if (!logEnabled(level))
        return;

    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0) {
        va_end(args);
        return;
    }
    std::string buf(static_cast<size_t>(needed) + 1, '\0');
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    buf.resize(static_cast<size_t>(needed));
    if (buf.empty() || buf.back() != '\n')
        buf.push_back('\n');

    // One write(2) per record is what makes concurrent records land
    // whole: POSIX serializes each write, while consecutive stdio
    // calls from two threads may interleave.
    std::FILE *sink = gSink.load(std::memory_order_relaxed);
    int fd = fileno(sink ? sink : stderr);
    size_t off = 0;
    while (off < buf.size()) {
        ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
        if (n <= 0)
            break; // a failing log sink must never take the run down
        off += static_cast<size_t>(n);
    }
}

} // namespace bsyn::obs
