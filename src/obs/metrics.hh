/**
 * @file
 * The process-wide metrics registry: named counters, gauges and latency
 * histograms with O(1), lock-free hot-path recording. Naming a metric
 * takes a mutex once (at setup, when the handle is created); every
 * update after that is a relaxed atomic on the handle.
 *
 * Registries nest: a component that needs its own scoped view — a
 * pipeline::Session's cache counters, a serve::Worker's job counters, a
 * replay run's stage histograms — creates a local Registry whose
 * metrics *chain* to the same-named metric in a parent registry
 * (ultimately Registry::global()), so one update lands in every scope
 * at once. That keeps per-session/per-run accounting exact while the
 * global registry stays the one scrape point for the whole process.
 *
 * Metric names follow "component.noun.verb" ("pipeline.cache.profile.hits",
 * "serve.jobs.processed", "threadpool.tasks.executed"); histogram names
 * describe the measured quantity ("replay.stage.queue"). snapshot()
 * serializes every metric as "bsyn.metrics.v1" JSON with keys in sorted
 * order, so two snapshots of equal state are byte-identical.
 *
 * Observability lives strictly on the bench half of every report:
 * nothing in here may ever feed a results artifact.
 */

#ifndef BSYN_OBS_METRICS_HH
#define BSYN_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.hh"
#include "support/json.hh"

namespace bsyn::obs
{

/** A monotonically increasing named count. */
class Counter
{
  public:
    /** Add @p n. Wait-free; any thread. */
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        if (parent_)
            parent_->add(n);
    }

    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    std::atomic<uint64_t> value_{0};
    Counter *parent_ = nullptr;
};

/** A named instantaneous level (queue depth, backlog size). Chained
 *  set() is last-writer-wins in the parent scope; prefer add() when
 *  several components share one gauge name. */
class Gauge
{
  public:
    void
    set(int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
        if (parent_)
            parent_->set(v);
    }

    void
    add(int64_t d)
    {
        value_.fetch_add(d, std::memory_order_relaxed);
        if (parent_)
            parent_->add(d);
    }

    int64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    friend class Registry;
    std::atomic<int64_t> value_{0};
    Gauge *parent_ = nullptr;
};

/** A namespace of metrics. Handles returned by counter()/gauge()/
 *  histogram() are stable for the registry's lifetime and safe to
 *  update from any thread. */
class Registry
{
  public:
    /** The process-wide registry every local registry chains into. */
    static Registry &global();

    /** A registry whose metrics also forward into @p parent (and
     *  transitively up the chain). null = a detached scope. */
    explicit Registry(Registry *parent = nullptr) : parent_(parent) {}

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find-or-create the named metric. Takes the registry mutex —
     *  call once at setup and keep the handle for the hot path. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    /**
     * Serialize every metric in this scope ("bsyn.metrics.v1"):
     * counters and gauges by value, histograms as count / mean / max /
     * p50 / p99 / p999 (nanoseconds). Keys are sorted, so equal state
     * dumps to equal bytes.
     */
    Json snapshot() const;

    /** Zero every metric in this scope (tests). Parent scopes keep
     *  whatever already flowed up. */
    void reset();

  private:
    Registry *parent_;
    mutable std::mutex mtx_;
    // node-stable maps: handles must survive later insertions.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

} // namespace bsyn::obs

#endif // BSYN_OBS_METRICS_HH
