/**
 * @file
 * The leveled structured logger behind every diagnostic line the
 * framework prints. Each record is formatted completely first and then
 * emitted with a single write(2), so concurrent workers and driver
 * threads can never interleave fragments of two lines — the fix for the
 * garbled multi-thread stderr the raw fprintf calls used to produce.
 *
 * Levels: debug < info < warn < error < silent. The default is info;
 * the CLI maps --log-level / BSYN_LOG onto setLogLevel() and --quiet
 * onto error (progress and warnings off, real errors still shown).
 * Diagnostics only — results artifacts and stdout reports never pass
 * through here.
 */

#ifndef BSYN_OBS_LOG_HH
#define BSYN_OBS_LOG_HH

#include <cstdio>
#include <string>

namespace bsyn::obs
{

enum class LogLevel {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4, ///< threshold only: nothing logs at Silent
};

/** Current threshold (records below it are dropped). */
LogLevel logLevel();

/** Set the threshold. Thread-safe (atomic). */
void setLogLevel(LogLevel level);

/** "debug" / "info" / "warn" / "error" / "silent" (or "quiet") to a
 *  level; fatal() on anything else. */
LogLevel parseLogLevel(const std::string &name);

/** True when a record at @p level would be emitted — guards callers
 *  that would otherwise format expensively for nothing. */
bool logEnabled(LogLevel level);

/**
 * Emit one record at @p level. The message is formatted in full
 * (trailing newline appended if missing) and written with one write(2)
 * to the log sink (stderr by default).
 */
void logf(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Redirect records to @p f (tests); null restores stderr. */
void setLogSink(std::FILE *f);

} // namespace bsyn::obs

#endif // BSYN_OBS_LOG_HH
