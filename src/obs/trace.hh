/**
 * @file
 * Structured stage tracing as Chrome trace-event JSON (the format
 * Perfetto and chrome://tracing open directly). The process holds one
 * trace session: Trace::begin(path) arms it, spans and instants
 * accumulate in memory, Trace::end() serializes everything to the file
 * in one shot.
 *
 * The disabled path is one relaxed atomic load and a branch — a Span
 * constructed while tracing is off touches nothing else, so tracing can
 * stay compiled into every stage entry point at zero practical cost.
 * Tracing is bench-half only by design: span emission must never
 * influence a results artifact.
 *
 * Span names are the pipeline's stage vocabulary: compile / profile /
 * synthesize / timing / cache-probe / spool-claim / queue-wait / merge,
 * plus "workload" (the per-batch-entry parent), "job" (one served spool
 * job) and "arrival" (one replay submission).
 */

#ifndef BSYN_OBS_TRACE_HH
#define BSYN_OBS_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bsyn::obs
{

/** One "key=value" annotation on a trace event. */
using TraceArg = std::pair<std::string, std::string>;

/** The process-wide trace session. All static members are thread-safe. */
class Trace
{
  public:
    /** True while a trace session is armed. One relaxed load. */
    static bool enabled();

    /** Arm tracing; events from now on are kept and written to @p path
     *  by end(). Re-arming discards any unwritten events. */
    static void begin(const std::string &path);

    /** Serialize buffered events to the armed path and disarm.
     *  @return the path written, or "" when tracing was off.
     *  fatal() if the file cannot be written. */
    static std::string end();

    /** Nanoseconds since begin(); 0 when disabled. */
    static uint64_t nowNs();

    /** Record one complete span ("ph":"X") with explicit timestamps —
     *  for durations not tied to a C++ scope (queue waits). */
    static void complete(const char *name, uint64_t startNs,
                         uint64_t durNs, std::vector<TraceArg> args = {});

    /** Record one instant event ("ph":"i") at now. */
    static void instant(const char *name, std::vector<TraceArg> args = {});

    /** Buffered event count (tests). */
    static size_t pendingEvents();
};

/**
 * RAII span over a scope: measures construction-to-destruction and
 * records one complete event. When tracing is off, construction is a
 * load+branch and arg() is a no-op.
 */
class Span
{
  public:
    explicit Span(const char *name);
    Span(const char *name, const char *key, std::string value);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach an annotation (kept only while tracing is on). */
    void arg(const char *key, std::string value);

    bool active() const { return active_; }

  private:
    const char *name_;
    uint64_t startNs_ = 0;
    bool active_ = false;
    std::vector<TraceArg> args_;
};

} // namespace bsyn::obs

#endif // BSYN_OBS_TRACE_HH
