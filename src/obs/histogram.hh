/**
 * @file
 * A lock-free latency histogram shared by the observability layer and
 * the replay engine's hot path. record() is one relaxed fetch_add into
 * a log-bucketed counter array (HdrHistogram-style: power-of-two
 * exponent buckets, 16 linear sub-buckets each, <= 6.25% relative value
 * error), plus count/sum/max atomics — no mutex, no allocation, safe
 * from any number of recording threads concurrently. Quantiles are
 * extracted from a snapshot after the run; they never perturb
 * recording.
 */

#ifndef BSYN_OBS_HISTOGRAM_HH
#define BSYN_OBS_HISTOGRAM_HH

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace bsyn::obs
{

/** Fixed-range (full uint64) lock-free histogram of nanosecond
 *  latencies. */
class LatencyHistogram
{
  public:
    /** 16 exact buckets for values < 16, then 16 sub-buckets per
     *  power of two up to 2^63. */
    static constexpr size_t kSubBits = 4;
    static constexpr size_t kBuckets = (64 - kSubBits + 1) << kSubBits;

    /** Record one value. Wait-free; any thread. */
    void
    record(uint64_t ns)
    {
        counts_[bucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(ns, std::memory_order_relaxed);
        uint64_t seen = max_.load(std::memory_order_relaxed);
        while (ns > seen &&
               !max_.compare_exchange_weak(seen, ns,
                                           std::memory_order_relaxed)) {
        }
        if (parent_)
            parent_->record(ns);
    }

    uint64_t count() const { return count_.load(); }
    uint64_t max() const { return max_.load(); }

    /** Mean recorded value; 0 when empty. */
    double
    mean() const
    {
        uint64_t n = count_.load();
        return n ? double(sum_.load()) / double(n) : 0.0;
    }

    /** Value at quantile @p q in [0, 1] (bucket midpoint; the exact
     *  maximum for q past the last recorded value). 0 when empty. */
    uint64_t quantile(double q) const;

    /** Forward every record() into @p parent too — how a run-local
     *  histogram keeps the process-wide registry's copy in step. */
    void chainTo(LatencyHistogram *parent) { parent_ = parent; }

    /** Zero every bucket and aggregate (tests; not thread-safe against
     *  concurrent recorders). */
    void reset();

    /** Bucket index of @p ns (exposed for tests). */
    static size_t
    bucketOf(uint64_t ns)
    {
        uint64_t v = ns | 1;
        int high = 63 - __builtin_clzll(v);
        if (high < int(kSubBits))
            return size_t(ns);
        size_t exp = size_t(high) - (kSubBits - 1);
        size_t sub = (ns >> (high - int(kSubBits))) & ((1u << kSubBits) - 1);
        return (exp << kSubBits) | sub;
    }

  private:
    std::atomic<uint64_t> counts_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    LatencyHistogram *parent_ = nullptr;
};

} // namespace bsyn::obs

#endif // BSYN_OBS_HISTOGRAM_HH
