#include "ir/printer.hh"

#include "support/string_util.hh"

namespace bsyn::ir
{

namespace
{

std::string
memToString(const MemRef &m)
{
    std::string base = m.symbol == MemRef::frameBase
                           ? std::string("fp")
                           : strprintf("g%d", m.symbol);
    std::string out = "[" + base;
    if (m.indexReg >= 0)
        out += strprintf(" + r%d*%d", m.indexReg, m.scale);
    if (m.offset != 0)
        out += strprintf(" + %d", m.offset);
    return out + "]";
}

} // namespace

std::string
toString(const Instruction &inst)
{
    std::string out = opcodeName(inst.op);
    out += ".";
    out += typeName(inst.type);
    switch (inst.op) {
      case Opcode::MovImm:
        if (inst.type == Type::F64)
            out += strprintf(" r%d, %g", inst.dst, inst.fimm);
        else
            out += strprintf(" r%d, %lld", inst.dst,
                             static_cast<long long>(inst.imm));
        break;
      case Opcode::Load:
        out += strprintf(" r%d, ", inst.dst) + memToString(inst.mem);
        break;
      case Opcode::Store:
        out += " " + memToString(inst.mem) + strprintf(", r%d", inst.src0);
        break;
      case Opcode::Call: {
        std::vector<std::string> args;
        for (int a : inst.args)
            args.push_back(strprintf("r%d", a));
        if (inst.dst >= 0)
            out += strprintf(" r%d,", inst.dst);
        out += strprintf(" f%d(", inst.callee) + join(args, ", ") + ")";
        break;
      }
      case Opcode::Print: {
        std::vector<std::string> args;
        for (int a : inst.args)
            args.push_back(strprintf("r%d", a));
        out += " \"" + inst.text + "\"";
        if (!args.empty())
            out += ", " + join(args, ", ");
        break;
      }
      default:
        if (inst.dst >= 0)
            out += strprintf(" r%d", inst.dst);
        if (inst.src0 >= 0)
            out += strprintf(", r%d", inst.src0);
        if (inst.src1 >= 0)
            out += strprintf(", r%d", inst.src1);
        break;
    }
    return out;
}

std::string
toString(const Terminator &term)
{
    switch (term.kind) {
      case Terminator::Kind::None:
        return "<no terminator>";
      case Terminator::Kind::Jmp:
        return strprintf("jmp bb%d", term.target);
      case Terminator::Kind::Br:
        return strprintf("br r%d, bb%d, bb%d", term.cond, term.target,
                         term.fallthrough);
      case Terminator::Kind::Ret:
        return term.retReg >= 0 ? strprintf("ret r%d", term.retReg)
                                : std::string("ret");
    }
    return "<bad terminator>";
}

std::string
toString(const Function &fn)
{
    std::string out = strprintf("func %s (regs=%u frame=%u)\n",
                                fn.name.c_str(), fn.numRegs, fn.frameSize);
    for (const auto &bb : fn.blocks) {
        out += strprintf("bb%d:\n", bb.id);
        for (const auto &inst : bb.insts)
            out += "  " + toString(inst) + "\n";
        out += "  " + toString(bb.term) + "\n";
    }
    return out;
}

std::string
toString(const Module &m)
{
    std::string out = "module " + m.name + "\n";
    for (size_t i = 0; i < m.globals.size(); ++i) {
        const Global &g = m.globals[i];
        out += strprintf("global g%zu %s %s[%llu]\n", i,
                         typeName(g.elemType), g.name.c_str(),
                         static_cast<unsigned long long>(g.elems));
    }
    for (const auto &fn : m.functions)
        out += toString(fn);
    return out;
}

} // namespace bsyn::ir
