#include "ir/basic_block.hh"

namespace bsyn::ir
{

Terminator
Terminator::jmp(int target)
{
    Terminator t;
    t.kind = Kind::Jmp;
    t.target = target;
    return t;
}

Terminator
Terminator::br(int cond, int target, int fallthrough)
{
    Terminator t;
    t.kind = Kind::Br;
    t.cond = cond;
    t.target = target;
    t.fallthrough = fallthrough;
    return t;
}

Terminator
Terminator::ret(int reg)
{
    Terminator t;
    t.kind = Kind::Ret;
    t.retReg = reg;
    return t;
}

std::vector<int>
BasicBlock::successors() const
{
    switch (term.kind) {
      case Terminator::Kind::Jmp:
        return {term.target};
      case Terminator::Kind::Br:
        return {term.target, term.fallthrough};
      default:
        return {};
    }
}

} // namespace bsyn::ir
