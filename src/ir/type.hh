/**
 * @file
 * Value types of the bsyn IR. The synthesis framework targets a 32-bit
 * architecture model (as the paper's Table I assumes), so integers are
 * 32-bit signed/unsigned and floating point is IEEE double.
 */

#ifndef BSYN_IR_TYPE_HH
#define BSYN_IR_TYPE_HH

#include <cstdint>
#include <string>

namespace bsyn::ir
{

/** Scalar value types understood by the IR, interpreter and MiniC. */
enum class Type : uint8_t
{
    Void, ///< no value (function returns only)
    I32,  ///< 32-bit two's-complement signed integer (wraps on overflow)
    U32,  ///< 32-bit unsigned integer
    F64,  ///< IEEE-754 double
};

/** @return the in-memory size of @p t in bytes (I32/U32: 4, F64: 8). */
uint32_t typeSize(Type t);

/** @return a printable name ("int", "uint", "double", "void"). */
const char *typeName(Type t);

/** @return true for I32 and U32. */
bool isIntType(Type t);

} // namespace bsyn::ir

#endif // BSYN_IR_TYPE_HH
