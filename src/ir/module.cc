#include "ir/module.hh"

namespace bsyn::ir
{

int
Module::addGlobal(Global g)
{
    globals.push_back(std::move(g));
    return static_cast<int>(globals.size()) - 1;
}

int
Module::findGlobal(const std::string &global_name) const
{
    for (size_t i = 0; i < globals.size(); ++i)
        if (globals[i].name == global_name)
            return static_cast<int>(i);
    return -1;
}

int
Module::findFunction(const std::string &func_name) const
{
    for (size_t i = 0; i < functions.size(); ++i)
        if (functions[i].name == func_name)
            return static_cast<int>(i);
    return -1;
}

size_t
Module::instructionCount() const
{
    size_t n = 0;
    for (const auto &f : functions)
        n += f.instructionCount();
    return n;
}

} // namespace bsyn::ir
