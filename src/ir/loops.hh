/**
 * @file
 * Natural-loop detection. The loop forest computed here is the "L" in the
 * paper's SFGL: profiling annotates each natural loop with its average
 * iteration count, and the synthesizer regenerates (nested) for-loops
 * from that annotation.
 */

#ifndef BSYN_IR_LOOPS_HH
#define BSYN_IR_LOOPS_HH

#include <vector>

#include "ir/dominators.hh"

namespace bsyn::ir
{

/** One natural loop. */
struct Loop
{
    int id = -1;
    int header = -1;              ///< header basic block
    std::vector<int> latches;     ///< blocks with back edges to the header
    std::vector<int> blocks;      ///< all member blocks (includes header)
    int parent = -1;              ///< enclosing loop id, or -1
    std::vector<int> children;    ///< directly nested loop ids
    int depth = 1;                ///< nesting depth (outermost = 1)
};

/** The loop forest of a function. */
class LoopForest
{
  public:
    LoopForest(const Function &fn, const Cfg &cfg, const Dominators &dom);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing block @p bb, or -1. */
    int loopOf(int bb) const { return blockLoop[static_cast<size_t>(bb)]; }

    /** @return true if @p bb is inside loop @p loop_id (any depth). */
    bool contains(int loop_id, int bb) const;

    const Loop &loop(int id) const
    {
        return loops_[static_cast<size_t>(id)];
    }

    size_t size() const { return loops_.size(); }

  private:
    std::vector<Loop> loops_;
    std::vector<int> blockLoop; ///< innermost loop id per block, or -1
};

} // namespace bsyn::ir

#endif // BSYN_IR_LOOPS_HH
