/**
 * @file
 * Three-address IR instructions. The IR is deliberately close to what a
 * non-optimizing C compiler emits for a load/store machine: virtual
 * registers hold temporaries, locals live in frame slots, and memory is
 * accessed through explicit base+index*scale+offset references. This is
 * the representation the profiler observes (the paper profiles -O0
 * binaries precisely because they have this shape).
 */

#ifndef BSYN_IR_INSTRUCTION_HH
#define BSYN_IR_INSTRUCTION_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace bsyn::ir
{

/** Operation codes. Terminators (Jmp/Br/Ret) live on BasicBlock instead. */
enum class Opcode : uint8_t
{
    // Data movement.
    MovImm, ///< dst = imm (int) or fimm (F64)
    Mov,    ///< dst = src0

    // Integer arithmetic/logic (I32/U32). Shr is arithmetic for I32 and
    // logical for U32; shift amounts are masked to 5 bits.
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Neg, Not,

    // Floating-point arithmetic (F64).
    FAdd, FSub, FMul, FDiv, FNeg,

    // Comparisons: dst (I32, 0/1) = src0 <rel> src1; 'type' is the
    // operand type being compared.
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,

    // Conversions.
    CvtIF, ///< dst (F64) = (double)src0 (int per 'type')
    CvtFI, ///< dst ('type') = truncate(src0 as double)

    // Memory. 'type' is the access type and determines access size.
    Load,  ///< dst = mem[memRef]
    Store, ///< mem[memRef] = src0

    // Call is not a terminator: control returns to the next instruction.
    Call,  ///< dst (optional) = callee(args...)

    // Output. Counts as one dynamic instruction of class Other; keeps
    // values observable so DCE cannot delete the computation chain.
    Print, ///< print(text, printArgs...)

    Nop,
};

/** @return a printable mnemonic. */
const char *opcodeName(Opcode op);

/** @return true for the commutative integer/fp arithmetic opcodes. */
bool isCommutative(Opcode op);

/** @return true if the opcode is a pure computation (no side effects). */
bool isPure(Opcode op);

/** @return true for binary ALU opcodes (two register sources). */
bool isBinaryAlu(Opcode op);

/** @return true for unary ALU opcodes (one register source). */
bool isUnaryAlu(Opcode op);

/** @return true for comparison opcodes. */
bool isCompare(Opcode op);

/**
 * A memory reference: base + indexReg*scale + offset.
 *
 * The base is either a module global (symbol >= 0) or the current frame
 * pointer (symbol == frameBase). All quantities are in bytes.
 */
struct MemRef
{
    /** Sentinel base meaning "current function frame". */
    static constexpr int frameBase = -1;

    int symbol = frameBase; ///< global symbol id, or frameBase
    int indexReg = -1;      ///< register holding the index, or -1
    int32_t scale = 1;      ///< bytes per index unit
    int32_t offset = 0;     ///< constant byte offset

    bool hasIndex() const { return indexReg >= 0; }

    bool
    operator==(const MemRef &o) const
    {
        return symbol == o.symbol && indexReg == o.indexReg &&
               scale == o.scale && offset == o.offset;
    }
};

/** One three-address instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Type type = Type::I32;

    int dst = -1;  ///< destination virtual register, or -1
    int src0 = -1; ///< first source register, or -1
    int src1 = -1; ///< second source register, or -1

    int64_t imm = 0;   ///< integer immediate (MovImm with int type)
    double fimm = 0.0; ///< fp immediate (MovImm with F64 type)

    MemRef mem; ///< memory reference (Load/Store)

    int callee = -1;       ///< function index (Call)
    std::vector<int> args; ///< argument registers (Call) / values (Print)

    std::string text; ///< format text (Print)

    /** Collect source registers (including address index and args). */
    void forEachSrc(const std::function<void(int)> &fn) const;

    /** Rewrite source registers through @p fn (returns replacement). */
    void mapSrcs(const std::function<int(int)> &fn);

    /** @return true if this instruction reads or writes memory. */
    bool touchesMemory() const
    {
        return op == Opcode::Load || op == Opcode::Store;
    }

    /** @return true if the instruction has observable side effects. */
    bool
    hasSideEffects() const
    {
        return op == Opcode::Store || op == Opcode::Call ||
               op == Opcode::Print;
    }

    // --- Convenience constructors -------------------------------------

    static Instruction movImm(int dst, int64_t value, Type t = Type::I32);
    static Instruction movFImm(int dst, double value);
    static Instruction mov(int dst, int src, Type t = Type::I32);
    static Instruction binary(Opcode op, Type t, int dst, int a, int b);
    static Instruction unary(Opcode op, Type t, int dst, int a);
    static Instruction load(int dst, MemRef m, Type t);
    static Instruction store(int src, MemRef m, Type t);
    static Instruction call(int dst, int callee, std::vector<int> args,
                            Type ret_type);
    static Instruction print(std::string text, std::vector<int> args);
};

} // namespace bsyn::ir

#endif // BSYN_IR_INSTRUCTION_HH
