#include "ir/function.hh"

#include "support/error.hh"

namespace bsyn::ir
{

int
Function::newBlock()
{
    BasicBlock bb;
    bb.id = static_cast<int>(blocks.size());
    blocks.push_back(std::move(bb));
    return blocks.back().id;
}

uint32_t
Function::allocSlot(const std::string &slot_name, Type t, uint32_t elems)
{
    BSYN_ASSERT(t != Type::Void, "void frame slot");
    uint32_t size = typeSize(t) * elems;
    uint32_t align = typeSize(t);
    frameSize = (frameSize + align - 1) / align * align;
    FrameSlot slot;
    slot.name = slot_name;
    slot.elemType = t;
    slot.offset = frameSize;
    slot.elems = elems;
    frame.push_back(slot);
    frameSize += size;
    // Keep frames 8-byte aligned overall.
    frameSize = (frameSize + 7u) & ~7u;
    return slot.offset;
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.insts.size();
    return n;
}

} // namespace bsyn::ir
