#include "ir/dominators.hh"

#include "support/error.hh"

namespace bsyn::ir
{

Dominators::Dominators(const Function &fn, const Cfg &cfg)
{
    size_t n = fn.blocks.size();
    idoms.assign(n, -1);
    rpoIndex.assign(n, -1);
    const auto &order = cfg.rpo();
    for (size_t i = 0; i < order.size(); ++i)
        rpoIndex[static_cast<size_t>(order[i])] = static_cast<int>(i);

    if (order.empty())
        return;
    idoms[static_cast<size_t>(order[0])] = order[0];

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoIndex[static_cast<size_t>(a)] >
                   rpoIndex[static_cast<size_t>(b)])
                a = idoms[static_cast<size_t>(a)];
            while (rpoIndex[static_cast<size_t>(b)] >
                   rpoIndex[static_cast<size_t>(a)])
                b = idoms[static_cast<size_t>(b)];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < order.size(); ++i) {
            int b = order[i];
            int new_idom = -1;
            for (int p : cfg.preds(b)) {
                if (idoms[static_cast<size_t>(p)] < 0)
                    continue; // pred not yet processed / unreachable
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idoms[static_cast<size_t>(b)] != new_idom) {
                idoms[static_cast<size_t>(b)] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(int a, int b) const
{
    if (idoms[static_cast<size_t>(b)] < 0)
        return false; // unreachable block
    int cur = b;
    for (;;) {
        if (cur == a)
            return true;
        int next = idoms[static_cast<size_t>(cur)];
        if (next == cur)
            return cur == a;
        cur = next;
    }
}

} // namespace bsyn::ir
