/**
 * @file
 * Structural IR verification run after the front end and between
 * optimization passes (in debug pipelines) to catch malformed IR early.
 */

#ifndef BSYN_IR_VERIFIER_HH
#define BSYN_IR_VERIFIER_HH

#include <string>
#include <vector>

#include "ir/module.hh"

namespace bsyn::ir
{

/**
 * Verify structural invariants of @p m.
 *
 * Checks: every block has a terminator, branch targets are valid block
 * ids, register indices are within numRegs, call targets exist and arity
 * matches, memory references name valid globals and stay within frame
 * bounds for constant frame references.
 *
 * @return a list of human-readable problems; empty means valid.
 */
std::vector<std::string> verify(const Module &m);

/** Verify and fatal() with the first problem if any. */
void verifyOrDie(const Module &m);

} // namespace bsyn::ir

#endif // BSYN_IR_VERIFIER_HH
