/**
 * @file
 * An IR module: global data symbols plus functions. The module is the
 * unit that the MiniC front end produces, the optimizer transforms, and
 * the lowering layer turns into an executable MachineProgram.
 */

#ifndef BSYN_IR_MODULE_HH
#define BSYN_IR_MODULE_HH

#include <string>
#include <vector>

#include "ir/function.hh"

namespace bsyn::ir
{

/** A global scalar or array symbol. */
struct Global
{
    std::string name;
    Type elemType = Type::I32;
    uint64_t elems = 1;          ///< element count (1 for scalars)
    std::vector<uint64_t> init;  ///< raw element bit patterns; empty = zero

    /** Total size in bytes. */
    uint64_t sizeBytes() const { return elems * typeSize(elemType); }
};

/** A complete program: globals + functions; entry point by name. */
struct Module
{
    std::string name;
    std::vector<Global> globals;
    std::vector<Function> functions;

    /** Add a global; @return its symbol index. */
    int addGlobal(Global g);

    /** Find a global symbol index by name, or -1. */
    int findGlobal(const std::string &name) const;

    /** Find a function index by name, or -1. */
    int findFunction(const std::string &name) const;

    /** Total static body instruction count. */
    size_t instructionCount() const;
};

} // namespace bsyn::ir

#endif // BSYN_IR_MODULE_HH
