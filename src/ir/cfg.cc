#include "ir/cfg.hh"

#include <algorithm>

#include "support/error.hh"

namespace bsyn::ir
{

Cfg::Cfg(const Function &fn)
{
    size_t n = fn.blocks.size();
    predecessors.resize(n);
    successors_.resize(n);
    reachable_.assign(n, false);

    for (size_t b = 0; b < n; ++b) {
        for (int s : fn.blocks[b].successors()) {
            BSYN_ASSERT(s >= 0 && static_cast<size_t>(s) < n,
                        "bad successor %d in %s", s, fn.name.c_str());
            successors_[b].push_back(s);
            predecessors[static_cast<size_t>(s)].push_back(
                static_cast<int>(b));
        }
    }

    // Iterative DFS post order, then reverse.
    if (n == 0)
        return;
    std::vector<int> post;
    std::vector<int> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<int, size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    reachable_[0] = true;
    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        const auto &succ = successors_[static_cast<size_t>(bb)];
        if (idx < succ.size()) {
            int next = succ[idx++];
            if (state[static_cast<size_t>(next)] == 0) {
                state[static_cast<size_t>(next)] = 1;
                reachable_[static_cast<size_t>(next)] = true;
                stack.emplace_back(next, 0);
            }
        } else {
            post.push_back(bb);
            state[static_cast<size_t>(bb)] = 2;
            stack.pop_back();
        }
    }
    rpoOrder.assign(post.rbegin(), post.rend());
}

Liveness::Liveness(const Function &fn, const Cfg &cfg)
{
    size_t nb = fn.blocks.size();
    size_t nr = fn.numRegs;
    words = (nr + 63) / 64;
    in.assign(nb * words, 0);
    out.assign(nb * words, 0);

    // Per-block use (read before written) and def sets.
    std::vector<uint64_t> use(nb * words, 0);
    std::vector<uint64_t> def(nb * words, 0);
    auto setBit = [&](std::vector<uint64_t> &set, size_t b, int r) {
        set[b * words + static_cast<size_t>(r) / 64] |=
            uint64_t(1) << (static_cast<size_t>(r) % 64);
    };
    auto testBit = [&](const std::vector<uint64_t> &set, size_t b,
                       int r) {
        return (set[b * words + static_cast<size_t>(r) / 64] >>
                (static_cast<size_t>(r) % 64)) &
               1;
    };

    for (size_t b = 0; b < nb; ++b) {
        const BasicBlock &bb = fn.blocks[b];
        auto noteUse = [&](int r) {
            if (r >= 0 && !testBit(def, b, r))
                setBit(use, b, r);
        };
        for (const Instruction &inst : bb.insts) {
            inst.forEachSrc(noteUse);
            if (inst.dst >= 0)
                setBit(def, b, inst.dst);
        }
        if (bb.term.kind == Terminator::Kind::Br)
            noteUse(bb.term.cond);
        if (bb.term.kind == Terminator::Kind::Ret)
            noteUse(bb.term.retReg);
    }

    // Backward fixed point, word-parallel.
    std::vector<uint64_t> scratch(words);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t bi = nb; bi-- > 0;) {
            int b = static_cast<int>(bi);
            std::fill(scratch.begin(), scratch.end(), 0);
            for (int s : cfg.succs(b)) {
                const uint64_t *succ_in =
                    in.data() + static_cast<size_t>(s) * words;
                for (size_t w = 0; w < words; ++w)
                    scratch[w] |= succ_in[w];
            }
            uint64_t *bout = out.data() + bi * words;
            uint64_t *bin = in.data() + bi * words;
            const uint64_t *buse = use.data() + bi * words;
            const uint64_t *bdef = def.data() + bi * words;
            for (size_t w = 0; w < words; ++w) {
                uint64_t new_out = scratch[w];
                uint64_t new_in = buse[w] | (new_out & ~bdef[w]);
                if (new_out != bout[w] || new_in != bin[w]) {
                    bout[w] = new_out;
                    bin[w] = new_in;
                    changed = true;
                }
            }
        }
    }
}

} // namespace bsyn::ir
