/**
 * @file
 * Human-readable IR dumping for debugging and golden tests.
 */

#ifndef BSYN_IR_PRINTER_HH
#define BSYN_IR_PRINTER_HH

#include <string>

#include "ir/module.hh"

namespace bsyn::ir
{

/** Render one instruction as text. */
std::string toString(const Instruction &inst);

/** Render a terminator as text. */
std::string toString(const Terminator &term);

/** Render a whole function. */
std::string toString(const Function &fn);

/** Render a whole module. */
std::string toString(const Module &m);

} // namespace bsyn::ir

#endif // BSYN_IR_PRINTER_HH
