/**
 * @file
 * IR functions: a CFG of basic blocks plus frame/register bookkeeping.
 */

#ifndef BSYN_IR_FUNCTION_HH
#define BSYN_IR_FUNCTION_HH

#include <string>
#include <vector>

#include "ir/basic_block.hh"

namespace bsyn::ir
{

/** Frame-resident local variable (or spill slot). */
struct FrameSlot
{
    std::string name;    ///< source-level name (diagnostics only)
    Type elemType = Type::I32;
    uint32_t offset = 0; ///< byte offset from the frame base
    uint32_t elems = 1;  ///< > 1 for local arrays
};

/** A function: entry block is always block 0. */
struct Function
{
    std::string name;
    Type retType = Type::Void;

    /**
     * Parameters arrive in virtual registers 0..numParams-1 on entry.
     * paramTypes records their types.
     */
    std::vector<Type> paramTypes;

    std::vector<BasicBlock> blocks;
    std::vector<FrameSlot> frame;

    uint32_t numRegs = 0;   ///< virtual register count (regs 0..numRegs-1)
    uint32_t frameSize = 0; ///< frame size in bytes (8-byte aligned)

    /** Allocate a fresh virtual register. */
    int newReg() { return static_cast<int>(numRegs++); }

    /** Append a new empty block and return its id. */
    int newBlock();

    /** Allocate a frame slot; returns its byte offset. */
    uint32_t allocSlot(const std::string &name, Type t, uint32_t elems = 1);

    /** Total body instruction count (static). */
    size_t instructionCount() const;

    BasicBlock &block(int id) { return blocks[static_cast<size_t>(id)]; }
    const BasicBlock &block(int id) const
    {
        return blocks[static_cast<size_t>(id)];
    }
};

} // namespace bsyn::ir

#endif // BSYN_IR_FUNCTION_HH
