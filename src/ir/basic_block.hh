/**
 * @file
 * Basic blocks and terminators of the bsyn IR control-flow graph.
 */

#ifndef BSYN_IR_BASIC_BLOCK_HH
#define BSYN_IR_BASIC_BLOCK_HH

#include <vector>

#include "ir/instruction.hh"

namespace bsyn::ir
{

/** Terminator of a basic block. Exactly one per block. */
struct Terminator
{
    enum class Kind : uint8_t
    {
        None, ///< not yet set (invalid in a verified function)
        Jmp,  ///< unconditional jump to 'target'
        Br,   ///< if (cond != 0) goto target else goto fallthrough
        Ret,  ///< return retReg (or nothing when retReg < 0)
    };

    Kind kind = Kind::None;
    int cond = -1;        ///< condition register (Br)
    int target = -1;      ///< Jmp target / Br taken-target block id
    int fallthrough = -1; ///< Br not-taken-target block id
    int retReg = -1;      ///< return value register (Ret), or -1

    static Terminator jmp(int target);
    static Terminator br(int cond, int target, int fallthrough);
    static Terminator ret(int reg = -1);
};

/** A straight-line sequence of instructions ending in a terminator. */
struct BasicBlock
{
    int id = -1;                     ///< index within the function
    std::vector<Instruction> insts;  ///< body (no terminators inside)
    Terminator term;                 ///< block terminator

    /** Successor block ids in (taken, fallthrough) order. */
    std::vector<int> successors() const;

    /** Append an instruction. */
    void append(Instruction in) { insts.push_back(std::move(in)); }

    /** Number of body instructions. */
    size_t size() const { return insts.size(); }
};

} // namespace bsyn::ir

#endif // BSYN_IR_BASIC_BLOCK_HH
