#include "ir/instruction.hh"

#include "support/error.hh"

namespace bsyn::ir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::MovImm: return "movimm";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FNeg: return "fneg";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::CvtIF: return "cvtif";
      case Opcode::CvtFI: return "cvtfi";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Call: return "call";
      case Opcode::Print: return "print";
      case Opcode::Nop: return "nop";
    }
    panic("opcodeName: bad opcode");
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        return true;
      default:
        return false;
    }
}

bool
isPure(Opcode op)
{
    switch (op) {
      case Opcode::Store:
      case Opcode::Call:
      case Opcode::Print:
      case Opcode::Load: // loads are pure but ordering-sensitive
        return false;
      default:
        return true;
    }
}

bool
isBinaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
        return true;
      default:
        return isCompare(op);
    }
}

bool
isUnaryAlu(Opcode op)
{
    switch (op) {
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::FNeg:
      case Opcode::CvtIF:
      case Opcode::CvtFI:
      case Opcode::Mov:
        return true;
      default:
        return false;
    }
}

bool
isCompare(Opcode op)
{
    switch (op) {
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpGt:
      case Opcode::CmpGe:
        return true;
      default:
        return false;
    }
}

void
Instruction::forEachSrc(const std::function<void(int)> &fn) const
{
    if (src0 >= 0)
        fn(src0);
    if (src1 >= 0)
        fn(src1);
    if (touchesMemory() && mem.indexReg >= 0)
        fn(mem.indexReg);
    if (op == Opcode::Call || op == Opcode::Print)
        for (int a : args)
            fn(a);
}

void
Instruction::mapSrcs(const std::function<int(int)> &fn)
{
    if (src0 >= 0)
        src0 = fn(src0);
    if (src1 >= 0)
        src1 = fn(src1);
    if (touchesMemory() && mem.indexReg >= 0)
        mem.indexReg = fn(mem.indexReg);
    if (op == Opcode::Call || op == Opcode::Print)
        for (int &a : args)
            a = fn(a);
}

Instruction
Instruction::movImm(int dst, int64_t value, Type t)
{
    Instruction in;
    in.op = Opcode::MovImm;
    in.type = t;
    in.dst = dst;
    in.imm = value;
    return in;
}

Instruction
Instruction::movFImm(int dst, double value)
{
    Instruction in;
    in.op = Opcode::MovImm;
    in.type = Type::F64;
    in.dst = dst;
    in.fimm = value;
    return in;
}

Instruction
Instruction::mov(int dst, int src, Type t)
{
    Instruction in;
    in.op = Opcode::Mov;
    in.type = t;
    in.dst = dst;
    in.src0 = src;
    return in;
}

Instruction
Instruction::binary(Opcode op, Type t, int dst, int a, int b)
{
    BSYN_ASSERT(isBinaryAlu(op), "binary() requires a binary opcode");
    Instruction in;
    in.op = op;
    in.type = t;
    in.dst = dst;
    in.src0 = a;
    in.src1 = b;
    return in;
}

Instruction
Instruction::unary(Opcode op, Type t, int dst, int a)
{
    Instruction in;
    in.op = op;
    in.type = t;
    in.dst = dst;
    in.src0 = a;
    return in;
}

Instruction
Instruction::load(int dst, MemRef m, Type t)
{
    Instruction in;
    in.op = Opcode::Load;
    in.type = t;
    in.dst = dst;
    in.mem = m;
    return in;
}

Instruction
Instruction::store(int src, MemRef m, Type t)
{
    Instruction in;
    in.op = Opcode::Store;
    in.type = t;
    in.src0 = src;
    in.mem = m;
    return in;
}

Instruction
Instruction::call(int dst, int callee, std::vector<int> args, Type ret_type)
{
    Instruction in;
    in.op = Opcode::Call;
    in.type = ret_type;
    in.dst = dst;
    in.callee = callee;
    in.args = std::move(args);
    return in;
}

Instruction
Instruction::print(std::string text, std::vector<int> args)
{
    Instruction in;
    in.op = Opcode::Print;
    in.type = Type::Void;
    in.text = std::move(text);
    in.args = std::move(args);
    return in;
}

} // namespace bsyn::ir
