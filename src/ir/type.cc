#include "ir/type.hh"

#include "support/error.hh"

namespace bsyn::ir
{

uint32_t
typeSize(Type t)
{
    switch (t) {
      case Type::Void: return 0;
      case Type::I32:
      case Type::U32: return 4;
      case Type::F64: return 8;
    }
    panic("typeSize: bad type");
}

const char *
typeName(Type t)
{
    switch (t) {
      case Type::Void: return "void";
      case Type::I32: return "int";
      case Type::U32: return "uint";
      case Type::F64: return "double";
    }
    panic("typeName: bad type");
}

bool
isIntType(Type t)
{
    return t == Type::I32 || t == Type::U32;
}

} // namespace bsyn::ir
