#include "ir/verifier.hh"

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::ir
{

namespace
{

void
verifyFunction(const Module &m, const Function &fn,
               std::vector<std::string> &problems)
{
    auto bad = [&](const std::string &what) {
        problems.push_back("function '" + fn.name + "': " + what);
    };

    if (fn.blocks.empty()) {
        bad("no basic blocks");
        return;
    }

    int nb = static_cast<int>(fn.blocks.size());
    auto checkBlockId = [&](int id, const char *what) {
        if (id < 0 || id >= nb)
            bad(strprintf("%s references bad block %d", what, id));
    };
    auto checkReg = [&](int r, const char *what) {
        if (r < -1 || r >= static_cast<int>(fn.numRegs))
            bad(strprintf("%s references bad register %d", what, r));
    };

    for (const auto &bb : fn.blocks) {
        for (const auto &inst : bb.insts) {
            checkReg(inst.dst, "dst");
            inst.forEachSrc([&](int r) {
                if (r < 0 || r >= static_cast<int>(fn.numRegs))
                    bad(strprintf("src references bad register %d", r));
            });
            if (inst.touchesMemory()) {
                if (inst.mem.symbol != MemRef::frameBase &&
                    (inst.mem.symbol < 0 ||
                     inst.mem.symbol >=
                         static_cast<int>(m.globals.size()))) {
                    bad(strprintf("memory ref names bad global %d",
                                  inst.mem.symbol));
                }
                if (inst.mem.symbol == MemRef::frameBase &&
                    !inst.mem.hasIndex() &&
                    (inst.mem.offset < 0 ||
                     static_cast<uint32_t>(inst.mem.offset) +
                             typeSize(inst.type) >
                         fn.frameSize)) {
                    bad(strprintf("frame access at offset %d outside "
                                  "frame of %u bytes",
                                  inst.mem.offset, fn.frameSize));
                }
            }
            if (inst.op == Opcode::Call) {
                if (inst.callee < 0 ||
                    inst.callee >= static_cast<int>(m.functions.size())) {
                    bad(strprintf("call to bad function %d", inst.callee));
                } else {
                    const Function &callee =
                        m.functions[static_cast<size_t>(inst.callee)];
                    if (inst.args.size() != callee.paramTypes.size())
                        bad(strprintf("call to '%s' passes %zu args, "
                                      "expects %zu",
                                      callee.name.c_str(),
                                      inst.args.size(),
                                      callee.paramTypes.size()));
                    if (inst.dst >= 0 && callee.retType == Type::Void)
                        bad("call captures result of void function");
                }
            }
        }

        switch (bb.term.kind) {
          case Terminator::Kind::None:
            bad(strprintf("bb%d has no terminator", bb.id));
            break;
          case Terminator::Kind::Jmp:
            checkBlockId(bb.term.target, "jmp");
            break;
          case Terminator::Kind::Br:
            checkBlockId(bb.term.target, "br taken");
            checkBlockId(bb.term.fallthrough, "br fallthrough");
            checkReg(bb.term.cond, "br cond");
            if (bb.term.cond < 0)
                bad(strprintf("bb%d: br without condition", bb.id));
            break;
          case Terminator::Kind::Ret:
            if (fn.retType != Type::Void && bb.term.retReg < 0)
                bad(strprintf("bb%d: ret without value in non-void "
                              "function", bb.id));
            checkReg(bb.term.retReg, "ret");
            break;
        }
    }
}

} // namespace

std::vector<std::string>
verify(const Module &m)
{
    std::vector<std::string> problems;
    for (const auto &fn : m.functions)
        verifyFunction(m, fn, problems);
    return problems;
}

void
verifyOrDie(const Module &m)
{
    auto problems = verify(m);
    if (!problems.empty())
        fatal("IR verification failed: %s (%zu problems total)",
              problems.front().c_str(), problems.size());
}

} // namespace bsyn::ir
