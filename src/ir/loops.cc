#include "ir/loops.hh"

#include <algorithm>
#include <map>

namespace bsyn::ir
{

LoopForest::LoopForest(const Function &fn, const Cfg &cfg,
                       const Dominators &dom)
{
    size_t n = fn.blocks.size();
    blockLoop.assign(n, -1);

    // Find back edges (t -> h where h dominates t), grouped by header.
    std::map<int, std::vector<int>> header_latches;
    for (size_t b = 0; b < n; ++b) {
        if (!cfg.reachable(static_cast<int>(b)))
            continue;
        for (int s : cfg.succs(static_cast<int>(b))) {
            if (dom.dominates(s, static_cast<int>(b)))
                header_latches[s].push_back(static_cast<int>(b));
        }
    }

    // Build the loop body for each header: all blocks that can reach a
    // latch without passing through the header (reverse reachability).
    for (const auto &[header, latches] : header_latches) {
        Loop loop;
        loop.id = static_cast<int>(loops_.size());
        loop.header = header;
        loop.latches = latches;

        std::vector<bool> in_loop(n, false);
        in_loop[static_cast<size_t>(header)] = true;
        // Reverse reachability from the latches, never expanding through
        // the header. A latch that IS the header (self loop / do-while)
        // must not be expanded either, or the walk escapes the loop.
        std::vector<int> work;
        for (int l : latches) {
            in_loop[static_cast<size_t>(l)] = true;
            if (l != header)
                work.push_back(l);
        }
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            for (int p : cfg.preds(b)) {
                if (!in_loop[static_cast<size_t>(p)]) {
                    in_loop[static_cast<size_t>(p)] = true;
                    work.push_back(p);
                }
            }
        }
        for (size_t b = 0; b < n; ++b)
            if (in_loop[b])
                loop.blocks.push_back(static_cast<int>(b));
        loops_.push_back(std::move(loop));
    }

    // Nesting: loop A is nested in B if A != B and B contains A's header
    // (loops with the same header were merged above by construction).
    // Parent = smallest strictly-containing loop.
    for (auto &a : loops_) {
        int best = -1;
        size_t best_size = SIZE_MAX;
        for (const auto &b : loops_) {
            if (a.id == b.id)
                continue;
            bool contains_a =
                std::find(b.blocks.begin(), b.blocks.end(), a.header) !=
                b.blocks.end();
            if (contains_a && b.blocks.size() < best_size &&
                b.blocks.size() > a.blocks.size()) {
                best = b.id;
                best_size = b.blocks.size();
            }
        }
        a.parent = best;
    }
    for (auto &l : loops_) {
        if (l.parent >= 0)
            loops_[static_cast<size_t>(l.parent)].children.push_back(l.id);
    }
    // Depths (iterate since parents may appear in any order).
    for (auto &l : loops_) {
        int d = 1;
        int p = l.parent;
        while (p >= 0) {
            ++d;
            p = loops_[static_cast<size_t>(p)].parent;
        }
        l.depth = d;
    }

    // Innermost loop per block = containing loop with the fewest blocks.
    for (const auto &l : loops_) {
        for (int b : l.blocks) {
            int cur = blockLoop[static_cast<size_t>(b)];
            if (cur < 0 ||
                l.blocks.size() < loops_[static_cast<size_t>(cur)]
                                      .blocks.size()) {
                blockLoop[static_cast<size_t>(b)] = l.id;
            }
        }
    }
}

bool
LoopForest::contains(int loop_id, int bb) const
{
    const Loop &l = loops_[static_cast<size_t>(loop_id)];
    return std::find(l.blocks.begin(), l.blocks.end(), bb) != l.blocks.end();
}

} // namespace bsyn::ir
