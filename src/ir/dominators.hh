/**
 * @file
 * Dominator tree computation (Cooper/Harvey/Kennedy iterative algorithm).
 */

#ifndef BSYN_IR_DOMINATORS_HH
#define BSYN_IR_DOMINATORS_HH

#include "ir/cfg.hh"

namespace bsyn::ir
{

/** Immediate-dominator tree over a function's CFG. */
class Dominators
{
  public:
    Dominators(const Function &fn, const Cfg &cfg);

    /** Immediate dominator of @p bb (entry's idom is itself); -1 if
     *  unreachable. */
    int idom(int bb) const { return idoms[static_cast<size_t>(bb)]; }

    /** @return true if block @p a dominates block @p b. */
    bool dominates(int a, int b) const;

  private:
    std::vector<int> idoms;
    std::vector<int> rpoIndex;
};

} // namespace bsyn::ir

#endif // BSYN_IR_DOMINATORS_HH
