/**
 * @file
 * Control-flow-graph utilities: predecessor lists, reverse post order,
 * reachability, and per-register liveness analysis.
 */

#ifndef BSYN_IR_CFG_HH
#define BSYN_IR_CFG_HH

#include <cstdint>
#include <vector>

#include "ir/function.hh"

namespace bsyn::ir
{

/** Predecessor/successor adjacency for a function's CFG. */
class Cfg
{
  public:
    explicit Cfg(const Function &fn);

    const std::vector<int> &preds(int bb) const
    {
        return predecessors[static_cast<size_t>(bb)];
    }
    const std::vector<int> &succs(int bb) const
    {
        return successors_[static_cast<size_t>(bb)];
    }

    /** Blocks in reverse post order from the entry. */
    const std::vector<int> &rpo() const { return rpoOrder; }

    /** @return true if @p bb is reachable from the entry. */
    bool reachable(int bb) const
    {
        return reachable_[static_cast<size_t>(bb)];
    }

    size_t numBlocks() const { return successors_.size(); }

  private:
    std::vector<std::vector<int>> predecessors;
    std::vector<std::vector<int>> successors_;
    std::vector<int> rpoOrder;
    std::vector<bool> reachable_;
};

/**
 * Register liveness: for each block, the set of registers live on entry
 * and exit. Computed by the usual backward iterative dataflow.
 */
class Liveness
{
  public:
    Liveness(const Function &fn, const Cfg &cfg);

    /** @return true if register @p reg is live on entry to @p bb. */
    bool
    liveIn(int bb, int reg) const
    {
        return bit(in, bb, reg);
    }

    /** @return true if register @p reg is live on exit of @p bb. */
    bool
    liveOut(int bb, int reg) const
    {
        return bit(out, bb, reg);
    }

  private:
    // Bit sets are packed into 64-bit words so the dataflow iteration
    // is word-parallel; functions emitted by the synthesizer can have
    // thousands of virtual registers.
    size_t words = 0;

    bool
    bit(const std::vector<uint64_t> &set, int bb, int reg) const
    {
        size_t idx = static_cast<size_t>(bb) * words +
                     static_cast<size_t>(reg) / 64;
        return (set[idx] >> (static_cast<size_t>(reg) % 64)) & 1;
    }

    std::vector<uint64_t> in;
    std::vector<uint64_t> out;
};

} // namespace bsyn::ir

#endif // BSYN_IR_CFG_HH
