#include "sim/memory_image.hh"

#include <cstring>

#include "support/error.hh"

namespace bsyn::sim
{

MemoryImage::MemoryImage(const std::vector<ir::Global> &globals,
                         uint64_t stack_bytes)
{
    layout(globals);
    // Data segment ends at the current high-water mark; the stack sits
    // above it with a guard gap.
    uint64_t data_end = dataBase + bytes.size();
    uint64_t guard = 4096;
    stackLimit_ = (data_end + guard + 15) & ~uint64_t(15);
    stackTop_ = stackLimit_ + ((stack_bytes + 15) & ~uint64_t(15));
    bytes.resize(stackTop_ - dataBase, 0);
    initGlobals(globals);
}

void
MemoryImage::layout(const std::vector<ir::Global> &globals)
{
    uint64_t cursor = 0; // offset from dataBase
    globalAddr.clear();
    for (const auto &g : globals) {
        uint64_t align = ir::typeSize(g.elemType);
        cursor = (cursor + align - 1) / align * align;
        globalAddr.push_back(dataBase + cursor);
        cursor += g.sizeBytes();
    }
    // Round the data segment to a cache-line multiple so the stack does
    // not share a line with the last global.
    cursor = (cursor + 63) & ~uint64_t(63);
    bytes.assign(cursor, 0);
}

void
MemoryImage::initGlobals(const std::vector<ir::Global> &globals)
{
    for (size_t i = 0; i < globals.size(); ++i) {
        const ir::Global &g = globals[i];
        if (g.init.empty())
            continue;
        uint64_t addr = globalAddr[i];
        uint32_t esz = ir::typeSize(g.elemType);
        for (size_t e = 0; e < g.init.size() && e < g.elems; ++e) {
            if (esz == 4)
                store32(addr + e * 4, static_cast<uint32_t>(g.init[e]));
            else
                store64(addr + e * 8, g.init[e]);
        }
    }
}

void
MemoryImage::reset(const std::vector<ir::Global> &globals)
{
    std::fill(bytes.begin(), bytes.end(), 0);
    initGlobals(globals);
}

void
MemoryImage::outOfRange(uint64_t addr, uint32_t size) const
{
    fatal("memory access out of range: address 0x%llx size %u",
          static_cast<unsigned long long>(addr), size);
}

} // namespace bsyn::sim
