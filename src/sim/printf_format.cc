#include "sim/printf_format.hh"

#include <cctype>
#include <cstring>

#include "sim/value_bits.hh"
#include "support/string_util.hh"

namespace bsyn::sim
{

namespace
{

bool
isFlag(char c)
{
    return c == '-' || c == '+' || c == ' ' || c == '0' || c == '#';
}

/** Parse a run of digits, clamped so width/precision stay sane. */
int
parseNumber(const std::string &f, size_t &j)
{
    long n = 0;
    while (j < f.size() && std::isdigit(static_cast<unsigned char>(f[j]))) {
        if (n < 100000)
            n = n * 10 + (f[j] - '0');
        ++j;
    }
    return static_cast<int>(n > 4096 ? 4096 : n);
}

} // namespace

std::string
formatPrintf(const std::string &fmt, const uint64_t *args, size_t nargs)
{
    std::string out;
    out.reserve(fmt.size());
    size_t arg = 0;

    for (size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%') {
            out += fmt[i];
            continue;
        }

        // Parse %[flags][width][.precision][length]conversion.
        size_t j = i + 1;
        std::string flags;
        while (j < fmt.size() && isFlag(fmt[j]))
            flags += fmt[j++];
        int width = parseNumber(fmt, j);
        int precision = -1;
        if (j < fmt.size() && fmt[j] == '.') {
            ++j;
            precision = parseNumber(fmt, j); // "%.d" means precision 0
        }
        // Length modifiers are parsed and dropped: the machine model is
        // 32-bit ints, so %ld and %d describe the same value.
        while (j < fmt.size() && (fmt[j] == 'l' || fmt[j] == 'h'))
            ++j;

        if (j >= fmt.size()) {
            out.append(fmt, i, fmt.size() - i); // trailing partial spec
            break;
        }

        char conv = fmt[j];
        if (conv == '%') {
            out += '%';
            i = j;
            continue;
        }

        // Rebuild a sanitized host spec from the validated pieces.
        std::string spec = "%";
        spec += flags;
        if (width > 0)
            spec += strprintf("%d", width);
        if (precision >= 0)
            spec += strprintf(".%d", precision);
        spec += conv;

        switch (conv) {
          case 'd':
          case 'i': {
            uint64_t v = arg < nargs ? args[arg] : 0;
            ++arg;
            out += strprintf(spec.c_str(), static_cast<int32_t>(v));
            break;
          }
          case 'u':
          case 'x':
          case 'X':
          case 'o': {
            uint64_t v = arg < nargs ? args[arg] : 0;
            ++arg;
            out += strprintf(spec.c_str(), static_cast<uint32_t>(v));
            break;
          }
          case 'c': {
            uint64_t v = arg < nargs ? args[arg] : 0;
            ++arg;
            out += strprintf(spec.c_str(),
                             static_cast<int>(v & 0xff));
            break;
          }
          case 'f':
          case 'F':
          case 'e':
          case 'E':
          case 'g':
          case 'G': {
            uint64_t v = arg < nargs ? args[arg] : 0;
            ++arg;
            out += strprintf(spec.c_str(), asF64(v));
            break;
          }
          default:
            // Unrecognized conversion: emit the raw spec text verbatim
            // and consume no argument, so later conversions still see
            // the values they were written against.
            out.append(fmt, i, j - i + 1);
            break;
        }
        i = j;
    }
    return out;
}

} // namespace bsyn::sim
