#include "sim/interpreter.hh"

#include <cmath>
#include <cstring>

#include "sim/decoded_program.hh"
#include "sim/printf_format.hh"
#include "sim/value_bits.hh"
#include "support/error.hh"

namespace bsyn::sim
{

namespace
{

using isa::MInst;
using isa::MKind;
using ir::Opcode;
using ir::Type;

/** A call frame: registers live in a shared stack for speed. */
struct Frame
{
    int funcIndex = -1;
    size_t regBase = 0;
    uint64_t fp = 0;
    int retPc = -1;
    int retDst = -1;
};

class Machine
{
  public:
    Machine(const isa::MachineProgram &p, ExecObserver *obs,
            const ExecLimits &lim)
        : prog(p), observer(obs), limits(lim), mem(p.globals,
                                                   lim.stackBytes)
    {}

    ExecStats
    run()
    {
        if (prog.entryFunc < 0)
            fatal("program '%s' has no main()", prog.name.c_str());
        const isa::MFunction &main_fn =
            prog.funcs[static_cast<size_t>(prog.entryFunc)];
        if (main_fn.numParams != 0)
            fatal("main() must not take parameters");

        sp = mem.stackTop();
        pushFrame(prog.entryFunc, -1, -1);
        pc = main_fn.entry;

        while (!frames.empty())
            step();
        return std::move(stats);
    }

  private:
    // --- Register access -------------------------------------------------

    uint64_t
    reg(int r) const
    {
        return regStack[frames.back().regBase + static_cast<size_t>(r)];
    }

    void
    setReg(int r, uint64_t v)
    {
        regStack[frames.back().regBase + static_cast<size_t>(r)] = v;
    }

    // --- Frames ------------------------------------------------------------

    void
    pushFrame(int func_index, int ret_pc, int ret_dst)
    {
        const isa::MFunction &fn =
            prog.funcs[static_cast<size_t>(func_index)];
        uint64_t frame_bytes = (fn.frameSize + 15u) & ~15u;
        if (sp < mem.stackLimit() + frame_bytes)
            fatal("stack overflow in '%s'", fn.name.c_str());
        sp -= frame_bytes;

        Frame f;
        f.funcIndex = func_index;
        f.regBase = regStack.size();
        f.fp = sp;
        f.retPc = ret_pc;
        f.retDst = ret_dst;
        regStack.resize(regStack.size() + fn.numRegs, 0);
        frames.push_back(f);
    }

    void
    popFrame()
    {
        const Frame &f = frames.back();
        const isa::MFunction &fn =
            prog.funcs[static_cast<size_t>(f.funcIndex)];
        sp += (fn.frameSize + 15u) & ~15u;
        regStack.resize(f.regBase);
        frames.pop_back();
    }

    // --- Memory ------------------------------------------------------------

    uint64_t
    effectiveAddress(const ir::MemRef &m) const
    {
        uint64_t base = m.symbol == ir::MemRef::frameBase
                            ? frames.back().fp
                            : mem.globalAddress(m.symbol);
        int64_t index = 0;
        if (m.indexReg >= 0)
            index = static_cast<int64_t>(asI32(reg(m.indexReg))) * m.scale;
        return base + static_cast<uint64_t>(
                          index + static_cast<int64_t>(m.offset));
    }

    uint64_t
    loadTyped(uint64_t addr, Type t)
    {
        if (t == Type::F64)
            return mem.load64(addr);
        return mem.load32(addr);
    }

    void
    storeTyped(uint64_t addr, Type t, uint64_t v)
    {
        if (t == Type::F64)
            mem.store64(addr, v);
        else
            mem.store32(addr, asU32(v));
    }

    // --- Execution -----------------------------------------------------------

    uint64_t
    immRaw(const MInst &mi) const
    {
        if (mi.type == Type::F64)
            return f64Bits(mi.fimm);
        return asU32(static_cast<uint64_t>(mi.imm));
    }

    void
    step()
    {
        const MInst &mi = prog.code[static_cast<size_t>(pc)];
        // The guard runs before the instruction is counted, observed or
        // executed, so a limit-hit run reports exactly the number of
        // instructions that actually retired.
        if (stats.instructions >= limits.maxInstructions)
            fatal("instruction limit of %llu exceeded after retiring "
                  "%llu instructions",
                  static_cast<unsigned long long>(limits.maxInstructions),
                  static_cast<unsigned long long>(stats.instructions));
        ++stats.instructions;
        if (observer)
            observer->onInstruction(pc, mi);

        switch (mi.kind) {
          case MKind::Load: {
            uint64_t addr = effectiveAddress(mi.mem);
            uint64_t v = loadTyped(addr, mi.type);
            noteRead(addr, ir::typeSize(mi.type), v);
            setReg(mi.dst, v);
            ++pc;
            break;
          }
          case MKind::Store: {
            uint64_t addr = effectiveAddress(mi.mem);
            uint64_t v = mi.srcIsImm ? immRaw(mi) : reg(mi.src0);
            storeTyped(addr, mi.type, v);
            noteWrite(addr, ir::typeSize(mi.type), v);
            ++pc;
            break;
          }
          case MKind::Compute:
            executeCompute(mi);
            ++pc;
            break;
          case MKind::CondBr: {
            bool nonzero = asU32(reg(mi.src0)) != 0;
            bool taken = mi.brIfZero ? !nonzero : nonzero;
            ++stats.branches;
            if (taken)
                ++stats.takenBranches;
            if (observer)
                observer->onBranch(pc, taken);
            pc = taken ? mi.target : pc + 1;
            break;
          }
          case MKind::Jmp:
            pc = mi.target;
            break;
          case MKind::Call: {
            ++stats.calls;
            const isa::MFunction &callee =
                prog.funcs[static_cast<size_t>(mi.callee)];
            // Read args in the caller frame before pushing.
            argBuffer.clear();
            for (int a : mi.args)
                argBuffer.push_back(reg(a));
            pushFrame(mi.callee, pc + 1, mi.dst);
            for (size_t i = 0; i < argBuffer.size(); ++i)
                setReg(static_cast<int>(i), argBuffer[i]);
            pc = callee.entry;
            break;
          }
          case MKind::Ret: {
            uint64_t value = mi.src0 >= 0 ? reg(mi.src0) : 0;
            int ret_pc = frames.back().retPc;
            int ret_dst = frames.back().retDst;
            popFrame();
            if (frames.empty()) {
                stats.exitCode = asI32(value);
                return;
            }
            if (ret_dst >= 0)
                setReg(ret_dst, value);
            pc = ret_pc;
            break;
          }
          case MKind::Print:
            doPrint(mi);
            ++pc;
            break;
        }
    }

    void
    noteRead(uint64_t addr, uint32_t size, uint64_t raw_value)
    {
        ++stats.memReads;
        if (observer)
            observer->onMemAccess(pc, addr, size, false, raw_value);
    }

    void
    noteWrite(uint64_t addr, uint32_t size, uint64_t raw_value)
    {
        ++stats.memWrites;
        if (observer)
            observer->onMemAccess(pc, addr, size, true, raw_value);
    }

    uint64_t
    computeSrc(const MInst &mi, int slot, uint64_t fused_value)
    {
        if (mi.loadFused && mi.fusedSlot == slot)
            return fused_value;
        if (mi.srcIsImm && mi.immSlot == slot)
            return immRaw(mi);
        int r = slot == 0 ? mi.src0 : mi.src1;
        BSYN_ASSERT(r >= 0, "compute reads undefined source slot %d", slot);
        return reg(r);
    }

    void
    executeCompute(const MInst &mi)
    {
        uint64_t fused_value = 0;
        if (mi.loadFused) {
            uint64_t addr = effectiveAddress(mi.mem);
            fused_value = loadTyped(addr, mi.type);
            noteRead(addr, ir::typeSize(mi.type), fused_value);
        }

        uint64_t result = 0;
        switch (mi.op) {
          case Opcode::MovImm:
            result = immRaw(mi);
            break;
          case Opcode::Mov:
            result = computeSrc(mi, 0, fused_value);
            break;
          case Opcode::Neg:
            result = asU32(-static_cast<int64_t>(
                asI32(computeSrc(mi, 0, fused_value))));
            break;
          case Opcode::Not:
            result = asU32(~asU32(computeSrc(mi, 0, fused_value)));
            break;
          case Opcode::FNeg:
            result = f64Bits(-asF64(computeSrc(mi, 0, fused_value)));
            break;
          case Opcode::CvtIF: {
            uint64_t s = computeSrc(mi, 0, fused_value);
            double d = mi.type == Type::U32
                           ? static_cast<double>(asU32(s))
                           : static_cast<double>(asI32(s));
            result = f64Bits(d);
            break;
          }
          case Opcode::CvtFI: {
            double d = asF64(computeSrc(mi, 0, fused_value));
            if (std::isnan(d))
                d = 0.0;
            if (mi.type == Type::U32) {
                // Saturate into the 64-bit range then truncate (avoids UB).
                double clamped = d < 0 ? 0 : (d > 4294967295.0
                                                  ? 4294967295.0
                                                  : d);
                result = asU32(static_cast<uint64_t>(clamped));
            } else {
                double clamped = d < -2147483648.0
                                     ? -2147483648.0
                                     : (d > 2147483647.0 ? 2147483647.0
                                                         : d);
                result = asU32(static_cast<uint64_t>(
                    static_cast<int64_t>(clamped)));
            }
            break;
          }
          default:
            result = executeBinary(mi, fused_value);
            break;
        }

        if (mi.dst >= 0)
            setReg(mi.dst, result);
        if (mi.storeFused) {
            uint64_t addr = effectiveAddress(mi.mem);
            storeTyped(addr, mi.type, result);
            noteWrite(addr, ir::typeSize(mi.type), result);
        }
    }

    uint64_t
    executeBinary(const MInst &mi, uint64_t fused_value)
    {
        uint64_t a = computeSrc(mi, 0, fused_value);
        uint64_t b = computeSrc(mi, 1, fused_value);

        if (mi.type == Type::F64) {
            double x = asF64(a), y = asF64(b);
            switch (mi.op) {
              case Opcode::FAdd: return f64Bits(x + y);
              case Opcode::FSub: return f64Bits(x - y);
              case Opcode::FMul: return f64Bits(x * y);
              case Opcode::FDiv: return f64Bits(y == 0.0
                                                    ? 0.0
                                                    : x / y);
              case Opcode::CmpEq: return x == y;
              case Opcode::CmpNe: return x != y;
              case Opcode::CmpLt: return x < y;
              case Opcode::CmpLe: return x <= y;
              case Opcode::CmpGt: return x > y;
              case Opcode::CmpGe: return x >= y;
              default:
                panic("fp compute with integer opcode %s",
                      ir::opcodeName(mi.op));
            }
        }

        bool is_signed = mi.type == Type::I32;
        int32_t sa = asI32(a), sb = asI32(b);
        uint32_t ua = asU32(a), ub = asU32(b);
        switch (mi.op) {
          case Opcode::Add: return asU32(ua + ub);
          case Opcode::Sub: return asU32(ua - ub);
          case Opcode::Mul: return asU32(ua * ub);
          case Opcode::Div:
            if (ub == 0)
                return 0; // defined semantics: x/0 == 0 (see DESIGN.md)
            if (is_signed) {
                if (sa == INT32_MIN && sb == -1)
                    return asU32(static_cast<uint32_t>(INT32_MIN));
                return asU32(static_cast<uint32_t>(sa / sb));
            }
            return asU32(ua / ub);
          case Opcode::Rem:
            if (ub == 0)
                return 0;
            if (is_signed) {
                if (sa == INT32_MIN && sb == -1)
                    return 0;
                return asU32(static_cast<uint32_t>(sa % sb));
            }
            return asU32(ua % ub);
          case Opcode::And: return ua & ub;
          case Opcode::Or: return ua | ub;
          case Opcode::Xor: return ua ^ ub;
          case Opcode::Shl: return asU32(ua << (ub & 31));
          case Opcode::Shr:
            if (is_signed)
                return asU32(static_cast<uint32_t>(sa >> (ub & 31)));
            return ua >> (ub & 31);
          case Opcode::CmpEq: return ua == ub;
          case Opcode::CmpNe: return ua != ub;
          case Opcode::CmpLt: return is_signed ? sa < sb : ua < ub;
          case Opcode::CmpLe: return is_signed ? sa <= sb : ua <= ub;
          case Opcode::CmpGt: return is_signed ? sa > sb : ua > ub;
          case Opcode::CmpGe: return is_signed ? sa >= sb : ua >= ub;
          default:
            panic("integer compute with bad opcode %s",
                  ir::opcodeName(mi.op));
        }
    }

    void
    doPrint(const MInst &mi)
    {
        argBuffer.clear();
        for (int a : mi.args)
            argBuffer.push_back(reg(a));
        stats.output +=
            formatPrintf(mi.text, argBuffer.data(), argBuffer.size());
    }

    const isa::MachineProgram &prog;
    ExecObserver *observer;
    ExecLimits limits;
    MemoryImage mem;

    std::vector<Frame> frames;
    std::vector<uint64_t> regStack;
    std::vector<uint64_t> argBuffer;
    uint64_t sp = 0;
    int pc = 0;
    ExecStats stats;
};

} // namespace

ExecStats
execute(const isa::MachineProgram &prog, ExecObserver *observer,
        const ExecLimits &limits)
{
    if (limits.engine == ExecEngine::Reference)
        return Machine(prog, observer, limits).run();
    return execute(DecodedProgram(prog), observer, limits);
}

ExecStats
executeReference(const isa::MachineProgram &prog, ExecObserver *observer,
                 const ExecLimits &limits)
{
    return Machine(prog, observer, limits).run();
}

} // namespace bsyn::sim
