/**
 * @file
 * Set-associative data-cache simulator with true-LRU replacement, plus a
 * multi-configuration harness that evaluates a sweep of cache sizes in a
 * single pass over the access stream (the paper cites Hill & Smith [13]
 * for this single-pass idea and uses it both during profiling and in the
 * Figure 7/8 evaluation).
 */

#ifndef BSYN_SIM_CACHE_HH
#define BSYN_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bsyn::sim
{

/** Geometry of one cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 8 * 1024;
    uint32_t lineBytes = 32;
    uint32_t associativity = 4;

    uint64_t numSets() const
    {
        return sizeBytes / (lineBytes * associativity);
    }

    std::string describe() const;
};

/** Hit/miss counters. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    uint64_t hits() const { return accesses - misses; }
    double hitRate() const
    {
        return accesses ? double(hits()) / double(accesses) : 1.0;
    }
    double missRate() const { return 1.0 - hitRate(); }
};

/** One set-associative LRU cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line holding @p addr; @return true on hit. Writes
     * allocate like reads (write-allocate, write-back is irrelevant
     * without a backing hierarchy model). Inline — this sits on the
     * per-memory-access hot path of the instrumented execution engine.
     */
    bool
    access(uint64_t addr)
    {
        ++stats_.accesses;
        ++clock;
        uint64_t line_addr = addr >> setShift;
        uint64_t set = line_addr & setMask;
        uint64_t tag = line_addr >> tagShift;
        Line *base = &lines[set * cfg.associativity];

        Line *victim = base;
        for (uint32_t w = 0; w < cfg.associativity; ++w) {
            Line &l = base[w];
            if (l.valid && l.tag == tag) {
                l.lruStamp = clock;
                return true;
            }
            if (!l.valid) {
                victim = &l;
            } else if (victim->valid && l.lruStamp < victim->lruStamp) {
                victim = &l;
            }
        }
        ++stats_.misses;
        victim->valid = true;
        victim->tag = tag;
        victim->lruStamp = clock;
        return false;
    }

    /**
     * Access @p size bytes starting at @p addr: every cache line the
     * access overlaps is touched (a load/store straddling a line
     * boundary costs one access per line). @return true only if every
     * line hit.
     */
    bool
    access(uint64_t addr, uint32_t size)
    {
        bool hit = access(addr);
        if (size > 1) {
            uint64_t first = addr >> setShift;
            uint64_t last = (addr + size - 1) >> setShift;
            for (uint64_t line = first + 1; line <= last; ++line) {
                bool h = access(line << setShift);
                hit = hit && h;
            }
        }
        return hit;
    }

    /** Access without updating statistics (used for warmup). */
    bool probe(uint64_t addr) const;

    const CacheConfig &config() const { return cfg; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats(); }
    void flush();

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lruStamp = 0;
    };

    CacheConfig cfg;
    CacheStats stats_;
    std::vector<Line> lines; ///< sets * ways, row-major by set
    uint64_t clock = 0;
    uint32_t setShift = 0;
    uint32_t tagShift = 0;
    uint64_t setMask = 0;
};

/**
 * A bank of caches with different configurations fed by one access
 * stream — the single-pass sweep used in profiling and in Figs 7/8.
 */
class CacheSweep
{
  public:
    explicit CacheSweep(const std::vector<CacheConfig> &configs);

    void access(uint64_t addr);

    /** Width-aware feed: straddling accesses touch every overlapped
     *  line in every member cache. */
    void access(uint64_t addr, uint32_t size);

    size_t size() const { return caches.size(); }
    const Cache &at(size_t i) const { return caches[i]; }
    Cache &at(size_t i) { return caches[i]; }

    /** The paper's Fig 7/8 sweep: 1..32 KB, 32 B lines, 4-way. */
    static std::vector<CacheConfig> paperSweep();

  private:
    std::vector<Cache> caches;
};

} // namespace bsyn::sim

#endif // BSYN_SIM_CACHE_HH
