/**
 * @file
 * Trace-driven processor timing models: an out-of-order core (ROB,
 * width-limited dispatch, operand-ready scheduling, cache-miss and
 * branch-misprediction penalties) standing in for the paper's PTLSim
 * 2-wide out-of-order configuration, and an in-order (EPIC-like) variant
 * whose performance depends much more strongly on code quality — the
 * property that makes the paper's Itanium 2 respond to -O2/-O3.
 */

#ifndef BSYN_SIM_CORE_MODEL_HH
#define BSYN_SIM_CORE_MODEL_HH

#include <array>
#include <memory>

#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"

namespace bsyn::sim
{

/** Microarchitecture parameters of a core. */
struct CoreConfig
{
    std::string name = "ooo2";
    int width = 2;          ///< dispatch/issue width
    int robSize = 32;       ///< reorder-buffer entries
    bool inOrder = false;   ///< true = EPIC-style in-order issue
    int mispredictPenalty = 10;

    CacheConfig l1d;        ///< level-1 data cache
    int l1HitLatency = 2;   ///< load-to-use latency on a hit
    int l1MissPenalty = 12; ///< additional cycles on an L1 miss (L2 hit)

    bool hasL2 = true;
    CacheConfig l2;         ///< unified second level
    int l2MissPenalty = 120; ///< additional cycles on an L2 miss

    std::string predictor = "tournament";
};

/** Timing results. */
struct TimingStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    PredictorStats branch;
    CacheStats l1d;
    CacheStats l2;

    double
    cpi() const
    {
        return instructions ? double(cycles) / double(instructions) : 0.0;
    }
};

/**
 * The timing model consumes the dynamic stream as an ExecObserver;
 * attach it to sim::execute() and call finish() afterwards.
 */
class CoreModel : public ExecObserver
{
  public:
    explicit CoreModel(const CoreConfig &cfg);
    ~CoreModel() override;

    void onInstruction(int pc, const isa::MInst &mi) override;
    void onMemAccess(int pc, uint64_t addr, uint32_t size,
                     bool is_write, uint64_t raw_value = 0) override;
    void onBranch(int pc, bool taken) override;

    /** Finalize the last in-flight instruction and return the totals. */
    TimingStats finish();

    const CoreConfig &config() const { return cfg; }

  private:
    struct Pending
    {
        bool valid = false;
        int pc = 0;
        isa::MClass cls = isa::MClass::IntAlu;
        int dst = -1;
        int srcs[4] = {-1, -1, -1, -1};
        int numSrcs = 0;
        uint64_t extraLatency = 0;
        bool isBranch = false;
        bool taken = false;
        bool isCallRet = false;
        uint64_t loadAddr = 0;  ///< address read (store-forward check)
        bool hasLoad = false;
        uint64_t storeAddr = 0; ///< address written
        bool hasStore = false;
    };

    void retirePending();
    uint64_t baseLatency(isa::MClass cls) const;
    uint64_t &regReady(int r);

    CoreConfig cfg;
    Cache l1;
    Cache l2cache;
    std::unique_ptr<BranchPredictor> pred;

    Pending pending;
    std::vector<uint64_t> ready; ///< per-register ready cycle

    uint64_t dispatchCycle = 0;
    int dispatchSlots = 0;
    uint64_t lastIssue = 0;
    int issueSlots = 0;
    uint64_t lastRetire = 0;
    uint64_t fetchReady = 0;
    std::vector<uint64_t> robRing; ///< retire cycles of last robSize insts
    size_t robHead = 0;

    uint64_t instructions = 0;

    /**
     * Store-to-load forwarding: completion cycle of the last store per
     * (word-granular) address, so memory-carried dependence chains —
     * ubiquitous in -O0 code — are timed honestly. Direct-mapped and
     * tagged; collisions simply miss (no false dependences).
     */
    static constexpr size_t fwdSlots = 1u << 16;
    struct FwdEntry
    {
        uint64_t addr = ~0ull;
        uint64_t ready = 0;
    };
    std::array<FwdEntry, fwdSlots> storeReady{};
};

/** Convenience: execute @p prog under a core model; @return timing. */
TimingStats simulateTiming(const isa::MachineProgram &prog,
                           const CoreConfig &cfg,
                           const ExecLimits &limits = {});

} // namespace bsyn::sim

#endif // BSYN_SIM_CORE_MODEL_HH
