/**
 * @file
 * Trace-driven processor timing models: an out-of-order core (ROB,
 * width-limited dispatch, operand-ready scheduling, cache-miss and
 * branch-misprediction penalties) standing in for the paper's PTLSim
 * 2-wide out-of-order configuration, and an in-order (EPIC-like) variant
 * whose performance depends much more strongly on code quality — the
 * property that makes the paper's Itanium 2 respond to -O2/-O3.
 */

#ifndef BSYN_SIM_CORE_MODEL_HH
#define BSYN_SIM_CORE_MODEL_HH

#include <array>
#include <memory>

#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"

namespace bsyn::sim
{

class DecodedProgram;

/** Microarchitecture parameters of a core. */
struct CoreConfig
{
    std::string name = "ooo2";
    int width = 2;          ///< dispatch/issue width
    int robSize = 32;       ///< reorder-buffer entries
    bool inOrder = false;   ///< true = EPIC-style in-order issue
    int mispredictPenalty = 10;

    CacheConfig l1d;        ///< level-1 data cache
    int l1HitLatency = 2;   ///< load-to-use latency on a hit
    int l1MissPenalty = 12; ///< additional cycles on an L1 miss (L2 hit)

    bool hasL2 = true;
    CacheConfig l2;         ///< unified second level
    int l2MissPenalty = 120; ///< additional cycles on an L2 miss

    std::string predictor = "tournament";
};

/**
 * Per-PC dynamic timing event counters, for differential comparison of
 * the reference and specialized timing engines at per-instruction
 * granularity (aggregate TimingStats could mask compensating errors;
 * per-PC attribution cannot). Filled only when a caller attaches one
 * via CoreModel::recordEvents / TimedCore::recordEvents.
 */
struct PerPcTimingEvents
{
    std::vector<uint64_t> l1Misses;
    std::vector<uint64_t> l2Misses;
    std::vector<uint64_t> mispredicts;

    void
    init(size_t n)
    {
        l1Misses.assign(n, 0);
        l2Misses.assign(n, 0);
        mispredicts.assign(n, 0);
    }

    bool
    operator==(const PerPcTimingEvents &o) const
    {
        return l1Misses == o.l1Misses && l2Misses == o.l2Misses &&
               mispredicts == o.mispredicts;
    }
};

/** Timing results. */
struct TimingStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    PredictorStats branch;
    CacheStats l1d;
    CacheStats l2;

    double
    cpi() const
    {
        return instructions ? double(cycles) / double(instructions) : 0.0;
    }
};

/** Static scheduling metadata of one PC (see prepareTimingInst). */
struct PreparedTimingInst
{
    isa::MClass cls = isa::MClass::IntAlu;
    int32_t dst = -1;
    int32_t srcs[4] = {-1, -1, -1, -1};
    int8_t numSrcs = 0;
    bool isBranch = false;
    bool isCallRet = false;
    uint32_t fusedLoadLatency = 0;
};

/**
 * Derive one PC's scheduling metadata from its MInst — the single
 * source of truth for every timing path (the reference CoreModel
 * caches it per PC in prepare() or derives it on the fly as an
 * observer; TimedProgram folds it further for the specialized engine).
 */
PreparedTimingInst prepareTimingInst(const isa::MInst &mi,
                                     const CoreConfig &cfg);

/**
 * Timing class of an instruction. Unlike MInst::cls() — which follows
 * Pin's memory-behaviour view for the instruction-mix statistics — the
 * scheduler needs the execution latency of the *operation*, with fused
 * memory operands accounted for separately.
 */
isa::MClass timingClass(const isa::MInst &mi);

/** Execution latency of a timing class under @p cfg. */
uint64_t timingBaseLatency(isa::MClass cls, const CoreConfig &cfg);

/**
 * The reference timing model. Consumes the dynamic stream as an
 * ExecObserver (attach to sim::execute() and call finish()
 * afterwards) or non-virtually through the timed dispatch mode
 * (executeTimed) once prepare()d. The default timing path is the
 * specialized engine in sim/timed_core.hh; this class is the golden
 * model it is differentially tested against — select it at run time
 * with TimingEngine::Reference when debugging.
 */
class CoreModel : public ExecObserver
{
  public:
    explicit CoreModel(const CoreConfig &cfg);
    ~CoreModel() override;

    void onInstruction(int pc, const isa::MInst &mi) override;
    void onMemAccess(int pc, uint64_t addr, uint32_t size,
                     bool is_write, uint64_t raw_value = 0) override;
    void onBranch(int pc, bool taken) override;

    /**
     * Precompute the per-PC scheduling metadata (timing class, source
     * registers, fused-load latency...) of @p prog so the timed
     * dispatch mode (sim::executeTimed) can step the model without
     * re-deriving any of it from the MInst per retired instruction.
     */
    void prepare(const isa::MachineProgram &prog);

    /** Non-virtual onInstruction over prepare()d metadata. */
    void
    stepPrepared(int pc)
    {
        retirePending();
        beginInstruction(pc, prepared[static_cast<size_t>(pc)]);
    }

    /** Attach per-PC event counters (differential testing). */
    void
    recordEvents(PerPcTimingEvents *e, size_t nPcs)
    {
        events = e;
        if (events)
            events->init(nPcs);
    }

    /** Non-virtual onMemAccess (width-aware cache simulation). */
    void
    noteMemAccess(uint64_t addr, uint32_t size, bool is_write)
    {
        bool l1_hit = l1.access(addr, size);
        bool l2_hit = true;
        if (!l1_hit && cfg.hasL2)
            l2_hit = l2cache.access(addr, size);
        if (events && !l1_hit) {
            ++events->l1Misses[static_cast<size_t>(pending.pc)];
            if (cfg.hasL2 && !l2_hit)
                ++events->l2Misses[static_cast<size_t>(pending.pc)];
        }
        if (is_write) {
            pending.hasStore = true;
            pending.storeAddr = addr >> 2; // word granularity
            return; // stores retire without stalling the chain
        }
        pending.hasLoad = true;
        pending.loadAddr = addr >> 2;
        if (!l1_hit) {
            pending.extraLatency +=
                static_cast<uint64_t>(cfg.l1MissPenalty);
            if (cfg.hasL2 && !l2_hit)
                pending.extraLatency +=
                    static_cast<uint64_t>(cfg.l2MissPenalty);
        }
    }

    /** Non-virtual onBranch. */
    void noteBranch(bool taken) { pending.taken = taken; }

    /** Finalize the last in-flight instruction and return the totals. */
    TimingStats finish();

    const CoreConfig &config() const { return cfg; }

  private:
    using PreparedInst = PreparedTimingInst;
    struct Pending
    {
        bool valid = false;
        int pc = 0;
        isa::MClass cls = isa::MClass::IntAlu;
        int dst = -1;
        int srcs[4] = {-1, -1, -1, -1};
        int numSrcs = 0;
        uint64_t extraLatency = 0;
        bool isBranch = false;
        bool taken = false;
        bool isCallRet = false;
        uint64_t loadAddr = 0;  ///< address read (store-forward check)
        bool hasLoad = false;
        uint64_t storeAddr = 0; ///< address written
        bool hasStore = false;
    };

    PreparedInst
    prepareInst(const isa::MInst &mi) const
    {
        return prepareTimingInst(mi, cfg);
    }

    /** Load @p p into the in-flight slot (shared by stepPrepared and
     *  the virtual onInstruction). */
    void
    beginInstruction(int pc, const PreparedInst &p)
    {
        pending.valid = true;
        pending.pc = pc;
        pending.cls = p.cls;
        pending.extraLatency = p.fusedLoadLatency;
        pending.dst = p.dst;
        pending.numSrcs = p.numSrcs;
        for (int i = 0; i < p.numSrcs; ++i)
            pending.srcs[i] = p.srcs[i];
        pending.isBranch = p.isBranch;
        pending.taken = false;
        pending.isCallRet = p.isCallRet;
        pending.hasLoad = false;
        pending.hasStore = false;
    }

    void retirePending();
    uint64_t baseLatency(isa::MClass cls) const;
    uint64_t &regReady(int r);

    CoreConfig cfg;
    Cache l1;
    Cache l2cache;
    std::unique_ptr<BranchPredictor> pred;
    std::vector<PreparedInst> prepared; ///< per PC, empty until prepare()

    Pending pending;
    std::vector<uint64_t> ready; ///< per-register ready cycle

    uint64_t dispatchCycle = 0;
    int dispatchSlots = 0;
    uint64_t lastIssue = 0;
    int issueSlots = 0;
    uint64_t lastRetire = 0;
    uint64_t fetchReady = 0;
    std::vector<uint64_t> robRing; ///< retire cycles of last robSize insts
    size_t robHead = 0;

    uint64_t instructions = 0;

    /**
     * Store-to-load forwarding: completion cycle of the last store per
     * (word-granular) address, so memory-carried dependence chains —
     * ubiquitous in -O0 code — are timed honestly. Direct-mapped and
     * tagged; collisions simply miss (no false dependences).
     */
    static constexpr size_t fwdSlots = 1u << 16;
    struct FwdEntry
    {
        uint64_t addr = ~0ull;
        uint64_t ready = 0;
    };
    std::array<FwdEntry, fwdSlots> storeReady{};

    PerPcTimingEvents *events = nullptr;
};

/** Which timing implementation simulateTiming runs. */
enum class TimingEngine : uint8_t
{
    Specialized, ///< per-PC specialized engine (sim/timed_core.hh)
    Reference,   ///< golden CoreModel path (debugging / differential)
};

class TimedProgram;

/** Convenience: execute @p prog under a core model; @return timing.
 *  Decodes once and runs the timed dispatch mode. */
TimingStats simulateTiming(const isa::MachineProgram &prog,
                           const CoreConfig &cfg,
                           const ExecLimits &limits = {},
                           TimingEngine engine = TimingEngine::Specialized);

/** Timed run over an existing decode — callers sweeping one program
 *  across several core configs (Fig 10) decode once and reuse it. */
TimingStats simulateTiming(const DecodedProgram &prog,
                           const CoreConfig &cfg,
                           const ExecLimits &limits = {},
                           TimingEngine engine = TimingEngine::Specialized);

/** Timed run over an existing decode *and* prepared metadata — the
 *  innermost sweep form: one TimedProgram serves every configuration
 *  that shares its latencies (asserted), so a cache-size sweep pays
 *  decode + prepare once. Always the specialized engine. */
TimingStats simulateTiming(const DecodedProgram &prog,
                           const TimedProgram &timed,
                           const CoreConfig &cfg,
                           const ExecLimits &limits = {});

/** Timing stats plus the cycle count observed at each requested
 *  retired-instruction boundary (TimedCore::setCheckpoints). */
struct PhasedTimingStats
{
    TimingStats stats;
    /** checkpointCycles[i] = cycles after boundaries[i] retires; one
     *  entry per boundary actually reached before the run ended. */
    std::vector<uint64_t> checkpointCycles;
};

/** Timed run that records the cycle count at each retired-instruction
 *  boundary — the per-phase CPI primitive (fidelity scoring cuts both
 *  the original and the clone at the original's phase boundaries).
 *  Checkpoints ride the specialized engine's retire path, so the
 *  timing result is identical to simulateTiming over the same decode.
 *  @p boundaries must be strictly increasing. */
PhasedTimingStats
simulateTimingPhased(const DecodedProgram &prog, const CoreConfig &cfg,
                     std::vector<uint64_t> boundaries,
                     const ExecLimits &limits = {});

} // namespace bsyn::sim

#endif // BSYN_SIM_CORE_MODEL_HH
