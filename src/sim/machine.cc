#include "sim/machine.hh"

namespace bsyn::sim
{

namespace
{

CacheConfig
cacheKb(uint64_t kb, uint32_t line = 32, uint32_t assoc = 4)
{
    CacheConfig c;
    c.sizeBytes = kb * 1024;
    c.lineBytes = line;
    c.associativity = assoc;
    return c;
}

} // namespace

std::vector<MachineSpec>
paperMachines()
{
    std::vector<MachineSpec> machines;

    {
        // Pentium 4 at 3 GHz: x86, deep pipeline (expensive mispredicts),
        // small L1D, 1 MB L2.
        MachineSpec m;
        m.name = "Pentium 4, 3GHz";
        m.isa = isa::targetX86();
        m.core.name = "p4";
        m.core.width = 3;
        m.core.robSize = 126;
        m.core.inOrder = false;
        m.core.mispredictPenalty = 24;
        m.core.l1d = cacheKb(16, 64, 4);
        m.core.l1HitLatency = 3;
        m.core.l1MissPenalty = 18;
        m.core.l2 = cacheKb(1024, 64, 8);
        m.core.l2MissPenalty = 200;
        m.freqGHz = 3.0;
        machines.push_back(m);
    }
    {
        // Core 2 at 2.2 GHz: x86_64, 4-wide, 2 MB L2.
        MachineSpec m;
        m.name = "Core 2";
        m.isa = isa::targetX8664();
        m.core.name = "core2";
        m.core.width = 4;
        m.core.robSize = 96;
        m.core.mispredictPenalty = 14;
        m.core.l1d = cacheKb(32, 64, 8);
        m.core.l1HitLatency = 3;
        m.core.l1MissPenalty = 14;
        m.core.l2 = cacheKb(2048, 64, 8);
        m.core.l2MissPenalty = 160;
        m.freqGHz = 2.2;
        machines.push_back(m);
    }
    {
        // Pentium 4 at 2.8 GHz: same core as above, lower clock.
        MachineSpec m = machines[0];
        m.name = "Pentium 4, 2.8GHz";
        m.freqGHz = 2.8;
        machines.push_back(m);
    }
    {
        // Itanium 2 at 900 MHz: EPIC — wide but in-order, so compiler
        // quality directly shapes throughput; small 256 KB L2.
        MachineSpec m;
        m.name = "Itanium 2";
        m.isa = isa::targetIa64();
        m.core.name = "itanium2";
        m.core.width = 6;
        m.core.robSize = 48;
        m.core.inOrder = true;
        m.core.mispredictPenalty = 6;
        m.core.l1d = cacheKb(16, 64, 4);
        m.core.l1HitLatency = 1;
        m.core.l1MissPenalty = 7;
        m.core.l2 = cacheKb(256, 128, 8);
        m.core.l2MissPenalty = 100;
        m.freqGHz = 0.9;
        machines.push_back(m);
    }
    {
        // Core i7 at 2.67 GHz: x86_64, 4-wide, big ROB, 8 MB last level.
        MachineSpec m;
        m.name = "Core i7";
        m.isa = isa::targetX8664();
        m.core.name = "corei7";
        m.core.width = 4;
        m.core.robSize = 128;
        m.core.mispredictPenalty = 12;
        m.core.l1d = cacheKb(32, 64, 8);
        m.core.l1HitLatency = 2;
        m.core.l1MissPenalty = 10;
        m.core.l2 = cacheKb(8192, 64, 16);
        m.core.l2MissPenalty = 120;
        m.freqGHz = 2.67;
        machines.push_back(m);
    }

    return machines;
}

MachineSpec
ptlsimConfig(uint64_t dcache_kb)
{
    MachineSpec m;
    m.name = "ooo-2wide";
    m.isa = isa::targetX86();
    m.core.name = "ooo2";
    m.core.width = 2;
    m.core.robSize = 32;
    m.core.inOrder = false;
    m.core.mispredictPenalty = 10;
    m.core.l1d = cacheKb(dcache_kb, 32, 4);
    m.core.l1HitLatency = 2;
    m.core.l1MissPenalty = 12;
    m.core.l2 = cacheKb(512, 64, 8);
    m.core.l2MissPenalty = 120;
    m.freqGHz = 1.0;
    return m;
}

} // namespace bsyn::sim
