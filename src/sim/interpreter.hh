/**
 * @file
 * Functional interpreter for MachinePrograms with Pin-style observation
 * hooks. The profiler, the cache simulator and the timing models all
 * attach as observers of the dynamic instruction stream.
 */

#ifndef BSYN_SIM_INTERPRETER_HH
#define BSYN_SIM_INTERPRETER_HH

#include <string>
#include <vector>

#include "isa/machine_program.hh"
#include "sim/memory_image.hh"

namespace bsyn::sim
{

/**
 * Observation interface over the executed instruction stream, in the
 * spirit of Pin's instrumentation callbacks.
 */
class ExecObserver
{
  public:
    virtual ~ExecObserver() = default;

    /** Called once for every retired instruction. */
    virtual void onInstruction(int pc, const isa::MInst &mi) = 0;

    /**
     * Called for every data memory access (including accesses made by
     * fused CISC memory operands).
     */
    virtual void onMemAccess(int pc, uint64_t addr, uint32_t size,
                             bool is_write, uint64_t raw_value = 0) = 0;

    /** Called for every executed conditional branch. */
    virtual void onBranch(int pc, bool taken) = 0;
};

/** Execution statistics. */
struct ExecStats
{
    uint64_t instructions = 0; ///< retired dynamic instructions
    uint64_t memReads = 0;
    uint64_t memWrites = 0;
    uint64_t branches = 0;     ///< conditional branches executed
    uint64_t takenBranches = 0;
    uint64_t calls = 0;
    int exitCode = 0;
    std::string output;        ///< everything printf'd

    bool
    operator==(const ExecStats &o) const
    {
        return instructions == o.instructions && memReads == o.memReads &&
               memWrites == o.memWrites && branches == o.branches &&
               takenBranches == o.takenBranches && calls == o.calls &&
               exitCode == o.exitCode && output == o.output;
    }
    bool operator!=(const ExecStats &o) const { return !(*this == o); }
};

/** Which execution engine runs the program. */
enum class ExecEngine : uint8_t
{
    /** Predecoded threaded-dispatch engine (decoded_program.hh) — the
     *  default. Decodes once per execute() call; callers re-running one
     *  program should predecode and use the DecodedProgram overload. */
    Predecoded,
    /** The original decode-per-step interpreter, kept as the golden
     *  model the differential tests compare against. */
    Reference,
};

/** Interpreter configuration. */
struct ExecLimits
{
    uint64_t maxInstructions = 4ull << 30; ///< runaway guard
    uint64_t stackBytes = 1u << 20;
    ExecEngine engine = ExecEngine::Predecoded;
};

/**
 * Execute @p prog from its entry function to completion on the engine
 * selected by @p limits (predecoded by default).
 *
 * @param prog the lowered program (must have an entry function).
 * @param observer optional observation hooks (nullptr = fast path).
 * @param limits execution limits.
 * @return execution statistics including captured output.
 */
ExecStats execute(const isa::MachineProgram &prog,
                  ExecObserver *observer = nullptr,
                  const ExecLimits &limits = {});

/**
 * Execute @p prog on the reference decode-per-step interpreter,
 * regardless of limits.engine. The differential suite runs every
 * workload through both engines and asserts identical ExecStats.
 */
ExecStats executeReference(const isa::MachineProgram &prog,
                           ExecObserver *observer = nullptr,
                           const ExecLimits &limits = {});

} // namespace bsyn::sim

#endif // BSYN_SIM_INTERPRETER_HH
