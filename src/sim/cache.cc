#include "sim/cache.hh"

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::sim
{

std::string
CacheConfig::describe() const
{
    return strprintf("%lluKB/%uB/%u-way",
                     static_cast<unsigned long long>(sizeBytes / 1024),
                     lineBytes, associativity);
}

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2u(uint64_t v)
{
    uint32_t n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    BSYN_ASSERT(isPow2(cfg.lineBytes), "line size must be a power of two");
    BSYN_ASSERT(cfg.sizeBytes % (cfg.lineBytes * cfg.associativity) == 0,
                "cache size must be a multiple of line*assoc");
    uint64_t sets = cfg.numSets();
    BSYN_ASSERT(isPow2(sets), "set count must be a power of two");
    lines.assign(sets * cfg.associativity, Line());
    setShift = log2u(cfg.lineBytes);
    tagShift = log2u(sets);
    setMask = sets - 1;
}

bool
Cache::probe(uint64_t addr) const
{
    uint64_t line_addr = addr >> setShift;
    uint64_t set = line_addr & setMask;
    uint64_t tag = line_addr >> tagShift;
    const Line *base = &lines[set * cfg.associativity];
    for (uint32_t w = 0; w < cfg.associativity; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &l : lines)
        l = Line();
}

CacheSweep::CacheSweep(const std::vector<CacheConfig> &configs)
{
    for (const auto &c : configs)
        caches.emplace_back(c);
}

void
CacheSweep::access(uint64_t addr)
{
    for (auto &c : caches)
        c.access(addr);
}

void
CacheSweep::access(uint64_t addr, uint32_t size)
{
    for (auto &c : caches)
        c.access(addr, size);
}

std::vector<CacheConfig>
CacheSweep::paperSweep()
{
    std::vector<CacheConfig> out;
    for (uint64_t kb : {1, 2, 4, 8, 16, 32}) {
        CacheConfig c;
        c.sizeBytes = kb * 1024;
        c.lineBytes = 32;
        c.associativity = 4;
        out.push_back(c);
    }
    return out;
}

} // namespace bsyn::sim
