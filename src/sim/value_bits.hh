/**
 * @file
 * The value-representation rules of the simulated machine: registers
 * hold raw 64-bit images, integer operations read the low 32 bits, and
 * floating-point operations reinterpret all 64 bits as an IEEE double.
 * Shared by the reference interpreter, the predecoded engine and the
 * printf formatter so the representation can never fork between them.
 */

#ifndef BSYN_SIM_VALUE_BITS_HH
#define BSYN_SIM_VALUE_BITS_HH

#include <cstdint>
#include <cstring>

namespace bsyn::sim
{

inline int32_t
asI32(uint64_t v)
{
    return static_cast<int32_t>(v);
}

inline uint32_t
asU32(uint64_t v)
{
    return static_cast<uint32_t>(v);
}

inline double
asF64(uint64_t v)
{
    double d;
    std::memcpy(&d, &v, sizeof(d));
    return d;
}

inline uint64_t
f64Bits(double d)
{
    uint64_t v;
    std::memcpy(&v, &d, sizeof(v));
    return v;
}

} // namespace bsyn::sim

#endif // BSYN_SIM_VALUE_BITS_HH
