/**
 * @file
 * Predecoded execution engine. A DecodedProgram is built once per
 * MachineProgram: every MInst is resolved into a dense DecodedInst —
 * operand forms split apart (register / immediate / fused-load),
 * signedness and access width folded into a precomputed handler id,
 * branch targets and callees validated — and grouped into basic blocks.
 * The dispatch loop threads through a computed-goto table (a plain
 * switch on non-GNU compilers) with a separate fast path when no
 * ExecObserver is attached, so the per-step field-chasing and nested
 * switches of the reference interpreter disappear from the hot path.
 *
 * The decoded form is a pure accelerator: executing it produces
 * ExecStats byte-identical to the reference engine (asserted by the
 * differential test suite).
 */

#ifndef BSYN_SIM_DECODED_PROGRAM_HH
#define BSYN_SIM_DECODED_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "isa/machine_program.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"

namespace bsyn::sim
{

class CoreModel;

/**
 * Precomputed handler id: the MKind/opcode/type/signedness decision
 * tree of the reference interpreter, resolved at decode time.
 */
enum class Handler : uint8_t
{
    // Memory (access width pre-resolved).
    Load32, Load64,
    StoreReg32, StoreReg64, StoreImm32, StoreImm64,

    // Control (branch sense pre-resolved; Ret covers both value forms).
    CondBrNZ, CondBrZ, Jmp, Call, Ret, Print,

    // Moves and unary/conversion computes.
    Mov, MovImm, NegInt, NotInt, FNeg,
    CvtIFSigned, CvtIFUnsigned, CvtFISigned, CvtFIUnsigned,

    // Integer binary computes (signedness pre-resolved where it matters).
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrS, ShrU,
    CmpEqInt, CmpNeInt,
    CmpLtS, CmpLeS, CmpGtS, CmpGeS,
    CmpLtU, CmpLeU, CmpGtU, CmpGeU,

    // Floating-point computes.
    FAdd, FSub, FMul, FDiv,
    CmpEqF, CmpNeF, CmpLtF, CmpLeF, CmpGtF, CmpGeF,

    // Memory handlers specialized by statically known operand form:
    // frame-relative with a constant offset and no index register —
    // the dominant -O0 access shape (locals and spills). The effective
    // address is one add; the generic handlers' base-select and
    // index-scale branches disappear.
    Load32FrameC, Load64FrameC,
    StoreReg32FrameC, StoreReg64FrameC,
    StoreImm32FrameC, StoreImm64FrameC,

    // Superblock-fused integer compare + conditional branch: when a
    // compare's only consumer is the CondBr at the next PC inside the
    // same superblock, the pair dispatches as one handler (the branch
    // sense lives in the kBrIfZero flag; the CondBr keeps its own
    // unfused decode at its PC so side entries still work). All
    // per-instruction accounting — retire counts, limits, hooks — is
    // performed for both PCs, so every dispatch mode stays
    // byte-identical to the unfused form.
    BrCmpEq, BrCmpNe,
    BrCmpLtS, BrCmpLeS, BrCmpGtS, BrCmpGeS,
    BrCmpLtU, BrCmpLeU, BrCmpGtU, BrCmpGeU,

    /** Malformed compute: panics if it is ever executed (the reference
     *  interpreter panics lazily too, so decode must not reject it). */
    Trap,

    Count
};

/** @return a printable handler mnemonic. */
const char *handlerName(Handler h);

/** Where a compute operand slot comes from, resolved at decode time. */
enum OperandMode : uint8_t
{
    OperandNone = 0,  ///< slot unused
    OperandReg = 1,   ///< register in the slot's reg field
    OperandImm = 2,   ///< the instruction's raw immediate bits
    OperandFused = 3, ///< the value produced by the fused load
};

/** One predecoded instruction (dense, trivially copyable). */
struct DecodedInst
{
    Handler h = Handler::Trap;
    uint8_t aMode = OperandNone; ///< source slot 0 origin
    uint8_t bMode = OperandNone; ///< source slot 1 origin
    uint8_t flags = 0;           ///< kFusedLoad | kFusedStore | ...

    /** Timing class (isa::MClass), resolved at decode time so the
     *  timing engines never re-derive it from the MInst (see
     *  sim::timingClass). */
    uint8_t tcls = 0;

    int32_t dst = -1; ///< destination register (or -1)
    int32_t a = -1;   ///< slot-0 register / store value / branch cond / ret value
    int32_t b = -1;   ///< slot-1 register

    int32_t memIndex = -1; ///< memory index register (or -1)
    int32_t memScale = 1;
    int32_t memOffset = 0;
    int32_t memSym = 0;    ///< global symbol id (kMemFrame clear)

    int32_t target = -1; ///< branch target PC / call callee index
    uint64_t imm = 0;    ///< raw immediate bits (f64 image or zext u32)

    static constexpr uint8_t kFusedLoad = 1u << 0;  ///< pre-op memory read
    static constexpr uint8_t kFusedStore = 1u << 1; ///< post-op memory write
    static constexpr uint8_t kMemFrame = 1u << 2;   ///< mem base is the frame
    static constexpr uint8_t kMem64 = 1u << 3;      ///< fused access is 8 bytes
    static constexpr uint8_t kBrIfZero = 1u << 4;   ///< fused BrCmp* sense
};

/** One basic block of the decoded program: PCs [first, end). */
struct DecodedBlock
{
    int32_t first = 0;
    int32_t end = 0;
};

/**
 * One superblock: a maximal chain of consecutive basic blocks
 * [firstBlock, endBlock) where every block but the last falls through
 * to its successor (its final instruction is not a control transfer) —
 * the straight-line / single-successor chains of
 * MachineProgram::blockLeaders() structure. Handler fusion (the
 * BrCmp* forms) only crosses instruction boundaries inside one
 * superblock; side entries into the middle of a chain stay legal
 * because every PC keeps a dispatchable decode.
 */
struct Superblock
{
    int32_t firstBlock = 0;
    int32_t endBlock = 0;
};

/** Decode-time options. */
struct DecodeOptions
{
    /** Fuse compare+branch pairs inside superblocks (all dispatch
     *  modes execute fewer, larger handlers). Off: one handler per
     *  instruction — the layout the specialized-vs-fused differential
     *  checks compare against. */
    bool superblockFusion = true;
};

/**
 * A MachineProgram resolved for fast dispatch. Holds a reference to the
 * source program (for observer callbacks, call/print argument lists and
 * diagnostics) — the MachineProgram must outlive the DecodedProgram.
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const isa::MachineProgram &prog,
                            const DecodeOptions &opts = {});

    const isa::MachineProgram &program() const { return *prog_; }
    const std::vector<DecodedInst> &code() const { return code_; }
    size_t size() const { return code_.size(); }

    /** Basic blocks in PC order. */
    const std::vector<DecodedBlock> &blocks() const { return blocks_; }

    /** Index into blocks() of the block containing @p pc. */
    int blockOf(int pc) const
    {
        return blockOf_[static_cast<size_t>(pc)];
    }

    /** Superblocks in block order (they partition blocks()). */
    const std::vector<Superblock> &superblocks() const
    {
        return superblocks_;
    }

    /** Index into superblocks() of the chain containing @p block. */
    int superblockOf(int block) const
    {
        return superblockOf_[static_cast<size_t>(block)];
    }

  private:
    const isa::MachineProgram *prog_;
    std::vector<DecodedInst> code_;
    std::vector<DecodedBlock> blocks_;
    std::vector<int32_t> blockOf_;
    std::vector<Superblock> superblocks_;
    std::vector<int32_t> superblockOf_;
};

/**
 * Execute a predecoded program to completion. Semantics and resulting
 * ExecStats are identical to executing the underlying MachineProgram on
 * the reference engine; this entry point simply skips re-decoding, so
 * callers that run one program many times (timing sweeps, calibration)
 * should decode once and call this.
 */
ExecStats execute(const DecodedProgram &prog,
                  ExecObserver *observer = nullptr,
                  const ExecLimits &limits = {});

/**
 * Dense per-PC dynamic counters filled by the instrumented dispatch
 * mode (executeInstrumented). Everything the statistical profiler
 * derives from the ExecObserver callback stream is reconstructible
 * from these plus the program's static structure, so the instrumented
 * engine never pays a virtual call per retired instruction.
 */
struct InstrumentedCounters
{
    /** Times the instruction at each PC retired. */
    std::vector<uint64_t> execCount;

    /** Data-cache accesses / misses attributed to each PC (both pure
     *  loads/stores and fused memory operands), measured against the
     *  profiling cache fed in execution order. */
    std::vector<uint64_t> memAccesses;
    std::vector<uint64_t> memMisses;

    /** Per-CondBr outcome counters, same accounting as
     *  profile::BranchStats::record(). */
    struct Branch
    {
        uint64_t executions = 0;
        uint64_t taken = 0;
        uint64_t transitions = 0;
        uint8_t lastOutcome = 0;
        uint8_t hasLast = 0;
    };
    std::vector<Branch> branch;
};

/**
 * Execute on the instrumented dispatch mode: identical semantics and
 * ExecStats to execute(), plus @p out filled with the dense counters a
 * cache of geometry @p profiling_cache observes. The per-access cache
 * lookup is inlined into the memory handlers; no ExecObserver is
 * involved.
 */
ExecStats executeInstrumented(const DecodedProgram &prog,
                              const CacheConfig &profiling_cache,
                              InstrumentedCounters &out,
                              const ExecLimits &limits = {});

/**
 * Slice checkpointing parameters. The counter arrays are checkpointed
 * every baseSliceLength retired instructions; once maxSlices
 * checkpoints accumulate, adjacent slice pairs coalesce (every second
 * boundary is kept and the interval doubles), so the final interval is
 * baseSliceLength * 2^k — derived from the run's total retired count
 * with no wall-clock input, hence fully deterministic.
 */
struct SliceOptions
{
    uint64_t baseSliceLength = 4096;
    uint32_t maxSlices = 64; ///< rounded down to an even count, >= 2
};

/** One cumulative counter checkpoint at a retired-instruction boundary
 *  (the per-slice deltas are differences of consecutive snapshots). */
struct CounterSlice
{
    uint64_t retired = 0; ///< instructions retired at the boundary
    InstrumentedCounters counters;
};

/** The slice stream of one instrumented run. */
struct SlicedCounters
{
    /** Final (possibly doubled) checkpoint interval. */
    uint64_t sliceLength = 0;

    /** Cumulative snapshots in boundary order; the last one is taken
     *  at end of run, so its counters equal the aggregate counters and
     *  its retired count is the run's total. */
    std::vector<CounterSlice> snapshots;
};

/**
 * The slice checkpointing policy, shared verbatim by the instrumented
 * engine hooks and the observer-based profiler so both produce the
 * same boundaries on the same retired-instruction stream (the
 * differential-profile suite depends on it). beforeRetire() must be
 * called before each instruction's counters are bumped: a boundary cut
 * therefore lands between instructions, never splitting one
 * instruction's retire/memory/branch events across two slices.
 */
class SliceRecorder
{
  public:
    SliceRecorder(const SliceOptions &opts, SlicedCounters *out);

    void
    beforeRetire(const InstrumentedCounters &c)
    {
        if (out_ && retired_ == nextBoundary_)
            cut(c);
        ++retired_;
    }

    /** Record the end-of-run snapshot (cumulative == aggregate). */
    void finish(const InstrumentedCounters &c);

  private:
    void cut(const InstrumentedCounters &c); // cold: out of line

    SlicedCounters *out_;
    uint64_t retired_ = 0;
    uint64_t sliceLen_ = 0;
    uint64_t nextBoundary_ = 0;
    uint32_t maxSlices_ = 0;
};

/**
 * executeInstrumented() plus the deterministic slice stream: identical
 * semantics, ExecStats and aggregate counters, with @p slices filled
 * with cumulative checkpoints under @p slice_opts. The plain
 * instrumented path is untouched — slicing costs it nothing.
 */
ExecStats executeInstrumentedSliced(const DecodedProgram &prog,
                                    const CacheConfig &profiling_cache,
                                    InstrumentedCounters &out,
                                    SlicedCounters &slices,
                                    const SliceOptions &slice_opts = {},
                                    const ExecLimits &limits = {});

/**
 * Execute under @p model (timing) on the non-virtual timed dispatch
 * mode: the model must have been prepared for this program
 * (CoreModel::prepare), so each step consumes precomputed per-PC
 * metadata instead of re-deriving operands from the MInst. Call
 * model.finish() afterwards, as with the observer path.
 */
ExecStats executeTimed(const DecodedProgram &prog, CoreModel &model,
                       const ExecLimits &limits = {});

} // namespace bsyn::sim

#endif // BSYN_SIM_DECODED_PROGRAM_HH
