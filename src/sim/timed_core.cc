#include "sim/timed_core.hh"

#include <algorithm>

#include "support/error.hh"

namespace bsyn::sim
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

uint32_t
log2u(uint64_t v)
{
    uint32_t n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

TimedProgram::TimedProgram(const DecodedProgram &prog,
                           const CoreConfig &cfg)
    : l1HitLatency_(cfg.l1HitLatency)
{
    const isa::MachineProgram &mp = prog.program();
    const std::vector<DecodedInst> &code = prog.code();
    insts_.reserve(code.size());
    for (size_t pc = 0; pc < code.size(); ++pc) {
        PreparedTimingInst p = prepareTimingInst(mp.code[pc], cfg);
        Inst ti;
        // The timing class is also attached to the DecodedInst at
        // decode time; fold its base latency together with the fused
        // load's so the scheduler adds one precomputed number.
        BSYN_ASSERT(static_cast<isa::MClass>(code[pc].tcls) == p.cls,
                    "decode-time timing class out of sync at pc %zu",
                    pc);
        ti.lat = static_cast<uint32_t>(
            timingBaseLatency(p.cls, cfg) + p.fusedLoadLatency);
        // Pre-encode operands as ready-table indices (see Inst): dst
        // 0 = write sink, src 1 = always-zero slot, registers at +2.
        // maxReg covers exactly the slots the reference would touch,
        // so one watermark check per retire reproduces its lazy
        // ready-table growth.
        ti.dst = p.dst >= 0 ? static_cast<uint32_t>(p.dst) + 2 : 0;
        ti.maxReg = ti.dst > 1 ? ti.dst : 1;
        for (int i = 0; i < 4; ++i) {
            ti.srcs[i] = i < p.numSrcs
                             ? static_cast<uint32_t>(p.srcs[i]) + 2
                             : 1;
            if (ti.srcs[i] > ti.maxReg)
                ti.maxReg = ti.srcs[i];
        }
        ti.flags = (p.isBranch ? kBranch : 0) |
                   (p.isCallRet ? kCallRet : 0);
        // Resolve the retire point per PC. kSimple must imply "fires
        // no timing hooks": loads, stores and their fused compute
        // forms call onMemRead/onMemWrite; conditional branches
        // (including the fused BrCmp handlers) call onBranch;
        // everything else delivers no dynamic facts and retires at
        // dispatch. Read-only memory instructions retire at the read
        // hook; anything that writes retires at the write hook (the
        // write is always the later fact — fused handlers read first).
        bool reads = mp.code[pc].readsMemory();
        bool writes = mp.code[pc].writesMemory();
        if (!p.isBranch && !p.isCallRet && !reads && !writes)
            ti.flags |= kSimple;
        if (reads && !writes)
            ti.flags |= kRetireAtRead;
        ti.predIdx = static_cast<uint16_t>(pc & kPredMask);
        insts_.push_back(ti);
    }
}

TimedCache::TimedCache(const CacheConfig &config)
{
    BSYN_ASSERT(isPow2(config.lineBytes),
                "line size must be a power of two");
    BSYN_ASSERT(config.sizeBytes %
                        (config.lineBytes * config.associativity) ==
                    0,
                "cache size must be a multiple of line*assoc");
    uint64_t sets = config.numSets();
    BSYN_ASSERT(isPow2(sets), "set count must be a power of two");
    lines_.assign(sets * config.associativity, Line());
    setShift_ = log2u(config.lineBytes);
    tagShift_ = log2u(sets);
    setMask_ = sets - 1;
    assoc_ = config.associativity;
    for (Memo &m : memos_)
        m.line = lines_.data(); // addr = ~0 keeps every slot unreachable
}

FlatPredictor::FlatPredictor(const std::string &name)
{
    if (name == "static") {
        kind_ = Kind::Static;
        return;
    }
    size_t tableSize = TimedProgram::kPredMask + 1;
    if (name == "bimodal") {
        kind_ = Kind::Bimodal;
        bimodal_.assign(tableSize, 2);
    } else if (name == "gshare") {
        kind_ = Kind::Gshare;
        gshare_.assign(tableSize, 2);
    } else if (name == "tournament") {
        kind_ = Kind::Tournament;
        bimodal_.assign(tableSize, 2);
        gshare_.assign(tableSize, 2);
        chooser_.assign(tableSize, 2);
    } else {
        fatal("unknown branch predictor '%s'", name.c_str());
    }
}

TimedCore::TimedCore(const CoreConfig &cfg)
    : l1_(cfg.l1d), l2_(cfg.l2), pred_(cfg.predictor),
      width_(cfg.width), inOrder_(cfg.inOrder), hasL2_(cfg.hasL2),
      mispredictPenalty_(static_cast<uint64_t>(cfg.mispredictPenalty)),
      l1MissPenalty_(static_cast<uint64_t>(cfg.l1MissPenalty)),
      l2MissPenalty_(static_cast<uint64_t>(cfg.l2MissPenalty))
{
    robSize_ = static_cast<size_t>(std::max(cfg.robSize, 1));
    rob_.assign(robSize_, 0);
    // Reference starts with 64 register slots; +2 for the sink and
    // always-zero slots of the shifted operand-index layout.
    ready_.assign(64 + 2, 0);
    readySize_ = 64 + 2;
    fwd_.assign(kFwdSlots, FwdEntry());
}

uint64_t *
TimedCore::growReadyCold(size_t idx)
{
    // Replicates CoreModel::regReady's resize(idx + 64) in the shifted
    // layout (reference register r lives at slot r + 2, so its new
    // size idx_reg + 64 maps to idx_shifted + 64): the lazy size
    // watermark is part of the golden model's observable behaviour
    // (call/return readiness maxes only registers grown so far).
    readySize_ = idx + 64;
    if (ready_.size() < readySize_)
        ready_.resize(readySize_, 0);
    return ready_.data();
}

void
TimedCore::setCheckpoints(std::vector<uint64_t> boundaries)
{
    checkBounds_ = std::move(boundaries);
    checkCycles_.clear();
    checkCycles_.reserve(checkBounds_.size());
    checkNextIdx_ = 0;
    nextCheck_ = checkBounds_.empty() ? ~0ull : checkBounds_[0];
}

uint64_t
TimedCore::cutCheckpointCold(uint64_t last_retire)
{
    checkCycles_.push_back(last_retire);
    ++checkNextIdx_;
    return checkNextIdx_ < checkBounds_.size()
               ? checkBounds_[checkNextIdx_]
               : ~0ull;
}

TimingStats
TimedCore::finish()
{
    // Nothing to drain: every instruction retired inside its handler
    // (the last hook fires before the dispatch loop can exit).
    TimingStats out;
    out.instructions = instructions_;
    out.cycles = std::max<uint64_t>(lastRetire_, 1);
    out.branch = pred_.stats();
    out.l1d = l1_.stats();
    out.l2 = l2_.stats();
    return out;
}

} // namespace bsyn::sim
