/**
 * @file
 * The machine catalogue: complete (ISA target + core + clock) models of
 * the five machines in the paper's Table III, plus the 2-wide
 * out-of-order simulation configuration of Figure 10.
 */

#ifndef BSYN_SIM_MACHINE_HH
#define BSYN_SIM_MACHINE_HH

#include "isa/target.hh"
#include "sim/core_model.hh"

namespace bsyn::sim
{

/** A full machine: what a benchmark binary runs on end to end. */
struct MachineSpec
{
    std::string name;      ///< e.g. "Pentium 4, 3GHz"
    isa::TargetInfo isa;   ///< lowering target
    CoreConfig core;       ///< microarchitecture
    double freqGHz = 1.0;  ///< clock, for execution-time comparisons

    /** Wall-clock nanoseconds for a given cycle count. */
    double
    timeNs(uint64_t cycles) const
    {
        return double(cycles) / freqGHz;
    }
};

/** The five machines of Table III (modeled analogues). */
std::vector<MachineSpec> paperMachines();

/**
 * The PTLSim configuration of Figure 10: a 2-wide out-of-order core;
 * @p dcache_kb selects the data cache size (the figure sweeps 8/16/32).
 */
MachineSpec ptlsimConfig(uint64_t dcache_kb);

} // namespace bsyn::sim

#endif // BSYN_SIM_MACHINE_HH
