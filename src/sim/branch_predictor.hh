/**
 * @file
 * Conditional-branch predictors. The paper's evaluation (Fig 9) uses a
 * hybrid predictor with a bimodal component and a history-based
 * component, as simulated by PTLSim; we provide bimodal, gshare and the
 * tournament hybrid, plus trivial static predictors for baselines.
 */

#ifndef BSYN_SIM_BRANCH_PREDICTOR_HH
#define BSYN_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bsyn::sim
{

/** Prediction accuracy counters. */
struct PredictorStats
{
    uint64_t branches = 0;
    uint64_t correct = 0;

    double accuracy() const
    {
        return branches ? double(correct) / double(branches) : 1.0;
    }
};

/** Abstract conditional branch predictor. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict, then update with the actual outcome. */
    void
    branch(uint64_t pc, bool taken)
    {
        bool pred = predict(pc);
        ++stats_.branches;
        if (pred == taken)
            ++stats_.correct;
        update(pc, taken);
    }

    /** Predict without updating (used by the timing model). */
    virtual bool predict(uint64_t pc) const = 0;

    /** Train on the resolved outcome. */
    virtual void update(uint64_t pc, bool taken) = 0;

    virtual std::string name() const = 0;

    const PredictorStats &stats() const { return stats_; }
    void resetStats() { stats_ = PredictorStats(); }

  private:
    PredictorStats stats_;
};

/** Static always-taken (baseline). */
class StaticTakenPredictor : public BranchPredictor
{
  public:
    bool predict(uint64_t) const override { return true; }
    void update(uint64_t, bool) override {}
    std::string name() const override { return "static"; }
};

/** Bimodal: per-PC 2-bit saturating counters. */
class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(uint32_t table_bits = 12);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }

  private:
    std::vector<uint8_t> table;
    uint64_t mask;
};

/** gshare: global history XOR PC indexing 2-bit counters. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(uint32_t table_bits = 12,
                             uint32_t history_bits = 12);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }

  private:
    uint64_t index(uint64_t pc) const;

    std::vector<uint8_t> table;
    uint64_t mask;
    uint64_t history = 0;
    uint64_t historyMask;
};

/**
 * Tournament hybrid of a bimodal and a gshare component with a per-PC
 * chooser — the "hybrid branch predictor with a bimodal component along
 * with a history-based component" of the paper's experimental setup.
 */
class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(uint32_t table_bits = 12,
                                 uint32_t history_bits = 12);

    bool predict(uint64_t pc) const override;
    void update(uint64_t pc, bool taken) override;
    std::string name() const override { return "tournament"; }

  private:
    BimodalPredictor bimodal;
    GsharePredictor gshare;
    std::vector<uint8_t> chooser;
    uint64_t mask;
};

/** Factory by name: "static", "bimodal", "gshare", "tournament". */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &name);

} // namespace bsyn::sim

#endif // BSYN_SIM_BRANCH_PREDICTOR_HH
