#include "sim/decoded_program.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sim/core_model.hh"
#include "sim/memory_image.hh"
#include "sim/timed_core.hh"
#include "sim/printf_format.hh"
#include "sim/value_bits.hh"
#include "support/error.hh"

// Threaded dispatch needs the GNU computed-goto extension; elsewhere the
// same handler bodies compile into a dense switch.
#if defined(__GNUC__) || defined(__clang__)
#define BSYN_COMPUTED_GOTO 1
#else
#define BSYN_COMPUTED_GOTO 0
#endif

// The dispatch loop is one huge function, so the compiler's
// function-growth limits stop inlining long before the hook wrappers
// are folded in — and a single out-of-line hook call makes the
// checked-out Local's address escape, which blocks scalarizing it
// into registers for the whole loop. Force every wrapper on the
// hook path inline; cold bodies behind them stay out of line.
#if defined(__GNUC__) || defined(__clang__)
#define BSYN_HOOK_INLINE inline __attribute__((always_inline))
#else
#define BSYN_HOOK_INLINE inline
#endif

namespace bsyn::sim
{

namespace
{

using isa::MInst;
using isa::MKind;
using ir::Opcode;
using ir::Type;

/** Raw immediate bits exactly as the reference engine's immRaw(). */
uint64_t
immRawBits(const MInst &mi)
{
    if (mi.type == Type::F64)
        return f64Bits(mi.fimm);
    return static_cast<uint32_t>(static_cast<uint64_t>(mi.imm));
}

void
decodeMem(const MInst &mi, DecodedInst &d)
{
    if (mi.mem.symbol == ir::MemRef::frameBase)
        d.flags |= DecodedInst::kMemFrame;
    else
        d.memSym = mi.mem.symbol;
    d.memIndex = mi.mem.indexReg;
    d.memScale = mi.mem.scale;
    d.memOffset = mi.mem.offset;
    if (mi.type == Type::F64)
        d.flags |= DecodedInst::kMem64;
}

/**
 * The MKind::Compute decision tree of the reference engine, folded into
 * one handler id. Combinations the reference panics on at execution
 * (e.g. an integer opcode with an F64 type field) map to Trap so a
 * malformed-but-never-executed instruction stays lazily tolerated.
 */
Handler
computeHandler(const MInst &mi)
{
    // Unary/move forms are matched before the type split, exactly like
    // the switch at the top of the reference executeCompute().
    switch (mi.op) {
      case Opcode::MovImm: return Handler::MovImm;
      case Opcode::Mov: return Handler::Mov;
      case Opcode::Neg: return Handler::NegInt;
      case Opcode::Not: return Handler::NotInt;
      case Opcode::FNeg: return Handler::FNeg;
      case Opcode::CvtIF:
        return mi.type == Type::U32 ? Handler::CvtIFUnsigned
                                    : Handler::CvtIFSigned;
      case Opcode::CvtFI:
        return mi.type == Type::U32 ? Handler::CvtFIUnsigned
                                    : Handler::CvtFISigned;
      default:
        break;
    }

    if (mi.type == Type::F64) {
        switch (mi.op) {
          case Opcode::FAdd: return Handler::FAdd;
          case Opcode::FSub: return Handler::FSub;
          case Opcode::FMul: return Handler::FMul;
          case Opcode::FDiv: return Handler::FDiv;
          case Opcode::CmpEq: return Handler::CmpEqF;
          case Opcode::CmpNe: return Handler::CmpNeF;
          case Opcode::CmpLt: return Handler::CmpLtF;
          case Opcode::CmpLe: return Handler::CmpLeF;
          case Opcode::CmpGt: return Handler::CmpGtF;
          case Opcode::CmpGe: return Handler::CmpGeF;
          default: return Handler::Trap;
        }
    }

    bool s = mi.type == Type::I32;
    switch (mi.op) {
      case Opcode::Add: return Handler::Add;
      case Opcode::Sub: return Handler::Sub;
      case Opcode::Mul: return Handler::Mul;
      case Opcode::Div: return s ? Handler::DivS : Handler::DivU;
      case Opcode::Rem: return s ? Handler::RemS : Handler::RemU;
      case Opcode::And: return Handler::And;
      case Opcode::Or: return Handler::Or;
      case Opcode::Xor: return Handler::Xor;
      case Opcode::Shl: return Handler::Shl;
      case Opcode::Shr: return s ? Handler::ShrS : Handler::ShrU;
      case Opcode::CmpEq: return Handler::CmpEqInt;
      case Opcode::CmpNe: return Handler::CmpNeInt;
      case Opcode::CmpLt: return s ? Handler::CmpLtS : Handler::CmpLtU;
      case Opcode::CmpLe: return s ? Handler::CmpLeS : Handler::CmpLeU;
      case Opcode::CmpGt: return s ? Handler::CmpGtS : Handler::CmpGtU;
      case Opcode::CmpGe: return s ? Handler::CmpGeS : Handler::CmpGeU;
      default: return Handler::Trap;
    }
}

/** How many source slots a compute opcode reads. */
int
computeArity(Opcode op)
{
    switch (op) {
      case Opcode::MovImm:
        return 0;
      case Opcode::Mov:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::FNeg:
      case Opcode::CvtIF:
      case Opcode::CvtFI:
        return 1;
      default:
        return 2;
    }
}

/**
 * Specialize a Load/Store handler by its statically known operand
 * form: frame-relative, constant offset, no index register — the
 * address is curFp plus a constant. Handler enum layout guarantees
 * the FrameC variant sits a fixed distance from its generic form.
 */
void
specializeMem(DecodedInst &d)
{
    if (!(d.flags & DecodedInst::kMemFrame) || d.memIndex >= 0)
        return;
    switch (d.h) {
      case Handler::Load32: d.h = Handler::Load32FrameC; break;
      case Handler::Load64: d.h = Handler::Load64FrameC; break;
      case Handler::StoreReg32: d.h = Handler::StoreReg32FrameC; break;
      case Handler::StoreReg64: d.h = Handler::StoreReg64FrameC; break;
      case Handler::StoreImm32: d.h = Handler::StoreImm32FrameC; break;
      case Handler::StoreImm64: d.h = Handler::StoreImm64FrameC; break;
      default: break;
    }
}

DecodedInst
decodeOne(const isa::MachineProgram &prog, int pc)
{
    const MInst &mi = prog.code[static_cast<size_t>(pc)];
    DecodedInst d;
    d.dst = mi.dst;
    d.imm = immRawBits(mi);
    d.tcls = static_cast<uint8_t>(timingClass(mi));

    switch (mi.kind) {
      case MKind::Load:
        d.h = mi.type == Type::F64 ? Handler::Load64 : Handler::Load32;
        decodeMem(mi, d);
        specializeMem(d);
        break;

      case MKind::Store:
        if (mi.srcIsImm) {
            d.h = mi.type == Type::F64 ? Handler::StoreImm64
                                       : Handler::StoreImm32;
        } else {
            d.h = mi.type == Type::F64 ? Handler::StoreReg64
                                       : Handler::StoreReg32;
            d.a = mi.src0;
        }
        decodeMem(mi, d);
        specializeMem(d);
        break;

      case MKind::CondBr:
        d.h = mi.brIfZero ? Handler::CondBrZ : Handler::CondBrNZ;
        d.a = mi.src0;
        d.target = mi.target;
        BSYN_ASSERT(mi.target >= 0 &&
                        static_cast<size_t>(mi.target) < prog.code.size(),
                    "branch target %d out of range at pc %d", mi.target,
                    pc);
        break;

      case MKind::Jmp:
        d.h = Handler::Jmp;
        d.target = mi.target;
        BSYN_ASSERT(mi.target >= 0 &&
                        static_cast<size_t>(mi.target) < prog.code.size(),
                    "jump target %d out of range at pc %d", mi.target, pc);
        break;

      case MKind::Call:
        d.h = Handler::Call;
        d.target = mi.callee;
        BSYN_ASSERT(mi.callee >= 0 &&
                        static_cast<size_t>(mi.callee) < prog.funcs.size(),
                    "callee %d out of range at pc %d", mi.callee, pc);
        break;

      case MKind::Ret:
        d.h = Handler::Ret;
        d.a = mi.src0;
        break;

      case MKind::Print:
        d.h = Handler::Print;
        break;

      case MKind::Compute: {
        d.h = computeHandler(mi);
        if (mi.loadFused || mi.storeFused) {
            decodeMem(mi, d);
            // decodeMem sets kMem64 from the compute's own type field —
            // the width the reference engine's loadTyped/storeTyped use
            // for fused accesses.
            if (mi.loadFused)
                d.flags |= DecodedInst::kFusedLoad;
            if (mi.storeFused)
                d.flags |= DecodedInst::kFusedStore;
        }
        // Split the operand forms: each slot is a register, the
        // immediate, or the fused load — the reference re-derives this
        // per step in computeSrc().
        int arity = computeArity(mi.op);
        auto slot = [&](int which, int reg_field, uint8_t &mode,
                        int32_t &reg_out) {
            if (mi.loadFused && mi.fusedSlot == which) {
                mode = OperandFused;
            } else if (mi.srcIsImm && mi.immSlot == which) {
                mode = OperandImm;
            } else if (reg_field >= 0) {
                mode = OperandReg;
                reg_out = reg_field;
            } else {
                // The reference asserts on an undefined source slot at
                // execution time; stay lazily tolerant of dead junk.
                d.h = Handler::Trap;
            }
        };
        if (arity >= 1)
            slot(0, mi.src0, d.aMode, d.a);
        if (arity >= 2)
            slot(1, mi.src1, d.bMode, d.b);
        break;
      }
    }
    return d;
}

} // namespace

const char *
handlerName(Handler h)
{
    static const char *const names[] = {
        "load32", "load64", "store_r32", "store_r64", "store_i32",
        "store_i64", "condbr_nz", "condbr_z", "jmp", "call", "ret",
        "print", "mov", "movimm", "neg", "not", "fneg", "cvt_if_s",
        "cvt_if_u", "cvt_fi_s", "cvt_fi_u", "add", "sub", "mul", "div_s",
        "div_u", "rem_s", "rem_u", "and", "or", "xor", "shl", "shr_s",
        "shr_u", "cmpeq", "cmpne", "cmplt_s", "cmple_s", "cmpgt_s",
        "cmpge_s", "cmplt_u", "cmple_u", "cmpgt_u", "cmpge_u", "fadd",
        "fsub", "fmul", "fdiv", "cmpeq_f", "cmpne_f", "cmplt_f",
        "cmple_f", "cmpgt_f", "cmpge_f", "load32_fc", "load64_fc",
        "store_r32_fc", "store_r64_fc", "store_i32_fc", "store_i64_fc",
        "brcmp_eq", "brcmp_ne", "brcmp_lt_s", "brcmp_le_s",
        "brcmp_gt_s", "brcmp_ge_s", "brcmp_lt_u", "brcmp_le_u",
        "brcmp_gt_u", "brcmp_ge_u", "trap",
    };
    static_assert(sizeof(names) / sizeof(names[0]) ==
                      static_cast<size_t>(Handler::Count),
                  "handler name table out of sync");
    return names[static_cast<size_t>(h)];
}

DecodedProgram::DecodedProgram(const isa::MachineProgram &prog,
                               const DecodeOptions &opts)
    : prog_(&prog)
{
    code_.reserve(prog.code.size());
    for (size_t pc = 0; pc < prog.code.size(); ++pc)
        code_.push_back(decodeOne(prog, static_cast<int>(pc)));

    std::vector<int> leaders = prog.blockLeaders();
    if (!prog.code.empty() && (leaders.empty() || leaders.front() != 0))
        leaders.insert(leaders.begin(), 0);
    blockOf_.assign(prog.code.size(), 0);
    blocks_.reserve(leaders.size());
    for (size_t b = 0; b < leaders.size(); ++b) {
        DecodedBlock blk;
        blk.first = leaders[b];
        blk.end = b + 1 < leaders.size()
                      ? leaders[b + 1]
                      : static_cast<int32_t>(prog.code.size());
        for (int32_t pc = blk.first; pc < blk.end; ++pc)
            blockOf_[static_cast<size_t>(pc)] = static_cast<int32_t>(b);
        blocks_.push_back(blk);
    }

    // Superblocks: chain consecutive blocks while the earlier block
    // falls through (its last instruction is not a control transfer —
    // the successor block's leader exists only because it is a branch
    // target elsewhere).
    superblockOf_.assign(blocks_.size(), 0);
    for (size_t b = 0; b < blocks_.size();) {
        size_t e = b;
        while (e + 1 < blocks_.size()) {
            const DecodedBlock &blk = blocks_[e];
            if (blk.first >= blk.end)
                break;
            const MInst &last =
                prog.code[static_cast<size_t>(blk.end - 1)];
            if (last.isBlockEnd())
                break;
            ++e;
        }
        Superblock sb;
        sb.firstBlock = static_cast<int32_t>(b);
        sb.endBlock = static_cast<int32_t>(e + 1);
        for (size_t i = b; i <= e; ++i)
            superblockOf_[i] = static_cast<int32_t>(superblocks_.size());
        superblocks_.push_back(sb);
        b = e + 1;
    }

    // Superblock fusion: an integer compare whose value feeds the
    // conditional branch at the next PC inside the same superblock
    // dispatches as one BrCmp* handler. The CondBr keeps its own
    // decode at pc+1 (side entries from other branches stay legal);
    // the fused handler performs both instructions' retire accounting,
    // so every dispatch mode stays byte-identical to the unfused form.
    if (!opts.superblockFusion)
        return;
    for (size_t pc = 0; pc + 1 < code_.size(); ++pc) {
        DecodedInst &d = code_[pc];
        Handler fused;
        switch (d.h) {
          case Handler::CmpEqInt: fused = Handler::BrCmpEq; break;
          case Handler::CmpNeInt: fused = Handler::BrCmpNe; break;
          case Handler::CmpLtS: fused = Handler::BrCmpLtS; break;
          case Handler::CmpLeS: fused = Handler::BrCmpLeS; break;
          case Handler::CmpGtS: fused = Handler::BrCmpGtS; break;
          case Handler::CmpGeS: fused = Handler::BrCmpGeS; break;
          case Handler::CmpLtU: fused = Handler::BrCmpLtU; break;
          case Handler::CmpLeU: fused = Handler::BrCmpLeU; break;
          case Handler::CmpGtU: fused = Handler::BrCmpGtU; break;
          case Handler::CmpGeU: fused = Handler::BrCmpGeU; break;
          default: continue;
        }
        if (d.dst < 0)
            continue;
        if (d.flags &
            (DecodedInst::kFusedLoad | DecodedInst::kFusedStore))
            continue; // keep fused-memory compares on the generic path
        const DecodedInst &br = code_[pc + 1];
        if (br.h != Handler::CondBrNZ && br.h != Handler::CondBrZ)
            continue;
        if (br.a != d.dst)
            continue;
        if (superblockOf_[static_cast<size_t>(
                blockOf_[pc])] !=
            superblockOf_[static_cast<size_t>(blockOf_[pc + 1])])
            continue;
        d.h = fused;
        d.target = br.target;
        if (br.h == Handler::CondBrZ)
            d.flags |= DecodedInst::kBrIfZero;
    }
}

namespace
{

/** A call frame: registers live in a shared stack for speed. */
struct Frame
{
    int funcIndex = -1;
    size_t regBase = 0;
    uint64_t fp = 0;
    int retPc = -1;
    int retDst = -1;
};

/** Fetch one pre-split compute operand. */
inline uint64_t
fetchOperand(uint8_t mode, int32_t r, uint64_t imm, uint64_t fused,
             const uint64_t *regs)
{
    if (mode == OperandReg)
        return regs[static_cast<size_t>(r)];
    if (mode == OperandImm)
        return imm;
    return fused;
}

/**
 * Per-dispatch-mode instrumentation, resolved at compile time: each
 * Hooks type instantiates its own copy of the dispatch loop (its own
 * computed-goto handler table) with the hook bodies inlined into the
 * handlers, so the fast path carries no callback sites at all and the
 * instrumented modes pay plain counter updates instead of virtual
 * calls.
 *
 * Each Hooks type additionally defines a Local value type the engine
 * checks out with enter() before the first dispatch, threads through
 * every hook call, and hands back with leave() on exit. Hot per-mode
 * state placed there lives in the dispatch loop's own stack frame —
 * its address never escapes, so the compiler can keep it in registers
 * across the simulated program's memory writes, which member state
 * behind the hooks reference cannot be (every handler store would
 * force a reload). Modes without register-resident state use an empty
 * Local, which compiles away.
 */

/** The observer-free fast path: every hook compiles away. */
struct NullHooks
{
    struct Local
    {};
    BSYN_HOOK_INLINE Local enter() { return {}; }
    BSYN_HOOK_INLINE void leave(Local &) {}
    BSYN_HOOK_INLINE void onInstruction(Local &, int) {}
    BSYN_HOOK_INLINE void onMemRead(Local &, int, uint64_t, uint32_t, uint64_t) {}
    BSYN_HOOK_INLINE void onMemWrite(Local &, int, uint64_t, uint32_t, uint64_t) {}
    BSYN_HOOK_INLINE void onBranch(Local &, int, bool) {}
};

/** Generic ExecObserver dispatch (virtual call per event). */
struct ObserverHooks
{
    const isa::MachineProgram &prog;
    ExecObserver &obs;

    struct Local
    {};
    BSYN_HOOK_INLINE Local enter() { return {}; }
    BSYN_HOOK_INLINE void leave(Local &) {}

    BSYN_HOOK_INLINE void
    onInstruction(Local &, int pc)
    {
        obs.onInstruction(pc, prog.code[static_cast<size_t>(pc)]);
    }
    BSYN_HOOK_INLINE void
    onMemRead(Local &, int pc, uint64_t addr, uint32_t size,
              uint64_t raw)
    {
        obs.onMemAccess(pc, addr, size, false, raw);
    }
    BSYN_HOOK_INLINE void
    onMemWrite(Local &, int pc, uint64_t addr, uint32_t size,
               uint64_t raw)
    {
        obs.onMemAccess(pc, addr, size, true, raw);
    }
    BSYN_HOOK_INLINE void
    onBranch(Local &, int pc, bool taken)
    {
        obs.onBranch(pc, taken);
    }
};

/**
 * The fused profiling mode: dense per-PC counters plus the profiling
 * cache, with Cache::access() inlined into the memory handlers. The
 * branch accounting mirrors profile::BranchStats::record() exactly.
 */
struct ProfileHooks
{
    InstrumentedCounters &c;
    Cache cache;

    struct Local
    {};
    BSYN_HOOK_INLINE Local enter() { return {}; }
    BSYN_HOOK_INLINE void leave(Local &) {}

    BSYN_HOOK_INLINE void
    onInstruction(Local &, int pc)
    {
        ++c.execCount[static_cast<size_t>(pc)];
    }
    BSYN_HOOK_INLINE void
    onMemRead(Local &, int pc, uint64_t addr, uint32_t size, uint64_t)
    {
        note(pc, addr, size);
    }
    BSYN_HOOK_INLINE void
    onMemWrite(Local &, int pc, uint64_t addr, uint32_t size, uint64_t)
    {
        note(pc, addr, size);
    }
    BSYN_HOOK_INLINE void
    onBranch(Local &, int pc, bool taken)
    {
        auto &b = c.branch[static_cast<size_t>(pc)];
        ++b.executions;
        b.taken += taken;
        if (b.hasLast && taken != (b.lastOutcome != 0))
            ++b.transitions;
        b.lastOutcome = taken;
        b.hasLast = 1;
    }

  private:
    BSYN_HOOK_INLINE void
    note(int pc, uint64_t addr, uint32_t size)
    {
        ++c.memAccesses[static_cast<size_t>(pc)];
        if (!cache.access(addr, size))
            ++c.memMisses[static_cast<size_t>(pc)];
    }
};

/** The fused profiling mode with slice checkpointing: ProfileHooks
 *  plus one compare per retired instruction (the cut itself is cold). */
struct SlicedProfileHooks : ProfileHooks
{
    SliceRecorder &rec;

    SlicedProfileHooks(InstrumentedCounters &counters, Cache c,
                       SliceRecorder &r)
        : ProfileHooks{counters, std::move(c)}, rec(r)
    {}

    BSYN_HOOK_INLINE void
    onInstruction(Local &l, int pc)
    {
        rec.beforeRetire(c);
        ProfileHooks::onInstruction(l, pc);
    }
};

/** The timed mode: a prepared CoreModel stepped non-virtually. */
struct TimingHooks
{
    CoreModel &model;

    struct Local
    {};
    BSYN_HOOK_INLINE Local enter() { return {}; }
    BSYN_HOOK_INLINE void leave(Local &) {}

    BSYN_HOOK_INLINE void onInstruction(Local &, int pc) { model.stepPrepared(pc); }
    BSYN_HOOK_INLINE void
    onMemRead(Local &, int, uint64_t addr, uint32_t size, uint64_t)
    {
        model.noteMemAccess(addr, size, false);
    }
    BSYN_HOOK_INLINE void
    onMemWrite(Local &, int, uint64_t addr, uint32_t size, uint64_t)
    {
        model.noteMemAccess(addr, size, true);
    }
    BSYN_HOOK_INLINE void onBranch(Local &, int, bool taken) { model.noteBranch(taken); }
};

/** The specialized timed mode: a TimedCore stepped over the dense
 *  per-PC TimedProgram metadata. Each hook hands the core the
 *  prepared instruction it refers to, so the per-class retire paths
 *  read their metadata straight from the dense array instead of an
 *  in-flight slot; the scheduler's hot scalars ride in the engine's
 *  checked-out Local (TimedCore::Sched), where they stay in
 *  registers. */
struct SpecTimingHooks
{
    TimedCore &core;
    const TimedProgram::Inst *ti;

    using Local = TimedCore::Sched;
    BSYN_HOOK_INLINE Local enter() { return core.makeSched(); }
    BSYN_HOOK_INLINE void leave(Local &l) { core.sync(l); }

    BSYN_HOOK_INLINE void
    onInstruction(Local &l, int pc)
    {
        core.step(l, ti[static_cast<size_t>(pc)], pc);
    }
    BSYN_HOOK_INLINE void
    onMemRead(Local &l, int pc, uint64_t addr, uint32_t size, uint64_t)
    {
        core.noteRead(l, ti[static_cast<size_t>(pc)], pc, addr, size);
    }
    BSYN_HOOK_INLINE void
    onMemWrite(Local &l, int pc, uint64_t addr, uint32_t size, uint64_t)
    {
        core.noteWrite(l, ti[static_cast<size_t>(pc)], pc, addr, size);
    }
    BSYN_HOOK_INLINE void
    onBranch(Local &l, int pc, bool taken)
    {
        core.noteBranch(l, ti[static_cast<size_t>(pc)], pc, taken);
    }
};

/**
 * The threaded-dispatch execution engine, templated over the
 * instrumentation mode (see the Hooks types above).
 */
template <class Hooks>
class Engine
{
  public:
    Engine(const DecodedProgram &dp, Hooks &h, const ExecLimits &lim)
        : prog(dp.program()), dcode(dp.code().data()), hooks(h),
          limits(lim), mem(prog.globals, lim.stackBytes)
    {}

    ExecStats run();

  private:
    BSYN_HOOK_INLINE uint64_t
    ea(const DecodedInst &d) const
    {
        uint64_t base = (d.flags & DecodedInst::kMemFrame)
                            ? curFp
                            : mem.globalAddress(d.memSym);
        int64_t index = 0;
        if (d.memIndex >= 0)
            index = static_cast<int64_t>(
                        asI32(regs[static_cast<size_t>(d.memIndex)])) *
                    d.memScale;
        return base + static_cast<uint64_t>(
                          index + static_cast<int64_t>(d.memOffset));
    }

    BSYN_HOOK_INLINE void
    noteRead(typename Hooks::Local &l, int pc, uint64_t addr,
             uint32_t size, uint64_t raw)
    {
        ++stats.memReads;
        hooks.onMemRead(l, pc, addr, size, raw);
    }

    BSYN_HOOK_INLINE void
    noteWrite(typename Hooks::Local &l, int pc, uint64_t addr,
              uint32_t size, uint64_t raw)
    {
        ++stats.memWrites;
        hooks.onMemWrite(l, pc, addr, size, raw);
    }

    BSYN_HOOK_INLINE uint64_t
    fusedLoad(typename Hooks::Local &l, const DecodedInst &d, int pc)
    {
        uint64_t addr = ea(d);
        uint64_t v;
        uint32_t size;
        if (d.flags & DecodedInst::kMem64) {
            v = mem.load64(addr);
            size = 8;
        } else {
            v = mem.load32(addr);
            size = 4;
        }
        noteRead(l, pc, addr, size, v);
        return v;
    }

    BSYN_HOOK_INLINE void
    finishCompute(typename Hooks::Local &l, const DecodedInst &d,
                  uint64_t result, int pc)
    {
        if (d.dst >= 0)
            regs[static_cast<size_t>(d.dst)] = result;
        if (d.flags & DecodedInst::kFusedStore) {
            uint64_t addr = ea(d);
            uint32_t size;
            if (d.flags & DecodedInst::kMem64) {
                mem.store64(addr, result);
                size = 8;
            } else {
                mem.store32(addr, asU32(result));
                size = 4;
            }
            noteWrite(l, pc, addr, size, result);
        }
    }

    void
    pushFrame(int func_index, int ret_pc, int ret_dst)
    {
        const isa::MFunction &fn =
            prog.funcs[static_cast<size_t>(func_index)];
        uint64_t frame_bytes = (fn.frameSize + 15u) & ~15u;
        if (sp < mem.stackLimit() + frame_bytes)
            fatal("stack overflow in '%s'", fn.name.c_str());
        sp -= frame_bytes;

        Frame f;
        f.funcIndex = func_index;
        f.regBase = regStack.size();
        f.fp = sp;
        f.retPc = ret_pc;
        f.retDst = ret_dst;
        regStack.resize(regStack.size() + fn.numRegs, 0);
        frames.push_back(f);
        regs = regStack.data() + f.regBase;
        curFp = sp;
    }

    void
    popFrame()
    {
        const Frame &f = frames.back();
        const isa::MFunction &fn =
            prog.funcs[static_cast<size_t>(f.funcIndex)];
        sp += (fn.frameSize + 15u) & ~15u;
        regStack.resize(f.regBase);
        frames.pop_back();
        if (!frames.empty()) {
            regs = regStack.data() + frames.back().regBase;
            curFp = frames.back().fp;
        }
    }

    [[noreturn]] void
    limitExceeded(uint64_t retired) const
    {
        fatal("instruction limit of %llu exceeded after retiring "
              "%llu instructions",
              static_cast<unsigned long long>(limits.maxInstructions),
              static_cast<unsigned long long>(retired));
    }

    const isa::MachineProgram &prog;
    const DecodedInst *dcode;
    Hooks &hooks;
    ExecLimits limits;
    MemoryImage mem;

    std::vector<Frame> frames;
    std::vector<uint64_t> regStack;
    std::vector<uint64_t> argBuffer;
    uint64_t *regs = nullptr; ///< current frame's register window
    uint64_t curFp = 0;       ///< current frame pointer
    uint64_t sp = 0;
    ExecStats stats;
};

template <class Hooks>
ExecStats
Engine<Hooks>::run()
{
    if (prog.entryFunc < 0)
        fatal("program '%s' has no main()", prog.name.c_str());
    const isa::MFunction &main_fn =
        prog.funcs[static_cast<size_t>(prog.entryFunc)];
    if (main_fn.numParams != 0)
        fatal("main() must not take parameters");

    sp = mem.stackTop();
    pushFrame(prog.entryFunc, -1, -1);

    // Hot loop state lives in locals so it can stay in registers across
    // the threaded dispatch; the retired count is flushed to stats on
    // every exit path. The hooks' checked-out Local lives here for the
    // same reason — its address never escapes the dispatch loop, so
    // the simulated program's memory writes can't force it out of
    // registers (fatal() exits skip leave(): the run is aborted and
    // the mode's results are never read).
    int pc = main_fn.entry;
    uint64_t icount = 0;
    const uint64_t maxInstr = limits.maxInstructions;
    const DecodedInst *d = nullptr;
    typename Hooks::Local hlocal = hooks.enter();

// The guard runs before the instruction is counted, observed or
// executed (matching the reference engine), so a limit-hit run reports
// exactly the retired count.
#define BSYN_FETCH()                                                     \
    do {                                                                 \
        if (icount >= maxInstr)                                          \
            limitExceeded(icount);                                       \
        ++icount;                                                        \
        d = &dcode[pc];                                                  \
        hooks.onInstruction(hlocal, pc);                                         \
    } while (0)

#if BSYN_COMPUTED_GOTO
    // One jump-table entry per Handler, in enum order.
    static const void *const jump[] = {
        &&L_Load32, &&L_Load64, &&L_StoreReg32, &&L_StoreReg64,
        &&L_StoreImm32, &&L_StoreImm64, &&L_CondBrNZ, &&L_CondBrZ,
        &&L_Jmp, &&L_Call, &&L_Ret, &&L_Print, &&L_Mov, &&L_MovImm,
        &&L_NegInt, &&L_NotInt, &&L_FNeg, &&L_CvtIFSigned,
        &&L_CvtIFUnsigned, &&L_CvtFISigned, &&L_CvtFIUnsigned, &&L_Add,
        &&L_Sub, &&L_Mul, &&L_DivS, &&L_DivU, &&L_RemS, &&L_RemU,
        &&L_And, &&L_Or, &&L_Xor, &&L_Shl, &&L_ShrS, &&L_ShrU,
        &&L_CmpEqInt, &&L_CmpNeInt, &&L_CmpLtS, &&L_CmpLeS, &&L_CmpGtS,
        &&L_CmpGeS, &&L_CmpLtU, &&L_CmpLeU, &&L_CmpGtU, &&L_CmpGeU,
        &&L_FAdd, &&L_FSub, &&L_FMul, &&L_FDiv, &&L_CmpEqF, &&L_CmpNeF,
        &&L_CmpLtF, &&L_CmpLeF, &&L_CmpGtF, &&L_CmpGeF,
        &&L_Load32FrameC, &&L_Load64FrameC, &&L_StoreReg32FrameC,
        &&L_StoreReg64FrameC, &&L_StoreImm32FrameC,
        &&L_StoreImm64FrameC, &&L_BrCmpEq, &&L_BrCmpNe, &&L_BrCmpLtS,
        &&L_BrCmpLeS, &&L_BrCmpGtS, &&L_BrCmpGeS, &&L_BrCmpLtU,
        &&L_BrCmpLeU, &&L_BrCmpGtU, &&L_BrCmpGeU, &&L_Trap,
    };
    static_assert(sizeof(jump) / sizeof(jump[0]) ==
                      static_cast<size_t>(Handler::Count),
                  "jump table out of sync with Handler");

#define BSYN_CASE(name) L_##name:
#define BSYN_NEXT()                                                      \
    do {                                                                 \
        BSYN_FETCH();                                                    \
        goto *jump[static_cast<size_t>(d->h)];                           \
    } while (0)

    BSYN_NEXT();
#else
#define BSYN_CASE(name) case Handler::name:
#define BSYN_NEXT() continue

    for (;;) {
        BSYN_FETCH();
        switch (d->h) {
#endif

    BSYN_CASE(Load32)
    {
        uint64_t addr = ea(*d);
        uint64_t v = mem.load32(addr);
        noteRead(hlocal, pc, addr, 4, v);
        regs[static_cast<size_t>(d->dst)] = v;
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(Load64)
    {
        uint64_t addr = ea(*d);
        uint64_t v = mem.load64(addr);
        noteRead(hlocal, pc, addr, 8, v);
        regs[static_cast<size_t>(d->dst)] = v;
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreReg32)
    {
        uint64_t addr = ea(*d);
        uint64_t v = regs[static_cast<size_t>(d->a)];
        mem.store32(addr, asU32(v));
        noteWrite(hlocal, pc, addr, 4, v);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreReg64)
    {
        uint64_t addr = ea(*d);
        uint64_t v = regs[static_cast<size_t>(d->a)];
        mem.store64(addr, v);
        noteWrite(hlocal, pc, addr, 8, v);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreImm32)
    {
        uint64_t addr = ea(*d);
        mem.store32(addr, asU32(d->imm));
        noteWrite(hlocal, pc, addr, 4, d->imm);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreImm64)
    {
        uint64_t addr = ea(*d);
        mem.store64(addr, d->imm);
        noteWrite(hlocal, pc, addr, 8, d->imm);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(CondBrNZ)
    {
        bool taken = asU32(regs[static_cast<size_t>(d->a)]) != 0;
        ++stats.branches;
        stats.takenBranches += taken;
        hooks.onBranch(hlocal, pc, taken);
        pc = taken ? d->target : pc + 1;
        BSYN_NEXT();
    }
    BSYN_CASE(CondBrZ)
    {
        bool taken = asU32(regs[static_cast<size_t>(d->a)]) == 0;
        ++stats.branches;
        stats.takenBranches += taken;
        hooks.onBranch(hlocal, pc, taken);
        pc = taken ? d->target : pc + 1;
        BSYN_NEXT();
    }
    BSYN_CASE(Jmp)
    {
        pc = d->target;
        BSYN_NEXT();
    }
    BSYN_CASE(Call)
    {
        ++stats.calls;
        const MInst &mi = prog.code[static_cast<size_t>(pc)];
        const isa::MFunction &callee =
            prog.funcs[static_cast<size_t>(d->target)];
        // Read args in the caller frame before pushing.
        argBuffer.clear();
        for (int a : mi.args)
            argBuffer.push_back(regs[static_cast<size_t>(a)]);
        pushFrame(d->target, pc + 1, d->dst);
        for (size_t i = 0; i < argBuffer.size(); ++i)
            regs[i] = argBuffer[i];
        pc = callee.entry;
        BSYN_NEXT();
    }
    BSYN_CASE(Ret)
    {
        uint64_t value =
            d->a >= 0 ? regs[static_cast<size_t>(d->a)] : 0;
        int ret_pc = frames.back().retPc;
        int ret_dst = frames.back().retDst;
        popFrame();
        if (frames.empty()) {
            stats.exitCode = asI32(value);
            goto done;
        }
        if (ret_dst >= 0)
            regs[static_cast<size_t>(ret_dst)] = value;
        pc = ret_pc;
        BSYN_NEXT();
    }
    BSYN_CASE(Print)
    {
        const MInst &mi = prog.code[static_cast<size_t>(pc)];
        argBuffer.clear();
        for (int a : mi.args)
            argBuffer.push_back(regs[static_cast<size_t>(a)]);
        stats.output +=
            formatPrintf(mi.text, argBuffer.data(), argBuffer.size());
        ++pc;
        BSYN_NEXT();
    }

// Compute handlers share the fused-load prologue, the operand fetch and
// the writeback/fused-store epilogue; only the core expression differs.
#define BSYN_COMPUTE1(expr)                                              \
    {                                                                    \
        uint64_t fused = 0;                                              \
        if (d->flags & DecodedInst::kFusedLoad)                          \
            fused = fusedLoad(hlocal, *d, pc);                                       \
        uint64_t va = fetchOperand(d->aMode, d->a, d->imm, fused, regs); \
        finishCompute(hlocal, *d, (expr), pc);                                       \
        ++pc;                                                            \
        BSYN_NEXT();                                                     \
    }
#define BSYN_COMPUTE2(expr)                                              \
    {                                                                    \
        uint64_t fused = 0;                                              \
        if (d->flags & DecodedInst::kFusedLoad)                          \
            fused = fusedLoad(hlocal, *d, pc);                                       \
        uint64_t va = fetchOperand(d->aMode, d->a, d->imm, fused, regs); \
        uint64_t vb = fetchOperand(d->bMode, d->b, d->imm, fused, regs); \
        finishCompute(hlocal, *d, (expr), pc);                                       \
        ++pc;                                                            \
        BSYN_NEXT();                                                     \
    }

    BSYN_CASE(Mov)
    BSYN_COMPUTE1(va)
    BSYN_CASE(MovImm)
    {
        uint64_t fused = 0;
        if (d->flags & DecodedInst::kFusedLoad)
            fused = fusedLoad(hlocal, *d, pc);
        (void)fused;
        finishCompute(hlocal, *d, d->imm, pc);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(NegInt)
    BSYN_COMPUTE1(asU32(static_cast<uint64_t>(
        -static_cast<int64_t>(asI32(va)))))
    BSYN_CASE(NotInt)
    BSYN_COMPUTE1(asU32(~asU32(va)))
    BSYN_CASE(FNeg)
    BSYN_COMPUTE1(f64Bits(-asF64(va)))
    BSYN_CASE(CvtIFSigned)
    BSYN_COMPUTE1(f64Bits(static_cast<double>(asI32(va))))
    BSYN_CASE(CvtIFUnsigned)
    BSYN_COMPUTE1(f64Bits(static_cast<double>(asU32(va))))
    BSYN_CASE(CvtFISigned)
    {
        uint64_t fused = 0;
        if (d->flags & DecodedInst::kFusedLoad)
            fused = fusedLoad(hlocal, *d, pc);
        uint64_t va = fetchOperand(d->aMode, d->a, d->imm, fused, regs);
        double dv = asF64(va);
        if (std::isnan(dv))
            dv = 0.0;
        double clamped =
            dv < -2147483648.0
                ? -2147483648.0
                : (dv > 2147483647.0 ? 2147483647.0 : dv);
        finishCompute(hlocal, *d,
                      asU32(static_cast<uint64_t>(
                          static_cast<int64_t>(clamped))),
                      pc);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(CvtFIUnsigned)
    {
        uint64_t fused = 0;
        if (d->flags & DecodedInst::kFusedLoad)
            fused = fusedLoad(hlocal, *d, pc);
        uint64_t va = fetchOperand(d->aMode, d->a, d->imm, fused, regs);
        double dv = asF64(va);
        if (std::isnan(dv))
            dv = 0.0;
        double clamped =
            dv < 0 ? 0 : (dv > 4294967295.0 ? 4294967295.0 : dv);
        finishCompute(hlocal, *d, asU32(static_cast<uint64_t>(clamped)),
                      pc);
        ++pc;
        BSYN_NEXT();
    }

    BSYN_CASE(Add)
    BSYN_COMPUTE2(static_cast<uint32_t>(asU32(va) + asU32(vb)))
    BSYN_CASE(Sub)
    BSYN_COMPUTE2(static_cast<uint32_t>(asU32(va) - asU32(vb)))
    BSYN_CASE(Mul)
    BSYN_COMPUTE2(static_cast<uint32_t>(asU32(va) * asU32(vb)))
    BSYN_CASE(DivS)
    BSYN_COMPUTE2(asU32(vb) == 0
                      ? 0
                      : (asI32(va) == INT32_MIN && asI32(vb) == -1
                             ? static_cast<uint32_t>(INT32_MIN)
                             : static_cast<uint32_t>(asI32(va) /
                                                     asI32(vb))))
    BSYN_CASE(DivU)
    BSYN_COMPUTE2(asU32(vb) == 0 ? 0 : asU32(va) / asU32(vb))
    BSYN_CASE(RemS)
    BSYN_COMPUTE2(asU32(vb) == 0
                      ? 0
                      : (asI32(va) == INT32_MIN && asI32(vb) == -1
                             ? 0
                             : static_cast<uint32_t>(asI32(va) %
                                                     asI32(vb))))
    BSYN_CASE(RemU)
    BSYN_COMPUTE2(asU32(vb) == 0 ? 0 : asU32(va) % asU32(vb))
    BSYN_CASE(And)
    BSYN_COMPUTE2(asU32(va) & asU32(vb))
    BSYN_CASE(Or)
    BSYN_COMPUTE2(asU32(va) | asU32(vb))
    BSYN_CASE(Xor)
    BSYN_COMPUTE2(asU32(va) ^ asU32(vb))
    BSYN_CASE(Shl)
    BSYN_COMPUTE2(static_cast<uint32_t>(asU32(va) << (asU32(vb) & 31)))
    BSYN_CASE(ShrS)
    BSYN_COMPUTE2(static_cast<uint32_t>(asI32(va) >> (asU32(vb) & 31)))
    BSYN_CASE(ShrU)
    BSYN_COMPUTE2(asU32(va) >> (asU32(vb) & 31))
    BSYN_CASE(CmpEqInt)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) == asU32(vb)))
    BSYN_CASE(CmpNeInt)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) != asU32(vb)))
    BSYN_CASE(CmpLtS)
    BSYN_COMPUTE2(static_cast<uint64_t>(asI32(va) < asI32(vb)))
    BSYN_CASE(CmpLeS)
    BSYN_COMPUTE2(static_cast<uint64_t>(asI32(va) <= asI32(vb)))
    BSYN_CASE(CmpGtS)
    BSYN_COMPUTE2(static_cast<uint64_t>(asI32(va) > asI32(vb)))
    BSYN_CASE(CmpGeS)
    BSYN_COMPUTE2(static_cast<uint64_t>(asI32(va) >= asI32(vb)))
    BSYN_CASE(CmpLtU)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) < asU32(vb)))
    BSYN_CASE(CmpLeU)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) <= asU32(vb)))
    BSYN_CASE(CmpGtU)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) > asU32(vb)))
    BSYN_CASE(CmpGeU)
    BSYN_COMPUTE2(static_cast<uint64_t>(asU32(va) >= asU32(vb)))

    BSYN_CASE(FAdd)
    BSYN_COMPUTE2(f64Bits(asF64(va) + asF64(vb)))
    BSYN_CASE(FSub)
    BSYN_COMPUTE2(f64Bits(asF64(va) - asF64(vb)))
    BSYN_CASE(FMul)
    BSYN_COMPUTE2(f64Bits(asF64(va) * asF64(vb)))
    BSYN_CASE(FDiv)
    BSYN_COMPUTE2(f64Bits(asF64(vb) == 0.0 ? 0.0
                                           : asF64(va) / asF64(vb)))
    BSYN_CASE(CmpEqF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) == asF64(vb)))
    BSYN_CASE(CmpNeF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) != asF64(vb)))
    BSYN_CASE(CmpLtF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) < asF64(vb)))
    BSYN_CASE(CmpLeF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) <= asF64(vb)))
    BSYN_CASE(CmpGtF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) > asF64(vb)))
    BSYN_CASE(CmpGeF)
    BSYN_COMPUTE2(static_cast<uint64_t>(asF64(va) >= asF64(vb)))

// Frame-relative constant-offset memory: the generic ea()'s
// base-select and index-scale branches are statically resolved away.
#define BSYN_FRAME_EA()                                                  \
    (curFp + static_cast<uint64_t>(static_cast<int64_t>(d->memOffset)))

    BSYN_CASE(Load32FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        uint64_t v = mem.load32(addr);
        noteRead(hlocal, pc, addr, 4, v);
        regs[static_cast<size_t>(d->dst)] = v;
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(Load64FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        uint64_t v = mem.load64(addr);
        noteRead(hlocal, pc, addr, 8, v);
        regs[static_cast<size_t>(d->dst)] = v;
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreReg32FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        uint64_t v = regs[static_cast<size_t>(d->a)];
        mem.store32(addr, asU32(v));
        noteWrite(hlocal, pc, addr, 4, v);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreReg64FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        uint64_t v = regs[static_cast<size_t>(d->a)];
        mem.store64(addr, v);
        noteWrite(hlocal, pc, addr, 8, v);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreImm32FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        mem.store32(addr, asU32(d->imm));
        noteWrite(hlocal, pc, addr, 4, d->imm);
        ++pc;
        BSYN_NEXT();
    }
    BSYN_CASE(StoreImm64FrameC)
    {
        uint64_t addr = BSYN_FRAME_EA();
        mem.store64(addr, d->imm);
        noteWrite(hlocal, pc, addr, 8, d->imm);
        ++pc;
        BSYN_NEXT();
    }

// Fused integer compare + conditional branch: one dispatch, both
// instructions' accounting. The block between the compare's writeback
// and the branch condition replays BSYN_FETCH for pc+1 minus the
// decode load (the branch target and sense live in the fused decode),
// so retire counts, the limit guard and every hook fire exactly as on
// the unfused path.
#define BSYN_BRCMP(expr)                                                 \
    {                                                                    \
        uint64_t va = fetchOperand(d->aMode, d->a, d->imm, 0, regs);     \
        uint64_t vb = fetchOperand(d->bMode, d->b, d->imm, 0, regs);     \
        uint64_t res = (expr);                                           \
        regs[static_cast<size_t>(d->dst)] = res;                         \
        if (icount >= maxInstr)                                          \
            limitExceeded(icount);                                       \
        ++icount;                                                        \
        ++pc;                                                            \
        hooks.onInstruction(hlocal, pc);                                         \
        bool taken =                                                     \
            (res != 0) != ((d->flags & DecodedInst::kBrIfZero) != 0);    \
        ++stats.branches;                                                \
        stats.takenBranches += taken;                                    \
        hooks.onBranch(hlocal, pc, taken);                                       \
        pc = taken ? d->target : pc + 1;                                 \
        BSYN_NEXT();                                                     \
    }

    BSYN_CASE(BrCmpEq)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) == asU32(vb)))
    BSYN_CASE(BrCmpNe)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) != asU32(vb)))
    BSYN_CASE(BrCmpLtS)
    BSYN_BRCMP(static_cast<uint64_t>(asI32(va) < asI32(vb)))
    BSYN_CASE(BrCmpLeS)
    BSYN_BRCMP(static_cast<uint64_t>(asI32(va) <= asI32(vb)))
    BSYN_CASE(BrCmpGtS)
    BSYN_BRCMP(static_cast<uint64_t>(asI32(va) > asI32(vb)))
    BSYN_CASE(BrCmpGeS)
    BSYN_BRCMP(static_cast<uint64_t>(asI32(va) >= asI32(vb)))
    BSYN_CASE(BrCmpLtU)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) < asU32(vb)))
    BSYN_CASE(BrCmpLeU)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) <= asU32(vb)))
    BSYN_CASE(BrCmpGtU)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) > asU32(vb)))
    BSYN_CASE(BrCmpGeU)
    BSYN_BRCMP(static_cast<uint64_t>(asU32(va) >= asU32(vb)))

    BSYN_CASE(Trap)
    {
        const MInst &mi = prog.code[static_cast<size_t>(pc)];
        panic("predecoded engine: invalid compute %s at pc %d",
              ir::opcodeName(mi.op), pc);
    }

#if !BSYN_COMPUTED_GOTO
        }
    }
#endif

#undef BSYN_COMPUTE1
#undef BSYN_COMPUTE2
#undef BSYN_BRCMP
#undef BSYN_FRAME_EA
#undef BSYN_CASE
#undef BSYN_NEXT
#undef BSYN_FETCH

done:
    hooks.leave(hlocal);
    stats.instructions = icount;
    return std::move(stats);
}

} // namespace

ExecStats
execute(const DecodedProgram &prog, ExecObserver *observer,
        const ExecLimits &limits)
{
    if (observer) {
        ObserverHooks hooks{prog.program(), *observer};
        return Engine<ObserverHooks>(prog, hooks, limits).run();
    }
    NullHooks hooks;
    return Engine<NullHooks>(prog, hooks, limits).run();
}

ExecStats
executeInstrumented(const DecodedProgram &prog,
                    const CacheConfig &profiling_cache,
                    InstrumentedCounters &out, const ExecLimits &limits)
{
    out.execCount.assign(prog.size(), 0);
    out.memAccesses.assign(prog.size(), 0);
    out.memMisses.assign(prog.size(), 0);
    out.branch.assign(prog.size(), InstrumentedCounters::Branch());
    ProfileHooks hooks{out, Cache(profiling_cache)};
    return Engine<ProfileHooks>(prog, hooks, limits).run();
}

SliceRecorder::SliceRecorder(const SliceOptions &opts, SlicedCounters *out)
    : out_(opts.baseSliceLength > 0 ? out : nullptr),
      sliceLen_(opts.baseSliceLength),
      maxSlices_(std::max(2u, opts.maxSlices & ~1u))
{
    if (out_) {
        out_->snapshots.clear();
        out_->sliceLength = sliceLen_;
        nextBoundary_ = sliceLen_;
    } else if (out) {
        out->snapshots.clear();
        out->sliceLength = 0;
    }
}

void
SliceRecorder::cut(const InstrumentedCounters &c)
{
    out_->snapshots.push_back({retired_, c});
    if (out_->snapshots.size() >= maxSlices_) {
        // Coalesce adjacent slice pairs: boundary k*sliceLen survives
        // iff k is even, which is exactly every second snapshot. The
        // interval doubles, so the stream always describes the whole
        // run in at most maxSlices slices of a power-of-two multiple
        // of the base length.
        std::vector<CounterSlice> kept;
        kept.reserve(out_->snapshots.size() / 2);
        for (size_t i = 1; i < out_->snapshots.size(); i += 2)
            kept.push_back(std::move(out_->snapshots[i]));
        out_->snapshots = std::move(kept);
        sliceLen_ *= 2;
        out_->sliceLength = sliceLen_;
    }
    nextBoundary_ = retired_ + sliceLen_;
}

void
SliceRecorder::finish(const InstrumentedCounters &c)
{
    if (!out_)
        return;
    if (out_->snapshots.empty() ||
        out_->snapshots.back().retired < retired_)
        out_->snapshots.push_back({retired_, c});
    out_->sliceLength = sliceLen_;
}

ExecStats
executeInstrumentedSliced(const DecodedProgram &prog,
                          const CacheConfig &profiling_cache,
                          InstrumentedCounters &out,
                          SlicedCounters &slices,
                          const SliceOptions &slice_opts,
                          const ExecLimits &limits)
{
    out.execCount.assign(prog.size(), 0);
    out.memAccesses.assign(prog.size(), 0);
    out.memMisses.assign(prog.size(), 0);
    out.branch.assign(prog.size(), InstrumentedCounters::Branch());
    SliceRecorder rec(slice_opts, &slices);
    SlicedProfileHooks hooks(out, Cache(profiling_cache), rec);
    ExecStats stats = Engine<SlicedProfileHooks>(prog, hooks, limits).run();
    rec.finish(out);
    return stats;
}

ExecStats
executeTimed(const DecodedProgram &prog, CoreModel &model,
             const ExecLimits &limits)
{
    TimingHooks hooks{model};
    return Engine<TimingHooks>(prog, hooks, limits).run();
}

ExecStats
executeTimedSpecialized(const DecodedProgram &prog,
                        const TimedProgram &timed, TimedCore &core,
                        const ExecLimits &limits)
{
    BSYN_ASSERT(timed.size() == prog.size(),
                "TimedProgram prepared from a different program "
                "(%zu PCs vs %zu)",
                timed.size(), prog.size());
    SpecTimingHooks hooks{core, timed.data()};
    return Engine<SpecTimingHooks>(prog, hooks, limits).run();
}

} // namespace bsyn::sim
