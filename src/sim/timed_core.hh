/**
 * @file
 * The specialized timing engine: per-PC scheduling metadata baked at
 * decode/prepare time (TimedProgram), with the cache and
 * branch-predictor state machines inlined into flat table walkers
 * (TimedCache, FlatPredictor) and the out-of-order/in-order scheduler
 * rewritten around them (TimedCore). Together with the fused timed
 * dispatch mode (executeTimedSpecialized) this is the fast timing
 * path; sim/core_model.hh + sim/cache.hh + sim/branch_predictor.hh
 * remain the golden reference it must match cycle-for-cycle (the
 * differential-timing suite asserts TimingStats, ExecStats and the
 * per-PC event counters identical).
 *
 * What makes it faster than the reference CoreModel stepped through
 * TimingHooks:
 *  - no virtual predictor calls (and no double predict: the reference
 *    predicts once for the mispredict check and once inside
 *    BranchPredictor::branch(); FlatPredictor resolves both with one
 *    table walk, which is equivalent because predict() is pure);
 *  - no per-instruction Pending struct copy: each instruction retires
 *    at the point its last dynamic fact arrives (hook-free ones at
 *    dispatch, loads at the read hook, stores at the write hook,
 *    branches at the branch hook — the retire point is resolved per
 *    PC at prepare time), so nothing is carried across handlers;
 *  - the ROB ring advances by compare-and-reset instead of a runtime
 *    integer modulo;
 *  - a same-line memo in front of the L1 lookup batches the tag checks
 *    of consecutive accesses to one cache line;
 *  - base latencies, source registers and the predictor table index
 *    are read from a dense per-PC array prepared once (and reusable
 *    across sweep points with equal latencies — see TimedProgram).
 */

#ifndef BSYN_SIM_TIMED_CORE_HH
#define BSYN_SIM_TIMED_CORE_HH

#include <cstdint>
#include <vector>

#include "sim/core_model.hh"
#include "sim/decoded_program.hh"

// The hot members below must fold into the dispatch handlers that call
// them — an out-of-line call per retired instruction costs more than
// the scheduler arithmetic itself at the throughput this engine
// targets.
#if defined(__GNUC__) || defined(__clang__)
#define BSYN_TIMED_INLINE inline __attribute__((always_inline))
#define BSYN_TIMED_NOINLINE __attribute__((noinline))
#else
#define BSYN_TIMED_INLINE inline
#define BSYN_TIMED_NOINLINE
#endif

namespace bsyn::sim
{

/**
 * Scheduling metadata of one program prepared for one latency
 * configuration: the per-PC half of CoreModel::prepare() with the
 * base latency pre-folded (so the scheduler adds one precomputed
 * number instead of switching on the class) and the predictor table
 * index pre-masked. Depends on the CoreConfig only through
 * l1HitLatency — cache geometry, predictor choice and core width are
 * runtime state of TimedCore — so one TimedProgram serves every point
 * of a cache-size sweep (Fig 10) over the same decode.
 */
class TimedProgram
{
  public:
    /**
     * One PC's scheduling metadata, laid out so the scheduler's inner
     * loop is branch-free: register operands are pre-encoded as
     * indices into TimedCore's ready table (slot 0 is a write sink for
     * dst-less instructions, slot 1 a read-only always-zero slot for
     * unused sources, registers live at +2), so every instruction
     * reads exactly four source slots and writes exactly one — no
     * per-slot validity tests, no operand-count loop.
     */
    struct Inst
    {
        uint32_t lat = 1;  ///< baseLatency(class) + fused-load latency
        uint32_t dst = 0;  ///< ready-table index (0 = no destination)
        uint32_t srcs[4] = {1, 1, 1, 1}; ///< ready-table indices
        uint32_t maxReg = 1; ///< highest ready-table index touched
        uint16_t predIdx = 0; ///< pc & predictor table mask
        uint8_t flags = 0;
    };

    static constexpr uint8_t kBranch = 1u << 0;
    static constexpr uint8_t kCallRet = 1u << 1;
    /** No memory access, no branch, no call/return: the handler fires
     *  no timing hooks, so the scheduler retires the instruction
     *  immediately at step() instead of putting it in flight. */
    static constexpr uint8_t kSimple = 1u << 2;
    /** Reads memory but never writes it (plain load or fused-load-only
     *  compute): onMemRead is the last dynamic fact, so the scheduler
     *  retires there. Load-op-stores clear this and retire at
     *  onMemWrite instead, carrying the load's penalty and address. */
    static constexpr uint8_t kRetireAtRead = 1u << 3;

    /** Predictor table index mask: every table predictor is built with
     *  table_bits = 12 (makePredictor defaults). */
    static constexpr uint64_t kPredMask = (1ull << 12) - 1;

    TimedProgram(const DecodedProgram &prog, const CoreConfig &cfg);

    const Inst *data() const { return insts_.data(); }
    size_t size() const { return insts_.size(); }

    /** The latency fingerprint the metadata was folded under; a core
     *  config replayed over this program must agree (asserted by
     *  simulateTiming). */
    int l1HitLatency() const { return l1HitLatency_; }

  private:
    std::vector<Inst> insts_;
    int l1HitLatency_ = 0;
};

/**
 * Set-associative true-LRU cache with the exact observable behaviour
 * of sim::Cache (accesses/misses counters, LRU stamps, straddle
 * accounting) plus a small direct-mapped line memo: repeated accesses
 * to recently touched lines — runs of stack slots, streaming arrays,
 * interleaved load/store streams — short-circuit the set walk to a
 * single tag compare.
 */
class TimedCache
{
  public:
    explicit TimedCache(const CacheConfig &config);

    BSYN_TIMED_INLINE bool
    access(uint64_t addr, uint32_t size)
    {
        bool hit = accessLine(addr);
        if (size > 1) {
            uint64_t first = addr >> setShift_;
            uint64_t last = (addr + size - 1) >> setShift_;
            for (uint64_t line = first + 1; line <= last; ++line) {
                bool h = accessLine(line << setShift_);
                hit = hit && h;
            }
        }
        return hit;
    }

    const CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lruStamp = 0;
    };

    bool
    accessLine(uint64_t addr)
    {
        ++stats_.accesses;
        ++clock_;
        uint64_t line_addr = addr >> setShift_;
        uint64_t tag = line_addr >> tagShift_;
        Memo &m = memos_[line_addr & (kMemoSlots - 1)];
        if (m.addr == line_addr && m.line->valid &&
            m.line->tag == tag) {
            m.line->lruStamp = clock_;
            return true;
        }
        return lookupLine(line_addr, tag);
    }

    bool
    lookupLine(uint64_t line_addr, uint64_t tag)
    {
        uint64_t set = line_addr & setMask_;
        Line *base = &lines_[set * assoc_];
        Line *victim = base;
        for (uint32_t w = 0; w < assoc_; ++w) {
            Line &l = base[w];
            if (l.valid && l.tag == tag) {
                l.lruStamp = clock_;
                memos_[line_addr & (kMemoSlots - 1)] = {line_addr, &l};
                return true;
            }
            if (!l.valid) {
                victim = &l;
            } else if (victim->valid && l.lruStamp < victim->lruStamp) {
                victim = &l;
            }
        }
        ++stats_.misses;
        victim->valid = true;
        victim->tag = tag;
        victim->lruStamp = clock_;
        memos_[line_addr & (kMemoSlots - 1)] = {line_addr, victim};
        return false;
    }

    CacheStats stats_;
    std::vector<Line> lines_; ///< sets * ways, row-major by set
    uint64_t clock_ = 0;
    uint32_t setShift_ = 0;
    uint32_t tagShift_ = 0;
    uint64_t setMask_ = 0;
    uint32_t assoc_ = 1;

    /**
     * Direct-mapped memo in front of the set walk, indexed by the low
     * line-address bits. One entry thrashes when a load stream, a
     * store stream and the frame line interleave; a handful of slots
     * keeps each stream's line hot. Entries re-check validity and tag,
     * so an aliasing eviction between touches falls back to the full
     * walk and the state stays bit-identical to the reference.
     */
    static constexpr size_t kMemoSlots = 8;
    struct Memo
    {
        uint64_t addr = ~0ull; ///< memoized line address
        Line *line = nullptr;
    };
    Memo memos_[kMemoSlots];
};

/**
 * Every predictor of sim/branch_predictor.hh as one flat state
 * machine: a single predict-and-train table walk per branch replaces
 * the reference path's two virtual predict() calls plus the component
 * re-predictions inside TournamentPredictor::update(). predict() is
 * pure in every reference predictor, so folding the calls is exact.
 */
class FlatPredictor
{
  public:
    explicit FlatPredictor(const std::string &name);

    /** Predict, update stats and train; @return the prediction. */
    bool
    predictAndTrain(uint64_t idx, bool taken)
    {
        bool predicted = true;
        switch (kind_) {
          case Kind::Static:
            predicted = true;
            break;
          case Kind::Bimodal: {
            uint8_t &c = bimodal_[idx];
            predicted = c >= 2;
            c = bump(c, taken);
            break;
          }
          case Kind::Gshare: {
            uint8_t &c = gshare_[(idx ^ history_) & TimedProgram::kPredMask];
            predicted = c >= 2;
            c = bump(c, taken);
            history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
            break;
          }
          case Kind::Tournament: {
            uint8_t &bc = bimodal_[idx];
            uint8_t &gc =
                gshare_[(idx ^ history_) & TimedProgram::kPredMask];
            bool bi = bc >= 2;
            bool gs = gc >= 2;
            uint8_t &ch = chooser_[idx];
            predicted = (ch >= 2) ? gs : bi;
            if (bi != gs)
                ch = bump(ch, gs == taken);
            bc = bump(bc, taken);
            gc = bump(gc, taken);
            history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
            break;
          }
        }
        ++stats_.branches;
        stats_.correct += predicted == taken;
        return predicted;
    }

    const PredictorStats &stats() const { return stats_; }

  private:
    enum class Kind : uint8_t { Static, Bimodal, Gshare, Tournament };

    static uint8_t
    bump(uint8_t counter, bool taken)
    {
        if (taken)
            return counter < 3 ? counter + 1 : 3;
        return counter > 0 ? counter - 1 : 0;
    }

    Kind kind_ = Kind::Static;
    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> chooser_;
    uint64_t history_ = 0;
    uint64_t historyMask_ = TimedProgram::kPredMask;
    PredictorStats stats_;
};

/**
 * The specialized core scheduler: CoreModel::retirePending() split
 * into per-class retire points that run inside the hook delivering the
 * instruction's last dynamic fact, with the component state machines
 * replaced by TimedCache/FlatPredictor. Drive it through
 * executeTimedSpecialized(); cycle counts, cache stats and predictor
 * stats are bit-identical to the reference CoreModel on the same
 * stream.
 */
class TimedCore
{
  public:
    explicit TimedCore(const CoreConfig &cfg);

    /** Store-to-load forwarding table entry, same geometry and
     *  semantics as CoreModel::storeReady. Load lookups index with
     *  `addr & (kFwdSlots - 1)` and verify the full address. */
    static constexpr size_t kFwdSlots = 1u << 16;
    struct FwdEntry
    {
        uint64_t addr = ~0ull;
        uint64_t ready = 0;
    };

    /**
     * Sentinel word address for "no fused load this instruction". Real
     * word addresses (byte address >> 2) can never reach this value:
     * retireStore's probe with it indexes a real forwarding slot but
     * can never match a stored address.
     */
    static constexpr uint64_t kNoLoad = ~0ull;

    /**
     * The scheduler's hot state as a plain value, checked out with
     * makeSched() and written back with sync(). The dispatch loop
     * keeps one of these in its own stack frame (see the engine's
     * enter()/leave() hook protocol): because its address never
     * escapes — the cold spill paths growReadyCold/cutCheckpointCold
     * take and return scalars — the compiler can hold the whole
     * struct in registers across the simulated program's memory
     * writes, which would otherwise force a reload of every member on
     * every handler. Moving this state out of TimedCore members
     * roughly triples simple-retire throughput.
     */
    struct Sched
    {
        // Carry state between step() and the retiring hook.
        uint64_t extra = 0;
        uint64_t loadAddr = kNoLoad;
        uint64_t issuePre = 0;
        // Dispatch / issue / retire scalars.
        uint64_t dispatchCycle = 0;
        uint64_t lastIssue = 0;
        uint64_t lastRetire = 0;
        uint64_t fetchReady = 0;
        uint64_t instructions = 0;
        uint64_t nextCheck = ~0ull;
        int dispatchSlots = 0;
        int issueSlots = 0;
        size_t robHead = 0;
        // Table views (the vectors stay owned by TimedCore).
        uint64_t *ready = nullptr;
        size_t readySize = 0;
        uint64_t *rob = nullptr;
        size_t robSize = 1;
        FwdEntry *fwd = nullptr;
        // Run constants, copied so reads never touch the core object
        // (whose fields the compiler must assume the simulated
        // program's stores may alias).
        int width = 2;
        bool inOrder = false;
        bool hasL2 = true;
        uint64_t mispredictPenalty = 10;
        uint64_t l1MissPenalty = 12;
        uint64_t l2MissPenalty = 120;
        PerPcTimingEvents *events = nullptr;
    };

    /**
     * Check out the hot state for a dispatch run. Defined inline: if
     * this call (or sync below) stayed out of line, the dispatch
     * loop's Sched would have its address taken by an opaque callee
     * and the compiler could no longer scalarize it into registers.
     */
    BSYN_TIMED_INLINE Sched
    makeSched()
    {
        Sched s;
        s.dispatchCycle = dispatchCycle_;
        s.lastIssue = lastIssue_;
        s.lastRetire = lastRetire_;
        s.fetchReady = fetchReady_;
        s.instructions = instructions_;
        s.nextCheck = nextCheck_;
        s.dispatchSlots = dispatchSlots_;
        s.issueSlots = issueSlots_;
        s.robHead = robHead_;
        s.ready = ready_.data();
        s.readySize = readySize_;
        s.rob = rob_.data();
        s.robSize = robSize_;
        s.fwd = fwd_.data();
        s.width = width_;
        s.inOrder = inOrder_;
        s.hasL2 = hasL2_;
        s.mispredictPenalty = mispredictPenalty_;
        s.l1MissPenalty = l1MissPenalty_;
        s.l2MissPenalty = l2MissPenalty_;
        s.events = events_;
        return s;
    }

    /** Write a checked-out state back (finish() reads members). */
    BSYN_TIMED_INLINE void
    sync(const Sched &s)
    {
        dispatchCycle_ = s.dispatchCycle;
        lastIssue_ = s.lastIssue;
        lastRetire_ = s.lastRetire;
        fetchReady_ = s.fetchReady;
        instructions_ = s.instructions;
        nextCheck_ = s.nextCheck;
        dispatchSlots_ = s.dispatchSlots;
        issueSlots_ = s.issueSlots;
        robHead_ = s.robHead;
        // readySize_ is already current: growReadyCold maintains it
        // (the vectors themselves never left the core).
    }

    /** Attach per-PC event counters (differential testing). */
    void
    recordEvents(PerPcTimingEvents *e, size_t nPcs)
    {
        events_ = e;
        if (events_)
            events_->init(nPcs);
    }

    /**
     * Record the cycle count at retired-instruction boundaries (for
     * per-phase CPI): after boundary[i] instructions have retired, the
     * core's cycle count so far is checkpointCycles()[i]. Boundaries
     * must be strictly increasing; one compare per retire otherwise.
     */
    void setCheckpoints(std::vector<uint64_t> boundaries);

    const std::vector<uint64_t> &checkpointCycles() const
    {
        return checkCycles_;
    }

    /**
     * Dispatch the instruction at @p pc.
     *
     * Every instruction retires at the point where its last dynamic
     * fact becomes known, with the per-PC retire point resolved at
     * prepare time. kSimple and call/return instructions fire no
     * hooks, so they retire entirely here, fused with their dispatch
     * and operand-readiness computation. Memory and branch
     * instructions compute their dispatch half now (overlapping with
     * the handler body) and retire inside noteRead / noteWrite /
     * noteBranch — so no instruction is ever carried in flight across
     * handlers, and the scheduler keeps no per-instruction pending
     * state beyond the precomputed issue cycle.
     */
    BSYN_TIMED_INLINE void
    step(Sched &s, const TimedProgram::Inst &ti, int pc)
    {
        (void)pc;
        if (ti.flags &
            (TimedProgram::kSimple | TimedProgram::kCallRet)) {
            retireLocal(s, ti);
            return;
        }
        s.extra = 0;
        s.loadAddr = kNoLoad;
        s.issuePre = frontHalf(s, ti);
    }

    /** A load (or the fused-load half of a compute) at @p pc. Retire
     *  point for everything except load-op-store instructions, which
     *  carry the penalty and address to their write. */
    BSYN_TIMED_INLINE void
    noteRead(Sched &s, const TimedProgram::Inst &ti, int pc,
             uint64_t addr, uint32_t size)
    {
        bool l1_hit = l1_.access(addr, size);
        bool l2_hit = true;
        if (!l1_hit && s.hasL2)
            l2_hit = l2_.access(addr, size);
        uint64_t penalty = 0;
        if (!l1_hit) {
            penalty = s.l1MissPenalty;
            if (s.hasL2 && !l2_hit)
                penalty += s.l2MissPenalty;
            if (s.events) {
                ++s.events->l1Misses[static_cast<size_t>(pc)];
                if (s.hasL2 && !l2_hit)
                    ++s.events->l2Misses[static_cast<size_t>(pc)];
            }
        }
        if (ti.flags & TimedProgram::kRetireAtRead)
            retireLoad(s, ti, addr >> 2, penalty);
        else {
            s.extra = penalty;
            s.loadAddr = addr >> 2; // word granularity
        }
    }

    /** A store (or fused-store half of a compute) at @p pc — always
     *  the retire point. Store misses record events but add no
     *  latency: stores retire without stalling the chain. */
    BSYN_TIMED_INLINE void
    noteWrite(Sched &s, const TimedProgram::Inst &ti, int pc,
              uint64_t addr, uint32_t size)
    {
        bool l1_hit = l1_.access(addr, size);
        bool l2_hit = true;
        if (!l1_hit && s.hasL2)
            l2_hit = l2_.access(addr, size);
        if (s.events && !l1_hit) {
            ++s.events->l1Misses[static_cast<size_t>(pc)];
            if (s.hasL2 && !l2_hit)
                ++s.events->l2Misses[static_cast<size_t>(pc)];
        }
        retireStore(s, ti, addr >> 2);
    }

    /** A conditional branch resolving at @p pc — its retire point. */
    BSYN_TIMED_INLINE void
    noteBranch(Sched &s, const TimedProgram::Inst &ti, int pc,
               bool taken)
    {
        uint64_t complete = retireCommon(s, ti, s.issuePre, 0);
        bool predicted = pred_.predictAndTrain(ti.predIdx, taken);
        if (predicted != taken) {
            if (s.events)
                ++s.events->mispredicts[static_cast<size_t>(pc)];
            uint64_t redo = complete + s.mispredictPenalty;
            if (redo > s.fetchReady)
                s.fetchReady = redo;
        }
    }

    /** @return the totals. Nothing is left in flight: every
     *  instruction retired at its hook or dispatch point. */
    TimingStats finish();

  private:
    /**
     * Dispatch + operand readiness for the instruction about to go in
     * flight (or retire immediately, for kSimple). Depends only on
     * post-previous-retirement state. Written as conditional moves —
     * the lag/width conditions flip data-dependently, and a mispredict
     * here would cost more than the arithmetic. @return the issue
     * cycle before store-forwarding and in-order constraints.
     */
    BSYN_TIMED_INLINE uint64_t
    frontHalf(Sched &s, const TimedProgram::Inst &ti)
    {
        // Dispatch: width-limited, gated by fetch redirect + ROB
        // space. (The reference re-clamps to min_dispatch after the
        // width rollover; that clamp is provably dead — the first
        // condition already established dispatchCycle >= min_dispatch
        // — so it is dropped here.)
        uint64_t rob_free = s.rob[s.robHead];
        uint64_t min_dispatch =
            s.fetchReady > rob_free ? s.fetchReady : rob_free;
        uint64_t c = s.dispatchCycle;
        int sl = s.dispatchSlots;
        bool lag = min_dispatch > c;
        c = lag ? min_dispatch : c;
        sl = lag ? 0 : sl;
        bool full = sl >= s.width;
        c += full ? 1 : 0;
        sl = full ? 0 : sl;
        s.dispatchCycle = c;
        s.dispatchSlots = sl + 1;

        // One watermark check covers every ready-table access (the
        // reference grows per touched register to idx + 64; one grow
        // to the max touched index lands on the same watermark). The
        // cold grow path takes and returns scalars so the checked-out
        // state's address never escapes this inlined body.
        if (ti.maxReg >= s.readySize) {
            s.ready = growReadyCold(ti.maxReg);
            s.readySize = readySize_;
        }

        // All four source slots load unconditionally — unused ones hit
        // the always-zero slot.
        uint64_t r0 = s.ready[ti.srcs[0]];
        uint64_t r1 = s.ready[ti.srcs[1]];
        uint64_t r2 = s.ready[ti.srcs[2]];
        uint64_t r3 = s.ready[ti.srcs[3]];
        uint64_t r01 = r0 > r1 ? r0 : r1;
        uint64_t r23 = r2 > r3 ? r2 : r3;
        uint64_t rmax = r01 > r23 ? r01 : r23;
        return rmax > c ? rmax : c;
    }

    /** In-order issue-port constraint: no-op for out-of-order cores. */
    BSYN_TIMED_INLINE uint64_t
    applyInOrder(Sched &s, uint64_t issue)
    {
        if (s.inOrder) {
            if (issue < s.lastIssue)
                issue = s.lastIssue;
            if (issue == s.lastIssue && s.issueSlots >= s.width)
                issue = s.lastIssue + 1;
            if (issue != s.lastIssue) {
                s.lastIssue = issue;
                s.issueSlots = 0;
            }
            ++s.issueSlots;
        }
        return issue;
    }

    /**
     * The retirement obligations every instruction shares: the
     * in-order issue constraint, the writeback (unconditional —
     * dst-less instructions hit the slot-0 write sink, never read),
     * the ROB advance (compare-and-reset, same wrap as the reference's
     * modulo) and the checkpoint cut. The class-specific extras the
     * callers append — forwarding-entry write, call/return readiness
     * sweep, branch resolution — touch none of the state read here, so
     * appending them after the common tail is order-equivalent to the
     * reference's monolithic retirePending(). @return the completion
     * cycle for those extras.
     */
    BSYN_TIMED_INLINE uint64_t
    retireCommon(Sched &s, const TimedProgram::Inst &ti,
                 uint64_t issue, uint64_t extra)
    {
        ++s.instructions;
        issue = applyInOrder(s, issue);
        uint64_t complete = issue + ti.lat + extra;
        s.ready[ti.dst] = complete;
        uint64_t ret = complete > s.lastRetire ? complete : s.lastRetire;
        s.lastRetire = ret;
        s.rob[s.robHead] = ret;
        if (++s.robHead == s.robSize)
            s.robHead = 0;
        if (s.instructions == s.nextCheck)
            s.nextCheck = cutCheckpointCold(s.lastRetire);
        return complete;
    }

    /** Hook-free instructions (kSimple and call/return) retire fused
     *  with their dispatch: no store-forward probe (nothing to match),
     *  no miss penalty, no branch resolution. Call/return additionally
     *  approximates the frame switch by making every register grown so
     *  far ready at completion (slots 0/1 — sink/zero — skipped: the
     *  zero slot must stay zero). */
    BSYN_TIMED_INLINE void
    retireLocal(Sched &s, const TimedProgram::Inst &ti)
    {
        uint64_t complete = retireCommon(s, ti, frontHalf(s, ti), 0);
        if (ti.flags & TimedProgram::kCallRet) {
            for (size_t i = 2; i < s.readySize; ++i)
                if (s.ready[i] < complete)
                    s.ready[i] = complete;
        }
    }

    /** Retire a load (kRetireAtRead) at its onMemRead hook. */
    BSYN_TIMED_INLINE void
    retireLoad(Sched &s, const TimedProgram::Inst &ti, uint64_t waddr,
               uint64_t penalty)
    {
        const FwdEntry &e = s.fwd[waddr & (kFwdSlots - 1)];
        uint64_t issue = s.issuePre;
        uint64_t fwd_ready = e.addr == waddr ? e.ready : 0;
        if (fwd_ready > issue)
            issue = fwd_ready;
        retireCommon(s, ti, issue, penalty);
    }

    /** Retire a store at its onMemWrite hook. The forward probe uses
     *  loadAddr — the fused-load address a load-op-store carried from
     *  its read hook, or kNoLoad (matches nothing) for plain stores.
     *  extra carries the fused load's miss penalty the same way. */
    BSYN_TIMED_INLINE void
    retireStore(Sched &s, const TimedProgram::Inst &ti, uint64_t waddr)
    {
        const FwdEntry &e = s.fwd[s.loadAddr & (kFwdSlots - 1)];
        uint64_t issue = s.issuePre;
        uint64_t fwd_ready = e.addr == s.loadAddr ? e.ready : 0;
        if (fwd_ready > issue)
            issue = fwd_ready;
        uint64_t complete = retireCommon(s, ti, issue, s.extra);
        FwdEntry &w = s.fwd[waddr & (kFwdSlots - 1)];
        w.addr = waddr;
        w.ready = complete;
    }

    /** Cold: grow the ready table to cover @p idx (reference's lazy
     *  watermark); @return the fresh data pointer for the checked-out
     *  state. Takes/returns scalars only — see Sched. */
    uint64_t *growReadyCold(size_t idx);

    /** Cold: record a checkpoint cut at @p last_retire; @return the
     *  next boundary. Takes/returns scalars only — see Sched. */
    uint64_t cutCheckpointCold(uint64_t last_retire);

    TimedCache l1_;
    TimedCache l2_;
    FlatPredictor pred_;

    // Core parameters, copied out of CoreConfig.
    int width_ = 2;
    bool inOrder_ = false;
    bool hasL2_ = true;
    uint64_t mispredictPenalty_ = 10;
    uint64_t l1MissPenalty_ = 12;
    uint64_t l2MissPenalty_ = 120;

    /**
     * Per-register ready cycles in the shifted layout the prepared
     * operand indices address: slot 0 is the dst write sink (garbage,
     * never read), slot 1 the always-zero source slot (never written),
     * registers at +2. readySize_ replicates the reference's lazy
     * growth watermark exactly: a call/return maxes only the registers
     * the table has been grown to, so a register first touched *after*
     * a call must still read 0 — pre-sizing the whole table would time
     * such programs differently from the golden model.
     */
    std::vector<uint64_t> ready_;
    size_t readySize_ = 0;
    uint64_t dispatchCycle_ = 0;
    int dispatchSlots_ = 0;
    uint64_t lastIssue_ = 0;
    int issueSlots_ = 0;
    uint64_t lastRetire_ = 0;
    uint64_t fetchReady_ = 0;
    std::vector<uint64_t> rob_;
    size_t robHead_ = 0;
    size_t robSize_ = 1;
    uint64_t instructions_ = 0;
    std::vector<FwdEntry> fwd_;

    PerPcTimingEvents *events_ = nullptr;
    std::vector<uint64_t> checkBounds_;
    std::vector<uint64_t> checkCycles_;
    size_t checkNextIdx_ = 0;
    uint64_t nextCheck_ = ~0ull;
};

/**
 * Execute @p prog under the specialized timing engine. @p timed must
 * be prepared from the same decode; call core.finish() afterwards.
 * Semantics and ExecStats are identical to execute()/executeTimed().
 */
ExecStats executeTimedSpecialized(const DecodedProgram &prog,
                                  const TimedProgram &timed,
                                  TimedCore &core,
                                  const ExecLimits &limits = {});

} // namespace bsyn::sim

#endif // BSYN_SIM_TIMED_CORE_HH
