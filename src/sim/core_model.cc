#include "sim/core_model.hh"

#include <algorithm>

#include "sim/decoded_program.hh"
#include "sim/timed_core.hh"
#include "support/error.hh"

namespace bsyn::sim
{

using isa::MClass;
using isa::MInst;
using isa::MKind;

CoreModel::CoreModel(const CoreConfig &config)
    : cfg(config), l1(config.l1d), l2cache(config.l2),
      pred(makePredictor(config.predictor))
{
    robRing.assign(static_cast<size_t>(std::max(cfg.robSize, 1)), 0);
    ready.assign(64, 0);
}

CoreModel::~CoreModel() = default;

uint64_t &
CoreModel::regReady(int r)
{
    size_t idx = static_cast<size_t>(r);
    if (idx >= ready.size())
        ready.resize(idx + 64, 0);
    return ready[idx];
}

uint64_t
timingBaseLatency(MClass cls, const CoreConfig &cfg)
{
    switch (cls) {
      case MClass::IntAlu: return 1;
      case MClass::IntMul: return 4;
      case MClass::IntDiv: return 24;
      case MClass::FpAlu: return 5;   // x87-era add/sub/convert
      case MClass::FpMul: return 7;
      case MClass::FpDiv: return 38;
      case MClass::Load: return static_cast<uint64_t>(cfg.l1HitLatency);
      case MClass::Store: return 1;
      case MClass::Branch: return 1;
      case MClass::Jump: return 1;
      case MClass::Call: return 2;
      case MClass::Ret: return 2;
      case MClass::Other: return 1;
    }
    return 1;
}

uint64_t
CoreModel::baseLatency(MClass cls) const
{
    return timingBaseLatency(cls, cfg);
}

MClass
timingClass(const MInst &mi)
{
    if (mi.kind != MKind::Compute)
        return mi.cls();
    switch (mi.op) {
      case ir::Opcode::Mul:
        return MClass::IntMul;
      case ir::Opcode::Div:
      case ir::Opcode::Rem:
        return MClass::IntDiv;
      case ir::Opcode::FMul:
        return MClass::FpMul;
      case ir::Opcode::FDiv:
        return MClass::FpDiv;
      case ir::Opcode::FAdd:
      case ir::Opcode::FSub:
      case ir::Opcode::FNeg:
      case ir::Opcode::CvtIF:
      case ir::Opcode::CvtFI:
        return MClass::FpAlu;
      default:
        return MClass::IntAlu;
    }
}

PreparedTimingInst
prepareTimingInst(const MInst &mi, const CoreConfig &cfg)
{
    PreparedTimingInst p;
    p.cls = timingClass(mi);
    p.dst = mi.dst;
    // A fused load operand serializes in front of the operation.
    if (mi.kind == MKind::Compute && mi.loadFused)
        p.fusedLoadLatency = static_cast<uint32_t>(cfg.l1HitLatency);
    p.isBranch = mi.kind == MKind::CondBr;
    p.isCallRet = mi.kind == MKind::Call || mi.kind == MKind::Ret;
    auto addSrc = [&](int r) {
        if (r >= 0 && p.numSrcs < 4)
            p.srcs[p.numSrcs++] = r;
    };
    addSrc(mi.src0);
    addSrc(mi.src1);
    if (mi.memValid)
        addSrc(mi.mem.indexReg);
    // Call/print argument registers gate issue too (cap at 4 tracked).
    for (int a : mi.args)
        addSrc(a);
    return p;
}

void
CoreModel::prepare(const isa::MachineProgram &prog)
{
    prepared.clear();
    prepared.reserve(prog.code.size());
    for (const MInst &mi : prog.code)
        prepared.push_back(prepareInst(mi));
}

void
CoreModel::onInstruction(int pc, const MInst &mi)
{
    retirePending();
    beginInstruction(pc, prepareInst(mi));
}

void
CoreModel::onMemAccess(int, uint64_t addr, uint32_t size, bool is_write,
                       uint64_t)
{
    noteMemAccess(addr, size, is_write);
}

void
CoreModel::onBranch(int, bool taken)
{
    pending.taken = taken;
}

void
CoreModel::retirePending()
{
    if (!pending.valid)
        return;
    Pending p = pending;
    pending.valid = false;
    ++instructions;

    // --- Dispatch: width-limited, gated by fetch redirect and ROB space.
    uint64_t rob_free = robRing[robHead]; // retire cycle of the entry we
                                          // are about to reuse
    uint64_t min_dispatch = std::max(fetchReady, rob_free);
    if (min_dispatch > dispatchCycle) {
        dispatchCycle = min_dispatch;
        dispatchSlots = 0;
    }
    if (dispatchSlots >= cfg.width) {
        ++dispatchCycle;
        dispatchSlots = 0;
        if (dispatchCycle < min_dispatch)
            dispatchCycle = min_dispatch;
    }
    ++dispatchSlots;

    // --- Issue: operands ready; in-order cores also issue in order.
    uint64_t issue = dispatchCycle;
    for (int i = 0; i < p.numSrcs; ++i)
        issue = std::max(issue, regReady(p.srcs[i]));
    if (p.hasLoad) {
        const FwdEntry &e = storeReady[p.loadAddr % fwdSlots];
        if (e.addr == p.loadAddr)
            issue = std::max(issue, e.ready); // forwarded value
    }
    if (cfg.inOrder) {
        if (issue < lastIssue) {
            issue = lastIssue;
        }
        if (issue == lastIssue && issueSlots >= cfg.width)
            issue = lastIssue + 1;
        if (issue != lastIssue) {
            lastIssue = issue;
            issueSlots = 0;
        }
        ++issueSlots;
    }

    uint64_t complete = issue + baseLatency(p.cls) + p.extraLatency;

    if (p.dst >= 0)
        regReady(p.dst) = complete;
    if (p.hasStore) {
        FwdEntry &e = storeReady[p.storeAddr % fwdSlots];
        e.addr = p.storeAddr;
        e.ready = complete;
    }
    if (p.isCallRet) {
        // Frame switch: approximate by making every register ready when
        // the call/return completes.
        for (auto &r : ready)
            r = std::max(r, complete);
    }

    // --- In-order retirement (ROB).
    uint64_t retire = std::max(complete, lastRetire);
    lastRetire = retire;
    robRing[robHead] = retire;
    robHead = (robHead + 1) % robRing.size();

    // --- Branch resolution.
    if (p.isBranch) {
        bool predicted = pred->predict(static_cast<uint64_t>(p.pc));
        pred->branch(static_cast<uint64_t>(p.pc), p.taken);
        if (predicted != p.taken) {
            if (events)
                ++events->mispredicts[static_cast<size_t>(p.pc)];
            fetchReady = std::max(
                fetchReady,
                complete + static_cast<uint64_t>(cfg.mispredictPenalty));
        }
    }
}

TimingStats
CoreModel::finish()
{
    retirePending();
    TimingStats out;
    out.instructions = instructions;
    out.cycles = std::max<uint64_t>(lastRetire, 1);
    out.branch = pred->stats();
    out.l1d = l1.stats();
    out.l2 = l2cache.stats();
    return out;
}

TimingStats
simulateTiming(const isa::MachineProgram &prog, const CoreConfig &cfg,
               const ExecLimits &limits, TimingEngine engine)
{
    return simulateTiming(DecodedProgram(prog), cfg, limits, engine);
}

TimingStats
simulateTiming(const DecodedProgram &prog, const CoreConfig &cfg,
               const ExecLimits &limits, TimingEngine engine)
{
    if (engine == TimingEngine::Reference) {
        CoreModel model(cfg);
        model.prepare(prog.program());
        executeTimed(prog, model, limits);
        return model.finish();
    }
    return simulateTiming(prog, TimedProgram(prog, cfg), cfg, limits);
}

TimingStats
simulateTiming(const DecodedProgram &prog, const TimedProgram &timed,
               const CoreConfig &cfg, const ExecLimits &limits)
{
    BSYN_ASSERT(timed.l1HitLatency() == cfg.l1HitLatency,
                "TimedProgram prepared for l1HitLatency=%d replayed "
                "under l1HitLatency=%d",
                timed.l1HitLatency(), cfg.l1HitLatency);
    TimedCore core(cfg);
    executeTimedSpecialized(prog, timed, core, limits);
    return core.finish();
}

PhasedTimingStats
simulateTimingPhased(const DecodedProgram &prog, const CoreConfig &cfg,
                     std::vector<uint64_t> boundaries,
                     const ExecLimits &limits)
{
    TimedProgram timed(prog, cfg);
    TimedCore core(cfg);
    core.setCheckpoints(std::move(boundaries));
    executeTimedSpecialized(prog, timed, core, limits);
    PhasedTimingStats out;
    out.stats = core.finish();
    out.checkpointCycles = core.checkpointCycles();
    return out;
}

} // namespace bsyn::sim
