#include "sim/branch_predictor.hh"

#include "support/error.hh"

namespace bsyn::sim
{

namespace
{

/** 2-bit saturating counter helpers (0,1 = not taken; 2,3 = taken). */
uint8_t
bump(uint8_t counter, bool taken)
{
    if (taken)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

} // namespace

BimodalPredictor::BimodalPredictor(uint32_t table_bits)
    : table(1ull << table_bits, 2), mask((1ull << table_bits) - 1)
{}

bool
BimodalPredictor::predict(uint64_t pc) const
{
    return table[pc & mask] >= 2;
}

void
BimodalPredictor::update(uint64_t pc, bool taken)
{
    uint8_t &c = table[pc & mask];
    c = bump(c, taken);
}

GsharePredictor::GsharePredictor(uint32_t table_bits, uint32_t history_bits)
    : table(1ull << table_bits, 2), mask((1ull << table_bits) - 1),
      historyMask((1ull << history_bits) - 1)
{}

uint64_t
GsharePredictor::index(uint64_t pc) const
{
    return (pc ^ history) & mask;
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    return table[index(pc)] >= 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    uint8_t &c = table[index(pc)];
    c = bump(c, taken);
    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
}

TournamentPredictor::TournamentPredictor(uint32_t table_bits,
                                         uint32_t history_bits)
    : bimodal(table_bits), gshare(table_bits, history_bits),
      chooser(1ull << table_bits, 2), mask((1ull << table_bits) - 1)
{}

bool
TournamentPredictor::predict(uint64_t pc) const
{
    bool use_gshare = chooser[pc & mask] >= 2;
    return use_gshare ? gshare.predict(pc) : bimodal.predict(pc);
}

void
TournamentPredictor::update(uint64_t pc, bool taken)
{
    bool bi = bimodal.predict(pc);
    bool gs = gshare.predict(pc);
    if (bi != gs) {
        uint8_t &c = chooser[pc & mask];
        c = bump(c, gs == taken);
    }
    bimodal.update(pc, taken);
    gshare.update(pc, taken);
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &name)
{
    if (name == "static")
        return std::make_unique<StaticTakenPredictor>();
    if (name == "bimodal")
        return std::make_unique<BimodalPredictor>();
    if (name == "gshare")
        return std::make_unique<GsharePredictor>();
    if (name == "tournament")
        return std::make_unique<TournamentPredictor>();
    fatal("unknown branch predictor '%s'", name.c_str());
}

} // namespace bsyn::sim
