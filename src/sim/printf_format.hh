/**
 * @file
 * printf formatting for the interpreter's Print instruction, shared by
 * the reference and predecoded engines so their captured output can
 * never diverge. Honors flags, field width and precision the way C
 * printf does (the MiniC model is 32-bit ints and IEEE doubles).
 */

#ifndef BSYN_SIM_PRINTF_FORMAT_HH
#define BSYN_SIM_PRINTF_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace bsyn::sim
{

/**
 * Format @p fmt with @p nargs raw 64-bit register values, following C
 * printf semantics: flags (`-+ 0#`), field width, precision and length
 * modifiers (parsed, then dropped — every integer is 32-bit) are
 * honored for the supported conversions d i u x X o c f F e E g G.
 *
 * One value is consumed per *handled* conversion only; an unrecognized
 * conversion is copied to the output literally and consumes nothing,
 * so later arguments keep their positions. Missing values format as 0.
 * Integer conversions read the low 32 bits of the value; floating
 * conversions reinterpret all 64 bits as a double. Field widths and
 * precisions are clamped to 4096 so a hostile format string cannot
 * balloon the captured-output buffer.
 */
std::string formatPrintf(const std::string &fmt, const uint64_t *args,
                         size_t nargs);

} // namespace bsyn::sim

#endif // BSYN_SIM_PRINTF_FORMAT_HH
