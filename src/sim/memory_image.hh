/**
 * @file
 * Byte-addressed flat memory for program execution: a data segment
 * holding the module's globals plus a downward-growing stack for
 * function frames. Real byte addresses flow to the cache simulator, so
 * stride/locality behaviour is faithful to a 32-bit machine with 4-byte
 * ints (the layout the paper's Table I assumes).
 */

#ifndef BSYN_SIM_MEMORY_IMAGE_HH
#define BSYN_SIM_MEMORY_IMAGE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "ir/module.hh"

namespace bsyn::sim
{

/** The executable address space of one program instance. */
class MemoryImage
{
  public:
    /**
     * Lay out @p globals starting at dataBase and reserve @p stack_bytes
     * of stack at the top of the address space.
     */
    explicit MemoryImage(const std::vector<ir::Global> &globals,
                         uint64_t stack_bytes = 1u << 20);

    /** Byte address of global symbol @p sym. */
    uint64_t globalAddress(int sym) const
    {
        return globalAddr[static_cast<size_t>(sym)];
    }

    /** Initial stack pointer (top of memory, 16-byte aligned). */
    uint64_t stackTop() const { return stackTop_; }

    /** Lowest valid stack address (for overflow detection). */
    uint64_t stackLimit() const { return stackLimit_; }

    uint64_t size() const { return bytes.size() + dataBase; }

    /** Typed accessors; fatal() on out-of-range addresses. Inline —
     *  they sit on the interpreter's per-memory-access hot path. */
    uint32_t
    load32(uint64_t addr) const
    {
        uint32_t v;
        std::memcpy(&v, ptr(addr, 4), 4);
        return v;
    }

    void
    store32(uint64_t addr, uint32_t value)
    {
        std::memcpy(ptr(addr, 4), &value, 4);
    }

    uint64_t
    load64(uint64_t addr) const
    {
        uint64_t v;
        std::memcpy(&v, ptr(addr, 8), 8);
        return v;
    }

    void
    store64(uint64_t addr, uint64_t value)
    {
        std::memcpy(ptr(addr, 8), &value, 8);
    }

    /** Reset globals to their initial images and zero everything else. */
    void reset(const std::vector<ir::Global> &globals);

    /** Base address of the data segment. */
    static constexpr uint64_t dataBase = 0x1000;

  private:
    void layout(const std::vector<ir::Global> &globals);
    void initGlobals(const std::vector<ir::Global> &globals);

    /** Cold failure path, outlined so the bounds check stays cheap. */
    [[noreturn]] void outOfRange(uint64_t addr, uint32_t size) const;

    // The bounds check subtracts rather than adds so a computed address
    // near 2^64 (a wild negative index wrapped through ea()) cannot
    // overflow `addr + size` past the check and yield a wild pointer.
    const uint8_t *
    ptr(uint64_t addr, uint32_t size) const
    {
        if (addr < dataBase || addr - dataBase > bytes.size() - size)
            outOfRange(addr, size);
        return bytes.data() + (addr - dataBase);
    }

    uint8_t *
    ptr(uint64_t addr, uint32_t size)
    {
        if (addr < dataBase || addr - dataBase > bytes.size() - size)
            outOfRange(addr, size);
        return bytes.data() + (addr - dataBase);
    }

    std::vector<uint8_t> bytes; ///< backing store (starts at dataBase)
    std::vector<uint64_t> globalAddr;
    uint64_t stackTop_ = 0;
    uint64_t stackLimit_ = 0;
};

} // namespace bsyn::sim

#endif // BSYN_SIM_MEMORY_IMAGE_HH
