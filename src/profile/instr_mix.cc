#include "profile/instr_mix.hh"

namespace bsyn::profile
{

using isa::MClass;

uint64_t
InstrMix::total() const
{
    uint64_t t = 0;
    for (uint64_t c : counts)
        t += c;
    return t;
}

double
InstrMix::fraction(MClass cls) const
{
    uint64_t t = total();
    return t ? double(count(cls)) / double(t) : 0.0;
}

double
InstrMix::loadFraction() const
{
    return fraction(MClass::Load);
}

double
InstrMix::storeFraction() const
{
    return fraction(MClass::Store);
}

double
InstrMix::branchFraction() const
{
    return fraction(MClass::Branch) + fraction(MClass::Jump);
}

double
InstrMix::otherFraction() const
{
    return 1.0 - loadFraction() - storeFraction() - branchFraction();
}

double
InstrMix::fpFraction() const
{
    return fraction(MClass::FpAlu) + fraction(MClass::FpMul) +
           fraction(MClass::FpDiv);
}

void
InstrMix::merge(const InstrMix &other)
{
    for (size_t i = 0; i < numClasses; ++i)
        counts[i] += other.counts[i];
}

Json
InstrMix::toJson() const
{
    Json arr = Json::array();
    for (uint64_t c : counts)
        arr.push(Json(c));
    return arr;
}

InstrMix
InstrMix::fromJson(const Json &j)
{
    InstrMix mix;
    for (size_t i = 0; i < numClasses && i < j.size(); ++i)
        mix.counts[i] = static_cast<uint64_t>(j.at(i).asNumber());
    return mix;
}

} // namespace bsyn::profile
