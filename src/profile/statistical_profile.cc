#include "profile/statistical_profile.hh"

#include "support/string_util.hh"

namespace bsyn::profile
{

Json
StatisticalProfile::toJson() const
{
    Json root = Json::object();
    root.set("workload", Json(workloadName));
    root.set("dynamicInstructions", Json(dynamicInstructions));
    root.set("mix", mix.toJson());
    root.set("sfgl", sfgl.toJson());
    return root;
}

StatisticalProfile
StatisticalProfile::fromJson(const Json &j)
{
    StatisticalProfile p;
    p.workloadName = j.get("workload").asString();
    p.dynamicInstructions =
        static_cast<uint64_t>(j.get("dynamicInstructions").asNumber());
    p.mix = InstrMix::fromJson(j.get("mix"));
    p.sfgl = Sfgl::fromJson(j.get("sfgl"));
    return p;
}

std::string
StatisticalProfile::serialize() const
{
    return toJson().dump(-1);
}

StatisticalProfile
StatisticalProfile::deserialize(const std::string &text)
{
    return fromJson(Json::parse(text));
}

void
StatisticalProfile::saveTo(const std::string &path) const
{
    writeFile(path, serialize());
}

StatisticalProfile
StatisticalProfile::loadFrom(const std::string &path)
{
    return deserialize(readFile(path));
}

} // namespace bsyn::profile
