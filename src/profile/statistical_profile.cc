#include "profile/statistical_profile.hh"

#include "support/string_util.hh"

namespace bsyn::profile
{

Json
PhaseProfile::toJson() const
{
    Json root = Json::object();
    root.set("dynamicInstructions", Json(dynamicInstructions));
    root.set("firstSlice", Json(firstSlice));
    root.set("sliceCount", Json(sliceCount));
    root.set("mix", mix.toJson());
    root.set("sfgl", sfgl.toJson());
    return root;
}

PhaseProfile
PhaseProfile::fromJson(const Json &j)
{
    PhaseProfile p;
    p.dynamicInstructions =
        static_cast<uint64_t>(j.get("dynamicInstructions").asNumber());
    p.firstSlice = static_cast<uint64_t>(j.get("firstSlice").asNumber());
    p.sliceCount = static_cast<uint64_t>(j.get("sliceCount").asNumber());
    p.mix = InstrMix::fromJson(j.get("mix"));
    p.sfgl = Sfgl::fromJson(j.get("sfgl"));
    return p;
}

Json
StatisticalProfile::toJson() const
{
    Json root = Json::object();
    root.set("version", Json(3));
    root.set("workload", Json(workloadName));
    root.set("dynamicInstructions", Json(dynamicInstructions));
    root.set("mix", mix.toJson());
    root.set("sfgl", sfgl.toJson());
    root.set("sliceLength", Json(sliceLength));
    root.set("sliceCount", Json(sliceCount));
    // A single phase always mirrors the aggregate, so only genuinely
    // multi-phase profiles pay for the phase list on disk; loading
    // materializes the implicit phase back (see fromJson).
    if (phases.size() > 1) {
        Json jphases = Json::array();
        for (const auto &p : phases)
            jphases.push(p.toJson());
        root.set("phases", std::move(jphases));
    }
    return root;
}

StatisticalProfile
StatisticalProfile::fromJson(const Json &j)
{
    StatisticalProfile p;
    p.workloadName = j.get("workload").asString();
    p.dynamicInstructions =
        static_cast<uint64_t>(j.get("dynamicInstructions").asNumber());
    p.mix = InstrMix::fromJson(j.get("mix"));
    p.sfgl = Sfgl::fromJson(j.get("sfgl"));
    // v1/v2 files predate the version field and the slice stream; they
    // load as single-phase v3 profiles with identical aggregates.
    if (j.has("sliceLength"))
        p.sliceLength =
            static_cast<uint64_t>(j.get("sliceLength").asNumber());
    if (j.has("sliceCount"))
        p.sliceCount =
            static_cast<uint64_t>(j.get("sliceCount").asNumber());
    if (j.has("phases")) {
        const Json &jphases = j.get("phases");
        for (size_t i = 0; i < jphases.size(); ++i)
            p.phases.push_back(PhaseProfile::fromJson(jphases.at(i)));
    }
    if (p.phases.empty()) {
        PhaseProfile only;
        only.dynamicInstructions = p.dynamicInstructions;
        only.firstSlice = 0;
        only.sliceCount = p.sliceCount ? p.sliceCount : 1;
        only.mix = p.mix;
        only.sfgl = p.sfgl;
        p.phases.push_back(std::move(only));
    }
    return p;
}

std::string
StatisticalProfile::serialize() const
{
    return toJson().dump(-1);
}

StatisticalProfile
StatisticalProfile::deserialize(const std::string &text)
{
    return fromJson(Json::parse(text));
}

void
StatisticalProfile::saveTo(const std::string &path) const
{
    writeFile(path, serialize());
}

StatisticalProfile
StatisticalProfile::loadFrom(const std::string &path)
{
    return deserialize(readFile(path));
}

} // namespace bsyn::profile
