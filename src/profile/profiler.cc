#include "profile/profiler.hh"

#include <algorithm>
#include <map>
#include <set>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "isa/lowering.hh"
#include "support/error.hh"

namespace bsyn::profile
{

using isa::MInst;
using isa::MKind;

namespace
{

/** Execution observer that fills in the dynamic SFGL annotations. */
class ProfileObserver : public sim::ExecObserver
{
  public:
    ProfileObserver(const isa::MachineProgram &p,
                    const std::vector<int> &pc_to_block,
                    const ProfileOptions &opts)
        : prog(p), pcToBlock(pc_to_block), cache(opts.profilingCache)
    {
        memStats.resize(prog.code.size());
        branchStats.resize(prog.code.size());
        blockExec.assign(1 + *std::max_element(pcToBlock.begin(),
                                               pcToBlock.end()),
                         0);
        // The class of a static instruction never changes; resolving it
        // once here keeps MInst::cls()'s switch off the per-retired-
        // instruction path.
        clsByPc.reserve(prog.code.size());
        for (const MInst &mi : prog.code)
            clsByPc.push_back(mi.cls());
    }

    void
    onInstruction(int pc, const MInst &mi) override
    {
        mix.add(clsByPc[static_cast<size_t>(pc)]);

        // A block "starts" at a PC whose predecessor PC belongs to a
        // different (func, irBlock) run. Returns land mid-block (just
        // after the call instruction), so they do not retrigger a block
        // start — the IR block's execution simply continues.
        int block = pcToBlock[static_cast<size_t>(pc)];
        bool block_start =
            pc == 0 || pcToBlock[static_cast<size_t>(pc - 1)] != block;
        if (block_start) {
            ++blockExec[static_cast<size_t>(block)];
            if (lastBlock >= 0 && lastWasIntraFunc &&
                prog.code[static_cast<size_t>(lastPc)].funcId ==
                    mi.funcId) {
                ++edges[{lastBlock, block}];
            }
        }

        lastWasIntraFunc =
            mi.kind != MKind::Call && mi.kind != MKind::Ret;
        lastBlock = block;
        lastPc = pc;
    }

    void
    onMemAccess(int pc, uint64_t addr, uint32_t, bool, uint64_t) override
    {
        auto &s = memStats[static_cast<size_t>(pc)];
        ++s.accesses;
        if (!cache.access(addr))
            ++s.misses;
    }

    void
    onBranch(int pc, bool taken) override
    {
        branchStats[static_cast<size_t>(pc)].record(taken);
    }

    const isa::MachineProgram &prog;
    const std::vector<int> &pcToBlock;
    sim::Cache cache;

    InstrMix mix;
    std::vector<isa::MClass> clsByPc;         // per PC
    std::vector<MemAccessStats> memStats;     // per PC
    std::vector<BranchStats> branchStats;     // per PC
    std::vector<uint64_t> blockExec;          // per SFGL block
    std::map<std::pair<int, int>, uint64_t> edges;

    int lastBlock = -1;
    int lastPc = 0;
    bool lastWasIntraFunc = false;
};

} // namespace

StatisticalProfile
profileWorkload(const ir::Module &mod, const isa::MachineProgram &prog,
                const ProfileOptions &opts)
{
    BSYN_ASSERT(!prog.code.empty(), "profiling an empty program");

    // --- Static structure: contiguous (func, irBlock) runs are blocks.
    std::vector<int> pc_to_block(prog.code.size(), -1);
    Sfgl sfgl;
    std::map<std::pair<int, int>, int> block_index;
    std::vector<int> block_start_pc;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        const MInst &mi = prog.code[pc];
        bool new_block =
            pc == 0 || prog.code[pc - 1].funcId != mi.funcId ||
            prog.code[pc - 1].irBlockId != mi.irBlockId;
        if (new_block) {
            SfglBlock b;
            b.id = static_cast<int>(sfgl.blocks.size());
            b.funcId = mi.funcId;
            b.irBlockId = mi.irBlockId;
            block_index[{mi.funcId, mi.irBlockId}] = b.id;
            sfgl.blocks.push_back(std::move(b));
            block_start_pc.push_back(static_cast<int>(pc));
        }
        SfglBlock &b = sfgl.blocks.back();
        InstrDescriptor d;
        d.op = mi.op;
        d.type = mi.type;
        d.cls = mi.cls();
        d.readsMem = mi.readsMemory();
        d.writesMem = mi.writesMemory();
        d.isControl = mi.kind == MKind::CondBr || mi.kind == MKind::Jmp ||
                      mi.kind == MKind::Ret;
        b.code.push_back(d);
        if (mi.kind == MKind::CondBr)
            b.term = SfglTerm::Branch;
        else if (mi.kind == MKind::Ret)
            b.term = SfglTerm::Ret;
        pc_to_block[pc] = b.id;
    }
    for (const auto &f : prog.funcs)
        sfgl.funcNames.push_back(f.name);

    // --- Dynamic annotations.
    ProfileObserver obs(prog, pc_to_block, opts);
    sim::ExecStats exec = sim::execute(prog, &obs, opts.limits);

    for (size_t b = 0; b < sfgl.blocks.size(); ++b)
        sfgl.blocks[b].execCount = obs.blockExec[b];
    for (const auto &[edge, count] : obs.edges)
        sfgl.blocks[static_cast<size_t>(edge.first)].succs.push_back(
            {edge.second, count});

    // Branch annotations: find the CondBr PC of each branch block.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        if (blk.term != SfglTerm::Branch)
            continue;
        int start = block_start_pc[b];
        for (size_t i = 0; i < blk.code.size(); ++i) {
            int pc = start + static_cast<int>(i);
            if (prog.code[static_cast<size_t>(pc)].kind == MKind::CondBr) {
                const BranchStats &bs =
                    obs.branchStats[static_cast<size_t>(pc)];
                if (bs.executions > 0) {
                    blk.takenRate = bs.takenRate();
                    blk.transitionRate = bs.transitionRate();
                    blk.easyBranch = opts.branchClassifier.isEasy(
                        blk.transitionRate);
                }
                break;
            }
        }
    }

    // Memory annotations.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        int start = block_start_pc[b];
        for (size_t i = 0; i < blk.code.size(); ++i) {
            InstrDescriptor &d = blk.code[i];
            if (!d.readsMem && !d.writesMem)
                continue;
            const MemAccessStats &ms =
                obs.memStats[static_cast<size_t>(start) + i];
            d.missClass = ms.accesses ? ms.missClass() : 0;
        }
    }

    // --- Loop annotation from the IR CFG.
    for (size_t fi = 0; fi < mod.functions.size(); ++fi) {
        const ir::Function &fn = mod.functions[fi];
        ir::Cfg cfg(fn);
        ir::Dominators dom(fn, cfg);
        ir::LoopForest loops(fn, cfg, dom);
        int loop_base = static_cast<int>(sfgl.loops.size());
        for (const auto &l : loops.loops()) {
            SfglLoop sl;
            sl.id = loop_base + l.id;
            auto hit = block_index.find({static_cast<int>(fi), l.header});
            if (hit == block_index.end())
                continue; // header unreachable / not lowered
            sl.header = hit->second;
            for (int b : l.blocks) {
                auto bit = block_index.find({static_cast<int>(fi), b});
                if (bit != block_index.end())
                    sl.blocks.push_back(bit->second);
            }
            sl.parent = l.parent >= 0 ? loop_base + l.parent : -1;
            sl.depth = l.depth;
            sfgl.loops.push_back(std::move(sl));
        }
    }

    // Loop entry counts and average iterations.
    for (auto &l : sfgl.loops) {
        std::set<int> members(l.blocks.begin(), l.blocks.end());
        uint64_t entries = 0;
        for (const auto &b : sfgl.blocks) {
            if (members.count(b.id))
                continue;
            for (const auto &e : b.succs)
                if (e.to == l.header)
                    entries += e.count;
        }
        uint64_t header_exec =
            sfgl.blocks[static_cast<size_t>(l.header)].execCount;
        if (entries == 0)
            entries = header_exec > 0 ? 1 : 0;
        l.entries = entries;
        l.avgIterations =
            entries ? double(header_exec) / double(entries) : 0.0;
    }

    // Innermost loop per block.
    for (auto &l : sfgl.loops) {
        for (int b : l.blocks) {
            SfglBlock &blk = sfgl.blocks[static_cast<size_t>(b)];
            if (blk.loopId < 0 ||
                sfgl.loops[static_cast<size_t>(blk.loopId)].blocks.size() >
                    l.blocks.size())
                blk.loopId = l.id;
        }
    }

    StatisticalProfile profile;
    profile.workloadName = prog.name;
    profile.dynamicInstructions = exec.instructions;
    profile.mix = obs.mix;
    profile.sfgl = std::move(sfgl);
    return profile;
}

StatisticalProfile
profileModule(const ir::Module &mod, const ProfileOptions &opts)
{
    isa::LoweringOptions lopts;
    lopts.applyFusion = false; // clean load/op/store sequences
    isa::MachineProgram prog =
        isa::lower(mod, isa::targetX86(), lopts);
    return profileWorkload(mod, prog, opts);
}

} // namespace bsyn::profile
