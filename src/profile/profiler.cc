#include "profile/profiler.hh"

#include <algorithm>
#include <map>
#include <set>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "isa/lowering.hh"
#include "sim/decoded_program.hh"
#include "support/error.hh"

namespace bsyn::profile
{

using isa::MInst;
using isa::MKind;

namespace
{

/**
 * The dynamic half of a profile — everything measured by running the
 * workload, independent of which collection machinery produced it. The
 * observer path fills it from the live callback stream; the fused path
 * reconstructs it from the instrumented engine's dense counters. Both
 * must be bit-identical (the differential-profile suite asserts it),
 * and the SFGL assembly below consumes only this.
 */
struct DynamicProfile
{
    sim::ExecStats exec;
    InstrMix mix;
    std::vector<MemAccessStats> memStats;   ///< per PC
    std::vector<BranchStats> branchStats;   ///< per PC
    std::vector<uint64_t> blockExec;        ///< per SFGL block
    std::map<std::pair<int, int>, uint64_t> edges;
};

/** Execution observer that fills in the dynamic SFGL annotations —
 *  the golden reference the fused path is checked against. */
class ProfileObserver : public sim::ExecObserver
{
  public:
    ProfileObserver(const isa::MachineProgram &p,
                    const std::vector<int> &pc_to_block,
                    const ProfileOptions &opts)
        : prog(p), pcToBlock(pc_to_block), cache(opts.profilingCache)
    {
        memStats.resize(prog.code.size());
        branchStats.resize(prog.code.size());
        blockExec.assign(1 + *std::max_element(pcToBlock.begin(),
                                               pcToBlock.end()),
                         0);
        // The class of a static instruction never changes; resolving it
        // once here keeps MInst::cls()'s switch off the per-retired-
        // instruction path.
        clsByPc.reserve(prog.code.size());
        for (const MInst &mi : prog.code)
            clsByPc.push_back(mi.cls());
    }

    void
    onInstruction(int pc, const MInst &mi) override
    {
        mix.add(clsByPc[static_cast<size_t>(pc)]);

        // A block "starts" at a PC whose predecessor PC belongs to a
        // different (func, irBlock) run. Returns land mid-block (just
        // after the call instruction), so they do not retrigger a block
        // start — the IR block's execution simply continues.
        int block = pcToBlock[static_cast<size_t>(pc)];
        bool block_start =
            pc == 0 || pcToBlock[static_cast<size_t>(pc - 1)] != block;
        if (block_start) {
            ++blockExec[static_cast<size_t>(block)];
            if (lastBlock >= 0 && lastWasIntraFunc &&
                prog.code[static_cast<size_t>(lastPc)].funcId ==
                    mi.funcId) {
                ++edges[{lastBlock, block}];
            }
        }

        lastWasIntraFunc =
            mi.kind != MKind::Call && mi.kind != MKind::Ret;
        lastBlock = block;
        lastPc = pc;
    }

    void
    onMemAccess(int pc, uint64_t addr, uint32_t size, bool,
                uint64_t) override
    {
        auto &s = memStats[static_cast<size_t>(pc)];
        ++s.accesses;
        if (!cache.access(addr, size))
            ++s.misses;
    }

    void
    onBranch(int pc, bool taken) override
    {
        branchStats[static_cast<size_t>(pc)].record(taken);
    }

    const isa::MachineProgram &prog;
    const std::vector<int> &pcToBlock;
    sim::Cache cache;

    InstrMix mix;
    std::vector<isa::MClass> clsByPc;         // per PC
    std::vector<MemAccessStats> memStats;     // per PC
    std::vector<BranchStats> branchStats;     // per PC
    std::vector<uint64_t> blockExec;          // per SFGL block
    std::map<std::pair<int, int>, uint64_t> edges;

    int lastBlock = -1;
    int lastPc = 0;
    bool lastWasIntraFunc = false;
};

DynamicProfile
observerDynamicProfile(const isa::MachineProgram &prog,
                       const std::vector<int> &pc_to_block,
                       const ProfileOptions &opts)
{
    ProfileObserver obs(prog, pc_to_block, opts);
    DynamicProfile d;
    d.exec = sim::execute(prog, &obs, opts.limits);
    d.mix = obs.mix;
    d.memStats = std::move(obs.memStats);
    d.branchStats = std::move(obs.branchStats);
    d.blockExec = std::move(obs.blockExec);
    d.edges = std::move(obs.edges);
    return d;
}

/**
 * Reconstruct the dynamic profile from the instrumented engine's dense
 * per-PC counters plus the program's static structure.
 *
 * The reconstruction leans on two invariants of the lowered code:
 * every retired execution of a block's first PC is exactly one block
 * start (so blockExec falls out of the per-PC retire counts), and
 * control enters a block start only by (a) a CondBr outcome, (b) a
 * Jmp, (c) straight-line fall-through from the previous PC (the
 * lowering elides jumps to the next block, so a block may end in a
 * plain body instruction), or (d) a Call/Ret — which the observer
 * deliberately excludes from the edge map. Each of (a)-(c) is
 * attributable to a static PC whose dynamic count we have.
 */
DynamicProfile
fusedDynamicProfile(const isa::MachineProgram &prog,
                    const std::vector<int> &pc_to_block,
                    const std::vector<int> &block_start_pc,
                    const ProfileOptions &opts)
{
    sim::DecodedProgram decoded(prog);
    sim::InstrumentedCounters c;
    DynamicProfile d;
    d.exec = sim::executeInstrumented(decoded, opts.profilingCache, c,
                                      opts.limits);

    size_t n = prog.code.size();
    d.memStats.resize(n);
    d.branchStats.resize(n);
    std::vector<bool> starts(n, false);
    for (size_t pc = 0; pc < n; ++pc) {
        if (c.execCount[pc])
            d.mix.add(prog.code[pc].cls(), c.execCount[pc]);
        d.memStats[pc].accesses = c.memAccesses[pc];
        d.memStats[pc].misses = c.memMisses[pc];
        BranchStats &b = d.branchStats[pc];
        b.executions = c.branch[pc].executions;
        b.taken = c.branch[pc].taken;
        b.transitions = c.branch[pc].transitions;
        b.lastOutcome = c.branch[pc].lastOutcome != 0;
        b.hasLast = c.branch[pc].hasLast != 0;
        starts[pc] = pc == 0 || pc_to_block[pc - 1] != pc_to_block[pc];
    }

    d.blockExec.resize(block_start_pc.size());
    for (size_t b = 0; b < block_start_pc.size(); ++b)
        d.blockExec[b] =
            c.execCount[static_cast<size_t>(block_start_pc[b])];

    for (size_t pc = 0; pc < n; ++pc) {
        const MInst &mi = prog.code[pc];
        int from = pc_to_block[pc];
        switch (mi.kind) {
          case MKind::CondBr: {
            const auto &b = c.branch[pc];
            size_t tgt = static_cast<size_t>(mi.target);
            if (b.taken && starts[tgt])
                d.edges[{from, pc_to_block[tgt]}] += b.taken;
            uint64_t fall = b.executions - b.taken;
            if (fall && pc + 1 < n && starts[pc + 1])
                d.edges[{from, pc_to_block[pc + 1]}] += fall;
            break;
          }
          case MKind::Jmp: {
            size_t tgt = static_cast<size_t>(mi.target);
            if (c.execCount[pc] && starts[tgt])
                d.edges[{from, pc_to_block[tgt]}] += c.execCount[pc];
            break;
          }
          case MKind::Call:
          case MKind::Ret:
            break; // inter-function transfer: never an SFGL edge
          default:
            // Straight-line fall-through into the next block.
            if (c.execCount[pc] && pc + 1 < n && starts[pc + 1] &&
                prog.code[pc + 1].funcId == mi.funcId)
                d.edges[{from, pc_to_block[pc + 1]}] += c.execCount[pc];
            break;
        }
    }
    return d;
}

} // namespace

StatisticalProfile
profileWorkload(const ir::Module &mod, const isa::MachineProgram &prog,
                const ProfileOptions &opts)
{
    BSYN_ASSERT(!prog.code.empty(), "profiling an empty program");

    // --- Static structure: contiguous (func, irBlock) runs are blocks.
    std::vector<int> pc_to_block(prog.code.size(), -1);
    Sfgl sfgl;
    std::map<std::pair<int, int>, int> block_index;
    std::vector<int> block_start_pc;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        const MInst &mi = prog.code[pc];
        bool new_block =
            pc == 0 || prog.code[pc - 1].funcId != mi.funcId ||
            prog.code[pc - 1].irBlockId != mi.irBlockId;
        if (new_block) {
            SfglBlock b;
            b.id = static_cast<int>(sfgl.blocks.size());
            b.funcId = mi.funcId;
            b.irBlockId = mi.irBlockId;
            block_index[{mi.funcId, mi.irBlockId}] = b.id;
            sfgl.blocks.push_back(std::move(b));
            block_start_pc.push_back(static_cast<int>(pc));
        }
        SfglBlock &b = sfgl.blocks.back();
        InstrDescriptor d;
        d.op = mi.op;
        d.type = mi.type;
        d.cls = mi.cls();
        d.readsMem = mi.readsMemory();
        d.writesMem = mi.writesMemory();
        d.isControl = mi.kind == MKind::CondBr || mi.kind == MKind::Jmp ||
                      mi.kind == MKind::Ret;
        b.code.push_back(d);
        if (mi.kind == MKind::CondBr)
            b.term = SfglTerm::Branch;
        else if (mi.kind == MKind::Ret)
            b.term = SfglTerm::Ret;
        pc_to_block[pc] = b.id;
    }
    for (const auto &f : prog.funcs)
        sfgl.funcNames.push_back(f.name);

    // --- Dynamic annotations, via either collection engine. The fused
    // mode lives inside the predecoded engine, so explicitly selecting
    // the reference interpreter implies the observer profiler.
    bool fused = opts.engine == ProfileEngine::Fused &&
                 opts.limits.engine == sim::ExecEngine::Predecoded;
    DynamicProfile dyn =
        fused ? fusedDynamicProfile(prog, pc_to_block, block_start_pc,
                                    opts)
              : observerDynamicProfile(prog, pc_to_block, opts);

    for (size_t b = 0; b < sfgl.blocks.size(); ++b)
        sfgl.blocks[b].execCount = dyn.blockExec[b];
    for (const auto &[edge, count] : dyn.edges)
        sfgl.blocks[static_cast<size_t>(edge.first)].succs.push_back(
            {edge.second, count});

    // Branch annotations: every executed CondBr of a block gets its
    // own per-descriptor rates (a block can lower to several); the
    // block-level rates summarize the first executed one.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        int start = block_start_pc[b];
        bool block_annotated = false;
        for (size_t i = 0; i < blk.code.size(); ++i) {
            int pc = start + static_cast<int>(i);
            if (prog.code[static_cast<size_t>(pc)].kind != MKind::CondBr)
                continue;
            const BranchStats &bs =
                dyn.branchStats[static_cast<size_t>(pc)];
            if (bs.executions == 0)
                continue;
            blk.code[i].branchExecutions = bs.executions;
            blk.code[i].takenRate = bs.takenRate();
            blk.code[i].transitionRate = bs.transitionRate();
            if (!block_annotated && blk.term == SfglTerm::Branch) {
                blk.takenRate = bs.takenRate();
                blk.transitionRate = bs.transitionRate();
                blk.easyBranch = opts.branchClassifier.isEasy(
                    blk.transitionRate);
                block_annotated = true;
            }
        }
    }

    // Memory annotations.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        int start = block_start_pc[b];
        for (size_t i = 0; i < blk.code.size(); ++i) {
            InstrDescriptor &d = blk.code[i];
            if (!d.readsMem && !d.writesMem)
                continue;
            const MemAccessStats &ms =
                dyn.memStats[static_cast<size_t>(start) + i];
            d.missClass = ms.accesses ? ms.missClass() : 0;
        }
    }

    // --- Loop annotation from the IR CFG.
    for (size_t fi = 0; fi < mod.functions.size(); ++fi) {
        const ir::Function &fn = mod.functions[fi];
        ir::Cfg cfg(fn);
        ir::Dominators dom(fn, cfg);
        ir::LoopForest loops(fn, cfg, dom);
        int loop_base = static_cast<int>(sfgl.loops.size());
        for (const auto &l : loops.loops()) {
            SfglLoop sl;
            sl.id = loop_base + l.id;
            auto hit = block_index.find({static_cast<int>(fi), l.header});
            if (hit == block_index.end())
                continue; // header unreachable / not lowered
            sl.header = hit->second;
            for (int b : l.blocks) {
                auto bit = block_index.find({static_cast<int>(fi), b});
                if (bit != block_index.end())
                    sl.blocks.push_back(bit->second);
            }
            sl.parent = l.parent >= 0 ? loop_base + l.parent : -1;
            sl.depth = l.depth;
            sfgl.loops.push_back(std::move(sl));
        }
    }

    // Loop entry counts and average iterations.
    for (auto &l : sfgl.loops) {
        std::set<int> members(l.blocks.begin(), l.blocks.end());
        uint64_t entries = 0;
        for (const auto &b : sfgl.blocks) {
            if (members.count(b.id))
                continue;
            for (const auto &e : b.succs)
                if (e.to == l.header)
                    entries += e.count;
        }
        uint64_t header_exec =
            sfgl.blocks[static_cast<size_t>(l.header)].execCount;
        if (entries == 0)
            entries = header_exec > 0 ? 1 : 0;
        l.entries = entries;
        l.avgIterations =
            entries ? double(header_exec) / double(entries) : 0.0;
    }

    // Innermost loop per block.
    for (auto &l : sfgl.loops) {
        for (int b : l.blocks) {
            SfglBlock &blk = sfgl.blocks[static_cast<size_t>(b)];
            if (blk.loopId < 0 ||
                sfgl.loops[static_cast<size_t>(blk.loopId)].blocks.size() >
                    l.blocks.size())
                blk.loopId = l.id;
        }
    }

    StatisticalProfile profile;
    profile.workloadName = prog.name;
    profile.dynamicInstructions = dyn.exec.instructions;
    profile.mix = dyn.mix;
    profile.sfgl = std::move(sfgl);
    return profile;
}

StatisticalProfile
profileModule(const ir::Module &mod, const ProfileOptions &opts)
{
    isa::LoweringOptions lopts;
    lopts.applyFusion = false; // clean load/op/store sequences
    isa::MachineProgram prog =
        isa::lower(mod, isa::targetX86(), lopts);
    return profileWorkload(mod, prog, opts);
}

} // namespace bsyn::profile
