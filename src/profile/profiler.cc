#include "profile/profiler.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/loops.hh"
#include "isa/lowering.hh"
#include "sim/decoded_program.hh"
#include "support/error.hh"

namespace bsyn::profile
{

using isa::MInst;
using isa::MKind;

namespace
{

/**
 * The dynamic half of a profile — everything measured by running the
 * workload, independent of which collection machinery produced it. The
 * observer path fills it from the live callback stream; the fused path
 * reconstructs it from the instrumented engine's dense counters. Both
 * must be bit-identical (the differential-profile suite asserts it),
 * and the SFGL assembly below consumes only this.
 */
struct DynamicProfile
{
    sim::ExecStats exec;
    InstrMix mix;
    std::vector<MemAccessStats> memStats;   ///< per PC
    std::vector<BranchStats> branchStats;   ///< per PC
    std::vector<uint64_t> blockExec;        ///< per SFGL block
    std::map<std::pair<int, int>, uint64_t> edges;
};

/** Per-PC memory/branch statistics from dense counters — the shared
 *  decode both engines' slice streams go through. */
void
statsFromCounters(const sim::InstrumentedCounters &c, size_t n,
                  DynamicProfile &d)
{
    d.memStats.resize(n);
    d.branchStats.resize(n);
    for (size_t pc = 0; pc < n; ++pc) {
        d.memStats[pc].accesses = c.memAccesses[pc];
        d.memStats[pc].misses = c.memMisses[pc];
        BranchStats &b = d.branchStats[pc];
        b.executions = c.branch[pc].executions;
        b.taken = c.branch[pc].taken;
        b.transitions = c.branch[pc].transitions;
        b.lastOutcome = c.branch[pc].lastOutcome != 0;
        b.hasLast = c.branch[pc].hasLast != 0;
    }
}

/** Execution observer that fills in the dynamic SFGL annotations —
 *  the golden reference the fused path is checked against. It keeps
 *  the same dense per-PC counters as the instrumented engine (so the
 *  slice streams of both engines decode through one code path) plus
 *  the directly observed block executions, edges and retire-order mix
 *  the differential suite compares against the reconstruction. */
class ProfileObserver : public sim::ExecObserver
{
  public:
    ProfileObserver(const isa::MachineProgram &p,
                    const std::vector<int> &pc_to_block,
                    const ProfileOptions &opts, sim::SliceRecorder &rec)
        : prog(p), pcToBlock(pc_to_block), cache(opts.profilingCache),
          recorder(rec)
    {
        counters.execCount.assign(prog.code.size(), 0);
        counters.memAccesses.assign(prog.code.size(), 0);
        counters.memMisses.assign(prog.code.size(), 0);
        counters.branch.assign(prog.code.size(),
                               sim::InstrumentedCounters::Branch());
        blockExec.assign(1 + *std::max_element(pcToBlock.begin(),
                                               pcToBlock.end()),
                         0);
        // The class of a static instruction never changes; resolving it
        // once here keeps MInst::cls()'s switch off the per-retired-
        // instruction path.
        clsByPc.reserve(prog.code.size());
        for (const MInst &mi : prog.code)
            clsByPc.push_back(mi.cls());
    }

    void
    onInstruction(int pc, const MInst &mi) override
    {
        // Checkpoint before counting, exactly like the instrumented
        // engine's hook: a boundary never splits one instruction's
        // events across two slices.
        recorder.beforeRetire(counters);
        ++counters.execCount[static_cast<size_t>(pc)];
        mix.add(clsByPc[static_cast<size_t>(pc)]);

        // A block "starts" at a PC whose predecessor PC belongs to a
        // different (func, irBlock) run. Returns land mid-block (just
        // after the call instruction), so they do not retrigger a block
        // start — the IR block's execution simply continues.
        int block = pcToBlock[static_cast<size_t>(pc)];
        bool block_start =
            pc == 0 || pcToBlock[static_cast<size_t>(pc - 1)] != block;
        if (block_start) {
            ++blockExec[static_cast<size_t>(block)];
            if (lastBlock >= 0 && lastWasIntraFunc &&
                prog.code[static_cast<size_t>(lastPc)].funcId ==
                    mi.funcId) {
                ++edges[{lastBlock, block}];
            }
        }

        lastWasIntraFunc =
            mi.kind != MKind::Call && mi.kind != MKind::Ret;
        lastBlock = block;
        lastPc = pc;
    }

    void
    onMemAccess(int pc, uint64_t addr, uint32_t size, bool,
                uint64_t) override
    {
        ++counters.memAccesses[static_cast<size_t>(pc)];
        if (!cache.access(addr, size))
            ++counters.memMisses[static_cast<size_t>(pc)];
    }

    void
    onBranch(int pc, bool taken) override
    {
        // Mirrors BranchStats::record() / the instrumented engine.
        auto &b = counters.branch[static_cast<size_t>(pc)];
        ++b.executions;
        b.taken += taken;
        if (b.hasLast && taken != (b.lastOutcome != 0))
            ++b.transitions;
        b.lastOutcome = taken;
        b.hasLast = 1;
    }

    const isa::MachineProgram &prog;
    const std::vector<int> &pcToBlock;
    sim::Cache cache;
    sim::SliceRecorder &recorder;

    InstrMix mix;
    std::vector<isa::MClass> clsByPc;         // per PC
    sim::InstrumentedCounters counters;       // per PC, dense
    std::vector<uint64_t> blockExec;          // per SFGL block
    std::map<std::pair<int, int>, uint64_t> edges;

    int lastBlock = -1;
    int lastPc = 0;
    bool lastWasIntraFunc = false;
};

/**
 * Reconstruct a dynamic profile from dense per-PC counters plus the
 * program's static structure — the aggregate counters of a fused run,
 * or the delta between two slice-stream snapshots of either engine.
 *
 * The reconstruction leans on two invariants of the lowered code:
 * every retired execution of a block's first PC is exactly one block
 * start (so blockExec falls out of the per-PC retire counts), and
 * control enters a block start only by (a) a CondBr outcome, (b) a
 * Jmp, (c) straight-line fall-through from the previous PC (the
 * lowering elides jumps to the next block, so a block may end in a
 * plain body instruction), or (d) a Call/Ret — which the observer
 * deliberately excludes from the edge map. Each of (a)-(c) is
 * attributable to a static PC whose dynamic count we have.
 */
DynamicProfile
dynFromCounters(const isa::MachineProgram &prog,
                const std::vector<int> &pc_to_block,
                const std::vector<int> &block_start_pc,
                const sim::InstrumentedCounters &c)
{
    DynamicProfile d;
    size_t n = prog.code.size();
    std::vector<bool> starts(n, false);
    for (size_t pc = 0; pc < n; ++pc) {
        if (c.execCount[pc])
            d.mix.add(prog.code[pc].cls(), c.execCount[pc]);
        starts[pc] = pc == 0 || pc_to_block[pc - 1] != pc_to_block[pc];
    }
    statsFromCounters(c, n, d);

    d.blockExec.resize(block_start_pc.size());
    for (size_t b = 0; b < block_start_pc.size(); ++b)
        d.blockExec[b] =
            c.execCount[static_cast<size_t>(block_start_pc[b])];

    for (size_t pc = 0; pc < n; ++pc) {
        const MInst &mi = prog.code[pc];
        int from = pc_to_block[pc];
        switch (mi.kind) {
          case MKind::CondBr: {
            const auto &b = c.branch[pc];
            size_t tgt = static_cast<size_t>(mi.target);
            if (b.taken && starts[tgt])
                d.edges[{from, pc_to_block[tgt]}] += b.taken;
            uint64_t fall = b.executions - b.taken;
            if (fall && pc + 1 < n && starts[pc + 1])
                d.edges[{from, pc_to_block[pc + 1]}] += fall;
            break;
          }
          case MKind::Jmp: {
            size_t tgt = static_cast<size_t>(mi.target);
            if (c.execCount[pc] && starts[tgt])
                d.edges[{from, pc_to_block[tgt]}] += c.execCount[pc];
            break;
          }
          case MKind::Call:
          case MKind::Ret:
            break; // inter-function transfer: never an SFGL edge
          default:
            // Straight-line fall-through into the next block.
            if (c.execCount[pc] && pc + 1 < n && starts[pc + 1] &&
                prog.code[pc + 1].funcId == mi.funcId)
                d.edges[{from, pc_to_block[pc + 1]}] += c.execCount[pc];
            break;
        }
    }
    return d;
}

DynamicProfile
observerDynamicProfile(const isa::MachineProgram &prog,
                       const std::vector<int> &pc_to_block,
                       const ProfileOptions &opts,
                       const sim::SliceOptions &sopts,
                       sim::SlicedCounters *slices)
{
    sim::SliceRecorder rec(sopts, slices);
    ProfileObserver obs(prog, pc_to_block, opts, rec);
    DynamicProfile d;
    d.exec = sim::execute(prog, &obs, opts.limits);
    rec.finish(obs.counters);
    d.mix = obs.mix;
    statsFromCounters(obs.counters, prog.code.size(), d);
    d.blockExec = std::move(obs.blockExec);
    d.edges = std::move(obs.edges);
    return d;
}

DynamicProfile
fusedDynamicProfile(const isa::MachineProgram &prog,
                    const std::vector<int> &pc_to_block,
                    const std::vector<int> &block_start_pc,
                    const ProfileOptions &opts,
                    const sim::SliceOptions &sopts,
                    sim::SlicedCounters *slices)
{
    sim::DecodedProgram decoded(prog);
    sim::InstrumentedCounters c;
    sim::ExecStats exec =
        slices ? sim::executeInstrumentedSliced(
                     decoded, opts.profilingCache, c, *slices, sopts,
                     opts.limits)
               : sim::executeInstrumented(decoded, opts.profilingCache,
                                          c, opts.limits);
    DynamicProfile d =
        dynFromCounters(prog, pc_to_block, block_start_pc, c);
    d.exec = exec;
    return d;
}

/** Element-wise counter difference hi - lo (the events of one slice or
 *  phase). The branch last-outcome flags carry over from @p hi; they
 *  only exist for record() streaming and are ignored downstream. */
sim::InstrumentedCounters
counterDelta(const sim::InstrumentedCounters &hi,
             const sim::InstrumentedCounters *lo)
{
    sim::InstrumentedCounters d = hi;
    if (!lo)
        return d;
    size_t n = d.execCount.size();
    for (size_t pc = 0; pc < n; ++pc) {
        d.execCount[pc] -= lo->execCount[pc];
        d.memAccesses[pc] -= lo->memAccesses[pc];
        d.memMisses[pc] -= lo->memMisses[pc];
        d.branch[pc].executions -= lo->branch[pc].executions;
        d.branch[pc].taken -= lo->branch[pc].taken;
        d.branch[pc].transitions -= lo->branch[pc].transitions;
    }
    return d;
}

/** Behaviour vector of one slice or phase, the space the boundary
 *  detector measures distances in. */
struct SliceFeatures
{
    double load = 0, store = 0, branch = 0, fp = 0, other = 0;
    double missRate = 0, takenRate = 0;
    uint64_t retired = 0;
};

SliceFeatures
sliceFeatures(const sim::InstrumentedCounters &delta,
              const std::vector<isa::MClass> &clsByPc, uint64_t retired)
{
    InstrMix mix;
    uint64_t accesses = 0, misses = 0, branches = 0, taken = 0;
    size_t n = delta.execCount.size();
    for (size_t pc = 0; pc < n; ++pc) {
        if (delta.execCount[pc])
            mix.add(clsByPc[pc], delta.execCount[pc]);
        accesses += delta.memAccesses[pc];
        misses += delta.memMisses[pc];
        branches += delta.branch[pc].executions;
        taken += delta.branch[pc].taken;
    }
    SliceFeatures f;
    f.load = mix.loadFraction();
    f.store = mix.storeFraction();
    f.branch = mix.branchFraction();
    f.fp = mix.fpFraction();
    f.other = mix.otherFraction();
    f.missRate = accesses ? double(misses) / double(accesses) : 0.0;
    f.takenRate = branches ? double(taken) / double(branches) : 0.0;
    f.retired = retired;
    return f;
}

double
featureDistance(const SliceFeatures &a, const SliceFeatures &b)
{
    return std::fabs(a.load - b.load) + std::fabs(a.store - b.store) +
           std::fabs(a.branch - b.branch) + std::fabs(a.fp - b.fp) +
           std::fabs(a.other - b.other) +
           std::fabs(a.missRate - b.missRate) +
           std::fabs(a.takenRate - b.takenRate);
}

/** One detected phase: slices [first, first + count). */
struct PhaseSeg
{
    size_t first = 0;
    size_t count = 0;
};

/**
 * Greedy adjacent-slice merge: a slice extends the current phase while
 * its behaviour vector stays within the threshold of the phase's
 * running aggregate vector; otherwise it opens a new phase. A runt
 * slice (the partial tail of the run, shorter than 1/8 of the
 * interval) never opens a phase of its own — its features are noise.
 */
std::vector<PhaseSeg>
detectPhases(const sim::SlicedCounters &slices,
             const std::vector<isa::MClass> &clsByPc, double threshold,
             double min_fraction)
{
    const auto &snaps = slices.snapshots;
    std::vector<PhaseSeg> segs;
    if (snaps.empty())
        return segs;

    auto segDelta = [&](size_t first, size_t last) {
        return counterDelta(snaps[last].counters,
                            first ? &snaps[first - 1].counters : nullptr);
    };
    auto segRetired = [&](size_t first, size_t last) {
        return snaps[last].retired -
               (first ? snaps[first - 1].retired : 0);
    };
    auto segFeatures = [&](const PhaseSeg &s) {
        size_t last = s.first + s.count - 1;
        return sliceFeatures(segDelta(s.first, last), clsByPc,
                             segRetired(s.first, last));
    };

    segs.push_back({0, 1});
    SliceFeatures cur = sliceFeatures(segDelta(0, 0), clsByPc,
                                      segRetired(0, 0));
    for (size_t i = 1; i < snaps.size(); ++i) {
        uint64_t retired = segRetired(i, i);
        SliceFeatures f =
            sliceFeatures(segDelta(i, i), clsByPc, retired);
        bool runt = retired < slices.sliceLength / 8;
        if (runt || featureDistance(cur, f) <= threshold) {
            ++segs.back().count;
        } else {
            segs.push_back({i, 1});
        }
        cur = segFeatures(segs.back());
    }

    // Undersized phases are transition artifacts: a slice straddling a
    // real boundary blends both neighbours' behaviour, lands outside
    // the threshold of either, and surfaces as a singleton phase.
    // Repeatedly fold the smallest undersized phase into whichever
    // neighbour is behaviourally closer.
    uint64_t total = snaps.back().retired;
    uint64_t min_retired = static_cast<uint64_t>(
        min_fraction * static_cast<double>(total));
    while (segs.size() > 1) {
        size_t victim = segs.size();
        uint64_t victim_retired = 0;
        for (size_t i = 0; i < segs.size(); ++i) {
            uint64_t r = segRetired(segs[i].first,
                                    segs[i].first + segs[i].count - 1);
            if (r < min_retired &&
                (victim == segs.size() || r < victim_retired)) {
                victim = i;
                victim_retired = r;
            }
        }
        if (victim == segs.size())
            break;
        size_t into;
        if (victim == 0) {
            into = 1;
        } else if (victim + 1 == segs.size()) {
            into = victim - 1;
        } else {
            SliceFeatures v = segFeatures(segs[victim]);
            double dprev =
                featureDistance(segFeatures(segs[victim - 1]), v);
            double dnext =
                featureDistance(segFeatures(segs[victim + 1]), v);
            into = dprev <= dnext ? victim - 1 : victim + 1;
        }
        size_t lo = std::min(victim, into);
        segs[lo].count += segs[lo + 1].count;
        segs.erase(segs.begin() + static_cast<ptrdiff_t>(lo) + 1);
    }
    return segs;
}

/** Static structure shared by the aggregate and every phase. */
struct StaticSfgl
{
    Sfgl sfgl; ///< blocks/code/term/funcNames/loops, no dynamic counts
    std::vector<int> pc_to_block;
    std::vector<int> block_start_pc;
};

StaticSfgl
buildStaticSfgl(const ir::Module &mod, const isa::MachineProgram &prog)
{
    StaticSfgl s;
    s.pc_to_block.assign(prog.code.size(), -1);
    std::map<std::pair<int, int>, int> block_index;
    for (size_t pc = 0; pc < prog.code.size(); ++pc) {
        const MInst &mi = prog.code[pc];
        bool new_block =
            pc == 0 || prog.code[pc - 1].funcId != mi.funcId ||
            prog.code[pc - 1].irBlockId != mi.irBlockId;
        if (new_block) {
            SfglBlock b;
            b.id = static_cast<int>(s.sfgl.blocks.size());
            b.funcId = mi.funcId;
            b.irBlockId = mi.irBlockId;
            block_index[{mi.funcId, mi.irBlockId}] = b.id;
            s.sfgl.blocks.push_back(std::move(b));
            s.block_start_pc.push_back(static_cast<int>(pc));
        }
        SfglBlock &b = s.sfgl.blocks.back();
        InstrDescriptor d;
        d.op = mi.op;
        d.type = mi.type;
        d.cls = mi.cls();
        d.readsMem = mi.readsMemory();
        d.writesMem = mi.writesMemory();
        d.isControl = mi.kind == MKind::CondBr || mi.kind == MKind::Jmp ||
                      mi.kind == MKind::Ret;
        b.code.push_back(d);
        if (mi.kind == MKind::CondBr)
            b.term = SfglTerm::Branch;
        else if (mi.kind == MKind::Ret)
            b.term = SfglTerm::Ret;
        s.pc_to_block[pc] = b.id;
    }
    for (const auto &f : prog.funcs)
        s.sfgl.funcNames.push_back(f.name);

    // Loop structure from the IR CFG (headers, membership, nesting —
    // the dynamic entry counts are per-profile annotations).
    for (size_t fi = 0; fi < mod.functions.size(); ++fi) {
        const ir::Function &fn = mod.functions[fi];
        ir::Cfg cfg(fn);
        ir::Dominators dom(fn, cfg);
        ir::LoopForest loops(fn, cfg, dom);
        int loop_base = static_cast<int>(s.sfgl.loops.size());
        for (const auto &l : loops.loops()) {
            SfglLoop sl;
            sl.id = loop_base + l.id;
            auto hit = block_index.find({static_cast<int>(fi), l.header});
            if (hit == block_index.end())
                continue; // header unreachable / not lowered
            sl.header = hit->second;
            for (int b : l.blocks) {
                auto bit = block_index.find({static_cast<int>(fi), b});
                if (bit != block_index.end())
                    sl.blocks.push_back(bit->second);
            }
            sl.parent = l.parent >= 0 ? loop_base + l.parent : -1;
            sl.depth = l.depth;
            s.sfgl.loops.push_back(std::move(sl));
        }
    }

    // Innermost loop per block (static: membership never changes).
    for (auto &l : s.sfgl.loops) {
        for (int b : l.blocks) {
            SfglBlock &blk = s.sfgl.blocks[static_cast<size_t>(b)];
            if (blk.loopId < 0 ||
                s.sfgl.loops[static_cast<size_t>(blk.loopId)]
                        .blocks.size() > l.blocks.size())
                blk.loopId = l.id;
        }
    }
    return s;
}

/** Apply one DynamicProfile's measurements to a copy of the static
 *  SFGL — the per-phase and aggregate assemblies share this verbatim. */
void
annotateDynamic(Sfgl &sfgl, const DynamicProfile &dyn,
                const StaticSfgl &st, const isa::MachineProgram &prog,
                const ProfileOptions &opts)
{
    for (size_t b = 0; b < sfgl.blocks.size(); ++b)
        sfgl.blocks[b].execCount = dyn.blockExec[b];
    for (const auto &[edge, count] : dyn.edges)
        sfgl.blocks[static_cast<size_t>(edge.first)].succs.push_back(
            {edge.second, count});

    // Branch annotations: every executed CondBr of a block gets its
    // own per-descriptor rates (a block can lower to several); the
    // block-level rates summarize the first executed one.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        int start = st.block_start_pc[b];
        bool block_annotated = false;
        for (size_t i = 0; i < blk.code.size(); ++i) {
            int pc = start + static_cast<int>(i);
            if (prog.code[static_cast<size_t>(pc)].kind != MKind::CondBr)
                continue;
            const BranchStats &bs =
                dyn.branchStats[static_cast<size_t>(pc)];
            if (bs.executions == 0)
                continue;
            blk.code[i].branchExecutions = bs.executions;
            blk.code[i].takenRate = bs.takenRate();
            blk.code[i].transitionRate = bs.transitionRate();
            if (!block_annotated && blk.term == SfglTerm::Branch) {
                blk.takenRate = bs.takenRate();
                blk.transitionRate = bs.transitionRate();
                blk.easyBranch = opts.branchClassifier.isEasy(
                    blk.transitionRate);
                block_annotated = true;
            }
        }
    }

    // Memory annotations.
    for (size_t b = 0; b < sfgl.blocks.size(); ++b) {
        SfglBlock &blk = sfgl.blocks[b];
        int start = st.block_start_pc[b];
        for (size_t i = 0; i < blk.code.size(); ++i) {
            InstrDescriptor &d = blk.code[i];
            if (!d.readsMem && !d.writesMem)
                continue;
            const MemAccessStats &ms =
                dyn.memStats[static_cast<size_t>(start) + i];
            d.missClass = ms.accesses ? ms.missClass() : 0;
        }
    }

    // Loop entry counts and average iterations.
    for (auto &l : sfgl.loops) {
        std::set<int> members(l.blocks.begin(), l.blocks.end());
        uint64_t entries = 0;
        for (const auto &b : sfgl.blocks) {
            if (members.count(b.id))
                continue;
            for (const auto &e : b.succs)
                if (e.to == l.header)
                    entries += e.count;
        }
        uint64_t header_exec =
            sfgl.blocks[static_cast<size_t>(l.header)].execCount;
        if (entries == 0)
            entries = header_exec > 0 ? 1 : 0;
        l.entries = entries;
        l.avgIterations =
            entries ? double(header_exec) / double(entries) : 0.0;
    }
}

} // namespace

StatisticalProfile
profileWorkload(const ir::Module &mod, const isa::MachineProgram &prog,
                const ProfileOptions &opts)
{
    BSYN_ASSERT(!prog.code.empty(), "profiling an empty program");

    StaticSfgl st = buildStaticSfgl(mod, prog);

    // --- Dynamic annotations, via either collection engine. The fused
    // mode lives inside the predecoded engine, so explicitly selecting
    // the reference interpreter implies the observer profiler.
    bool fused = opts.engine == ProfileEngine::Fused &&
                 opts.limits.engine == sim::ExecEngine::Predecoded;
    bool slicing =
        opts.sliceBaseLength > 0 && opts.maxSliceCheckpoints >= 2;
    sim::SliceOptions sopts;
    sopts.baseSliceLength = opts.sliceBaseLength;
    sopts.maxSlices = opts.maxSliceCheckpoints;
    sim::SlicedCounters slices;
    sim::SlicedCounters *sl = slicing ? &slices : nullptr;
    DynamicProfile dyn =
        fused ? fusedDynamicProfile(prog, st.pc_to_block,
                                    st.block_start_pc, opts, sopts, sl)
              : observerDynamicProfile(prog, st.pc_to_block, opts,
                                       sopts, sl);

    StatisticalProfile profile;
    profile.workloadName = prog.name;
    profile.dynamicInstructions = dyn.exec.instructions;
    profile.mix = dyn.mix;
    profile.sfgl = st.sfgl;
    annotateDynamic(profile.sfgl, dyn, st, prog, opts);

    // --- Phase detection over the slice stream. Both engines produce
    // the same snapshots at the same boundaries, and each phase's
    // sub-profile is reconstructed from snapshot deltas through one
    // shared code path, so per-phase profiles are byte-identical
    // across engines by construction.
    if (slicing && !slices.snapshots.empty()) {
        profile.sliceLength = slices.sliceLength;
        profile.sliceCount = slices.snapshots.size();

        std::vector<isa::MClass> clsByPc;
        clsByPc.reserve(prog.code.size());
        for (const MInst &mi : prog.code)
            clsByPc.push_back(mi.cls());

        std::vector<PhaseSeg> segs =
            detectPhases(slices, clsByPc, opts.phaseThreshold,
                         opts.minPhaseFraction);
        if (segs.size() > 1) {
            for (const PhaseSeg &seg : segs) {
                size_t last = seg.first + seg.count - 1;
                const sim::InstrumentedCounters *lo =
                    seg.first
                        ? &slices.snapshots[seg.first - 1].counters
                        : nullptr;
                sim::InstrumentedCounters delta = counterDelta(
                    slices.snapshots[last].counters, lo);
                DynamicProfile pd = dynFromCounters(
                    prog, st.pc_to_block, st.block_start_pc, delta);

                PhaseProfile ph;
                ph.dynamicInstructions =
                    slices.snapshots[last].retired -
                    (seg.first
                         ? slices.snapshots[seg.first - 1].retired
                         : 0);
                ph.firstSlice = seg.first;
                ph.sliceCount = seg.count;
                ph.mix = pd.mix;
                ph.sfgl = st.sfgl;
                annotateDynamic(ph.sfgl, pd, st, prog, opts);
                profile.phases.push_back(std::move(ph));
            }
        }
    }

    // A single phase always mirrors the aggregate exactly (matching
    // what deserializing the compact single-phase JSON materializes).
    if (profile.phases.empty()) {
        PhaseProfile only;
        only.dynamicInstructions = profile.dynamicInstructions;
        only.firstSlice = 0;
        only.sliceCount = profile.sliceCount ? profile.sliceCount : 1;
        only.mix = profile.mix;
        only.sfgl = profile.sfgl;
        profile.phases.push_back(std::move(only));
    }
    return profile;
}

StatisticalProfile
profileModule(const ir::Module &mod, const ProfileOptions &opts)
{
    isa::LoweringOptions lopts;
    lopts.applyFusion = false; // clean load/op/store sequences
    isa::MachineProgram prog =
        isa::lower(mod, isa::targetX86(), lopts);
    return profileWorkload(mod, prog, opts);
}

} // namespace bsyn::profile
