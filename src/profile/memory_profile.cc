#include "profile/memory_profile.hh"

#include "support/error.hh"

namespace bsyn::profile
{

int
missRateClass(double miss_rate)
{
    if (miss_rate < 0.0)
        miss_rate = 0.0;
    if (miss_rate > 1.0)
        miss_rate = 1.0;
    // Boundaries at 6.25%, 18.75%, ..., 93.75% (Table I).
    if (miss_rate < 0.0625)
        return 0;
    for (int c = 1; c <= 7; ++c) {
        double hi = 0.0625 + 0.125 * c;
        if (miss_rate < hi)
            return c;
    }
    return 8;
}

uint32_t
strideForClass(int miss_class)
{
    BSYN_ASSERT(miss_class >= 0 && miss_class < numMissClasses,
                "bad miss class %d", miss_class);
    return static_cast<uint32_t>(4 * miss_class);
}

double
missRateForClass(int miss_class)
{
    BSYN_ASSERT(miss_class >= 0 && miss_class < numMissClasses,
                "bad miss class %d", miss_class);
    if (miss_class == 0)
        return 0.0;
    if (miss_class == 8)
        return 1.0;
    return 0.125 * miss_class; // band centers: 12.5%, 25%, ...
}

} // namespace bsyn::profile
