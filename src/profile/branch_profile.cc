// BranchStats/BranchClassifier are header-only; this file exists so the
// module has a translation unit for future expansion.
#include "profile/branch_profile.hh"

namespace bsyn::profile
{
} // namespace bsyn::profile
