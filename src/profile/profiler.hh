/**
 * @file
 * The workload profiler (the paper's Pin role, §III-A): executes a
 * -O0-shaped program under instrumentation and produces the complete
 * StatisticalProfile — SFGL with loop annotations, branch taken and
 * transition rates, memory hit/miss classes, and the instruction mix.
 */

#ifndef BSYN_PROFILE_PROFILER_HH
#define BSYN_PROFILE_PROFILER_HH

#include "ir/module.hh"
#include "isa/machine_program.hh"
#include "profile/statistical_profile.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"

namespace bsyn::profile
{

/**
 * Which collection machinery drives the dynamic half of a profile.
 * Both produce byte-identical profiles (asserted by
 * tests/test_differential_profile.cc); the fused mode is ~an order of
 * magnitude faster and is the default everywhere.
 */
enum class ProfileEngine : uint8_t
{
    /** The instrumented dispatch mode of the predecoded engine:
     *  dense per-PC counters, no per-instruction virtual calls; the
     *  SFGL annotations are assembled from the counters plus the
     *  program's static structure. */
    Fused,
    /** The original ExecObserver-based profiler — the golden
     *  reference the differential suite compares against. Runs on the
     *  interpreter selected by limits.engine. */
    Observer,
};

/** Profiling parameters. */
struct ProfileOptions
{
    /** Cache simulated during profiling for hit/miss classification. */
    sim::CacheConfig profilingCache{8 * 1024, 32, 4};

    /** Easy/hard branch thresholds. */
    BranchClassifier branchClassifier;

    /** Interpreter limits. */
    sim::ExecLimits limits;

    /** Collection machinery. Selecting the reference decode-per-step
     *  interpreter via limits.engine implies the Observer profiler
     *  (the fused mode only exists inside the predecoded engine). */
    ProfileEngine engine = ProfileEngine::Fused;

    /** Slice checkpoint interval in retired instructions; the interval
     *  doubles whenever maxSliceCheckpoints checkpoints accumulate
     *  (sim::SliceOptions), so the effective slice length is derived
     *  from the run's total instruction count — no wall-clock input.
     *  0 disables slicing: the profile is single-phase. */
    uint64_t sliceBaseLength = 4096;

    /** Checkpoint budget before adjacent slice pairs coalesce. */
    uint32_t maxSliceCheckpoints = 64;

    /** Phase boundary threshold: adjacent slices merge into one phase
     *  while the L1 distance between their behaviour vectors (load /
     *  store / branch / fp / other mix fractions, miss rate, taken
     *  rate) stays within this value. Within-phase slice noise is
     *  typically < 0.01 and genuine mix shifts > 0.2, so the default
     *  sits an order of magnitude above the noise floor. */
    double phaseThreshold = 0.10;

    /** Minimum phase weight: a detected phase smaller than this
     *  fraction of the run merges into its nearer neighbour. Absorbs
     *  the transition slices that straddle a real boundary (their
     *  blended features otherwise surface as singleton phases). */
    double minPhaseFraction = 0.05;
};

/**
 * Profile a workload.
 *
 * @param mod the IR module compiled at the low optimization level
 *            (provides the CFG for loop detection).
 * @param prog the lowered program actually executed; must carry
 *             provenance to @p mod (same module, any target).
 * @param opts profiling parameters.
 * @return the complete statistical profile.
 */
StatisticalProfile profileWorkload(const ir::Module &mod,
                                   const isa::MachineProgram &prog,
                                   const ProfileOptions &opts = {});

/**
 * Convenience wrapper used throughout the evaluation: lower @p mod for
 * the profiling target (x86 with fusion disabled, so instruction
 * sequences have the clean load/op/store shape pattern recognition
 * expects) and profile it.
 */
StatisticalProfile profileModule(const ir::Module &mod,
                                 const ProfileOptions &opts = {});

} // namespace bsyn::profile

#endif // BSYN_PROFILE_PROFILER_HH
