/**
 * @file
 * The workload profiler (the paper's Pin role, §III-A): executes a
 * -O0-shaped program under instrumentation and produces the complete
 * StatisticalProfile — SFGL with loop annotations, branch taken and
 * transition rates, memory hit/miss classes, and the instruction mix.
 */

#ifndef BSYN_PROFILE_PROFILER_HH
#define BSYN_PROFILE_PROFILER_HH

#include "ir/module.hh"
#include "isa/machine_program.hh"
#include "profile/statistical_profile.hh"
#include "sim/cache.hh"
#include "sim/interpreter.hh"

namespace bsyn::profile
{

/** Profiling parameters. */
struct ProfileOptions
{
    /** Cache simulated during profiling for hit/miss classification. */
    sim::CacheConfig profilingCache{8 * 1024, 32, 4};

    /** Easy/hard branch thresholds. */
    BranchClassifier branchClassifier;

    /** Interpreter limits. */
    sim::ExecLimits limits;
};

/**
 * Profile a workload.
 *
 * @param mod the IR module compiled at the low optimization level
 *            (provides the CFG for loop detection).
 * @param prog the lowered program actually executed; must carry
 *             provenance to @p mod (same module, any target).
 * @param opts profiling parameters.
 * @return the complete statistical profile.
 */
StatisticalProfile profileWorkload(const ir::Module &mod,
                                   const isa::MachineProgram &prog,
                                   const ProfileOptions &opts = {});

/**
 * Convenience wrapper used throughout the evaluation: lower @p mod for
 * the profiling target (x86 with fusion disabled, so instruction
 * sequences have the clean load/op/store shape pattern recognition
 * expects) and profile it.
 */
StatisticalProfile profileModule(const ir::Module &mod,
                                 const ProfileOptions &opts = {});

} // namespace bsyn::profile

#endif // BSYN_PROFILE_PROFILER_HH
