/**
 * @file
 * Memory-access behaviour classification (the paper's Table I): every
 * static memory instruction gets a hit/miss ratio measured against a
 * cache simulated during profiling, and is binned into one of nine
 * classes; each class maps to the stride (in bytes) that reproduces the
 * class's miss rate on a 32-byte-line cache in the synthetic benchmark.
 */

#ifndef BSYN_PROFILE_MEMORY_PROFILE_HH
#define BSYN_PROFILE_MEMORY_PROFILE_HH

#include <cstdint>

namespace bsyn::profile
{

/** Number of miss-rate classes in Table I. */
constexpr int numMissClasses = 9;

/**
 * Bin a miss rate into the Table I class (0..8).
 * Class 0 covers [0, 6.25%), class k covers
 * [6.25 + 12.5(k-1), 6.25 + 12.5k) percent, class 8 covers
 * [93.75, 100].
 */
int missRateClass(double miss_rate);

/** The Table I stride (bytes) generating the class's miss rate,
 *  assuming a 32-byte cache line: stride = 4 * class. */
uint32_t strideForClass(int miss_class);

/** Center of the class's miss-rate band (class 0 -> 0, class 8 -> 1). */
double missRateForClass(int miss_class);

/** Per-static-instruction access counters. */
struct MemAccessStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }

    int missClass() const { return missRateClass(missRate()); }
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_MEMORY_PROFILE_HH
