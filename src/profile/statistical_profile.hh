/**
 * @file
 * The statistical profile: everything the synthesizer needs to generate
 * a clone, and nothing else. This is the artifact a company would ship
 * instead of its proprietary source (paper Fig 1) — hence it is
 * serializable and deliberately contains no code text, only statistics.
 */

#ifndef BSYN_PROFILE_STATISTICAL_PROFILE_HH
#define BSYN_PROFILE_STATISTICAL_PROFILE_HH

#include <string>

#include "profile/instr_mix.hh"
#include "profile/sfgl.hh"

namespace bsyn::profile
{

/**
 * One program phase: the same sub-profile shape as the aggregate
 * (SFGL + mix + branch + memory annotations), measured over one
 * contiguous run of retired-instruction slices. Single-phase profiles
 * carry exactly one phase that mirrors the aggregate.
 */
struct PhaseProfile
{
    uint64_t dynamicInstructions = 0;
    uint64_t firstSlice = 0; ///< index of the phase's first slice
    uint64_t sliceCount = 1; ///< slices merged into the phase
    InstrMix mix;
    Sfgl sfgl;

    Json toJson() const;
    static PhaseProfile fromJson(const Json &j);
};

/**
 * Complete workload profile (paper §III-A). Since v3 the profile is
 * time-sliced: in addition to the whole-run aggregate it carries an
 * ordered list of per-phase sub-profiles (adjacent slices merged by
 * behavioural similarity). v1/v2 JSON still loads — an old file
 * becomes a single-phase v3 whose one phase equals the aggregate.
 */
struct StatisticalProfile
{
    std::string workloadName;
    uint64_t dynamicInstructions = 0;
    InstrMix mix;
    Sfgl sfgl;

    /** Retired-instruction checkpoint interval of the slice stream the
     *  phases were detected on; 0 when profiled without slicing (or
     *  loaded from a pre-v3 file). */
    uint64_t sliceLength = 0;

    /** Slices the run was cut into (before phase merging). */
    uint64_t sliceCount = 0;

    /** Ordered phase list. Always non-empty after profiling or
     *  loading; phases[0] equals the aggregate when there is only
     *  one phase. */
    std::vector<PhaseProfile> phases;

    size_t phaseCount() const { return phases.empty() ? 1 : phases.size(); }
    bool multiPhase() const { return phases.size() > 1; }

    Json toJson() const;
    static StatisticalProfile fromJson(const Json &j);

    /** Serialize to / parse from a JSON document string. */
    std::string serialize() const;
    static StatisticalProfile deserialize(const std::string &text);

    /** File round-trip helpers. */
    void saveTo(const std::string &path) const;
    static StatisticalProfile loadFrom(const std::string &path);
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_STATISTICAL_PROFILE_HH
