/**
 * @file
 * The statistical profile: everything the synthesizer needs to generate
 * a clone, and nothing else. This is the artifact a company would ship
 * instead of its proprietary source (paper Fig 1) — hence it is
 * serializable and deliberately contains no code text, only statistics.
 */

#ifndef BSYN_PROFILE_STATISTICAL_PROFILE_HH
#define BSYN_PROFILE_STATISTICAL_PROFILE_HH

#include <string>

#include "profile/instr_mix.hh"
#include "profile/sfgl.hh"

namespace bsyn::profile
{

/** Complete workload profile (paper §III-A). */
struct StatisticalProfile
{
    std::string workloadName;
    uint64_t dynamicInstructions = 0;
    InstrMix mix;
    Sfgl sfgl;

    Json toJson() const;
    static StatisticalProfile fromJson(const Json &j);

    /** Serialize to / parse from a JSON document string. */
    std::string serialize() const;
    static StatisticalProfile deserialize(const std::string &text);

    /** File round-trip helpers. */
    void saveTo(const std::string &path) const;
    static StatisticalProfile loadFrom(const std::string &path);
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_STATISTICAL_PROFILE_HH
