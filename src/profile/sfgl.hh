/**
 * @file
 * The SFGL — Statistical Flow Graph with Loop annotation — the paper's
 * central profiling structure (§III-A.1, Fig 2). Nodes are basic blocks
 * annotated with execution counts and per-instruction type descriptors;
 * edges carry transition counts; natural loops are annotated with their
 * average iteration counts; conditional branches carry taken and
 * transition rates; memory instructions carry their hit/miss class.
 */

#ifndef BSYN_PROFILE_SFGL_HH
#define BSYN_PROFILE_SFGL_HH

#include <string>
#include <vector>

#include "isa/machine_program.hh"
#include "profile/branch_profile.hh"
#include "profile/memory_profile.hh"
#include "support/json.hh"

namespace bsyn::profile
{

/** Static description of one profiled machine instruction. */
struct InstrDescriptor
{
    ir::Opcode op = ir::Opcode::Nop;
    ir::Type type = ir::Type::I32;
    isa::MClass cls = isa::MClass::IntAlu;
    bool readsMem = false;
    bool writesMem = false;
    bool isControl = false; ///< CondBr/Jmp/Ret (not a body statement)
    int missClass = 0;      ///< Table I class for memory instructions

    /** Per-branch annotation (CondBr descriptors only): every CondBr
     *  in a block carries its own observed rates, so a block that
     *  lowers to more than one conditional branch loses nothing — the
     *  block-level rates summarize only the first executed one. */
    uint64_t branchExecutions = 0;
    double takenRate = 0.0;
    double transitionRate = 0.0;
};

/** A control-flow edge with its observed traversal count. */
struct SfglEdge
{
    int to = -1;
    uint64_t count = 0;
};

/** Terminator category of an SFGL block. */
enum class SfglTerm : uint8_t { Jump, Branch, Ret };

/** One SFGL node. */
struct SfglBlock
{
    int id = -1;
    int funcId = -1;
    int irBlockId = -1;
    uint64_t execCount = 0;
    std::vector<InstrDescriptor> code;
    std::vector<SfglEdge> succs;

    SfglTerm term = SfglTerm::Jump;
    double takenRate = 0.0;
    double transitionRate = 0.0;
    bool easyBranch = true;

    int loopId = -1; ///< innermost containing loop, or -1

    /** Number of non-control instructions. */
    size_t bodySize() const;
};

/** One annotated natural loop. */
struct SfglLoop
{
    int id = -1;
    int header = -1;          ///< SFGL block id
    std::vector<int> blocks;  ///< member SFGL block ids
    int parent = -1;
    int depth = 1;
    uint64_t entries = 0;     ///< times the loop was entered
    double avgIterations = 0; ///< header executions per entry
};

/** The complete statistical flow graph with loop annotation. */
struct Sfgl
{
    std::vector<SfglBlock> blocks;
    std::vector<SfglLoop> loops;
    std::vector<std::string> funcNames;

    /** Sum of (block exec count * body size): dynamic body instrs. */
    uint64_t dynamicBodyInstructions() const;

    /** Total dynamic instructions including control. */
    uint64_t dynamicInstructions() const;

    Json toJson() const;
    static Sfgl fromJson(const Json &j);
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_SFGL_HH
