#include "profile/sfgl.hh"

#include "support/error.hh"

namespace bsyn::profile
{

size_t
SfglBlock::bodySize() const
{
    size_t n = 0;
    for (const auto &d : code)
        if (!d.isControl)
            ++n;
    return n;
}

uint64_t
Sfgl::dynamicBodyInstructions() const
{
    uint64_t total = 0;
    for (const auto &b : blocks)
        total += b.execCount * b.bodySize();
    return total;
}

uint64_t
Sfgl::dynamicInstructions() const
{
    uint64_t total = 0;
    for (const auto &b : blocks)
        total += b.execCount * b.code.size();
    return total;
}

namespace
{

Json
descriptorToJson(const InstrDescriptor &d)
{
    Json j = Json::array();
    j.push(Json(static_cast<int>(d.op)));
    j.push(Json(static_cast<int>(d.type)));
    j.push(Json(static_cast<int>(d.cls)));
    int flags = (d.readsMem ? 1 : 0) | (d.writesMem ? 2 : 0) |
                (d.isControl ? 4 : 0);
    j.push(Json(flags));
    j.push(Json(d.missClass));
    j.push(Json(d.branchExecutions));
    j.push(Json(d.takenRate));
    j.push(Json(d.transitionRate));
    return j;
}

InstrDescriptor
descriptorFromJson(const Json &j)
{
    InstrDescriptor d;
    d.op = static_cast<ir::Opcode>(j.at(0).asInt());
    d.type = static_cast<ir::Type>(j.at(1).asInt());
    d.cls = static_cast<isa::MClass>(j.at(2).asInt());
    int flags = static_cast<int>(j.at(3).asInt());
    d.readsMem = flags & 1;
    d.writesMem = flags & 2;
    d.isControl = flags & 4;
    d.missClass = static_cast<int>(j.at(4).asInt());
    // Pre-v2 profiles (5-element descriptors) lack the per-branch
    // annotation; load them with the fields at their defaults.
    if (j.size() > 7) {
        d.branchExecutions = static_cast<uint64_t>(j.at(5).asNumber());
        d.takenRate = j.at(6).asNumber();
        d.transitionRate = j.at(7).asNumber();
    }
    return d;
}

} // namespace

Json
Sfgl::toJson() const
{
    Json root = Json::object();

    Json jblocks = Json::array();
    for (const auto &b : blocks) {
        Json jb = Json::object();
        jb.set("id", Json(b.id));
        jb.set("func", Json(b.funcId));
        jb.set("irBlock", Json(b.irBlockId));
        jb.set("exec", Json(b.execCount));
        Json code = Json::array();
        for (const auto &d : b.code)
            code.push(descriptorToJson(d));
        jb.set("code", std::move(code));
        Json succs = Json::array();
        for (const auto &e : b.succs) {
            Json je = Json::array();
            je.push(Json(e.to));
            je.push(Json(e.count));
            succs.push(std::move(je));
        }
        jb.set("succs", std::move(succs));
        jb.set("term", Json(static_cast<int>(b.term)));
        jb.set("takenRate", Json(b.takenRate));
        jb.set("transitionRate", Json(b.transitionRate));
        jb.set("easy", Json(b.easyBranch));
        jb.set("loop", Json(b.loopId));
        jblocks.push(std::move(jb));
    }
    root.set("blocks", std::move(jblocks));

    Json jloops = Json::array();
    for (const auto &l : loops) {
        Json jl = Json::object();
        jl.set("id", Json(l.id));
        jl.set("header", Json(l.header));
        Json mem = Json::array();
        for (int b : l.blocks)
            mem.push(Json(b));
        jl.set("blocks", std::move(mem));
        jl.set("parent", Json(l.parent));
        jl.set("depth", Json(l.depth));
        jl.set("entries", Json(l.entries));
        jl.set("avgIterations", Json(l.avgIterations));
        jloops.push(std::move(jl));
    }
    root.set("loops", std::move(jloops));

    Json names = Json::array();
    for (const auto &n : funcNames)
        names.push(Json(n));
    root.set("funcNames", std::move(names));
    return root;
}

Sfgl
Sfgl::fromJson(const Json &root)
{
    Sfgl g;
    const Json &jblocks = root.get("blocks");
    for (size_t i = 0; i < jblocks.size(); ++i) {
        const Json &jb = jblocks.at(i);
        SfglBlock b;
        b.id = static_cast<int>(jb.get("id").asInt());
        b.funcId = static_cast<int>(jb.get("func").asInt());
        b.irBlockId = static_cast<int>(jb.get("irBlock").asInt());
        b.execCount = static_cast<uint64_t>(jb.get("exec").asNumber());
        const Json &code = jb.get("code");
        for (size_t k = 0; k < code.size(); ++k)
            b.code.push_back(descriptorFromJson(code.at(k)));
        const Json &succs = jb.get("succs");
        for (size_t k = 0; k < succs.size(); ++k) {
            SfglEdge e;
            e.to = static_cast<int>(succs.at(k).at(0).asInt());
            e.count =
                static_cast<uint64_t>(succs.at(k).at(1).asNumber());
            b.succs.push_back(e);
        }
        b.term = static_cast<SfglTerm>(jb.get("term").asInt());
        b.takenRate = jb.get("takenRate").asNumber();
        b.transitionRate = jb.get("transitionRate").asNumber();
        b.easyBranch = jb.get("easy").asBool();
        b.loopId = static_cast<int>(jb.get("loop").asInt());
        g.blocks.push_back(std::move(b));
    }
    const Json &jloops = root.get("loops");
    for (size_t i = 0; i < jloops.size(); ++i) {
        const Json &jl = jloops.at(i);
        SfglLoop l;
        l.id = static_cast<int>(jl.get("id").asInt());
        l.header = static_cast<int>(jl.get("header").asInt());
        const Json &mem = jl.get("blocks");
        for (size_t k = 0; k < mem.size(); ++k)
            l.blocks.push_back(static_cast<int>(mem.at(k).asInt()));
        l.parent = static_cast<int>(jl.get("parent").asInt());
        l.depth = static_cast<int>(jl.get("depth").asInt());
        l.entries = static_cast<uint64_t>(jl.get("entries").asNumber());
        l.avgIterations = jl.get("avgIterations").asNumber();
        g.loops.push_back(std::move(l));
    }
    const Json &names = root.get("funcNames");
    for (size_t i = 0; i < names.size(); ++i)
        g.funcNames.push_back(names.at(i).asString());
    return g;
}

} // namespace bsyn::profile
