/**
 * @file
 * Branch behaviour profiling: per-branch taken rate and transition rate
 * (how often the outcome flips between taken and not-taken, after
 * Huang/Sallee/Farrens [12]). The paper classifies branches as easy
 * (very low or very high transition rate) or hard (medium), and models
 * them differently in the synthetic benchmark.
 */

#ifndef BSYN_PROFILE_BRANCH_PROFILE_HH
#define BSYN_PROFILE_BRANCH_PROFILE_HH

#include <cstdint>

namespace bsyn::profile
{

/** Per-static-branch outcome counters. */
struct BranchStats
{
    uint64_t executions = 0;
    uint64_t taken = 0;
    uint64_t transitions = 0;
    bool lastOutcome = false;
    bool hasLast = false;

    /** Record one resolved outcome. */
    void
    record(bool was_taken)
    {
        ++executions;
        if (was_taken)
            ++taken;
        if (hasLast && was_taken != lastOutcome)
            ++transitions;
        lastOutcome = was_taken;
        hasLast = true;
    }

    double
    takenRate() const
    {
        return executions ? double(taken) / double(executions) : 0.0;
    }

    double
    transitionRate() const
    {
        return executions > 1
                   ? double(transitions) / double(executions - 1)
                   : 0.0;
    }
};

/** Thresholds splitting easy and hard branches. */
struct BranchClassifier
{
    double lowThreshold = 0.1;  ///< <= low  -> easy (sticky outcome)
    double highThreshold = 0.9; ///< >= high -> easy (alternating)

    bool
    isEasy(double transition_rate) const
    {
        return transition_rate <= lowThreshold ||
               transition_rate >= highThreshold;
    }
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_BRANCH_PROFILE_HH
