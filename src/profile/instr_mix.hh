/**
 * @file
 * Dynamic instruction-mix accounting. The paper's Figure 6 reports the
 * four-way split (loads / stores / branches / others); we also keep the
 * full per-class histogram for finer validation.
 */

#ifndef BSYN_PROFILE_INSTR_MIX_HH
#define BSYN_PROFILE_INSTR_MIX_HH

#include <array>
#include <cstdint>

#include "isa/machine_program.hh"
#include "support/json.hh"

namespace bsyn::profile
{

/** Dynamic histogram over isa::MClass. */
class InstrMix
{
  public:
    static constexpr size_t numClasses =
        static_cast<size_t>(isa::MClass::Other) + 1;

    void
    add(isa::MClass cls, uint64_t n = 1)
    {
        counts[static_cast<size_t>(cls)] += n;
    }

    uint64_t count(isa::MClass cls) const
    {
        return counts[static_cast<size_t>(cls)];
    }

    uint64_t total() const;

    double fraction(isa::MClass cls) const;

    /** The paper's Figure 6 categories. */
    double loadFraction() const;
    double storeFraction() const;
    double branchFraction() const; ///< conditional + unconditional
    double otherFraction() const;

    /** Fraction of floating-point operations (drives fft's CPI). */
    double fpFraction() const;

    void merge(const InstrMix &other);

    Json toJson() const;
    static InstrMix fromJson(const Json &j);

  private:
    std::array<uint64_t, numClasses> counts{};
};

} // namespace bsyn::profile

#endif // BSYN_PROFILE_INSTR_MIX_HH
