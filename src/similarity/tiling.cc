#include "similarity/tiling.hh"

#include <algorithm>

#include "similarity/ctokenizer.hh"

namespace bsyn::similarity
{

TilingResult
greedyStringTiling(const std::vector<uint16_t> &a,
                   const std::vector<uint16_t> &b,
                   const TilingOptions &opts)
{
    TilingResult result;
    result.tokensA = a.size();
    result.tokensB = b.size();

    std::vector<bool> marked_a(a.size(), false);
    std::vector<bool> marked_b(b.size(), false);

    size_t min_len = static_cast<size_t>(std::max(
        opts.minimumMatchLength, 1));

    for (;;) {
        size_t max_match = min_len - 1;
        std::vector<std::pair<size_t, size_t>> matches; // (posA, posB)

        for (size_t i = 0; i < a.size(); ++i) {
            if (marked_a[i])
                continue;
            for (size_t j = 0; j < b.size(); ++j) {
                if (marked_b[j])
                    continue;
                size_t k = 0;
                while (i + k < a.size() && j + k < b.size() &&
                       !marked_a[i + k] && !marked_b[j + k] &&
                       a[i + k] == b[j + k])
                    ++k;
                if (k > max_match) {
                    max_match = k;
                    matches.clear();
                    matches.emplace_back(i, j);
                } else if (k == max_match && k >= min_len) {
                    matches.emplace_back(i, j);
                }
            }
        }

        if (max_match < min_len)
            break;
        for (const auto &[i, j] : matches) {
            // Skip if an earlier tile in this round already claimed any
            // token of this candidate.
            bool free = true;
            for (size_t k = 0; k < max_match && free; ++k)
                if (marked_a[i + k] || marked_b[j + k])
                    free = false;
            if (!free)
                continue;
            for (size_t k = 0; k < max_match; ++k) {
                marked_a[i + k] = true;
                marked_b[j + k] = true;
            }
            result.matched += max_match;
        }
    }
    return result;
}

double
tilingSimilarity(const std::string &source_a, const std::string &source_b,
                 const TilingOptions &opts)
{
    auto ta = tokenizeC(source_a);
    auto tb = tokenizeC(source_b);
    if (ta.empty() || tb.empty())
        return source_a == source_b ? 1.0 : 0.0;
    return greedyStringTiling(ta, tb, opts).similarity();
}

} // namespace bsyn::similarity
