#include "similarity/winnowing.hh"

#include <algorithm>

#include "similarity/ctokenizer.hh"

namespace bsyn::similarity
{

namespace
{

/** Rolling-friendly hash of one k-gram. */
uint64_t
hashKgram(const std::vector<uint16_t> &toks, size_t start, int k)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < k; ++i) {
        h ^= toks[start + static_cast<size_t>(i)];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

std::set<uint64_t>
winnowFingerprints(const std::vector<uint16_t> &tokens,
                   const WinnowOptions &opts)
{
    std::set<uint64_t> prints;
    if (tokens.size() < static_cast<size_t>(opts.k))
        return prints;

    size_t num_grams = tokens.size() - static_cast<size_t>(opts.k) + 1;
    std::vector<uint64_t> hashes(num_grams);
    for (size_t i = 0; i < num_grams; ++i)
        hashes[i] = hashKgram(tokens, i, opts.k);

    size_t w = static_cast<size_t>(std::max(opts.window, 1));
    if (num_grams <= w) {
        prints.insert(*std::min_element(hashes.begin(), hashes.end()));
        return prints;
    }
    // Classic winnowing: record the rightmost minimal hash per window.
    size_t min_idx = 0;
    for (size_t right = 0; right + 1 < w; ++right)
        if (hashes[right] <= hashes[min_idx])
            min_idx = right;
    for (size_t right = w - 1; right < num_grams; ++right) {
        size_t left = right + 1 - w;
        if (min_idx < left) {
            min_idx = left;
            for (size_t i = left + 1; i <= right; ++i)
                if (hashes[i] <= hashes[min_idx])
                    min_idx = i;
        } else if (hashes[right] <= hashes[min_idx]) {
            min_idx = right;
        }
        prints.insert(hashes[min_idx]);
    }
    return prints;
}

double
winnowSimilarity(const std::string &source_a, const std::string &source_b,
                 const WinnowOptions &opts)
{
    auto fa = winnowFingerprints(tokenizeC(source_a), opts);
    auto fb = winnowFingerprints(tokenizeC(source_b), opts);
    if (fa.empty() || fb.empty())
        return source_a == source_b ? 1.0 : 0.0;
    size_t common = 0;
    for (uint64_t h : fa)
        if (fb.count(h))
            ++common;
    return double(common) / double(std::min(fa.size(), fb.size()));
}

} // namespace bsyn::similarity
