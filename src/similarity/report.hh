/**
 * @file
 * Combined obfuscation report: runs both detectors (winnowing/Moss and
 * greedy string tiling/JPlag) over an (original, clone) source pair —
 * the paper's §V-E evaluation.
 */

#ifndef BSYN_SIMILARITY_REPORT_HH
#define BSYN_SIMILARITY_REPORT_HH

#include <string>

namespace bsyn::similarity
{

/** Verdict of both detectors. */
struct SimilarityReport
{
    double winnow = 0.0; ///< Moss-style fingerprint containment
    double tiling = 0.0; ///< JPlag-style token coverage

    /** The paper's pass criterion: no meaningful similarity. */
    bool
    hidesProprietaryInformation(double threshold = 0.25) const
    {
        return winnow < threshold && tiling < threshold;
    }
};

/** Run both detectors on a source pair. */
SimilarityReport compareSources(const std::string &original,
                                const std::string &clone);

} // namespace bsyn::similarity

#endif // BSYN_SIMILARITY_REPORT_HH
