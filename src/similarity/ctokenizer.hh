/**
 * @file
 * C-aware token normalization for plagiarism detection. Both detectors
 * (winnowing/Moss and greedy string tiling/JPlag) work on a normalized
 * token stream where identifiers and literals are canonicalized, so
 * renaming variables cannot hide copied structure — which is exactly
 * why passing the paper's obfuscation test is meaningful.
 */

#ifndef BSYN_SIMILARITY_CTOKENIZER_HH
#define BSYN_SIMILARITY_CTOKENIZER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bsyn::similarity
{

/** Normalized token ids. */
enum class CTok : uint8_t
{
    Ident,   ///< any identifier (canonicalized)
    Number,  ///< any numeric literal
    String,  ///< any string literal
    Keyword, ///< base value; keyword index is added on top
    Punct = 128, ///< base value; punctuation index is added on top
};

/**
 * Tokenize C source into a normalized stream: identifiers become one
 * symbol, numbers another, keywords and punctuation keep their identity.
 * Comments and whitespace vanish.
 */
std::vector<uint16_t> tokenizeC(const std::string &source);

} // namespace bsyn::similarity

#endif // BSYN_SIMILARITY_CTOKENIZER_HH
