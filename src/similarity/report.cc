#include "similarity/report.hh"

#include "similarity/tiling.hh"
#include "similarity/winnowing.hh"

namespace bsyn::similarity
{

SimilarityReport
compareSources(const std::string &original, const std::string &clone)
{
    SimilarityReport r;
    r.winnow = winnowSimilarity(original, clone);
    r.tiling = tilingSimilarity(original, clone);
    return r;
}

} // namespace bsyn::similarity
