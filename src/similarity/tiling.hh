/**
 * @file
 * Greedy String Tiling with the Running-Karp-Rabin speedup — the
 * structural-similarity algorithm behind JPlag (Prechelt/Malpohl/
 * Philippsen). Finds maximal non-overlapping matching tile pairs between
 * two token streams; similarity is the fraction of tokens covered.
 */

#ifndef BSYN_SIMILARITY_TILING_HH
#define BSYN_SIMILARITY_TILING_HH

#include <string>
#include <vector>

namespace bsyn::similarity
{

/** GST parameters. */
struct TilingOptions
{
    int minimumMatchLength = 9; ///< JPlag's default for C-like code
};

/** Coverage result. */
struct TilingResult
{
    size_t tokensA = 0;
    size_t tokensB = 0;
    size_t matched = 0; ///< tokens covered by tiles (per side)

    /** JPlag similarity: 2*matched / (|A| + |B|). */
    double
    similarity() const
    {
        size_t denom = tokensA + tokensB;
        return denom ? 2.0 * double(matched) / double(denom) : 1.0;
    }
};

/** Run greedy string tiling over two normalized token streams. */
TilingResult greedyStringTiling(const std::vector<uint16_t> &a,
                                const std::vector<uint16_t> &b,
                                const TilingOptions &opts = {});

/** JPlag-style similarity of two C sources in [0, 1]. */
double tilingSimilarity(const std::string &source_a,
                        const std::string &source_b,
                        const TilingOptions &opts = {});

} // namespace bsyn::similarity

#endif // BSYN_SIMILARITY_TILING_HH
