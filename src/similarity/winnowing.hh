/**
 * @file
 * Winnowing document fingerprinting — the algorithm behind Moss
 * (Schleimer, Wilkerson, Aiken, SIGMOD 2003). K-grams of the normalized
 * token stream are hashed; a sliding window keeps the minimal hash per
 * window; the retained fingerprints are compared with set overlap.
 */

#ifndef BSYN_SIMILARITY_WINNOWING_HH
#define BSYN_SIMILARITY_WINNOWING_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace bsyn::similarity
{

/** Winnowing parameters (Moss defaults are in this neighbourhood). */
struct WinnowOptions
{
    int k = 12;      ///< k-gram length (tokens)
    int window = 8;  ///< winnowing window size
};

/** Fingerprint set of one document. */
std::set<uint64_t> winnowFingerprints(const std::vector<uint16_t> &tokens,
                                      const WinnowOptions &opts = {});

/**
 * Moss-style similarity of two C sources in [0, 1]: fingerprint-set
 * containment (size of the intersection over the smaller set).
 */
double winnowSimilarity(const std::string &source_a,
                        const std::string &source_b,
                        const WinnowOptions &opts = {});

} // namespace bsyn::similarity

#endif // BSYN_SIMILARITY_WINNOWING_HH
