#include "similarity/ctokenizer.hh"

#include <cctype>
#include <map>

namespace bsyn::similarity
{

namespace
{

const std::map<std::string, uint16_t> &
keywordIds()
{
    static const std::map<std::string, uint16_t> ids = [] {
        std::map<std::string, uint16_t> m;
        uint16_t next = static_cast<uint16_t>(CTok::Keyword) + 1;
        for (const char *kw :
             {"int", "unsigned", "long", "short", "char", "double",
              "float", "void", "if", "else", "for", "while", "do",
              "return", "break", "continue", "switch", "case", "default",
              "struct", "union", "enum", "typedef", "static", "const",
              "sizeof", "goto", "extern", "volatile", "register",
              "signed", "auto"}) {
            m[kw] = next++;
        }
        return m;
    }();
    return ids;
}

const std::map<std::string, uint16_t> &
punctIds()
{
    static const std::map<std::string, uint16_t> ids = [] {
        std::map<std::string, uint16_t> m;
        uint16_t next = static_cast<uint16_t>(CTok::Punct) + 1;
        for (const char *p :
             {"(", ")", "{", "}", "[", "]", ";", ",", ".", "->", "++",
              "--", "+", "-", "*", "/", "%", "<<", ">>", "<", ">", "<=",
              ">=", "==", "!=", "&&", "||", "!", "&", "|", "^", "~", "=",
              "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>=", "?", ":", "#"}) {
            m[p] = next++;
        }
        return m;
    }();
    return ids;
}

} // namespace

std::vector<uint16_t>
tokenizeC(const std::string &src)
{
    std::vector<uint16_t> out;
    size_t i = 0;
    size_t n = src.size();
    auto uc = [](char c) { return static_cast<unsigned char>(c); };

    while (i < n) {
        char c = src[i];
        if (std::isspace(uc(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/'))
                ++i;
            i = i + 2 <= n ? i + 2 : n;
            continue;
        }
        // Preprocessor lines: normalize to '#' and skip the rest.
        if (c == '#') {
            out.push_back(punctIds().at("#"));
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        // Identifiers / keywords.
        if (std::isalpha(uc(c)) || c == '_') {
            std::string word;
            while (i < n && (std::isalnum(uc(src[i])) || src[i] == '_'))
                word += src[i++];
            auto it = keywordIds().find(word);
            if (it != keywordIds().end())
                out.push_back(it->second);
            else
                out.push_back(static_cast<uint16_t>(CTok::Ident));
            continue;
        }
        // Numbers (incl. hex and floats).
        if (std::isdigit(uc(c)) ||
            (c == '.' && i + 1 < n && std::isdigit(uc(src[i + 1])))) {
            while (i < n &&
                   (std::isalnum(uc(src[i])) || src[i] == '.' ||
                    ((src[i] == '+' || src[i] == '-') && i > 0 &&
                     (src[i - 1] == 'e' || src[i - 1] == 'E'))))
                ++i;
            out.push_back(static_cast<uint16_t>(CTok::Number));
            continue;
        }
        // Strings / chars.
        if (c == '"' || c == '\'') {
            char quote = c;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\')
                    ++i;
                ++i;
            }
            ++i;
            out.push_back(static_cast<uint16_t>(CTok::String));
            continue;
        }
        // Punctuation (longest match first).
        const auto &punct = punctIds();
        bool matched = false;
        for (int len = 3; len >= 1 && !matched; --len) {
            if (i + static_cast<size_t>(len) > n)
                continue;
            auto it = punct.find(src.substr(i, static_cast<size_t>(len)));
            if (it != punct.end()) {
                out.push_back(it->second);
                i += static_cast<size_t>(len);
                matched = true;
            }
        }
        if (!matched)
            ++i; // unknown byte: drop
    }
    return out;
}

} // namespace bsyn::similarity
