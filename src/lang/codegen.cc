#include "lang/codegen.hh"

#include <cstring>

#include "ir/verifier.hh"
#include "support/error.hh"

namespace bsyn::lang
{

using ir::Instruction;
using ir::MemRef;
using ir::Opcode;
using ir::Terminator;

namespace
{

/** Bit pattern of a double for global initializers. */
uint64_t
doubleBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

class Codegen
{
  public:
    Codegen(const TranslationUnit &tu, const SemaInfo &sema)
        : unit(tu), info(sema)
    {}

    ir::Module
    run()
    {
        mod.name = unit.name;
        emitGlobals();
        // Declare all functions first so calls can reference them.
        for (const FuncDecl &f : unit.functions) {
            ir::Function fn;
            fn.name = f.name;
            fn.retType = f.retType;
            for (const ParamDecl &p : f.params)
                fn.paramTypes.push_back(p.type);
            mod.functions.push_back(std::move(fn));
        }
        for (size_t i = 0; i < unit.functions.size(); ++i)
            emitFunction(unit.functions[i],
                         info.functions[i],
                         mod.functions[i]);
        ir::verifyOrDie(mod);
        return std::move(mod);
    }

  private:
    // --- Globals --------------------------------------------------------

    void
    emitGlobals()
    {
        for (const GlobalDecl &g : unit.globals) {
            ir::Global ig;
            ig.name = g.name;
            ig.elemType = g.elemType;
            ig.elems = g.elems;
            if (!g.init.empty()) {
                ig.init.resize(g.elems, 0);
                for (size_t i = 0; i < g.init.size(); ++i)
                    ig.init[i] = literalBits(*g.init[i], g.elemType);
            }
            mod.addGlobal(std::move(ig));
        }
    }

    uint64_t
    literalBits(const Expr &e, Type target)
    {
        int64_t iv = 0;
        double fv = 0.0;
        bool is_float = false;
        if (e.kind == Expr::Kind::IntLit) {
            iv = static_cast<const IntLitExpr &>(e).value;
        } else if (e.kind == Expr::Kind::FloatLit) {
            fv = static_cast<const FloatLitExpr &>(e).value;
            is_float = true;
        } else if (e.kind == Expr::Kind::Unary) {
            const auto &u = static_cast<const UnaryExpr &>(e);
            BSYN_ASSERT(u.op == UnOp::Neg &&
                            u.operand->kind == Expr::Kind::IntLit,
                        "unsupported global initializer");
            iv = -static_cast<const IntLitExpr &>(*u.operand).value;
        } else {
            panic("unsupported global initializer expression");
        }
        if (target == Type::F64)
            return doubleBits(is_float ? fv : double(iv));
        int64_t v = is_float ? static_cast<int64_t>(fv) : iv;
        return static_cast<uint32_t>(v);
    }

    // --- Function emission ----------------------------------------------

    void
    emitFunction(const FuncDecl &f, const FunctionLocals &locals,
                 ir::Function &fn)
    {
        cur = &fn;
        curLocals = &locals;
        localOffsets.assign(locals.locals.size(), 0);

        // Frame layout: params first, then locals, declaration order.
        for (size_t i = 0; i < locals.locals.size(); ++i) {
            const LocalVar &lv = locals.locals[i];
            localOffsets[i] = fn.allocSlot(
                lv.name, lv.type, static_cast<uint32_t>(lv.elems));
        }

        curBlock = fn.newBlock();
        // Parameters arrive in regs 0..n-1; spill them to their slots
        // (the -O0 shape; mem2reg undoes this at -O1).
        fn.numRegs = static_cast<uint32_t>(f.params.size());
        for (size_t i = 0; i < f.params.size(); ++i) {
            MemRef slot = localSlot(static_cast<int>(i));
            emit(Instruction::store(static_cast<int>(i), slot,
                                    locals.locals[i].type));
        }

        breakTargets.clear();
        continueTargets.clear();
        genStmt(*f.body);
        finishWithImplicitReturn();

        cur = nullptr;
        curLocals = nullptr;
    }

    void
    finishWithImplicitReturn()
    {
        // Seal the fall-off-the-end block, plus any dead blocks created
        // after break/continue/return, with a return.
        for (auto &bb : cur->blocks) {
            if (bb.term.kind != Terminator::Kind::None)
                continue;
            if (cur->retType == Type::Void) {
                bb.term = Terminator::ret();
            } else {
                int zero = cur->newReg();
                bb.append(Instruction::movImm(
                    zero, 0,
                    cur->retType == Type::F64 ? Type::F64 : cur->retType));
                bb.term = Terminator::ret(zero);
            }
        }
    }

    // --- Helpers ----------------------------------------------------------

    void
    emit(Instruction in)
    {
        cur->block(curBlock).append(std::move(in));
    }

    /** Terminate the current block and switch to @p next. */
    void
    setTerm(Terminator t, int next)
    {
        ir::BasicBlock &bb = cur->block(curBlock);
        if (bb.term.kind == Terminator::Kind::None)
            bb.term = t;
        curBlock = next;
    }

    bool
    blockTerminated() const
    {
        return cur->block(curBlock).term.kind != Terminator::Kind::None;
    }

    MemRef
    localSlot(int local_id) const
    {
        MemRef m;
        m.symbol = MemRef::frameBase;
        m.offset = static_cast<int32_t>(
            localOffsets[static_cast<size_t>(local_id)]);
        return m;
    }

    MemRef
    globalSlot(int sym) const
    {
        MemRef m;
        m.symbol = sym;
        return m;
    }

    /** Convert @p reg from @p from to @p to; may emit a conversion. */
    int
    coerce(int reg, Type from, Type to)
    {
        if (from == to)
            return reg;
        if (ir::isIntType(from) && ir::isIntType(to))
            return reg; // same 32-bit representation
        int dst = cur->newReg();
        if (to == Type::F64) {
            Instruction cv =
                Instruction::unary(Opcode::CvtIF, from, dst, reg);
            emit(cv);
        } else {
            Instruction cv = Instruction::unary(Opcode::CvtFI, to, dst, reg);
            emit(cv);
        }
        return dst;
    }

    // --- L-values ----------------------------------------------------------

    struct LValue
    {
        MemRef mem;
        Type type = Type::I32;
    };

    LValue
    genLValue(const Expr &e)
    {
        LValue lv;
        if (e.kind == Expr::Kind::Ident) {
            const auto &id = static_cast<const IdentExpr &>(e);
            lv.type = id.sym.type;
            if (id.sym.kind == SymbolRef::Kind::Local)
                lv.mem = localSlot(id.sym.index);
            else
                lv.mem = globalSlot(id.sym.index);
            return lv;
        }
        BSYN_ASSERT(e.kind == Expr::Kind::Index, "bad lvalue kind");
        const auto &ix = static_cast<const IndexExpr &>(e);
        lv.type = ix.sym.type;
        auto [ireg, itype] = genExpr(*ix.index);
        ireg = coerce(ireg, itype, Type::I32);
        if (ix.sym.kind == SymbolRef::Kind::Local)
            lv.mem = localSlot(ix.sym.index);
        else
            lv.mem = globalSlot(ix.sym.index);
        lv.mem.indexReg = ireg;
        lv.mem.scale = static_cast<int32_t>(ir::typeSize(lv.type));
        return lv;
    }

    int
    loadLValue(const LValue &lv)
    {
        int dst = cur->newReg();
        emit(Instruction::load(dst, lv.mem, lv.type));
        return dst;
    }

    // --- Expressions -------------------------------------------------------

    /** Generate an expression; @return (register, type). */
    std::pair<int, Type>
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit: {
            int r = cur->newReg();
            emit(Instruction::movImm(
                r, static_cast<const IntLitExpr &>(e).value, Type::I32));
            return {r, Type::I32};
          }
          case Expr::Kind::FloatLit: {
            int r = cur->newReg();
            emit(Instruction::movFImm(
                r, static_cast<const FloatLitExpr &>(e).value));
            return {r, Type::F64};
          }
          case Expr::Kind::StrLit:
            panic("string literal outside printf survived sema");
          case Expr::Kind::Ident:
          case Expr::Kind::Index: {
            LValue lv = genLValue(e);
            return {loadLValue(lv), lv.type};
          }
          case Expr::Kind::Unary:
            return genUnary(static_cast<const UnaryExpr &>(e));
          case Expr::Kind::Binary:
            return genBinary(static_cast<const BinaryExpr &>(e));
          case Expr::Kind::Assign:
            return genAssign(static_cast<const AssignExpr &>(e));
          case Expr::Kind::IncDec:
            return genIncDec(static_cast<const IncDecExpr &>(e));
          case Expr::Kind::Call:
            return genCall(static_cast<const CallExpr &>(e));
          case Expr::Kind::Cond:
            return genCond(static_cast<const CondExpr &>(e));
        }
        panic("genExpr: bad expression kind");
    }

    std::pair<int, Type>
    genUnary(const UnaryExpr &u)
    {
        if (u.op == UnOp::LogNot) {
            auto [r, t] = genExpr(*u.operand);
            int zero = cur->newReg();
            if (t == Type::F64)
                emit(Instruction::movFImm(zero, 0.0));
            else
                emit(Instruction::movImm(zero, 0, t));
            int dst = cur->newReg();
            emit(Instruction::binary(Opcode::CmpEq, t, dst, r, zero));
            return {dst, Type::I32};
        }
        auto [r, t] = genExpr(*u.operand);
        switch (u.op) {
          case UnOp::Neg: {
            int dst = cur->newReg();
            emit(Instruction::unary(
                t == Type::F64 ? Opcode::FNeg : Opcode::Neg, t, dst, r));
            return {dst, t};
          }
          case UnOp::BitNot: {
            int dst = cur->newReg();
            emit(Instruction::unary(Opcode::Not, t, dst, r));
            return {dst, t};
          }
          case UnOp::Cast:
            return {coerce(r, t, u.castType), u.castType};
          default:
            panic("genUnary: bad op");
        }
    }

    Opcode
    aluOpcode(BinOp op, Type t, bool &swap)
    {
        swap = false;
        bool fp = t == Type::F64;
        switch (op) {
          case BinOp::Add: return fp ? Opcode::FAdd : Opcode::Add;
          case BinOp::Sub: return fp ? Opcode::FSub : Opcode::Sub;
          case BinOp::Mul: return fp ? Opcode::FMul : Opcode::Mul;
          case BinOp::Div: return fp ? Opcode::FDiv : Opcode::Div;
          case BinOp::Rem: return Opcode::Rem;
          case BinOp::And: return Opcode::And;
          case BinOp::Or: return Opcode::Or;
          case BinOp::Xor: return Opcode::Xor;
          case BinOp::Shl: return Opcode::Shl;
          case BinOp::Shr: return Opcode::Shr;
          case BinOp::Lt: return Opcode::CmpLt;
          case BinOp::Le: return Opcode::CmpLe;
          case BinOp::Gt: return Opcode::CmpGt;
          case BinOp::Ge: return Opcode::CmpGe;
          case BinOp::Eq: return Opcode::CmpEq;
          case BinOp::Ne: return Opcode::CmpNe;
          default: panic("aluOpcode: not an ALU op");
        }
    }

    std::pair<int, Type>
    genBinary(const BinaryExpr &b)
    {
        if (b.op == BinOp::LAnd || b.op == BinOp::LOr)
            return genShortCircuit(b);

        auto [lr, lt] = genExpr(*b.lhs);
        auto [rr, rt] = genExpr(*b.rhs);

        Type opType;
        if (b.op == BinOp::Shl || b.op == BinOp::Shr) {
            opType = lt;
        } else {
            opType = lt == Type::F64 || rt == Type::F64
                         ? Type::F64
                         : (lt == Type::U32 || rt == Type::U32 ? Type::U32
                                                               : Type::I32);
        }
        lr = coerce(lr, lt, opType);
        if (b.op != BinOp::Shl && b.op != BinOp::Shr)
            rr = coerce(rr, rt, opType);

        bool swap;
        Opcode op = aluOpcode(b.op, opType, swap);
        int dst = cur->newReg();
        emit(Instruction::binary(op, opType, dst, lr, rr));
        Type result = ir::isCompare(op) ? Type::I32 : opType;
        return {dst, result};
    }

    std::pair<int, Type>
    genShortCircuit(const BinaryExpr &b)
    {
        // r = (a && b):  r=0; if (a) r = (b != 0);
        // r = (a || b):  r=1; if (!a) r = (b != 0);
        int result = cur->newReg();
        bool is_and = b.op == BinOp::LAnd;
        emit(Instruction::movImm(result, is_and ? 0 : 1, Type::I32));

        auto [ar, at] = genExpr(*b.lhs);
        int acond = toBool(ar, at);

        int rhs_bb = cur->newBlock();
        int end_bb = cur->newBlock();
        if (is_and)
            setTerm(Terminator::br(acond, rhs_bb, end_bb), rhs_bb);
        else
            setTerm(Terminator::br(acond, end_bb, rhs_bb), rhs_bb);

        auto [br_, bt] = genExpr(*b.rhs);
        int bbool = toBool(br_, bt);
        emit(Instruction::mov(result, bbool, Type::I32));
        setTerm(Terminator::jmp(end_bb), end_bb);
        return {result, Type::I32};
    }

    /** Normalize a value to 0/1. */
    int
    toBool(int reg, Type t)
    {
        int zero = cur->newReg();
        if (t == Type::F64)
            emit(Instruction::movFImm(zero, 0.0));
        else
            emit(Instruction::movImm(zero, 0, t));
        int dst = cur->newReg();
        emit(Instruction::binary(Opcode::CmpNe, t, dst, reg, zero));
        return dst;
    }

    std::pair<int, Type>
    genAssign(const AssignExpr &a)
    {
        LValue lv = genLValue(*a.target);
        int value;
        if (a.compound) {
            int old = loadLValue(lv);
            auto [rr, rt] = genExpr(*a.value);
            Type opType;
            if (a.op == BinOp::Shl || a.op == BinOp::Shr) {
                opType = lv.type;
            } else {
                opType = lv.type == Type::F64 || rt == Type::F64
                             ? Type::F64
                             : (lv.type == Type::U32 || rt == Type::U32
                                    ? Type::U32
                                    : Type::I32);
            }
            int l = coerce(old, lv.type, opType);
            int r = a.op == BinOp::Shl || a.op == BinOp::Shr
                        ? coerce(rr, rt, Type::I32)
                        : coerce(rr, rt, opType);
            bool swap;
            Opcode op = aluOpcode(a.op, opType, swap);
            int dst = cur->newReg();
            emit(Instruction::binary(op, opType, dst, l, r));
            value = coerce(dst, opType, lv.type);
        } else {
            auto [vr, vt] = genExpr(*a.value);
            value = coerce(vr, vt, lv.type);
        }
        emit(Instruction::store(value, lv.mem, lv.type));
        return {value, lv.type};
    }

    std::pair<int, Type>
    genIncDec(const IncDecExpr &d)
    {
        LValue lv = genLValue(*d.target);
        int old = loadLValue(lv);
        int one = cur->newReg();
        emit(Instruction::movImm(one, 1, lv.type));
        int updated = cur->newReg();
        emit(Instruction::binary(d.isIncrement ? Opcode::Add : Opcode::Sub,
                                 lv.type, updated, old, one));
        emit(Instruction::store(updated, lv.mem, lv.type));
        return {d.isPostfix ? old : updated, lv.type};
    }

    std::pair<int, Type>
    genCall(const CallExpr &c)
    {
        if (c.isPrintf)
            return genPrintf(c);

        const FuncDecl &callee =
            unit.functions[static_cast<size_t>(c.sym.index)];
        std::vector<int> args;
        for (size_t i = 0; i < c.args.size(); ++i) {
            auto [r, t] = genExpr(*c.args[i]);
            args.push_back(coerce(r, t, callee.params[i].type));
        }
        int dst = callee.retType == Type::Void ? -1 : cur->newReg();
        emit(Instruction::call(dst, c.sym.index, std::move(args),
                               callee.retType));
        return {dst, callee.retType};
    }

    std::pair<int, Type>
    genPrintf(const CallExpr &c)
    {
        // Determine per-argument expected type from the format string.
        std::vector<bool> wants_double;
        const std::string &f = c.format;
        for (size_t i = 0; i + 1 < f.size(); ++i) {
            if (f[i] != '%')
                continue;
            size_t j = i + 1;
            while (j < f.size() &&
                   (std::isdigit(static_cast<unsigned char>(f[j])) ||
                    f[j] == '.' || f[j] == '-' || f[j] == 'l'))
                ++j;
            if (j >= f.size())
                break;
            char conv = f[j];
            if (conv == '%') {
                i = j;
                continue;
            }
            wants_double.push_back(conv == 'f' || conv == 'g' ||
                                   conv == 'e');
            i = j;
        }
        std::vector<int> args;
        for (size_t i = 0; i < c.args.size(); ++i) {
            auto [r, t] = genExpr(*c.args[i]);
            bool want_f64 = i < wants_double.size() && wants_double[i];
            args.push_back(
                coerce(r, t, want_f64 ? Type::F64 : Type::I32));
        }
        emit(Instruction::print(c.format, std::move(args)));
        return {-1, Type::Void};
    }

    std::pair<int, Type>
    genCond(const CondExpr &c)
    {
        Type result_type =
            c.thenExpr->type == Type::F64 || c.elseExpr->type == Type::F64
                ? Type::F64
                : (c.thenExpr->type == Type::U32 ||
                           c.elseExpr->type == Type::U32
                       ? Type::U32
                       : Type::I32);
        int result = cur->newReg();

        auto [cr, ct] = genExpr(*c.cond);
        int cond = toBool(cr, ct);
        int then_bb = cur->newBlock();
        int else_bb = cur->newBlock();
        int end_bb = cur->newBlock();
        setTerm(Terminator::br(cond, then_bb, else_bb), then_bb);

        auto [tr, tt] = genExpr(*c.thenExpr);
        emit(Instruction::mov(result, coerce(tr, tt, result_type),
                              result_type));
        setTerm(Terminator::jmp(end_bb), else_bb);

        auto [er, et] = genExpr(*c.elseExpr);
        emit(Instruction::mov(result, coerce(er, et, result_type),
                              result_type));
        setTerm(Terminator::jmp(end_bb), end_bb);
        return {result, result_type};
    }

    // --- Statements --------------------------------------------------------

    void
    genStmt(const Stmt &s)
    {
        if (blockTerminated()) {
            // Unreachable code after break/continue/return: emit into a
            // fresh dead block to keep the IR well formed.
            int dead = cur->newBlock();
            curBlock = dead;
        }
        switch (s.kind) {
          case Stmt::Kind::Block:
            for (const auto &st : static_cast<const BlockStmt &>(s).stmts)
                genStmt(*st);
            break;
          case Stmt::Kind::ExprStmt:
            genExpr(*static_cast<const ExprStmt &>(s).expr);
            break;
          case Stmt::Kind::VarDecl: {
            const auto &d = static_cast<const VarDeclStmt &>(s);
            if (d.init) {
                auto [r, t] = genExpr(*d.init);
                int v = coerce(r, t, d.declType);
                emit(Instruction::store(v, localSlot(d.localId),
                                        d.declType));
            }
            break;
          }
          case Stmt::Kind::If: {
            const auto &i = static_cast<const IfStmt &>(s);
            auto [cr, ct] = genExpr(*i.cond);
            int cond = toBool(cr, ct);
            int then_bb = cur->newBlock();
            int else_bb = i.elseStmt ? cur->newBlock() : -1;
            int end_bb = cur->newBlock();
            setTerm(Terminator::br(cond, then_bb,
                                   i.elseStmt ? else_bb : end_bb),
                    then_bb);
            genStmt(*i.thenStmt);
            setTerm(Terminator::jmp(end_bb),
                    i.elseStmt ? else_bb : end_bb);
            if (i.elseStmt) {
                genStmt(*i.elseStmt);
                setTerm(Terminator::jmp(end_bb), end_bb);
            }
            break;
          }
          case Stmt::Kind::While: {
            const auto &w = static_cast<const WhileStmt &>(s);
            int cond_bb = cur->newBlock();
            setTerm(Terminator::jmp(cond_bb), cond_bb);
            auto [cr, ct] = genExpr(*w.cond);
            int cond = toBool(cr, ct);
            int body_bb = cur->newBlock();
            int exit_bb = cur->newBlock();
            setTerm(Terminator::br(cond, body_bb, exit_bb), body_bb);
            breakTargets.push_back(exit_bb);
            continueTargets.push_back(cond_bb);
            genStmt(*w.body);
            breakTargets.pop_back();
            continueTargets.pop_back();
            setTerm(Terminator::jmp(cond_bb), exit_bb);
            break;
          }
          case Stmt::Kind::DoWhile: {
            const auto &w = static_cast<const DoWhileStmt &>(s);
            int body_bb = cur->newBlock();
            int cond_bb = cur->newBlock();
            int exit_bb = cur->newBlock();
            setTerm(Terminator::jmp(body_bb), body_bb);
            breakTargets.push_back(exit_bb);
            continueTargets.push_back(cond_bb);
            genStmt(*w.body);
            breakTargets.pop_back();
            continueTargets.pop_back();
            setTerm(Terminator::jmp(cond_bb), cond_bb);
            auto [cr, ct] = genExpr(*w.cond);
            int cond = toBool(cr, ct);
            setTerm(Terminator::br(cond, body_bb, exit_bb), exit_bb);
            break;
          }
          case Stmt::Kind::For: {
            const auto &f = static_cast<const ForStmt &>(s);
            if (f.init)
                genStmt(*f.init);
            int cond_bb = cur->newBlock();
            setTerm(Terminator::jmp(cond_bb), cond_bb);
            int body_bb = cur->newBlock();
            int step_bb = cur->newBlock();
            int exit_bb = cur->newBlock();
            if (f.cond) {
                auto [cr, ct] = genExpr(*f.cond);
                int cond = toBool(cr, ct);
                setTerm(Terminator::br(cond, body_bb, exit_bb), body_bb);
            } else {
                setTerm(Terminator::jmp(body_bb), body_bb);
            }
            breakTargets.push_back(exit_bb);
            continueTargets.push_back(step_bb);
            genStmt(*f.body);
            breakTargets.pop_back();
            continueTargets.pop_back();
            setTerm(Terminator::jmp(step_bb), step_bb);
            if (f.step)
                genExpr(*f.step);
            setTerm(Terminator::jmp(cond_bb), exit_bb);
            break;
          }
          case Stmt::Kind::Return: {
            const auto &r = static_cast<const ReturnStmt &>(s);
            if (r.value) {
                auto [vr, vt] = genExpr(*r.value);
                int v = coerce(vr, vt, cur->retType);
                int dead = cur->newBlock();
                setTerm(Terminator::ret(v), dead);
            } else {
                int dead = cur->newBlock();
                setTerm(Terminator::ret(), dead);
            }
            break;
          }
          case Stmt::Kind::Break: {
            BSYN_ASSERT(!breakTargets.empty(), "break outside loop");
            int dead = cur->newBlock();
            setTerm(Terminator::jmp(breakTargets.back()), dead);
            break;
          }
          case Stmt::Kind::Continue: {
            BSYN_ASSERT(!continueTargets.empty(), "continue outside loop");
            int dead = cur->newBlock();
            setTerm(Terminator::jmp(continueTargets.back()), dead);
            break;
          }
          case Stmt::Kind::Empty:
            break;
        }
    }

    const TranslationUnit &unit;
    const SemaInfo &info;
    ir::Module mod;

    ir::Function *cur = nullptr;
    const FunctionLocals *curLocals = nullptr;
    std::vector<uint32_t> localOffsets;
    int curBlock = 0;
    std::vector<int> breakTargets;
    std::vector<int> continueTargets;
};

} // namespace

ir::Module
generate(const TranslationUnit &tu, const SemaInfo &info)
{
    return Codegen(tu, info).run();
}

} // namespace bsyn::lang
