// The AST is header-only data; this file anchors the vtables.
#include "lang/ast.hh"

namespace bsyn::lang
{
} // namespace bsyn::lang
