#include "lang/frontend.hh"

#include "lang/codegen.hh"
#include "lang/parser.hh"
#include "lang/sema.hh"

namespace bsyn::lang
{

ir::Module
compile(const std::string &source, const std::string &unit)
{
    TranslationUnit tu = parseSource(source, unit);
    SemaInfo info = analyze(tu);
    return generate(tu, info);
}

} // namespace bsyn::lang
