/**
 * @file
 * MiniC abstract syntax tree. Nodes carry a Kind tag and are navigated
 * with static casts (LLVM style); Sema annotates expression types and
 * resolved symbols in place.
 */

#ifndef BSYN_LANG_AST_HH
#define BSYN_LANG_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "ir/type.hh"

namespace bsyn::lang
{

using ir::Type;

/** Binary operators (logical && / || are handled as control flow). */
enum class BinOp : uint8_t
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    LAnd, LOr,
};

/** Unary operators. */
enum class UnOp : uint8_t
{
    Neg,    ///< -x
    LogNot, ///< !x
    BitNot, ///< ~x
    Cast,   ///< (type)x — target type in Expr::type after sema
};

/** What an identifier resolved to. Filled in by Sema. */
struct SymbolRef
{
    enum class Kind : uint8_t { Unresolved, Global, Local, Func } kind =
        Kind::Unresolved;
    int index = -1;      ///< global index / local slot id / function index
    Type type = Type::Void;
    bool isArray = false;
    uint64_t elems = 1;
};

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

struct Expr
{
    enum class Kind : uint8_t
    {
        IntLit, FloatLit, StrLit,
        Ident, Index,
        Unary, Binary,
        Assign, IncDec,
        Call, Cond,
    };

    explicit Expr(Kind k) : kind(k) {}
    virtual ~Expr() = default;

    Kind kind;
    Type type = Type::Void; ///< annotated by Sema
    int line = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr
{
    IntLitExpr() : Expr(Kind::IntLit) {}
    int64_t value = 0;
    bool isUnsigned = false;
};

struct FloatLitExpr : Expr
{
    FloatLitExpr() : Expr(Kind::FloatLit) {}
    double value = 0.0;
};

struct StrLitExpr : Expr
{
    StrLitExpr() : Expr(Kind::StrLit) {}
    std::string value;
};

struct IdentExpr : Expr
{
    IdentExpr() : Expr(Kind::Ident) {}
    std::string name;
    SymbolRef sym;
};

/** arr[index] where arr is a global or local array. */
struct IndexExpr : Expr
{
    IndexExpr() : Expr(Kind::Index) {}
    std::string arrayName;
    SymbolRef sym;
    ExprPtr index;
};

struct UnaryExpr : Expr
{
    UnaryExpr() : Expr(Kind::Unary) {}
    UnOp op = UnOp::Neg;
    Type castType = Type::Void; ///< for UnOp::Cast
    ExprPtr operand;
};

struct BinaryExpr : Expr
{
    BinaryExpr() : Expr(Kind::Binary) {}
    BinOp op = BinOp::Add;
    ExprPtr lhs, rhs;
};

/** target = value, or target op= value when op is set. */
struct AssignExpr : Expr
{
    AssignExpr() : Expr(Kind::Assign) {}
    ExprPtr target; ///< Ident or Index
    ExprPtr value;
    bool compound = false;
    BinOp op = BinOp::Add; ///< meaningful when compound
};

/** ++x / x++ / --x / x-- */
struct IncDecExpr : Expr
{
    IncDecExpr() : Expr(Kind::IncDec) {}
    ExprPtr target;
    bool isIncrement = true;
    bool isPostfix = false;
};

struct CallExpr : Expr
{
    CallExpr() : Expr(Kind::Call) {}
    std::string callee;
    SymbolRef sym;
    bool isPrintf = false;
    std::string format; ///< printf format (first argument)
    std::vector<ExprPtr> args;
};

/** cond ? a : b */
struct CondExpr : Expr
{
    CondExpr() : Expr(Kind::Cond) {}
    ExprPtr cond, thenExpr, elseExpr;
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

struct Stmt
{
    enum class Kind : uint8_t
    {
        Block, ExprStmt, VarDecl, If, While, DoWhile, For,
        Return, Break, Continue, Empty,
    };

    explicit Stmt(Kind k) : kind(k) {}
    virtual ~Stmt() = default;

    Kind kind;
    int line = 0;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt
{
    BlockStmt() : Stmt(Kind::Block) {}
    std::vector<StmtPtr> stmts;
    /** True for synthesized groups (e.g. "int a, b;") that must NOT
     *  open a new scope. */
    bool transparent = false;
};

struct ExprStmt : Stmt
{
    ExprStmt() : Stmt(Kind::ExprStmt) {}
    ExprPtr expr;
};

/** A local declaration: scalar (optionally initialized) or array. */
struct VarDeclStmt : Stmt
{
    VarDeclStmt() : Stmt(Kind::VarDecl) {}
    std::string name;
    Type declType = Type::I32;
    uint64_t elems = 1; ///< > 1 => local array
    bool isArray = false;
    ExprPtr init;       ///< optional (scalars only)
    int localId = -1;   ///< filled by Sema
};

struct IfStmt : Stmt
{
    IfStmt() : Stmt(Kind::If) {}
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< may be null
};

struct WhileStmt : Stmt
{
    WhileStmt() : Stmt(Kind::While) {}
    ExprPtr cond;
    StmtPtr body;
};

struct DoWhileStmt : Stmt
{
    DoWhileStmt() : Stmt(Kind::DoWhile) {}
    StmtPtr body;
    ExprPtr cond;
};

struct ForStmt : Stmt
{
    ForStmt() : Stmt(Kind::For) {}
    StmtPtr init;  ///< VarDecl or ExprStmt or Empty
    ExprPtr cond;  ///< may be null (infinite)
    ExprPtr step;  ///< may be null
    StmtPtr body;
};

struct ReturnStmt : Stmt
{
    ReturnStmt() : Stmt(Kind::Return) {}
    ExprPtr value; ///< may be null
};

struct BreakStmt : Stmt
{
    BreakStmt() : Stmt(Kind::Break) {}
};

struct ContinueStmt : Stmt
{
    ContinueStmt() : Stmt(Kind::Continue) {}
};

struct EmptyStmt : Stmt
{
    EmptyStmt() : Stmt(Kind::Empty) {}
};

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

struct ParamDecl
{
    std::string name;
    Type type = Type::I32;
};

struct FuncDecl
{
    std::string name;
    Type retType = Type::Void;
    std::vector<ParamDecl> params;
    std::unique_ptr<BlockStmt> body;
    int line = 0;
};

struct GlobalDecl
{
    std::string name;
    Type elemType = Type::I32;
    uint64_t elems = 1;
    bool isArray = false;
    std::vector<ExprPtr> init; ///< literal initializers (may be empty)
    int line = 0;
};

/** A parsed translation unit. */
struct TranslationUnit
{
    std::string name;
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> functions;
};

} // namespace bsyn::lang

#endif // BSYN_LANG_AST_HH
