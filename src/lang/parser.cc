#include "lang/parser.hh"

#include "lang/lexer.hh"
#include "support/error.hh"

namespace bsyn::lang
{

namespace
{

/** Operator precedence (higher binds tighter); -1 = not a binary op. */
int
precedence(Tok t)
{
    switch (t) {
      case Tok::Star:
      case Tok::Slash:
      case Tok::Percent: return 10;
      case Tok::Plus:
      case Tok::Minus: return 9;
      case Tok::Shl:
      case Tok::Shr: return 8;
      case Tok::Lt:
      case Tok::Le:
      case Tok::Gt:
      case Tok::Ge: return 7;
      case Tok::EqEq:
      case Tok::NotEq: return 6;
      case Tok::Amp: return 5;
      case Tok::Caret: return 4;
      case Tok::Pipe: return 3;
      case Tok::AmpAmp: return 2;
      case Tok::PipePipe: return 1;
      default: return -1;
    }
}

BinOp
binOpFor(Tok t)
{
    switch (t) {
      case Tok::Plus: return BinOp::Add;
      case Tok::Minus: return BinOp::Sub;
      case Tok::Star: return BinOp::Mul;
      case Tok::Slash: return BinOp::Div;
      case Tok::Percent: return BinOp::Rem;
      case Tok::Amp: return BinOp::And;
      case Tok::Pipe: return BinOp::Or;
      case Tok::Caret: return BinOp::Xor;
      case Tok::Shl: return BinOp::Shl;
      case Tok::Shr: return BinOp::Shr;
      case Tok::Lt: return BinOp::Lt;
      case Tok::Le: return BinOp::Le;
      case Tok::Gt: return BinOp::Gt;
      case Tok::Ge: return BinOp::Ge;
      case Tok::EqEq: return BinOp::Eq;
      case Tok::NotEq: return BinOp::Ne;
      case Tok::AmpAmp: return BinOp::LAnd;
      case Tok::PipePipe: return BinOp::LOr;
      default: panic("binOpFor: not a binary operator");
    }
}

/** Compound-assignment operator mapping, or nullopt. */
bool
compoundOpFor(Tok t, BinOp &op)
{
    switch (t) {
      case Tok::PlusAssign: op = BinOp::Add; return true;
      case Tok::MinusAssign: op = BinOp::Sub; return true;
      case Tok::StarAssign: op = BinOp::Mul; return true;
      case Tok::SlashAssign: op = BinOp::Div; return true;
      case Tok::PercentAssign: op = BinOp::Rem; return true;
      case Tok::AmpAssign: op = BinOp::And; return true;
      case Tok::PipeAssign: op = BinOp::Or; return true;
      case Tok::CaretAssign: op = BinOp::Xor; return true;
      case Tok::ShlAssign: op = BinOp::Shl; return true;
      case Tok::ShrAssign: op = BinOp::Shr; return true;
      default: return false;
    }
}

class Parser
{
  public:
    Parser(std::vector<Token> toks, const std::string &unit)
        : tokens(std::move(toks)), unitName(unit)
    {}

    TranslationUnit
    run()
    {
        TranslationUnit tu;
        tu.name = unitName;
        while (peek().kind != Tok::End)
            parseTopLevel(tu);
        return tu;
    }

  private:
    [[noreturn]] void
    error(const std::string &msg)
    {
        const Token &t = peek();
        fatal("%s:%d:%d: parse error: %s (got %s)", unitName.c_str(),
              t.line, t.col, msg.c_str(), tokName(t.kind));
    }

    const Token &peek(size_t ahead = 0) const
    {
        size_t i = pos + ahead;
        return i < tokens.size() ? tokens[i] : tokens.back();
    }

    Token
    advance()
    {
        Token t = peek();
        if (pos < tokens.size() - 1)
            ++pos;
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind == kind) {
            advance();
            return true;
        }
        return false;
    }

    Token
    expect(Tok kind, const char *ctx)
    {
        if (peek().kind != kind)
            error(std::string("expected ") + tokName(kind) + " " + ctx);
        return advance();
    }

    bool
    isTypeToken(Tok t) const
    {
        return t == Tok::KwInt || t == Tok::KwUint || t == Tok::KwDouble ||
               t == Tok::KwVoid;
    }

    Type
    parseType()
    {
        switch (advance().kind) {
          case Tok::KwInt: return Type::I32;
          case Tok::KwUint: return Type::U32;
          case Tok::KwDouble: return Type::F64;
          case Tok::KwVoid: return Type::Void;
          default: error("expected a type name");
        }
    }

    void
    parseTopLevel(TranslationUnit &tu)
    {
        int line = peek().line;
        if (!isTypeToken(peek().kind))
            error("expected a declaration");
        Type t = parseType();
        Token name = expect(Tok::Ident, "in declaration");

        if (peek().kind == Tok::LParen) {
            tu.functions.push_back(parseFunction(t, name.text, line));
        } else {
            parseGlobal(tu, t, name.text, line);
            // Allow "int a, b;" at global scope.
            while (accept(Tok::Comma)) {
                Token extra = expect(Tok::Ident, "in declaration");
                parseGlobal(tu, t, extra.text, line, /*standalone=*/false);
            }
            expect(Tok::Semi, "after global declaration");
        }
    }

    void
    parseGlobal(TranslationUnit &tu, Type t, const std::string &name,
                int line, bool standalone = true)
    {
        (void)standalone;
        if (t == Type::Void)
            error("void global variable");
        GlobalDecl g;
        g.name = name;
        g.elemType = t;
        g.line = line;
        if (accept(Tok::LBracket)) {
            Token sz = expect(Tok::IntLit, "array size");
            if (sz.intValue <= 0)
                error("array size must be positive");
            g.elems = static_cast<uint64_t>(sz.intValue);
            g.isArray = true;
            expect(Tok::RBracket, "after array size");
        }
        if (accept(Tok::Assign)) {
            if (accept(Tok::LBrace)) {
                if (!g.isArray)
                    error("brace initializer on a scalar");
                if (peek().kind != Tok::RBrace) {
                    g.init.push_back(parseAssignment());
                    while (accept(Tok::Comma)) {
                        if (peek().kind == Tok::RBrace)
                            break; // trailing comma
                        g.init.push_back(parseAssignment());
                    }
                }
                expect(Tok::RBrace, "after initializer list");
            } else {
                g.init.push_back(parseAssignment());
            }
        }
        tu.globals.push_back(std::move(g));
    }

    FuncDecl
    parseFunction(Type ret, const std::string &name, int line)
    {
        FuncDecl fn;
        fn.name = name;
        fn.retType = ret;
        fn.line = line;
        expect(Tok::LParen, "after function name");
        if (!accept(Tok::RParen)) {
            if (peek().kind == Tok::KwVoid && peek(1).kind == Tok::RParen) {
                advance();
            } else {
                for (;;) {
                    ParamDecl p;
                    p.type = parseType();
                    if (p.type == Type::Void)
                        error("void parameter");
                    p.name = expect(Tok::Ident, "parameter name").text;
                    fn.params.push_back(std::move(p));
                    if (!accept(Tok::Comma))
                        break;
                }
            }
            expect(Tok::RParen, "after parameters");
        }
        fn.body = parseBlock();
        return fn;
    }

    std::unique_ptr<BlockStmt>
    parseBlock()
    {
        expect(Tok::LBrace, "to open a block");
        auto block = std::make_unique<BlockStmt>();
        block->line = peek().line;
        while (peek().kind != Tok::RBrace) {
            if (peek().kind == Tok::End)
                error("unterminated block");
            block->stmts.push_back(parseStatement());
        }
        expect(Tok::RBrace, "to close a block");
        return block;
    }

    StmtPtr
    parseStatement()
    {
        int line = peek().line;
        switch (peek().kind) {
          case Tok::LBrace:
            return parseBlock();
          case Tok::Semi: {
            advance();
            auto s = std::make_unique<EmptyStmt>();
            s->line = line;
            return s;
          }
          case Tok::KwInt:
          case Tok::KwUint:
          case Tok::KwDouble:
            return parseVarDecls();
          case Tok::KwIf: {
            advance();
            auto s = std::make_unique<IfStmt>();
            s->line = line;
            expect(Tok::LParen, "after 'if'");
            s->cond = parseExpression();
            expect(Tok::RParen, "after if condition");
            s->thenStmt = parseStatement();
            if (accept(Tok::KwElse))
                s->elseStmt = parseStatement();
            return s;
          }
          case Tok::KwWhile: {
            advance();
            auto s = std::make_unique<WhileStmt>();
            s->line = line;
            expect(Tok::LParen, "after 'while'");
            s->cond = parseExpression();
            expect(Tok::RParen, "after while condition");
            s->body = parseStatement();
            return s;
          }
          case Tok::KwDo: {
            advance();
            auto s = std::make_unique<DoWhileStmt>();
            s->line = line;
            s->body = parseStatement();
            expect(Tok::KwWhile, "after do body");
            expect(Tok::LParen, "after 'while'");
            s->cond = parseExpression();
            expect(Tok::RParen, "after do-while condition");
            expect(Tok::Semi, "after do-while");
            return s;
          }
          case Tok::KwFor: {
            advance();
            auto s = std::make_unique<ForStmt>();
            s->line = line;
            expect(Tok::LParen, "after 'for'");
            if (peek().kind == Tok::Semi) {
                advance();
                s->init = std::make_unique<EmptyStmt>();
            } else if (isTypeToken(peek().kind)) {
                s->init = parseVarDecls();
            } else {
                auto es = std::make_unique<ExprStmt>();
                es->expr = parseExpression();
                s->init = std::move(es);
                expect(Tok::Semi, "after for initializer");
            }
            if (peek().kind != Tok::Semi)
                s->cond = parseExpression();
            expect(Tok::Semi, "after for condition");
            if (peek().kind != Tok::RParen)
                s->step = parseExpression();
            expect(Tok::RParen, "after for clauses");
            s->body = parseStatement();
            return s;
          }
          case Tok::KwReturn: {
            advance();
            auto s = std::make_unique<ReturnStmt>();
            s->line = line;
            if (peek().kind != Tok::Semi)
                s->value = parseExpression();
            expect(Tok::Semi, "after return");
            return s;
          }
          case Tok::KwBreak: {
            advance();
            expect(Tok::Semi, "after break");
            auto s = std::make_unique<BreakStmt>();
            s->line = line;
            return s;
          }
          case Tok::KwContinue: {
            advance();
            expect(Tok::Semi, "after continue");
            auto s = std::make_unique<ContinueStmt>();
            s->line = line;
            return s;
          }
          default: {
            auto s = std::make_unique<ExprStmt>();
            s->line = line;
            s->expr = parseExpression();
            expect(Tok::Semi, "after expression statement");
            return s;
          }
        }
    }

    /**
     * Parse "type name [= init | [N]] (, name ...)* ;" and return a
     * BlockStmt when more than one variable is declared (so callers can
     * treat it as one statement).
     */
    StmtPtr
    parseVarDecls()
    {
        int line = peek().line;
        Type t = parseType();
        if (t == Type::Void)
            error("void local variable");

        std::vector<StmtPtr> decls;
        for (;;) {
            auto d = std::make_unique<VarDeclStmt>();
            d->line = line;
            d->declType = t;
            d->name = expect(Tok::Ident, "variable name").text;
            if (accept(Tok::LBracket)) {
                Token sz = expect(Tok::IntLit, "array size");
                if (sz.intValue <= 0)
                    error("array size must be positive");
                d->elems = static_cast<uint64_t>(sz.intValue);
                d->isArray = true;
                expect(Tok::RBracket, "after array size");
            }
            if (accept(Tok::Assign)) {
                if (d->isArray)
                    error("local array initializers are not supported");
                d->init = parseAssignment();
            }
            decls.push_back(std::move(d));
            if (!accept(Tok::Comma))
                break;
        }
        expect(Tok::Semi, "after variable declaration");

        if (decls.size() == 1)
            return std::move(decls.front());
        auto block = std::make_unique<BlockStmt>();
        block->line = line;
        block->stmts = std::move(decls);
        block->transparent = true;
        return block;
    }

    // --- Expressions ---------------------------------------------------

    ExprPtr
    parseExpression()
    {
        // Comma operator is not supported; assignment is the top level.
        return parseAssignment();
    }

    ExprPtr
    parseAssignment()
    {
        ExprPtr lhs = parseConditional();
        BinOp op;
        if (peek().kind == Tok::Assign) {
            int line = peek().line;
            advance();
            auto e = std::make_unique<AssignExpr>();
            e->line = line;
            e->target = std::move(lhs);
            e->value = parseAssignment();
            return e;
        }
        if (compoundOpFor(peek().kind, op)) {
            int line = peek().line;
            advance();
            auto e = std::make_unique<AssignExpr>();
            e->line = line;
            e->target = std::move(lhs);
            e->value = parseAssignment();
            e->compound = true;
            e->op = op;
            return e;
        }
        return lhs;
    }

    ExprPtr
    parseConditional()
    {
        ExprPtr cond = parseBinary(0);
        if (peek().kind != Tok::Question)
            return cond;
        int line = advance().line;
        auto e = std::make_unique<CondExpr>();
        e->line = line;
        e->cond = std::move(cond);
        e->thenExpr = parseAssignment();
        expect(Tok::Colon, "in conditional expression");
        e->elseExpr = parseAssignment();
        return e;
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            int prec = precedence(peek().kind);
            if (prec < 0 || prec < min_prec)
                return lhs;
            Token op = advance();
            ExprPtr rhs = parseBinary(prec + 1);
            auto e = std::make_unique<BinaryExpr>();
            e->line = op.line;
            e->op = binOpFor(op.kind);
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        int line = peek().line;
        switch (peek().kind) {
          case Tok::Minus: {
            advance();
            auto e = std::make_unique<UnaryExpr>();
            e->line = line;
            e->op = UnOp::Neg;
            e->operand = parseUnary();
            return e;
          }
          case Tok::Plus:
            advance();
            return parseUnary();
          case Tok::Bang: {
            advance();
            auto e = std::make_unique<UnaryExpr>();
            e->line = line;
            e->op = UnOp::LogNot;
            e->operand = parseUnary();
            return e;
          }
          case Tok::Tilde: {
            advance();
            auto e = std::make_unique<UnaryExpr>();
            e->line = line;
            e->op = UnOp::BitNot;
            e->operand = parseUnary();
            return e;
          }
          case Tok::PlusPlus:
          case Tok::MinusMinus: {
            bool inc = advance().kind == Tok::PlusPlus;
            auto e = std::make_unique<IncDecExpr>();
            e->line = line;
            e->isIncrement = inc;
            e->isPostfix = false;
            e->target = parseUnary();
            return e;
          }
          case Tok::LParen:
            // Cast: "(type) expr".
            if (isTypeToken(peek(1).kind) && peek(2).kind == Tok::RParen) {
                advance();
                Type t = parseType();
                expect(Tok::RParen, "after cast type");
                auto e = std::make_unique<UnaryExpr>();
                e->line = line;
                e->op = UnOp::Cast;
                e->castType = t;
                e->operand = parseUnary();
                return e;
            }
            return parsePostfix();
          default:
            return parsePostfix();
        }
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (peek().kind == Tok::PlusPlus ||
                peek().kind == Tok::MinusMinus) {
                bool inc = advance().kind == Tok::PlusPlus;
                auto pd = std::make_unique<IncDecExpr>();
                pd->line = e->line;
                pd->isIncrement = inc;
                pd->isPostfix = true;
                pd->target = std::move(e);
                e = std::move(pd);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        int line = peek().line;
        switch (peek().kind) {
          case Tok::IntLit: {
            auto e = std::make_unique<IntLitExpr>();
            e->line = line;
            e->value = advance().intValue;
            return e;
          }
          case Tok::FloatLit: {
            auto e = std::make_unique<FloatLitExpr>();
            e->line = line;
            e->value = advance().floatValue;
            return e;
          }
          case Tok::StrLit: {
            auto e = std::make_unique<StrLitExpr>();
            e->line = line;
            e->value = advance().text;
            return e;
          }
          case Tok::LParen: {
            advance();
            ExprPtr e = parseExpression();
            expect(Tok::RParen, "after parenthesized expression");
            return e;
          }
          case Tok::Ident: {
            Token name = advance();
            if (peek().kind == Tok::LParen) {
                advance();
                auto call = std::make_unique<CallExpr>();
                call->line = line;
                call->callee = name.text;
                call->isPrintf = name.text == "printf";
                if (call->isPrintf) {
                    Token fmt = expect(Tok::StrLit, "printf format");
                    call->format = fmt.text;
                    while (accept(Tok::Comma))
                        call->args.push_back(parseAssignment());
                } else if (peek().kind != Tok::RParen) {
                    call->args.push_back(parseAssignment());
                    while (accept(Tok::Comma))
                        call->args.push_back(parseAssignment());
                }
                expect(Tok::RParen, "after call arguments");
                return call;
            }
            if (peek().kind == Tok::LBracket) {
                advance();
                auto idx = std::make_unique<IndexExpr>();
                idx->line = line;
                idx->arrayName = name.text;
                idx->index = parseExpression();
                expect(Tok::RBracket, "after array index");
                return idx;
            }
            auto e = std::make_unique<IdentExpr>();
            e->line = line;
            e->name = name.text;
            return e;
          }
          default:
            error("expected an expression");
        }
    }

    std::vector<Token> tokens;
    std::string unitName;
    size_t pos = 0;
};

} // namespace

TranslationUnit
parseUnit(std::vector<Token> tokens, const std::string &unit)
{
    return Parser(std::move(tokens), unit).run();
}

TranslationUnit
parseSource(const std::string &source, const std::string &unit)
{
    return parseUnit(lex(source, unit), unit);
}

} // namespace bsyn::lang
