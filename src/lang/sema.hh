/**
 * @file
 * Semantic analysis for MiniC: symbol resolution, type checking and type
 * annotation. Sema mutates the AST in place (SymbolRef / Expr::type) and
 * returns the per-function local-variable tables that codegen needs.
 */

#ifndef BSYN_LANG_SEMA_HH
#define BSYN_LANG_SEMA_HH

#include <vector>

#include "lang/ast.hh"

namespace bsyn::lang
{

/** One local variable (parameters come first, in declaration order). */
struct LocalVar
{
    std::string name;
    Type type = Type::I32;
    uint64_t elems = 1;
    bool isArray = false;
    bool isParam = false;
};

/** Locals of one function, indexed by VarDeclStmt::localId. */
struct FunctionLocals
{
    std::vector<LocalVar> locals;
};

/** Sema output: one entry per function in TranslationUnit order. */
struct SemaInfo
{
    std::vector<FunctionLocals> functions;
};

/**
 * Run semantic analysis; fatal() with a diagnostic on the first error.
 *
 * @param tu the parsed unit (annotated in place).
 * @return local-variable tables for code generation.
 */
SemaInfo analyze(TranslationUnit &tu);

} // namespace bsyn::lang

#endif // BSYN_LANG_SEMA_HH
