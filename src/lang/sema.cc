#include "lang/sema.hh"

#include <map>

#include "support/error.hh"

namespace bsyn::lang
{

namespace
{

/** Usual arithmetic conversions for MiniC's three scalar types. */
Type
unify(Type a, Type b)
{
    if (a == Type::F64 || b == Type::F64)
        return Type::F64;
    if (a == Type::U32 || b == Type::U32)
        return Type::U32;
    return Type::I32;
}

class Sema
{
  public:
    explicit Sema(TranslationUnit &tu) : unit(tu) {}

    SemaInfo
    run()
    {
        // Global scope: globals and functions share a namespace.
        for (size_t i = 0; i < unit.globals.size(); ++i) {
            GlobalDecl &g = unit.globals[i];
            if (globalIndex.count(g.name) || funcIndex.count(g.name))
                error(g.line, "redefinition of '" + g.name + "'");
            globalIndex[g.name] = static_cast<int>(i);
            if (g.init.size() > g.elems)
                error(g.line, "too many initializers for '" + g.name + "'");
            for (auto &e : g.init) {
                checkExpr(*e);
                if (e->kind != Expr::Kind::IntLit &&
                    e->kind != Expr::Kind::FloatLit &&
                    !(e->kind == Expr::Kind::Unary &&
                      static_cast<UnaryExpr &>(*e).op == UnOp::Neg &&
                      static_cast<UnaryExpr &>(*e).operand->kind ==
                          Expr::Kind::IntLit)) {
                    error(e->line, "global initializers must be literals");
                }
            }
        }
        for (size_t i = 0; i < unit.functions.size(); ++i) {
            FuncDecl &f = unit.functions[i];
            if (globalIndex.count(f.name) || funcIndex.count(f.name))
                error(f.line, "redefinition of '" + f.name + "'");
            funcIndex[f.name] = static_cast<int>(i);
        }

        SemaInfo info;
        info.functions.resize(unit.functions.size());
        for (size_t i = 0; i < unit.functions.size(); ++i)
            checkFunction(unit.functions[i], info.functions[i]);
        return info;
    }

  private:
    [[noreturn]] void
    error(int line, const std::string &msg)
    {
        fatal("%s:%d: semantic error: %s", unit.name.c_str(), line,
              msg.c_str());
    }

    // --- Scope management ----------------------------------------------

    struct Scope
    {
        std::map<std::string, int> names; ///< name -> localId
    };

    int
    declareLocal(int line, const std::string &name, Type t, uint64_t elems,
                 bool is_array, bool is_param)
    {
        BSYN_ASSERT(!scopes.empty(), "no open scope");
        if (scopes.back().names.count(name))
            error(line, "redefinition of '" + name + "' in the same scope");
        LocalVar lv;
        lv.name = name;
        lv.type = t;
        lv.elems = elems;
        lv.isArray = is_array;
        lv.isParam = is_param;
        int id = static_cast<int>(curLocals->locals.size());
        curLocals->locals.push_back(std::move(lv));
        scopes.back().names[name] = id;
        return id;
    }

    int
    lookupLocal(const std::string &name) const
    {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->names.find(name);
            if (f != it->names.end())
                return f->second;
        }
        return -1;
    }

    // --- Function & statement checking ---------------------------------

    void
    checkFunction(FuncDecl &fn, FunctionLocals &locals)
    {
        curFunc = &fn;
        curLocals = &locals;
        scopes.clear();
        scopes.emplace_back();
        loopDepth = 0;
        for (const ParamDecl &p : fn.params)
            declareLocal(fn.line, p.name, p.type, 1, false, true);
        checkStmt(*fn.body);
        scopes.pop_back();
        curLocals = nullptr;
        curFunc = nullptr;
    }

    void
    checkStmt(Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Block: {
            auto &b = static_cast<BlockStmt &>(s);
            if (!b.transparent)
                scopes.emplace_back();
            for (auto &st : b.stmts)
                checkStmt(*st);
            if (!b.transparent)
                scopes.pop_back();
            break;
          }
          case Stmt::Kind::ExprStmt:
            checkExpr(*static_cast<ExprStmt &>(s).expr);
            break;
          case Stmt::Kind::VarDecl: {
            auto &d = static_cast<VarDeclStmt &>(s);
            if (d.init)
                checkExpr(*d.init);
            d.localId = declareLocal(d.line, d.name, d.declType, d.elems,
                                     d.isArray, false);
            break;
          }
          case Stmt::Kind::If: {
            auto &i = static_cast<IfStmt &>(s);
            checkExpr(*i.cond);
            checkStmt(*i.thenStmt);
            if (i.elseStmt)
                checkStmt(*i.elseStmt);
            break;
          }
          case Stmt::Kind::While: {
            auto &w = static_cast<WhileStmt &>(s);
            checkExpr(*w.cond);
            ++loopDepth;
            checkStmt(*w.body);
            --loopDepth;
            break;
          }
          case Stmt::Kind::DoWhile: {
            auto &w = static_cast<DoWhileStmt &>(s);
            ++loopDepth;
            checkStmt(*w.body);
            --loopDepth;
            checkExpr(*w.cond);
            break;
          }
          case Stmt::Kind::For: {
            auto &f = static_cast<ForStmt &>(s);
            scopes.emplace_back(); // for-init scope
            if (f.init)
                checkStmt(*f.init);
            if (f.cond)
                checkExpr(*f.cond);
            if (f.step)
                checkExpr(*f.step);
            ++loopDepth;
            checkStmt(*f.body);
            --loopDepth;
            scopes.pop_back();
            break;
          }
          case Stmt::Kind::Return: {
            auto &r = static_cast<ReturnStmt &>(s);
            if (r.value) {
                if (curFunc->retType == Type::Void)
                    error(r.line, "returning a value from a void function");
                checkExpr(*r.value);
            } else if (curFunc->retType != Type::Void) {
                error(r.line, "non-void function '" + curFunc->name +
                                  "' returns nothing");
            }
            break;
          }
          case Stmt::Kind::Break:
            if (loopDepth == 0)
                error(s.line, "break outside a loop");
            break;
          case Stmt::Kind::Continue:
            if (loopDepth == 0)
                error(s.line, "continue outside a loop");
            break;
          case Stmt::Kind::Empty:
            break;
        }
    }

    // --- Expression checking -------------------------------------------

    SymbolRef
    resolve(int line, const std::string &name)
    {
        SymbolRef sym;
        int local = lookupLocal(name);
        if (local >= 0) {
            const LocalVar &lv = curLocals->locals[
                static_cast<size_t>(local)];
            sym.kind = SymbolRef::Kind::Local;
            sym.index = local;
            sym.type = lv.type;
            sym.isArray = lv.isArray;
            sym.elems = lv.elems;
            return sym;
        }
        auto g = globalIndex.find(name);
        if (g != globalIndex.end()) {
            const GlobalDecl &gd = unit.globals[
                static_cast<size_t>(g->second)];
            sym.kind = SymbolRef::Kind::Global;
            sym.index = g->second;
            sym.type = gd.elemType;
            sym.isArray = gd.isArray;
            sym.elems = gd.elems;
            return sym;
        }
        auto f = funcIndex.find(name);
        if (f != funcIndex.end()) {
            sym.kind = SymbolRef::Kind::Func;
            sym.index = f->second;
            sym.type =
                unit.functions[static_cast<size_t>(f->second)].retType;
            return sym;
        }
        error(line, "use of undeclared identifier '" + name + "'");
    }

    void
    checkLvalue(const Expr &e)
    {
        if (e.kind == Expr::Kind::Ident) {
            const auto &id = static_cast<const IdentExpr &>(e);
            if (id.sym.isArray)
                error(e.line, "cannot assign to array '" + id.name + "'");
            if (id.sym.kind == SymbolRef::Kind::Func)
                error(e.line, "cannot assign to function '" + id.name + "'");
            return;
        }
        if (e.kind == Expr::Kind::Index)
            return;
        error(e.line, "assignment target is not an lvalue");
    }

    void
    requireInt(const Expr &e, const char *what)
    {
        if (!ir::isIntType(e.type))
            error(e.line, std::string(what) +
                              " requires an integer operand");
    }

    void
    checkExpr(Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit:
            e.type = Type::I32;
            break;
          case Expr::Kind::FloatLit:
            e.type = Type::F64;
            break;
          case Expr::Kind::StrLit:
            error(e.line, "string literals are only allowed as printf "
                          "formats");
          case Expr::Kind::Ident: {
            auto &id = static_cast<IdentExpr &>(e);
            id.sym = resolve(e.line, id.name);
            if (id.sym.kind == SymbolRef::Kind::Func)
                error(e.line, "function '" + id.name +
                                  "' used as a value");
            if (id.sym.isArray)
                error(e.line, "array '" + id.name +
                                  "' used as a scalar value (MiniC has "
                                  "no pointers)");
            e.type = id.sym.type;
            break;
          }
          case Expr::Kind::Index: {
            auto &ix = static_cast<IndexExpr &>(e);
            ix.sym = resolve(e.line, ix.arrayName);
            if (!ix.sym.isArray)
                error(e.line, "'" + ix.arrayName + "' is not an array");
            checkExpr(*ix.index);
            requireInt(*ix.index, "array subscript");
            e.type = ix.sym.type;
            break;
          }
          case Expr::Kind::Unary: {
            auto &u = static_cast<UnaryExpr &>(e);
            checkExpr(*u.operand);
            switch (u.op) {
              case UnOp::Neg:
                e.type = u.operand->type;
                break;
              case UnOp::LogNot:
                e.type = Type::I32;
                break;
              case UnOp::BitNot:
                requireInt(*u.operand, "operator ~");
                e.type = u.operand->type;
                break;
              case UnOp::Cast:
                if (u.castType == Type::Void)
                    error(e.line, "cast to void");
                e.type = u.castType;
                break;
            }
            break;
          }
          case Expr::Kind::Binary: {
            auto &b = static_cast<BinaryExpr &>(e);
            checkExpr(*b.lhs);
            checkExpr(*b.rhs);
            switch (b.op) {
              case BinOp::And:
              case BinOp::Or:
              case BinOp::Xor:
              case BinOp::Rem:
                requireInt(*b.lhs, "bitwise/modulo operator");
                requireInt(*b.rhs, "bitwise/modulo operator");
                e.type = unify(b.lhs->type, b.rhs->type);
                break;
              case BinOp::Shl:
              case BinOp::Shr:
                requireInt(*b.lhs, "shift operator");
                requireInt(*b.rhs, "shift operator");
                e.type = b.lhs->type;
                break;
              case BinOp::Lt:
              case BinOp::Le:
              case BinOp::Gt:
              case BinOp::Ge:
              case BinOp::Eq:
              case BinOp::Ne:
              case BinOp::LAnd:
              case BinOp::LOr:
                e.type = Type::I32;
                break;
              default:
                e.type = unify(b.lhs->type, b.rhs->type);
                break;
            }
            break;
          }
          case Expr::Kind::Assign: {
            auto &a = static_cast<AssignExpr &>(e);
            checkExpr(*a.target);
            checkLvalue(*a.target);
            checkExpr(*a.value);
            if (a.compound) {
                bool int_only = a.op == BinOp::Rem || a.op == BinOp::And ||
                                a.op == BinOp::Or || a.op == BinOp::Xor ||
                                a.op == BinOp::Shl || a.op == BinOp::Shr;
                if (int_only && (!ir::isIntType(a.target->type) ||
                                 !ir::isIntType(a.value->type)))
                    error(e.line, "integer compound assignment on "
                                  "non-integer operands");
            }
            e.type = a.target->type;
            break;
          }
          case Expr::Kind::IncDec: {
            auto &d = static_cast<IncDecExpr &>(e);
            checkExpr(*d.target);
            checkLvalue(*d.target);
            requireInt(*d.target, "++/--");
            e.type = d.target->type;
            break;
          }
          case Expr::Kind::Call: {
            auto &c = static_cast<CallExpr &>(e);
            if (c.isPrintf) {
                for (auto &a : c.args)
                    checkExpr(*a);
                e.type = Type::Void;
                break;
            }
            c.sym = resolve(e.line, c.callee);
            if (c.sym.kind != SymbolRef::Kind::Func)
                error(e.line, "'" + c.callee + "' is not a function");
            const FuncDecl &callee =
                unit.functions[static_cast<size_t>(c.sym.index)];
            if (c.args.size() != callee.params.size())
                error(e.line, "call to '" + c.callee + "' with wrong "
                              "number of arguments");
            for (auto &a : c.args)
                checkExpr(*a);
            e.type = callee.retType;
            break;
          }
          case Expr::Kind::Cond: {
            auto &c = static_cast<CondExpr &>(e);
            checkExpr(*c.cond);
            checkExpr(*c.thenExpr);
            checkExpr(*c.elseExpr);
            e.type = unify(c.thenExpr->type, c.elseExpr->type);
            break;
          }
        }
    }

    TranslationUnit &unit;
    std::map<std::string, int> globalIndex;
    std::map<std::string, int> funcIndex;

    FuncDecl *curFunc = nullptr;
    FunctionLocals *curLocals = nullptr;
    std::vector<Scope> scopes;
    int loopDepth = 0;
};

} // namespace

SemaInfo
analyze(TranslationUnit &tu)
{
    return Sema(tu).run();
}

} // namespace bsyn::lang
