/**
 * @file
 * Token definitions for MiniC, the C subset used both for the MiBench
 * analogue workloads and as the output language of the synthesizer.
 */

#ifndef BSYN_LANG_TOKEN_HH
#define BSYN_LANG_TOKEN_HH

#include <cstdint>
#include <string>

namespace bsyn::lang
{

/** Token kinds. One enumerator per punctuator/keyword keeps the parser
 *  a plain switch. */
enum class Tok : uint8_t
{
    End,
    Ident,
    IntLit,
    FloatLit,
    StrLit,

    // Keywords.
    KwInt, KwUint, KwDouble, KwVoid,
    KwIf, KwElse, KwFor, KwWhile, KwDo,
    KwReturn, KwBreak, KwContinue,

    // Punctuation.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma,

    // Operators.
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Lt, Le, Gt, Ge, EqEq, NotEq,
    AmpAmp, PipePipe,
    Assign,
    PlusAssign, MinusAssign, StarAssign, SlashAssign, PercentAssign,
    AmpAssign, PipeAssign, CaretAssign, ShlAssign, ShrAssign,
    PlusPlus, MinusMinus,
    Question, Colon,
};

/** @return a printable token-kind name for diagnostics. */
const char *tokName(Tok t);

/** A lexed token with source location. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;    ///< identifier/string spelling
    int64_t intValue = 0;
    double floatValue = 0.0;
    int line = 0;
    int col = 0;
};

} // namespace bsyn::lang

#endif // BSYN_LANG_TOKEN_HH
