/**
 * @file
 * IR code generation from the checked MiniC AST.
 *
 * Codegen deliberately produces "-O0 shaped" code: every local variable
 * lives in a frame slot, every use loads it and every assignment stores
 * it, just like an unoptimized C compiler. The paper profiles binaries
 * compiled at a low optimization level precisely because this shape makes
 * pattern recognition tractable and leaves headroom for the compiler
 * exploration experiments; the optimizer passes in src/opt then model
 * -O1/-O2/-O3.
 */

#ifndef BSYN_LANG_CODEGEN_HH
#define BSYN_LANG_CODEGEN_HH

#include "ir/module.hh"
#include "lang/sema.hh"

namespace bsyn::lang
{

/**
 * Generate an IR module from a checked translation unit.
 *
 * @param tu the parsed and sema-checked unit.
 * @param info sema's local-variable tables.
 * @return the IR module (verified).
 */
ir::Module generate(const TranslationUnit &tu, const SemaInfo &info);

} // namespace bsyn::lang

#endif // BSYN_LANG_CODEGEN_HH
