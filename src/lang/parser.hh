/**
 * @file
 * Recursive-descent parser for MiniC.
 */

#ifndef BSYN_LANG_PARSER_HH
#define BSYN_LANG_PARSER_HH

#include "lang/ast.hh"
#include "lang/token.hh"

#include <vector>

namespace bsyn::lang
{

/**
 * Parse a token stream into a TranslationUnit; fatal() on syntax errors.
 *
 * @param tokens the lexed program (must end in Tok::End).
 * @param unit a name used in diagnostics and as the unit name.
 */
TranslationUnit parseUnit(std::vector<Token> tokens,
                          const std::string &unit);

/** Convenience: lex + parse a source string. */
TranslationUnit parseSource(const std::string &source,
                            const std::string &unit);

} // namespace bsyn::lang

#endif // BSYN_LANG_PARSER_HH
