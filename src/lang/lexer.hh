/**
 * @file
 * The MiniC lexer. Supports C-style comments, decimal/hex/char integer
 * literals, floating literals and string literals (for printf).
 */

#ifndef BSYN_LANG_LEXER_HH
#define BSYN_LANG_LEXER_HH

#include <vector>

#include "lang/token.hh"

namespace bsyn::lang
{

/**
 * Lex a MiniC translation unit into a token vector (terminated by an
 * End token). fatal() on malformed input.
 *
 * @param source the program text.
 * @param unit a name used in diagnostics.
 */
std::vector<Token> lex(const std::string &source, const std::string &unit);

} // namespace bsyn::lang

#endif // BSYN_LANG_LEXER_HH
