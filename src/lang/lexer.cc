#include "lang/lexer.hh"

#include <cctype>
#include <map>

#include "support/error.hh"

namespace bsyn::lang
{

const char *
tokName(Tok t)
{
    switch (t) {
      case Tok::End: return "<eof>";
      case Tok::Ident: return "identifier";
      case Tok::IntLit: return "integer literal";
      case Tok::FloatLit: return "float literal";
      case Tok::StrLit: return "string literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwUint: return "'unsigned'";
      case Tok::KwDouble: return "'double'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwFor: return "'for'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwDo: return "'do'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Semi: return "';'";
      case Tok::Comma: return "','";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::SlashAssign: return "'/='";
      case Tok::PercentAssign: return "'%='";
      case Tok::AmpAssign: return "'&='";
      case Tok::PipeAssign: return "'|='";
      case Tok::CaretAssign: return "'^='";
      case Tok::ShlAssign: return "'<<='";
      case Tok::ShrAssign: return "'>>='";
      case Tok::PlusPlus: return "'++'";
      case Tok::MinusMinus: return "'--'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
    }
    return "<bad token>";
}

namespace
{

const std::map<std::string, Tok> keywords = {
    {"int", Tok::KwInt},       {"long", Tok::KwInt},
    {"char", Tok::KwInt},      {"short", Tok::KwInt},
    {"uint", Tok::KwUint},     {"unsigned", Tok::KwUint},
    {"double", Tok::KwDouble}, {"float", Tok::KwDouble},
    {"void", Tok::KwVoid},     {"if", Tok::KwIf},
    {"else", Tok::KwElse},     {"for", Tok::KwFor},
    {"while", Tok::KwWhile},   {"do", Tok::KwDo},
    {"return", Tok::KwReturn}, {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue},
};

class Lexer
{
  public:
    Lexer(const std::string &source, const std::string &unit)
        : src(source), unitName(unit)
    {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            Token t = next();
            bool done = t.kind == Tok::End;
            out.push_back(std::move(t));
            if (done)
                return out;
        }
    }

  private:
    [[noreturn]] void
    error(const std::string &msg)
    {
        fatal("%s:%d:%d: lex error: %s", unitName.c_str(), line, col,
              msg.c_str());
    }

    bool atEnd() const { return pos >= src.size(); }
    char peek() const { return atEnd() ? '\0' : src[pos]; }
    char
    peek2() const
    {
        return pos + 1 < src.size() ? src[pos + 1] : '\0';
    }

    char
    advance()
    {
        char c = src[pos++];
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek2() == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else if (c == '/' && peek2() == '*') {
                advance();
                advance();
                while (!atEnd() && !(peek() == '*' && peek2() == '/'))
                    advance();
                if (atEnd())
                    error("unterminated block comment");
                advance();
                advance();
            } else if (c == '#') {
                // Tolerate and skip preprocessor-style lines so emitted
                // synthetic C (which may carry #include lines for real
                // compilers) still parses.
                while (!atEnd() && peek() != '\n')
                    advance();
            } else {
                return;
            }
        }
    }

    Token
    make(Tok kind)
    {
        Token t;
        t.kind = kind;
        t.line = line;
        t.col = col;
        return t;
    }

    Token
    next()
    {
        skipWhitespaceAndComments();
        if (atEnd())
            return make(Tok::End);

        Token t = make(Tok::End);
        char c = advance();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident(1, c);
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_')
                ident += advance();
            auto it = keywords.find(ident);
            if (it != keywords.end()) {
                t.kind = it->second;
                // "unsigned int" / "unsigned long" collapse to uint.
                if (it->second == Tok::KwUint) {
                    size_t save = pos;
                    int save_line = line, save_col = col;
                    skipWhitespaceAndComments();
                    std::string word;
                    size_t p = pos;
                    while (p < src.size() &&
                           (std::isalpha(
                                static_cast<unsigned char>(src[p])) ||
                            src[p] == '_'))
                        word += src[p++];
                    if (word == "int" || word == "long" || word == "char") {
                        while (pos < p)
                            advance();
                    } else {
                        pos = save;
                        line = save_line;
                        col = save_col;
                    }
                }
            } else {
                t.kind = Tok::Ident;
                t.text = ident;
            }
            return t;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            return lexNumber(t, c);
        }

        switch (c) {
          case '\'': {
            if (atEnd())
                error("unterminated character literal");
            char v = advance();
            if (v == '\\') {
                char e = advance();
                switch (e) {
                  case 'n': v = '\n'; break;
                  case 't': v = '\t'; break;
                  case '0': v = '\0'; break;
                  case '\\': v = '\\'; break;
                  case '\'': v = '\''; break;
                  default: error("bad escape in character literal");
                }
            }
            if (peek() != '\'')
                error("unterminated character literal");
            advance();
            t.kind = Tok::IntLit;
            t.intValue = static_cast<unsigned char>(v);
            return t;
          }
          case '"': {
            std::string s;
            while (!atEnd() && peek() != '"') {
                char v = advance();
                if (v == '\\') {
                    char e = advance();
                    switch (e) {
                      case 'n': s += '\n'; break;
                      case 't': s += '\t'; break;
                      case '\\': s += '\\'; break;
                      case '"': s += '"'; break;
                      case '%': s += "\\%"; break;
                      default: s += e; break;
                    }
                } else {
                    s += v;
                }
            }
            if (atEnd())
                error("unterminated string literal");
            advance();
            t.kind = Tok::StrLit;
            t.text = s;
            return t;
          }
          case '(': t.kind = Tok::LParen; return t;
          case ')': t.kind = Tok::RParen; return t;
          case '{': t.kind = Tok::LBrace; return t;
          case '}': t.kind = Tok::RBrace; return t;
          case '[': t.kind = Tok::LBracket; return t;
          case ']': t.kind = Tok::RBracket; return t;
          case ';': t.kind = Tok::Semi; return t;
          case ',': t.kind = Tok::Comma; return t;
          case '?': t.kind = Tok::Question; return t;
          case ':': t.kind = Tok::Colon; return t;
          case '~': t.kind = Tok::Tilde; return t;
          case '+':
            if (peek() == '+') { advance(); t.kind = Tok::PlusPlus; }
            else if (peek() == '=') { advance(); t.kind = Tok::PlusAssign; }
            else t.kind = Tok::Plus;
            return t;
          case '-':
            if (peek() == '-') { advance(); t.kind = Tok::MinusMinus; }
            else if (peek() == '=') { advance(); t.kind = Tok::MinusAssign; }
            else t.kind = Tok::Minus;
            return t;
          case '*':
            if (peek() == '=') { advance(); t.kind = Tok::StarAssign; }
            else t.kind = Tok::Star;
            return t;
          case '/':
            if (peek() == '=') { advance(); t.kind = Tok::SlashAssign; }
            else t.kind = Tok::Slash;
            return t;
          case '%':
            if (peek() == '=') { advance(); t.kind = Tok::PercentAssign; }
            else t.kind = Tok::Percent;
            return t;
          case '&':
            if (peek() == '&') { advance(); t.kind = Tok::AmpAmp; }
            else if (peek() == '=') { advance(); t.kind = Tok::AmpAssign; }
            else t.kind = Tok::Amp;
            return t;
          case '|':
            if (peek() == '|') { advance(); t.kind = Tok::PipePipe; }
            else if (peek() == '=') { advance(); t.kind = Tok::PipeAssign; }
            else t.kind = Tok::Pipe;
            return t;
          case '^':
            if (peek() == '=') { advance(); t.kind = Tok::CaretAssign; }
            else t.kind = Tok::Caret;
            return t;
          case '!':
            if (peek() == '=') { advance(); t.kind = Tok::NotEq; }
            else t.kind = Tok::Bang;
            return t;
          case '=':
            if (peek() == '=') { advance(); t.kind = Tok::EqEq; }
            else t.kind = Tok::Assign;
            return t;
          case '<':
            if (peek() == '<') {
                advance();
                if (peek() == '=') { advance(); t.kind = Tok::ShlAssign; }
                else t.kind = Tok::Shl;
            } else if (peek() == '=') {
                advance();
                t.kind = Tok::Le;
            } else {
                t.kind = Tok::Lt;
            }
            return t;
          case '>':
            if (peek() == '>') {
                advance();
                if (peek() == '=') { advance(); t.kind = Tok::ShrAssign; }
                else t.kind = Tok::Shr;
            } else if (peek() == '=') {
                advance();
                t.kind = Tok::Ge;
            } else {
                t.kind = Tok::Gt;
            }
            return t;
          default:
            error(std::string("unexpected character '") + c + "'");
        }
    }

    Token
    lexNumber(Token t, char first)
    {
        std::string num(1, first);
        bool is_float = false;
        if (first == '0' && (peek() == 'x' || peek() == 'X')) {
            num += advance();
            while (std::isxdigit(static_cast<unsigned char>(peek())))
                num += advance();
            t.kind = Tok::IntLit;
            t.intValue = static_cast<int64_t>(
                std::stoull(num.substr(2), nullptr, 16));
            skipSuffix();
            return t;
        }
        while (std::isdigit(static_cast<unsigned char>(peek())))
            num += advance();
        if (peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(peek2()))) {
            is_float = true;
            num += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                num += advance();
        } else if (peek() == '.') {
            is_float = true;
            num += advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            is_float = true;
            num += advance();
            if (peek() == '+' || peek() == '-')
                num += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                num += advance();
        }
        if (is_float) {
            t.kind = Tok::FloatLit;
            t.floatValue = std::stod(num);
        } else {
            t.kind = Tok::IntLit;
            t.intValue = static_cast<int64_t>(std::stoull(num));
        }
        skipSuffix();
        return t;
    }

    void
    skipSuffix()
    {
        // Accept and ignore C integer/float suffixes (u, l, f).
        while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
               peek() == 'L' || peek() == 'f' || peek() == 'F')
            advance();
    }

    const std::string &src;
    std::string unitName;
    size_t pos = 0;
    int line = 1;
    int col = 1;
};

} // namespace

std::vector<Token>
lex(const std::string &source, const std::string &unit)
{
    return Lexer(source, unit).run();
}

} // namespace bsyn::lang
