/**
 * @file
 * One-call MiniC front end: source text to verified IR module.
 */

#ifndef BSYN_LANG_FRONTEND_HH
#define BSYN_LANG_FRONTEND_HH

#include <string>

#include "ir/module.hh"

namespace bsyn::lang
{

/**
 * Compile MiniC source text into an (unoptimized, -O0 shaped) IR module.
 * fatal() with a diagnostic on lex/parse/sema errors.
 *
 * @param source the program text.
 * @param unit a name for diagnostics; becomes the module name.
 */
ir::Module compile(const std::string &source, const std::string &unit);

} // namespace bsyn::lang

#endif // BSYN_LANG_FRONTEND_HH
