#include "support/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/error.hh"

namespace bsyn
{

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    BSYN_ASSERT(kind_ == Kind::Bool, "json: not a bool");
    return boolean;
}

double
Json::asNumber() const
{
    BSYN_ASSERT(kind_ == Kind::Number, "json: not a number");
    return number;
}

int64_t
Json::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
Json::asString() const
{
    BSYN_ASSERT(kind_ == Kind::String, "json: not a string");
    return str;
}

void
Json::push(Json v)
{
    BSYN_ASSERT(kind_ == Kind::Array, "json: push on non-array");
    items.push_back(std::move(v));
}

size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return items.size();
    if (kind_ == Kind::Object)
        return fields.size();
    return 0;
}

const Json &
Json::at(size_t i) const
{
    BSYN_ASSERT(kind_ == Kind::Array && i < items.size(),
                "json: bad array index");
    return items[i];
}

void
Json::set(const std::string &key, Json v)
{
    BSYN_ASSERT(kind_ == Kind::Object, "json: set on non-object");
    for (auto &kv : fields) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    fields.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &kv : fields)
        if (kv.first == key)
            return true;
    return false;
}

const Json &
Json::get(const std::string &key) const
{
    BSYN_ASSERT(kind_ == Kind::Object, "json: get on non-object");
    for (const auto &kv : fields)
        if (kv.first == key)
            return kv.second;
    fatal("json: missing key '%s'", key.c_str());
}

std::vector<std::string>
Json::keys() const
{
    std::vector<std::string> out;
    if (kind_ != Kind::Object)
        return out;
    out.reserve(fields.size());
    for (const auto &kv : fields)
        out.push_back(kv.first);
    return out;
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
formatNumber(std::string &out, double d)
{
    if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto pad = [&](int d) {
        if (indent >= 0) {
            out += '\n';
            out.append(static_cast<size_t>(indent) * d, ' ');
        }
    };
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number:
        formatNumber(out, number);
        break;
      case Kind::String:
        escapeString(out, str);
        break;
      case Kind::Array:
        out += '[';
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += ',';
            pad(depth + 1);
            items[i].dumpTo(out, indent, depth + 1);
        }
        if (!items.empty())
            pad(depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (size_t i = 0; i < fields.size(); ++i) {
            if (i)
                out += ',';
            pad(depth + 1);
            escapeString(out, fields[i].first);
            out += indent >= 0 ? ": " : ":";
            fields[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!fields.empty())
            pad(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent JSON parser. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos != src.size())
            fatal("json: trailing garbage at offset %zu", pos);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < src.size() && std::isspace(uc(src[pos])))
            ++pos;
    }

    static unsigned char uc(char c) { return static_cast<unsigned char>(c); }

    char
    peek()
    {
        skipWs();
        if (pos >= src.size())
            fatal("json: unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("json: expected '%c' at offset %zu", c, pos);
        ++pos;
    }

    Json
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Json(parseString());
          case 't': expectWord("true"); return Json(true);
          case 'f': expectWord("false"); return Json(false);
          case 'n': expectWord("null"); return Json();
          default: return parseNumber();
        }
    }

    void
    expectWord(const char *w)
    {
        skipWs();
        size_t len = std::string(w).size();
        if (src.compare(pos, len, w) != 0)
            fatal("json: expected '%s' at offset %zu", w, pos);
        pos += len;
    }

    /** Read the four hex digits after a consumed "\u". */
    unsigned
    parseHex4()
    {
        if (pos + 4 > src.size())
            fatal("json: bad \\u escape");
        unsigned code = 0;
        for (size_t k = 0; k < 4; ++k) {
            char h = src[pos + k];
            if (!std::isxdigit(uc(h)))
                fatal("json: non-hex digit in \\u escape at offset %zu",
                      pos + k);
            code = code * 16 +
                   static_cast<unsigned>(h <= '9'  ? h - '0'
                                         : h <= 'F' ? h - 'A' + 10
                                                    : h - 'a' + 10);
        }
        pos += 4;
        return code;
    }

    /** Append @p code (a Unicode scalar value) as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                if (pos >= src.size())
                    fatal("json: bad escape");
                char e = src[pos++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'u': {
                    unsigned code = parseHex4();
                    if (code >= 0xdc00 && code <= 0xdfff)
                        fatal("json: unpaired low surrogate \\u%04x",
                              code);
                    if (code >= 0xd800 && code <= 0xdbff) {
                        // High surrogate: a \uXXXX low surrogate must
                        // follow to form one supplementary code point.
                        if (pos + 2 > src.size() || src[pos] != '\\' ||
                            src[pos + 1] != 'u')
                            fatal("json: high surrogate \\u%04x not "
                                  "followed by \\u low surrogate",
                                  code);
                        pos += 2;
                        unsigned low = parseHex4();
                        if (low < 0xdc00 || low > 0xdfff)
                            fatal("json: expected low surrogate after "
                                  "\\u%04x, got \\u%04x",
                                  code, low);
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    }
                    appendUtf8(out, code);
                    break;
                  }
                  default:
                    fatal("json: unknown escape '\\%c'", e);
                }
            } else {
                out += c;
            }
        }
        if (pos >= src.size())
            fatal("json: unterminated string");
        ++pos; // closing quote
        return out;
    }

    Json
    parseNumber()
    {
        skipWs();
        size_t start = pos;
        if (pos < src.size() && (src[pos] == '-' || src[pos] == '+'))
            ++pos;
        while (pos < src.size() &&
               (std::isdigit(uc(src[pos])) || src[pos] == '.' ||
                src[pos] == 'e' || src[pos] == 'E' || src[pos] == '-' ||
                src[pos] == '+')) {
            ++pos;
        }
        if (pos == start)
            fatal("json: expected a number at offset %zu", pos);
        return Json(std::stod(src.substr(start, pos - start)));
    }

    Json
    parseArray()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos;
            return arr;
        }
        for (;;) {
            arr.push(parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
            } else if (c == ']') {
                ++pos;
                return arr;
            } else {
                fatal("json: expected ',' or ']' at offset %zu", pos);
            }
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos;
            return obj;
        }
        for (;;) {
            std::string key = parseString();
            expect(':');
            obj.set(key, parseValue());
            char c = peek();
            if (c == ',') {
                ++pos;
            } else if (c == '}') {
                ++pos;
                return obj;
            } else {
                fatal("json: expected ',' or '}' at offset %zu", pos);
            }
        }
    }

    const std::string &src;
    size_t pos = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace bsyn
