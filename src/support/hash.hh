/**
 * @file
 * Content hashing for the artifact cache: a self-contained SHA-256 so
 * cache keys are stable across platforms, processes and runs, and the
 * collision probability is negligible even for very large suites. No
 * third-party dependency — the implementation is the FIPS 180-4
 * compression function over a streaming context.
 */

#ifndef BSYN_SUPPORT_HASH_HH
#define BSYN_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace bsyn
{

/** Streaming SHA-256 context (FIPS 180-4). */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const void *data, size_t len);
    void update(const std::string &s) { update(s.data(), s.size()); }

    /** Finish and return the digest as 64 lowercase hex characters.
     *  The context must not be updated afterwards. */
    std::string hexDigest();

  private:
    void compress(const uint8_t block[64]);

    uint32_t state_[8];
    uint64_t totalBytes_ = 0;
    uint8_t buf_[64];
    size_t bufLen_ = 0;
};

/** One-shot convenience: SHA-256 of @p text as lowercase hex. */
std::string sha256Hex(const std::string &text);

} // namespace bsyn

#endif // BSYN_SUPPORT_HASH_HH
