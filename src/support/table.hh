/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to render the
 * rows/series of each paper table and figure.
 */

#ifndef BSYN_SUPPORT_TABLE_HH
#define BSYN_SUPPORT_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace bsyn
{

/**
 * A simple column-aligned text table. Cells are strings; helpers format
 * numbers consistently (fixed precision, percentages).
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    void print(std::ostream &os) const;

    /** Number of data rows. */
    size_t rows() const { return rows_.size(); }

    /** Format a double with @p digits decimals. */
    static std::string num(double value, int digits = 3);

    /** Format a ratio as a percentage with @p digits decimals. */
    static std::string pct(double ratio, int digits = 1);

    /** Format an integer count. */
    static std::string count(uint64_t value);

  private:
    std::string title_;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bsyn

#endif // BSYN_SUPPORT_TABLE_HH
