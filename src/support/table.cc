#include "support/table.hh"

#include <algorithm>
#include <cstdio>

namespace bsyn
{

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header);
    for (const auto &row : rows_)
        widen(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << '\n';
    };

    if (!header.empty()) {
        emit(header);
        size_t total = 0;
        for (size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
}

std::string
TextTable::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::pct(double ratio, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
    return buf;
}

std::string
TextTable::count(uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace bsyn
