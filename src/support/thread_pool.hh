/**
 * @file
 * A small work-stealing thread pool used to fan independent pipeline
 * stages (profile + synthesize one workload each) across cores. Each
 * worker owns a deque: it pushes/pops its own work LIFO for locality and
 * steals FIFO from victims when idle, so a handful of heavyweight tasks
 * spread evenly even when they are submitted in one burst. The deques
 * share one pool mutex — tasks here run for milliseconds to seconds, so
 * scheduling overhead is noise and simplicity wins over lock-free deques.
 *
 * Determinism contract: the pool schedules *execution*, never *results*.
 * parallelFor(n, fn) invokes fn(i) exactly once for every i and callers
 * write to per-index slots, so output is byte-identical regardless of
 * thread count or steal order.
 */

#ifndef BSYN_SUPPORT_THREAD_POOL_HH
#define BSYN_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace bsyn
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start @p threads workers. 0 means one per hardware thread.
     * A pool of 1 still runs tasks on its single worker thread, so the
     * sequential path exercises the same machinery as the parallel one.
     *
     * The pool publishes a queue-depth gauge ("threadpool.tasks.pending"),
     * an executed-task counter and per-thread task counters into
     * @p metrics (null = obs::Registry::global()). Not owned; must
     * outlive the pool.
     */
    explicit ThreadPool(unsigned threads = 0,
                        obs::Registry *metrics = nullptr);

    /** Waits for remaining work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t threadCount() const { return workers_.size(); }

    /** Enqueue one task; returns immediately. */
    void submit(Task task);

    /** Block until every submitted task has finished. */
    void wait();

    /**
     * Run fn(0) .. fn(n-1), distributing indices across the workers, and
     * block until all are done. If invocations throw, the first captured
     * exception is rethrown here after every index has finished. Called
     * from one of this pool's own workers (nested use), it runs the
     * indices inline on the caller instead of self-deadlocking.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** @return std::thread::hardware_concurrency(), at least 1. */
    static unsigned hardwareThreads();

  private:
    /** One worker's deque; owner pops LIFO, thieves steal FIFO. */
    struct Worker
    {
        std::deque<Task> tasks;        // guarded by mtx_
        obs::Counter *executed = nullptr; ///< tasks this thread ran
    };

    void workerLoop(size_t self);
    /** Pop own work or steal; requires mtx_ held. */
    bool takeLocked(size_t self, Task &out);

    std::vector<Worker> workers_;
    std::vector<std::thread> threads_;

    std::mutex mtx_;
    std::condition_variable workCv_; ///< signalled on submit/shutdown
    std::condition_variable idleCv_; ///< signalled when pending_ hits 0
    size_t pending_ = 0;             ///< queued + running tasks
    size_t nextVictim_ = 0;          ///< round-robin submit cursor
    bool stopping_ = false;

    obs::Gauge *pendingGauge_ = nullptr;  ///< mirrors pending_
    obs::Counter *executedTotal_ = nullptr;
};

} // namespace bsyn

#endif // BSYN_SUPPORT_THREAD_POOL_HH
