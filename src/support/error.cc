#include "support/error.hh"

#include <cstdio>
#include <vector>

#include "obs/log.hh"

namespace bsyn
{

namespace
{

std::string
formatMessage(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(fmt, args);
    va_end(args);
    throw FatalError("fatal: " + msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(fmt, args);
    va_end(args);
    throw PanicError("panic: " + msg);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatMessage(fmt, args);
    va_end(args);
    obs::logf(obs::LogLevel::Warn, "warn: %s", msg.c_str());
}

} // namespace bsyn
