#include "support/statistics.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"

namespace bsyn
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / double(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        BSYN_ASSERT(x > 0.0, "geomean requires positive values");
        logsum += std::log(x);
    }
    return std::exp(logsum / double(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double mu = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - mu) * (x - mu);
    return std::sqrt(acc / double(xs.size()));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    BSYN_ASSERT(xs.size() == ys.size(), "pearson needs equal-length series");
    if (xs.size() < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
relativeError(double a, double b)
{
    if (b == 0.0)
        return a == 0.0 ? 0.0 : 1.0;
    return std::fabs(a - b) / std::fabs(b);
}

double
meanRelativeError(const std::vector<double> &measured,
                  const std::vector<double> &reference)
{
    BSYN_ASSERT(measured.size() == reference.size(),
                "meanRelativeError needs equal-length series");
    if (measured.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < measured.size(); ++i)
        acc += relativeError(measured[i], reference[i]);
    return acc / double(measured.size());
}

void
RunningStat::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    double delta = x - mu;
    mu += delta / double(n);
    m2 += delta * (x - mu);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

} // namespace bsyn
