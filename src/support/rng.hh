/**
 * @file
 * Deterministic, seedable random number generation used throughout the
 * benchmark synthesizer. Synthesis must be reproducible given a seed, so
 * all randomness flows through this class rather than std::random_device.
 */

#ifndef BSYN_SUPPORT_RNG_HH
#define BSYN_SUPPORT_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bsyn
{

/**
 * A small, fast xoshiro256** generator. Deterministic across platforms
 * (unlike std::mt19937 distributions), which matters because the emitted
 * synthetic C source must be byte-identical for a given seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void reseed(uint64_t seed);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return a uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Sample an index proportionally to the given non-negative weights.
     *
     * @param weights weight per index; at least one must be positive.
     * @return the sampled index.
     */
    size_t nextWeighted(const std::vector<double> &weights);

    /** Shuffle a vector in place (Fisher-Yates). */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.empty())
            return;
        for (size_t i = items.size() - 1; i > 0; --i) {
            size_t j = nextBounded(i + 1);
            std::swap(items[i], items[j]);
        }
    }

  private:
    uint64_t state[4];
};

} // namespace bsyn

#endif // BSYN_SUPPORT_RNG_HH
