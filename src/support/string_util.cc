#include "support/string_util.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.hh"

namespace bsyn
{

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<size_t>(needed));
    }
    va_end(args);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &items, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write file '%s'", path.c_str());
    out << content;
    if (!out)
        fatal("failed writing file '%s'", path.c_str());
}

} // namespace bsyn
