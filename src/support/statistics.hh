/**
 * @file
 * Small statistics helpers used by the evaluation harnesses: means,
 * correlation, relative-error metrics and histogram utilities.
 */

#ifndef BSYN_SUPPORT_STATISTICS_HH
#define BSYN_SUPPORT_STATISTICS_HH

#include <cstddef>
#include <vector>

namespace bsyn
{

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &xs);

/** Geometric mean of positive values; 0 for an empty vector. */
double geomean(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** |a-b| / |b| with a guard for b == 0. */
double relativeError(double a, double b);

/** Mean of relativeError over paired series. */
double meanRelativeError(const std::vector<double> &measured,
                         const std::vector<double> &reference);

/**
 * Running (streaming) statistics accumulator: count, mean, min, max,
 * variance via Welford's algorithm.
 */
class RunningStat
{
  public:
    void add(double x);

    size_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double variance() const { return n > 1 ? m2 / double(n) : 0.0; }
    double stddev() const;

  private:
    size_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace bsyn

#endif // BSYN_SUPPORT_STATISTICS_HH
