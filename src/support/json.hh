/**
 * @file
 * A minimal JSON value model, writer and parser. Used to serialize
 * statistical profiles to disk so that profiling and synthesis can run as
 * separate steps (the "benchmark distribution" arrow in the paper's
 * Figure 1: the profile, not the source, crosses organizational walls).
 */

#ifndef BSYN_SUPPORT_JSON_HH
#define BSYN_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace bsyn
{

/** A dynamically-typed JSON value (null/bool/number/string/array/object). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), boolean(b) {}
    Json(double d) : kind_(Kind::Number), number(d) {}
    Json(int64_t i) : kind_(Kind::Number), number(double(i)) {}
    Json(uint64_t u) : kind_(Kind::Number), number(double(u)) {}
    Json(int i) : kind_(Kind::Number), number(double(i)) {}
    Json(const char *s) : kind_(Kind::String), str(s) {}
    Json(std::string s) : kind_(Kind::String), str(std::move(s)) {}

    /** Build an empty array value. */
    static Json array();
    /** Build an empty object value. */
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** @return the boolean payload; panics on kind mismatch. */
    bool asBool() const;
    /** @return the numeric payload; panics on kind mismatch. */
    double asNumber() const;
    /** @return the numeric payload truncated to int64. */
    int64_t asInt() const;
    /** @return the string payload; panics on kind mismatch. */
    const std::string &asString() const;

    /** Array access. */
    void push(Json v);
    size_t size() const;
    const Json &at(size_t i) const;

    /** Object access. */
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    const Json &get(const std::string &key) const;

    /** Object keys in insertion order (empty for non-objects) — lets
     *  consumers walk fields in the exact order a writer emitted them,
     *  which reproducible re-serialization (e.g. shard merging) needs. */
    std::vector<std::string> keys() const;

    /** Serialize; @p indent < 0 means compact. */
    std::string dump(int indent = 2) const;

    /** Parse a JSON document; fatal() on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> items;
    // Keep insertion order for reproducible round-trips.
    std::vector<std::pair<std::string, Json>> fields;
};

} // namespace bsyn

#endif // BSYN_SUPPORT_JSON_HH
