/**
 * @file
 * Error-reporting helpers in the gem5 spirit: fatal() for user-caused
 * conditions the framework cannot continue from, panic() for internal
 * invariant violations that indicate a bug in bsyn itself.
 */

#ifndef BSYN_SUPPORT_ERROR_HH
#define BSYN_SUPPORT_ERROR_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace bsyn
{

/** Exception thrown by fatal(): the user asked for something impossible. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/**
 * Report an unrecoverable, user-caused error (bad configuration, malformed
 * source program, invalid parameters). Throws FatalError.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal framework bug (violated invariant, impossible state).
 * Throws PanicError.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a non-fatal warning on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Like assert() but always compiled in; raises panic() on failure. */
#define BSYN_ASSERT(cond, fmt, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::bsyn::panic("assertion '%s' failed at %s:%d: " fmt, #cond,    \
                          __FILE__, __LINE__, ##__VA_ARGS__);               \
        }                                                                   \
    } while (0)

} // namespace bsyn

#endif // BSYN_SUPPORT_ERROR_HH
