#include "support/rng.hh"

#include "support/error.hh"

namespace bsyn
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    BSYN_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    BSYN_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        BSYN_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    BSYN_ASSERT(total > 0.0, "nextWeighted requires a positive total weight");
    double x = nextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

} // namespace bsyn
