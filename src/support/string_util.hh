/**
 * @file
 * Small string helpers shared across the framework.
 */

#ifndef BSYN_SUPPORT_STRING_UTIL_HH
#define BSYN_SUPPORT_STRING_UTIL_HH

#include <string>
#include <vector>

namespace bsyn
{

/** Split @p s on @p sep (single character), keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items,
                 const std::string &sep);

/** Read an entire file into a string; fatal() if unreadable. */
std::string readFile(const std::string &path);

/** Write a string to a file; fatal() on failure. */
void writeFile(const std::string &path, const std::string &content);

} // namespace bsyn

#endif // BSYN_SUPPORT_STRING_UTIL_HH
