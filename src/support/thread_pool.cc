#include "support/thread_pool.hh"

#include <exception>

#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn
{

namespace
{
/** The pool the current thread works for, if any (see parallelFor). */
thread_local ThreadPool *tlsWorkerPool = nullptr;
} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads, obs::Registry *metrics)
{
    if (threads == 0)
        threads = hardwareThreads();
    obs::Registry &reg = metrics ? *metrics : obs::Registry::global();
    pendingGauge_ = &reg.gauge("threadpool.tasks.pending");
    executedTotal_ = &reg.counter("threadpool.tasks.executed");
    workers_.resize(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_[i].executed =
            &reg.counter(strprintf("threadpool.thread%02u.tasks", i));
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx_);
        idleCv_.wait(lock, [this] { return pending_ == 0; });
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    BSYN_ASSERT(task != nullptr, "thread_pool: null task");
    {
        std::lock_guard<std::mutex> lock(mtx_);
        BSYN_ASSERT(!stopping_, "thread_pool: submit after shutdown");
        // Round-robin across worker deques; thieves rebalance whatever
        // skew the distribution leaves.
        workers_[nextVictim_ % workers_.size()].tasks.push_back(
            std::move(task));
        ++nextVictim_;
        ++pending_;
        pendingGauge_->set(static_cast<int64_t>(pending_));
    }
    workCv_.notify_one();
}

bool
ThreadPool::takeLocked(size_t self, Task &out)
{
    if (!workers_[self].tasks.empty()) {
        out = std::move(workers_[self].tasks.back());
        workers_[self].tasks.pop_back();
        return true;
    }
    size_t n = workers_.size();
    for (size_t k = 1; k < n; ++k) {
        Worker &victim = workers_[(self + k) % n];
        if (victim.tasks.empty())
            continue;
        out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    tlsWorkerPool = this;
    std::unique_lock<std::mutex> lock(mtx_);
    for (;;) {
        Task task;
        if (takeLocked(self, task)) {
            lock.unlock();
            // parallelFor routes exceptions to the caller; a throwing
            // task submitted directly is a bug, but don't take down the
            // worker (and the pool's completion accounting) for it.
            try {
                task();
            } catch (const std::exception &e) {
                warn("thread_pool: task threw: %s", e.what());
            } catch (...) {
                warn("thread_pool: task threw a non-exception");
            }
            task = nullptr; // drop captures before signalling completion
            workers_[self].executed->add();
            executedTotal_->add();
            lock.lock();
            pendingGauge_->set(static_cast<int64_t>(pending_ - 1));
            if (--pending_ == 0)
                idleCv_.notify_all();
            continue;
        }
        if (stopping_)
            return;
        workCv_.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;

    // Nested use: a task calling parallelFor on its own pool would
    // enqueue work and then block in wait() on a thread the pool needs
    // to run that work — a self-deadlock on narrow pools. Run inline
    // instead; the caller is already on a worker, so this just keeps
    // that worker busy.
    if (tlsWorkerPool == this) {
        std::exception_ptr firstError;
        for (size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
        if (firstError)
            std::rethrow_exception(firstError);
        return;
    }

    std::mutex errMtx;
    std::exception_ptr firstError;
    for (size_t i = 0; i < n; ++i) {
        submit([&, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMtx);
                if (!firstError)
                    firstError = std::current_exception();
            }
        });
    }
    wait();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace bsyn
