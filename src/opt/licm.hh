/**
 * @file
 * Loop-invariant code motion: pure computations whose operands are not
 * redefined inside a natural loop are hoisted into a freshly created
 * preheader. In front-end output this primarily lifts constant
 * materialization and invariant address arithmetic out of hot loops.
 */

#ifndef BSYN_OPT_LICM_HH
#define BSYN_OPT_LICM_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Hoist invariants out of @p fn's loops. @return changed. */
bool hoistLoopInvariants(ir::Function &fn);

/** Run on every function. @return changed. */
bool hoistLoopInvariants(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_LICM_HH
