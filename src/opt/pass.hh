/**
 * @file
 * Optimization pass interfaces and shared CFG surgery utilities.
 *
 * The optimizer models the paper's "compiler space": the MiniC front end
 * emits -O0-shaped code, and the pass pipelines defined in
 * opt/pipeline.hh reproduce the behaviour of -O1/-O2/-O3 (frame-traffic
 * elimination, redundancy removal, invariant hoisting, scheduling,
 * inlining) that the paper's Figures 5, 6 and 11 measure.
 */

#ifndef BSYN_OPT_PASS_HH
#define BSYN_OPT_PASS_HH

#include <string>

#include "ir/module.hh"

namespace bsyn::opt
{

/** A function-level transformation. @return true if anything changed. */
using FunctionPass = bool (*)(ir::Function &fn, ir::Module &mod);

/**
 * Remove unreachable blocks and renumber the survivors, rewriting all
 * terminator targets. @return true if blocks were removed.
 */
bool compactBlocks(ir::Function &fn);

/**
 * Merge chains: a block with a single Jmp successor whose target has a
 * single predecessor is merged into it; blocks containing only a Jmp are
 * bypassed (jump threading). @return true on change.
 */
bool simplifyCfg(ir::Function &fn);

/** Count definitions of each register across the function. */
std::vector<int> countDefs(const ir::Function &fn);

} // namespace bsyn::opt

#endif // BSYN_OPT_PASS_HH
