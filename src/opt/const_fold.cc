#include "opt/const_fold.hh"

#include <cmath>
#include <map>
#include <set>

#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;
using ir::Terminator;
using ir::Type;

namespace
{

struct ConstVal
{
    bool isFloat = false;
    uint32_t i = 0;
    double f = 0.0;
};

bool
isPow2(uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

int
log2u(uint32_t v)
{
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Evaluate an integer binary op on constants (mirrors the interpreter). */
uint32_t
evalInt(Opcode op, Type t, uint32_t a, uint32_t b)
{
    bool s = t == Type::I32;
    int32_t sa = static_cast<int32_t>(a), sb = static_cast<int32_t>(b);
    switch (op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      case Opcode::Div:
        if (b == 0)
            return 0;
        if (s)
            return sa == INT32_MIN && sb == -1
                       ? static_cast<uint32_t>(INT32_MIN)
                       : static_cast<uint32_t>(sa / sb);
        return a / b;
      case Opcode::Rem:
        if (b == 0)
            return 0;
        if (s)
            return sa == INT32_MIN && sb == -1
                       ? 0
                       : static_cast<uint32_t>(sa % sb);
        return a % b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Shl: return a << (b & 31);
      case Opcode::Shr:
        return s ? static_cast<uint32_t>(sa >> (b & 31)) : a >> (b & 31);
      case Opcode::CmpEq: return a == b;
      case Opcode::CmpNe: return a != b;
      case Opcode::CmpLt: return s ? sa < sb : a < b;
      case Opcode::CmpLe: return s ? sa <= sb : a <= b;
      case Opcode::CmpGt: return s ? sa > sb : a > b;
      case Opcode::CmpGe: return s ? sa >= sb : a >= b;
      default: panic("evalInt: bad opcode");
    }
}

double
evalFp(Opcode op, double a, double b)
{
    switch (op) {
      case Opcode::FAdd: return a + b;
      case Opcode::FSub: return a - b;
      case Opcode::FMul: return a * b;
      case Opcode::FDiv: return b == 0.0 ? 0.0 : a / b;
      default: panic("evalFp: bad opcode");
    }
}

class BlockFolder
{
  public:
    BlockFolder(ir::Function &fn, ir::BasicBlock &bb,
                const FoldOptions &opts)
        : func(fn), block(bb), options(opts)
    {}

    bool
    run()
    {
        for (auto &in : block.insts)
            foldInst(in);
        foldTerminator();
        return changed;
    }

  private:
    void
    define(int reg, const ConstVal &v)
    {
        consts[reg] = v;
        boolValued.erase(reg);
    }

    void
    kill(int reg)
    {
        consts.erase(reg);
        boolValued.erase(reg);
    }

    bool
    getConst(int reg, ConstVal &out) const
    {
        auto it = consts.find(reg);
        if (it == consts.end())
            return false;
        out = it->second;
        return true;
    }

    void
    replaceWithMovImm(Instruction &in, Type t, uint32_t iv, double fv)
    {
        int dst = in.dst;
        if (t == Type::F64)
            in = Instruction::movFImm(dst, fv);
        else
            in = Instruction::movImm(dst, static_cast<int32_t>(iv), t);
        changed = true;
    }

    void
    foldInst(Instruction &in)
    {
        // Track constants from immediates.
        if (in.op == Opcode::MovImm) {
            ConstVal v;
            if (in.type == Type::F64) {
                v.isFloat = true;
                v.f = in.fimm;
            } else {
                v.i = static_cast<uint32_t>(in.imm);
            }
            define(in.dst, v);
            return;
        }

        if (in.op == Opcode::Mov) {
            ConstVal v;
            if (getConst(in.src0, v)) {
                replaceWithMovImm(in, v.isFloat ? Type::F64 : in.type, v.i,
                                  v.f);
                define(in.dst, v);
            } else {
                if (boolValued.count(in.src0))
                    boolValued.insert(in.dst);
                else
                    boolValued.erase(in.dst);
                consts.erase(in.dst);
            }
            return;
        }

        if (ir::isBinaryAlu(in.op)) {
            foldBinary(in);
            return;
        }

        if (in.op == Opcode::Neg || in.op == Opcode::Not) {
            ConstVal v;
            if (getConst(in.src0, v) && !v.isFloat) {
                uint32_t r = in.op == Opcode::Neg
                                 ? static_cast<uint32_t>(
                                       -static_cast<int64_t>(
                                           static_cast<int32_t>(v.i)))
                                 : ~v.i;
                ConstVal nv;
                nv.i = r;
                replaceWithMovImm(in, in.type, r, 0.0);
                define(in.dst, nv);
                return;
            }
        } else if (in.op == Opcode::FNeg) {
            ConstVal v;
            if (getConst(in.src0, v) && v.isFloat) {
                ConstVal nv;
                nv.isFloat = true;
                nv.f = -v.f;
                replaceWithMovImm(in, Type::F64, 0, nv.f);
                define(in.dst, nv);
                return;
            }
        } else if (in.op == Opcode::CvtIF) {
            ConstVal v;
            if (getConst(in.src0, v) && !v.isFloat) {
                ConstVal nv;
                nv.isFloat = true;
                nv.f = in.type == Type::U32
                           ? double(v.i)
                           : double(static_cast<int32_t>(v.i));
                replaceWithMovImm(in, Type::F64, 0, nv.f);
                define(in.dst, nv);
                return;
            }
        }

        if (in.dst >= 0)
            kill(in.dst);
    }

    void
    foldBinary(Instruction &in)
    {
        ConstVal a, b;
        bool ca = getConst(in.src0, a);
        bool cb = getConst(in.src1, b);

        if (in.type == Type::F64 && !ir::isCompare(in.op)) {
            if (ca && cb && a.isFloat && b.isFloat) {
                ConstVal nv;
                nv.isFloat = true;
                nv.f = evalFp(in.op, a.f, b.f);
                replaceWithMovImm(in, Type::F64, 0, nv.f);
                define(in.dst, nv);
                return;
            }
            kill(in.dst);
            return;
        }
        if (in.type == Type::F64 && ir::isCompare(in.op)) {
            if (ca && cb && a.isFloat && b.isFloat) {
                double x = a.f, y = b.f;
                bool r = false;
                switch (in.op) {
                  case Opcode::CmpEq: r = x == y; break;
                  case Opcode::CmpNe: r = x != y; break;
                  case Opcode::CmpLt: r = x < y; break;
                  case Opcode::CmpLe: r = x <= y; break;
                  case Opcode::CmpGt: r = x > y; break;
                  case Opcode::CmpGe: r = x >= y; break;
                  default: break;
                }
                ConstVal nv;
                nv.i = r;
                replaceWithMovImm(in, Type::I32, r, 0.0);
                define(in.dst, nv);
                boolValued.insert(in.dst);
                return;
            }
            kill(in.dst);
            boolValued.insert(in.dst);
            return;
        }

        // Integer ops.
        if (ca && cb && !a.isFloat && !b.isFloat) {
            uint32_t r = evalInt(in.op, in.type, a.i, b.i);
            ConstVal nv;
            nv.i = r;
            replaceWithMovImm(in, ir::isCompare(in.op) ? Type::I32
                                                       : in.type,
                              r, 0.0);
            define(in.dst, nv);
            if (ir::isCompare(in.op))
                boolValued.insert(in.dst);
            return;
        }

        // Bool simplification: (x != 0) where x is already 0/1 -> mov.
        if (in.op == Opcode::CmpNe && cb && !b.isFloat && b.i == 0 &&
            boolValued.count(in.src0)) {
            int src = in.src0;
            int dst = in.dst;
            in = Instruction::mov(dst, src, Type::I32);
            changed = true;
            consts.erase(dst);
            boolValued.insert(dst);
            return;
        }

        // Algebraic identities with one constant operand.
        if (!ir::isCompare(in.op) && (ca || cb) &&
            !(ca && a.isFloat) && !(cb && b.isFloat)) {
            if (simplifyAlgebraic(in, ca, a, cb, b))
                return;
        }

        if (in.dst >= 0) {
            kill(in.dst);
            if (ir::isCompare(in.op))
                boolValued.insert(in.dst);
        }
    }

    /** x+0, x-0, x*1, x*0, x/1, x&0, x|0, x^0, shifts by 0, pow2 tricks. */
    bool
    simplifyAlgebraic(Instruction &in, bool ca, const ConstVal &a, bool cb,
                      const ConstVal &b)
    {
        int dst = in.dst;
        auto toMov = [&](int src) {
            in = Instruction::mov(dst, src, in.type);
            changed = true;
            kill(dst);
            return true;
        };
        auto toZero = [&]() {
            in = Instruction::movImm(dst, 0, in.type);
            ConstVal z;
            define(dst, z);
            changed = true;
            return true;
        };

        uint32_t k = cb ? b.i : a.i;
        switch (in.op) {
          case Opcode::Add:
          case Opcode::Or:
          case Opcode::Xor:
            if (cb && k == 0)
                return toMov(in.src0);
            if (ca && k == 0)
                return toMov(in.src1);
            break;
          case Opcode::Sub:
          case Opcode::Shl:
          case Opcode::Shr:
            if (cb && k == 0)
                return toMov(in.src0);
            break;
          case Opcode::And:
            if ((cb && k == 0) || (ca && k == 0))
                return toZero();
            break;
          case Opcode::Mul:
            if ((cb && k == 0) || (ca && k == 0))
                return toZero();
            if (cb && k == 1)
                return toMov(in.src0);
            if (ca && k == 1)
                return toMov(in.src1);
            if (options.strengthReduction && cb && isPow2(k)) {
                // mul by 2^n -> shl (valid for wrapping arithmetic).
                int src = in.src0;
                int sh = func.newReg();
                Instruction mk =
                    Instruction::movImm(sh, log2u(k), Type::I32);
                Instruction shl = Instruction::binary(Opcode::Shl, in.type,
                                                      dst, src, sh);
                in = shl;
                pendingPrefix.push_back(mk);
                changed = true;
                kill(dst);
                return true;
            }
            break;
          case Opcode::Div:
            if (cb && k == 1)
                return toMov(in.src0);
            if (options.strengthReduction && cb && isPow2(k) &&
                in.type == Type::U32) {
                int src = in.src0;
                int sh = func.newReg();
                pendingPrefix.push_back(
                    Instruction::movImm(sh, log2u(k), Type::I32));
                in = Instruction::binary(Opcode::Shr, Type::U32, dst, src,
                                         sh);
                changed = true;
                kill(dst);
                return true;
            }
            break;
          case Opcode::Rem:
            if (options.strengthReduction && cb && isPow2(k) &&
                in.type == Type::U32) {
                int src = in.src0;
                int msk = func.newReg();
                pendingPrefix.push_back(Instruction::movImm(
                    msk, static_cast<int32_t>(k - 1), Type::U32));
                in = Instruction::binary(Opcode::And, Type::U32, dst, src,
                                         msk);
                changed = true;
                kill(dst);
                return true;
            }
            break;
          default:
            break;
        }
        return false;
    }

    void
    foldTerminator()
    {
        if (block.term.kind != Terminator::Kind::Br)
            return;
        ConstVal v;
        if (getConst(block.term.cond, v) && !v.isFloat) {
            int tgt = v.i != 0 ? block.term.target
                               : block.term.fallthrough;
            block.term = Terminator::jmp(tgt);
            changed = true;
        }
    }

  public:
    /** Helper immediates (shift counts/masks) to prepend to the block. */
    std::vector<Instruction> pendingPrefix;

  private:
    ir::Function &func;
    ir::BasicBlock &block;
    const FoldOptions &options;
    std::map<int, ConstVal> consts;
    std::set<int> boolValued;
    bool changed = false;
};

} // namespace

bool
foldConstants(ir::Function &fn, const FoldOptions &opts)
{
    bool changed = false;
    for (auto &bb : fn.blocks) {
        BlockFolder folder(fn, bb, opts);
        changed |= folder.run();
        if (!folder.pendingPrefix.empty()) {
            // Strength-reduction helpers (shift counts, masks) only
            // define fresh registers, so hoisting them to the block head
            // keeps them ahead of their single consumer.
            std::vector<Instruction> out;
            out.reserve(bb.insts.size() + folder.pendingPrefix.size());
            out.insert(out.end(), folder.pendingPrefix.begin(),
                       folder.pendingPrefix.end());
            out.insert(out.end(), bb.insts.begin(), bb.insts.end());
            bb.insts = std::move(out);
        }
    }
    return changed;
}

bool
foldConstants(ir::Module &mod, const FoldOptions &opts)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= foldConstants(fn, opts);
    return changed;
}

} // namespace bsyn::opt
