/**
 * @file
 * Module-level control-flow cleanup: jump threading, straight-line block
 * merging and unreachable-block removal (see pass.hh for the underlying
 * per-function utilities).
 */

#ifndef BSYN_OPT_SIMPLIFY_HH
#define BSYN_OPT_SIMPLIFY_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Run CFG simplification to a fixpoint on @p fn. @return changed. */
bool simplifyControlFlow(ir::Function &fn);

/** Run on every function. @return changed. */
bool simplifyControlFlow(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_SIMPLIFY_HH
