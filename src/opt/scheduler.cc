#include "opt/scheduler.hh"

#include <algorithm>

#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;

namespace
{

/** Rough latency estimate for prioritization. */
int
latencyOf(const Instruction &in)
{
    switch (in.op) {
      case Opcode::Mul: return 3;
      case Opcode::Div:
      case Opcode::Rem: return 20;
      case Opcode::FMul: return 5;
      case Opcode::FDiv: return 20;
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::CvtIF:
      case Opcode::CvtFI: return 3;
      case Opcode::Load: return 3;
      default: return 1;
    }
}

bool
hasBarrier(const Instruction &in)
{
    return in.op == Opcode::Call || in.op == Opcode::Print;
}

bool
scheduleBlock(ir::BasicBlock &bb)
{
    size_t n = bb.insts.size();
    if (n < 3)
        return false;

    // Dependence edges i -> j (i must precede j).
    std::vector<std::vector<int>> succs(n);
    std::vector<int> pred_count(n, 0);

    auto addEdge = [&](size_t i, size_t j) {
        succs[i].push_back(static_cast<int>(j));
        ++pred_count[j];
    };

    for (size_t j = 0; j < n; ++j) {
        const Instruction &b = bb.insts[j];
        for (size_t i = 0; i < j; ++i) {
            const Instruction &a = bb.insts[i];
            bool dep = false;
            // RAW: b reads a's dst.
            if (a.dst >= 0) {
                b.forEachSrc([&](int r) {
                    if (r == a.dst)
                        dep = true;
                });
                // WAW.
                if (b.dst == a.dst)
                    dep = true;
            }
            // WAR: b writes a register a reads.
            if (b.dst >= 0) {
                a.forEachSrc([&](int r) {
                    if (r == b.dst)
                        dep = true;
                });
            }
            // Memory: keep stores ordered with all other memory ops.
            if ((a.op == Opcode::Store &&
                 (b.op == Opcode::Load || b.op == Opcode::Store)) ||
                (b.op == Opcode::Store &&
                 (a.op == Opcode::Load || a.op == Opcode::Store)))
                dep = true;
            // Side-effect barriers stay in place relative to everything.
            if (hasBarrier(a) || hasBarrier(b))
                dep = true;
            if (dep)
                addEdge(i, j);
        }
    }

    // Heights (critical path to the end of the block).
    std::vector<int> height(n, 0);
    for (size_t i = n; i-- > 0;) {
        int h = 0;
        for (int s : succs[i])
            h = std::max(h, height[static_cast<size_t>(s)]);
        height[i] = h + latencyOf(bb.insts[i]);
    }

    // Greedy list scheduling: ready set ordered by (height desc, index).
    std::vector<int> order;
    order.reserve(n);
    std::vector<bool> emitted(n, false);
    std::vector<int> remaining = pred_count;
    for (size_t count = 0; count < n; ++count) {
        int best = -1;
        for (size_t i = 0; i < n; ++i) {
            if (emitted[i] || remaining[i] != 0)
                continue;
            if (best < 0 ||
                height[i] > height[static_cast<size_t>(best)] ||
                (height[i] == height[static_cast<size_t>(best)] &&
                 static_cast<int>(i) < best))
                best = static_cast<int>(i);
        }
        BSYN_ASSERT(best >= 0, "scheduler: dependence cycle");
        emitted[static_cast<size_t>(best)] = true;
        order.push_back(best);
        for (int s : succs[static_cast<size_t>(best)])
            --remaining[static_cast<size_t>(s)];
    }

    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
        if (order[i] != static_cast<int>(i)) {
            changed = true;
            break;
        }
    }
    if (!changed)
        return false;

    std::vector<Instruction> scheduled;
    scheduled.reserve(n);
    for (int idx : order)
        scheduled.push_back(std::move(bb.insts[static_cast<size_t>(idx)]));
    bb.insts = std::move(scheduled);
    return true;
}

} // namespace

bool
scheduleBlocks(ir::Function &fn)
{
    bool changed = false;
    for (auto &bb : fn.blocks)
        changed |= scheduleBlock(bb);
    return changed;
}

bool
scheduleBlocks(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= scheduleBlocks(fn);
    return changed;
}

} // namespace bsyn::opt
