/**
 * @file
 * Promotion of scalar frame slots to virtual registers — the decisive
 * -O0 to -O1 transformation. The front end keeps every local variable in
 * memory; this pass rewrites exact, unaliased scalar slot accesses into
 * register moves, which copy propagation and DCE then dissolve. This is
 * where the paper's observed ~1/3 dynamic-instruction-count reduction
 * from -O0 to higher levels comes from (Fig 5), along with the drop in
 * load fraction (Fig 6).
 */

#ifndef BSYN_OPT_MEM2REG_HH
#define BSYN_OPT_MEM2REG_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Promote eligible scalar frame slots of @p fn. @return changed. */
bool promoteFrameSlots(ir::Function &fn);

/** Run promoteFrameSlots on every function. @return changed. */
bool promoteFrameSlots(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_MEM2REG_HH
