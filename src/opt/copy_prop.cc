#include "opt/copy_prop.hh"

#include <map>

#include "ir/cfg.hh"
#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;

namespace
{

/**
 * Forward copy propagation within one block: after "mov d, s", uses of d
 * read s instead, until either d or s is redefined.
 */
bool
propagateBlock(ir::BasicBlock &bb)
{
    bool changed = false;
    std::map<int, int> copy_of; // dst -> source while valid

    auto invalidate = [&](int reg) {
        copy_of.erase(reg);
        for (auto it = copy_of.begin(); it != copy_of.end();) {
            if (it->second == reg)
                it = copy_of.erase(it);
            else
                ++it;
        }
    };
    auto root = [&](int reg) {
        // Follow the chain (a -> b -> c) with a cycle guard.
        int steps = 0;
        while (steps++ < 16) {
            auto it = copy_of.find(reg);
            if (it == copy_of.end())
                return reg;
            reg = it->second;
        }
        return reg;
    };

    for (auto &in : bb.insts) {
        int before_src0 = in.src0;
        in.mapSrcs([&](int r) { return root(r); });
        if (in.src0 != before_src0)
            changed = true;

        if (in.dst >= 0) {
            invalidate(in.dst);
            if (in.op == Opcode::Mov && in.src0 != in.dst)
                copy_of[in.dst] = in.src0;
        }
    }

    // Terminator uses.
    if (bb.term.kind == ir::Terminator::Kind::Br && bb.term.cond >= 0) {
        int r = root(bb.term.cond);
        if (r != bb.term.cond) {
            bb.term.cond = r;
            changed = true;
        }
    }
    if (bb.term.kind == ir::Terminator::Kind::Ret && bb.term.retReg >= 0) {
        int r = root(bb.term.retReg);
        if (r != bb.term.retReg) {
            bb.term.retReg = r;
            changed = true;
        }
    }
    return changed;
}

/**
 * Backward copy coalescing: for the adjacent pair
 *     t = <pure op ...>
 *     mov d, t
 * where t is dead afterwards, write the op's result directly into d and
 * drop the move. This turns "x = x + 1" from two instructions into one,
 * matching what a register allocator's coalescer produces.
 */
bool
coalesceBlock(ir::BasicBlock &bb, const ir::Liveness &live)
{
    bool changed = false;
    for (size_t i = 0; i + 1 < bb.insts.size(); ++i) {
        Instruction &a = bb.insts[i];
        Instruction &b = bb.insts[i + 1];
        if (b.op != Opcode::Mov || a.dst < 0 || b.src0 != a.dst ||
            b.dst == a.dst)
            continue;
        if (a.op == Opcode::Call || a.op == Opcode::Print)
            continue;
        int t = a.dst;
        int d = b.dst;
        // t must die at the mov: not used later in the block, not used
        // by the terminator, not live out.
        bool t_used_later = false;
        for (size_t j = i + 2; j < bb.insts.size() && !t_used_later; ++j) {
            bb.insts[j].forEachSrc([&](int r) {
                if (r == t)
                    t_used_later = true;
            });
            if (bb.insts[j].dst == t)
                break; // redefined; earlier uses checked already
        }
        if (t_used_later)
            continue;
        if ((bb.term.kind == ir::Terminator::Kind::Br &&
             bb.term.cond == t) ||
            (bb.term.kind == ir::Terminator::Kind::Ret &&
             bb.term.retReg == t))
            continue;
        if (live.liveOut(bb.id, t))
            continue;
        // d must not be read between a and the mov (there is nothing
        // between them) and a must not read d (we would clobber it).
        bool a_reads_d = false;
        a.forEachSrc([&](int r) {
            if (r == d)
                a_reads_d = true;
        });
        if (a_reads_d)
            continue;
        a.dst = d;
        b = Instruction();
        b.op = Opcode::Nop;
        changed = true;
    }
    if (changed) {
        std::vector<Instruction> kept;
        kept.reserve(bb.insts.size());
        for (auto &in : bb.insts)
            if (in.op != Opcode::Nop)
                kept.push_back(std::move(in));
        bb.insts = std::move(kept);
    }
    return changed;
}

} // namespace

bool
propagateCopies(ir::Function &fn)
{
    bool changed = false;
    for (auto &bb : fn.blocks)
        changed |= propagateBlock(bb);

    ir::Cfg cfg(fn);
    ir::Liveness live(fn, cfg);
    for (auto &bb : fn.blocks)
        changed |= coalesceBlock(bb, live);
    return changed;
}

bool
propagateCopies(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= propagateCopies(fn);
    return changed;
}

} // namespace bsyn::opt
