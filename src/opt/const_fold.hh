/**
 * @file
 * Local constant folding, algebraic simplification, strength reduction
 * and branch folding over block-local constant knowledge.
 */

#ifndef BSYN_OPT_CONST_FOLD_HH
#define BSYN_OPT_CONST_FOLD_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Options for the folding pass. */
struct FoldOptions
{
    /** Rewrite mul/div/rem by powers of two into shifts/masks (-O2). */
    bool strengthReduction = false;
};

/** Fold within each block of @p fn. @return changed. */
bool foldConstants(ir::Function &fn, const FoldOptions &opts = {});

/** Run on every function. @return changed. */
bool foldConstants(ir::Module &mod, const FoldOptions &opts = {});

} // namespace bsyn::opt

#endif // BSYN_OPT_CONST_FOLD_HH
