#include "opt/mem2reg.hh"

#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::MemRef;
using ir::Opcode;
using ir::Type;

namespace
{

/** Find the frame slot covering byte offset @p off, or -1. */
int
slotAt(const ir::Function &fn, int64_t off)
{
    for (size_t i = 0; i < fn.frame.size(); ++i) {
        const ir::FrameSlot &s = fn.frame[i];
        int64_t begin = s.offset;
        int64_t end = begin + int64_t(ir::typeSize(s.elemType)) * s.elems;
        if (off >= begin && off < end)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace

bool
promoteFrameSlots(ir::Function &fn)
{
    if (fn.frame.empty())
        return false;

    // Pass 1: find which scalar slots are accessed only exactly
    // (constant offset at the slot start, matching access size, no
    // index register).
    std::vector<bool> promotable(fn.frame.size(), false);
    for (size_t i = 0; i < fn.frame.size(); ++i)
        promotable[i] = fn.frame[i].elems == 1;

    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (!in.touchesMemory() ||
                in.mem.symbol != MemRef::frameBase)
                continue;
            int slot = slotAt(fn, in.mem.offset);
            if (slot < 0) {
                // Access outside any slot: be conservative, promote
                // nothing in this function.
                return false;
            }
            const ir::FrameSlot &s = fn.frame[static_cast<size_t>(slot)];
            bool exact = !in.mem.hasIndex() &&
                         in.mem.offset == static_cast<int32_t>(s.offset) &&
                         ir::typeSize(in.type) == ir::typeSize(s.elemType);
            if (!exact && s.elems == 1)
                promotable[static_cast<size_t>(slot)] = false;
        }
    }

    bool any = false;
    for (size_t i = 0; i < fn.frame.size(); ++i)
        if (promotable[i])
            any = true;
    if (!any)
        return false;

    // Pass 2: one register per promoted slot; rewrite accesses.
    std::vector<int> slotReg(fn.frame.size(), -1);
    for (size_t i = 0; i < fn.frame.size(); ++i)
        if (promotable[i])
            slotReg[i] = fn.newReg();

    for (auto &bb : fn.blocks) {
        for (auto &in : bb.insts) {
            if (!in.touchesMemory() ||
                in.mem.symbol != MemRef::frameBase)
                continue;
            int slot = slotAt(fn, in.mem.offset);
            BSYN_ASSERT(slot >= 0, "mem2reg: unmapped frame access");
            int reg = slotReg[static_cast<size_t>(slot)];
            if (reg < 0)
                continue;
            if (in.op == Opcode::Load) {
                in = Instruction::mov(in.dst, reg, in.type);
            } else {
                in = Instruction::mov(reg, in.src0, in.type);
            }
        }
    }

    // Note: the promoted slots stay in the frame layout (harmless dead
    // space); removing them would invalidate other slots' offsets.
    return true;
}

bool
promoteFrameSlots(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= promoteFrameSlots(fn);
    return changed;
}

} // namespace bsyn::opt
