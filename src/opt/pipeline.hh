/**
 * @file
 * Optimization-level pipelines: the framework's model of -O0/-O1/-O2/-O3.
 *
 *   O0  nothing (the front end's frame-slot-per-local shape survives)
 *   O1  mem2reg, copy propagation, constant folding, DCE, CFG cleanup
 *   O2  O1 + local CSE, LICM, strength reduction (+ list scheduling on
 *       in-order targets)
 *   O3  O2 + inlining of small functions, then the O2 pipeline again
 */

#ifndef BSYN_OPT_PIPELINE_HH
#define BSYN_OPT_PIPELINE_HH

#include <string>

#include "ir/module.hh"

namespace bsyn::opt
{

/** Compiler optimization levels, mirroring GCC's -O flags. */
enum class OptLevel : uint8_t { O0, O1, O2, O3 };

/** @return "O0".."O3". */
const char *optLevelName(OptLevel level);

/** Parse "O0".."O3" / "-O0".."-O3"; fatal() otherwise. */
OptLevel optLevelByName(const std::string &name);

/** Pipeline configuration knobs (ablation switches). */
struct OptOptions
{
    /** Schedule for an in-order (EPIC) target: run the list scheduler.
     *  Out-of-order targets skip it (and keep fusion-friendly order). */
    bool scheduleForInOrder = false;

    /** Allow inlining at O3. */
    bool enableInlining = true;

    /** Maximum callee size (IR instructions) considered for inlining. */
    size_t inlineThreshold = 40;
};

/**
 * Optimize @p mod in place at @p level.
 *
 * @return number of pipeline iterations that changed something.
 */
int optimize(ir::Module &mod, OptLevel level, const OptOptions &opts = {});

/**
 * Inline calls to small non-recursive functions (exposed separately for
 * tests and ablations). @return number of call sites inlined.
 */
int inlineSmallFunctions(ir::Module &mod, size_t max_callee_insts);

} // namespace bsyn::opt

#endif // BSYN_OPT_PIPELINE_HH
