#include "opt/licm.hh"

#include <algorithm>
#include <set>

#include "ir/cfg.hh"
#include "ir/loops.hh"
#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;
using ir::Terminator;

namespace
{

/**
 * Process one loop of @p fn: create a preheader and hoist what is safe.
 * @return true on change. The caller recomputes analyses afterwards.
 */
bool
processLoop(ir::Function &fn, int loop_header,
            const std::vector<int> &loop_blocks,
            const std::vector<int> &latches)
{
    std::set<int> in_loop(loop_blocks.begin(), loop_blocks.end());
    std::set<int> latch_set(latches.begin(), latches.end());

    // Registers defined inside the loop, with definition counts.
    std::vector<int> def_count(fn.numRegs, 0);
    for (int b : loop_blocks)
        for (const auto &in : fn.block(b).insts)
            if (in.dst >= 0)
                ++def_count[static_cast<size_t>(in.dst)];

    ir::Cfg cfg(fn);
    ir::Dominators dom(fn, cfg);
    ir::Liveness live(fn, cfg);

    // A block qualifies as a hoist source if it executes on every
    // iteration: it must dominate every latch.
    auto executesEveryIteration = [&](int b) {
        for (int l : latches)
            if (!dom.dominates(b, l))
                return false;
        return true;
    };

    // Collect hoistable instructions (iterate to fixpoint so chains of
    // invariants hoist together).
    std::vector<std::pair<int, size_t>> hoists; // (block, index)
    std::set<std::pair<int, size_t>> hoisted;
    bool grew = true;
    std::vector<int> remaining_defs = def_count;
    while (grew) {
        grew = false;
        for (int b : loop_blocks) {
            if (!executesEveryIteration(b))
                continue;
            const auto &insts = fn.block(b).insts;
            for (size_t i = 0; i < insts.size(); ++i) {
                if (hoisted.count({b, i}))
                    continue;
                const Instruction &in = insts[i];
                if (in.dst < 0 || !ir::isPure(in.op))
                    continue;
                if (remaining_defs[static_cast<size_t>(in.dst)] != 1)
                    continue;
                // The destination must not carry a value into the loop
                // from outside (hoisting would clobber it pre-loop).
                if (live.liveIn(loop_header, in.dst)) {
                    // ... unless the only reaching def is this one, which
                    // we cannot prove cheaply; skip.
                    continue;
                }
                bool invariant = true;
                in.forEachSrc([&](int r) {
                    if (remaining_defs[static_cast<size_t>(r)] > 0)
                        invariant = false;
                });
                if (!invariant)
                    continue;
                hoists.emplace_back(b, i);
                hoisted.insert({b, i});
                --remaining_defs[static_cast<size_t>(in.dst)];
                grew = true;
            }
        }
    }

    if (hoists.empty())
        return false;

    // Create the preheader: all non-latch predecessors of the header are
    // redirected to it.
    int pre = fn.newBlock();
    for (auto &bb : fn.blocks) {
        if (bb.id == pre || in_loop.count(bb.id))
            continue;
        if (bb.term.kind == Terminator::Kind::Jmp &&
            bb.term.target == loop_header)
            bb.term.target = pre;
        if (bb.term.kind == Terminator::Kind::Br) {
            if (bb.term.target == loop_header)
                bb.term.target = pre;
            if (bb.term.fallthrough == loop_header)
                bb.term.fallthrough = pre;
        }
    }
    fn.block(pre).term = Terminator::jmp(loop_header);

    // Move the instructions in discovery order: the fixpoint loop only
    // marks an instruction hoistable once all of its producers have been
    // marked, so discovery order is dependence-safe.
    for (const auto &[b, i] : hoists)
        fn.block(pre).append(fn.block(b).insts[i]);
    // Delete from their blocks in descending index order.
    std::vector<std::pair<int, size_t>> dels = hoists;
    std::sort(dels.begin(), dels.end());
    for (auto it = dels.rbegin(); it != dels.rend(); ++it) {
        auto &insts = fn.block(it->first).insts;
        insts.erase(insts.begin() + static_cast<long>(it->second));
    }
    return true;
}

} // namespace

bool
hoistLoopInvariants(ir::Function &fn)
{
    bool changed = false;
    // Loops are re-discovered after each change because preheader
    // creation invalidates block analyses.
    for (int round = 0; round < 8; ++round) {
        ir::Cfg cfg(fn);
        ir::Dominators dom(fn, cfg);
        ir::LoopForest loops(fn, cfg, dom);
        bool round_changed = false;
        // Innermost first (deepest loops have the hottest code).
        std::vector<const ir::Loop *> order;
        for (const auto &l : loops.loops())
            order.push_back(&l);
        std::sort(order.begin(), order.end(),
                  [](const ir::Loop *a, const ir::Loop *b) {
                      return a->depth > b->depth;
                  });
        for (const ir::Loop *l : order) {
            if (processLoop(fn, l->header, l->blocks, l->latches)) {
                round_changed = true;
                break; // CFG changed; recompute analyses
            }
        }
        if (!round_changed)
            break;
        changed = true;
    }
    return changed;
}

bool
hoistLoopInvariants(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= hoistLoopInvariants(fn);
    return changed;
}

} // namespace bsyn::opt
