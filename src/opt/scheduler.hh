/**
 * @file
 * Local list scheduling: reorders instructions within a basic block by
 * critical-path height so dependent operations are separated. On the
 * out-of-order cores this is nearly neutral; on the in-order EPIC target
 * it is decisive — the mechanism behind the paper's observation that
 * -O2/-O3 buy ~25% on Itanium 2 but little on the x86 machines (Fig 11).
 */

#ifndef BSYN_OPT_SCHEDULER_HH
#define BSYN_OPT_SCHEDULER_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** List-schedule every block of @p fn. @return changed. */
bool scheduleBlocks(ir::Function &fn);

/** Run on every function. @return changed. */
bool scheduleBlocks(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_SCHEDULER_HH
