#include "opt/cse.hh"

#include <map>
#include <tuple>

#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;

namespace
{

/** Value key: opcode, type, operands, immediate, memory ref, mem epoch. */
using Key = std::tuple<uint8_t, uint8_t, int, int, int64_t, int64_t, int,
                       int, int32_t, int32_t, uint64_t>;

Key
keyFor(const Instruction &in, uint64_t mem_epoch)
{
    int64_t imm = in.imm;
    int64_t fbits = 0;
    if (in.type == ir::Type::F64) {
        static_assert(sizeof(double) == sizeof(int64_t));
        __builtin_memcpy(&fbits, &in.fimm, sizeof(fbits));
    }
    bool is_load = in.op == Opcode::Load;
    return Key{static_cast<uint8_t>(in.op), static_cast<uint8_t>(in.type),
               in.src0, in.src1, imm, fbits,
               is_load ? in.mem.symbol : 0,
               is_load ? in.mem.indexReg : 0,
               is_load ? in.mem.scale : 0,
               is_load ? in.mem.offset : 0,
               is_load ? mem_epoch : 0};
}

bool
cseBlock(ir::BasicBlock &bb)
{
    bool changed = false;
    std::map<Key, int> available; // key -> register holding the value
    // Registers whose redefinition invalidates dependent entries.
    std::multimap<int, Key> users;
    uint64_t mem_epoch = 0;

    auto invalidateReg = [&](int reg) {
        auto range = users.equal_range(reg);
        for (auto it = range.first; it != range.second; ++it)
            available.erase(it->second);
        users.erase(range.first, range.second);
    };

    for (auto &in : bb.insts) {
        bool candidate = false;
        switch (in.op) {
          case Opcode::Load:
            candidate = true;
            break;
          case Opcode::Call:
          case Opcode::Print:
            break;
          case Opcode::Store:
            break;
          default:
            candidate = ir::isBinaryAlu(in.op) || ir::isUnaryAlu(in.op) ||
                        in.op == Opcode::MovImm;
            break;
        }
        // Mov is handled by copy propagation; re-CSEing it is harmful.
        if (in.op == Opcode::Mov)
            candidate = false;

        if (candidate && in.dst >= 0) {
            Key k = keyFor(in, mem_epoch);
            auto it = available.find(k);
            if (it != available.end() && it->second != in.dst) {
                int dst = in.dst;
                in = Instruction::mov(dst, it->second, in.type);
                changed = true;
                invalidateReg(dst);
                // The mov's destination now aliases the value; keep the
                // original register as the canonical holder.
            } else {
                int dst = in.dst;
                invalidateReg(dst);
                // If the result overwrites one of its own operands, the
                // key would describe the pre-update operand value, so it
                // must not be recorded.
                bool self_ref = false;
                in.forEachSrc([&](int r) {
                    if (r == dst)
                        self_ref = true;
                });
                if (!self_ref) {
                    available[k] = dst;
                    in.forEachSrc([&](int r) { users.emplace(r, k); });
                    users.emplace(dst, k);
                }
            }
            continue;
        }

        // Non-candidate instructions still invalidate.
        if (in.op == Opcode::Store || in.op == Opcode::Call) {
            // Conservatively kill all load-derived values.
            ++mem_epoch;
        }
        if (in.dst >= 0)
            invalidateReg(in.dst);
    }
    return changed;
}

} // namespace

bool
eliminateCommonSubexpressions(ir::Function &fn)
{
    bool changed = false;
    for (auto &bb : fn.blocks)
        changed |= cseBlock(bb);
    return changed;
}

bool
eliminateCommonSubexpressions(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= eliminateCommonSubexpressions(fn);
    return changed;
}

} // namespace bsyn::opt
