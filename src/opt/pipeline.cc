#include "opt/pipeline.hh"

#include "ir/verifier.hh"
#include "opt/const_fold.hh"
#include "opt/copy_prop.hh"
#include "opt/cse.hh"
#include "opt/dce.hh"
#include "opt/licm.hh"
#include "opt/mem2reg.hh"
#include "opt/scheduler.hh"
#include "opt/simplify.hh"
#include "support/error.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;
using ir::Terminator;

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::O0: return "O0";
      case OptLevel::O1: return "O1";
      case OptLevel::O2: return "O2";
      case OptLevel::O3: return "O3";
    }
    return "?";
}

OptLevel
optLevelByName(const std::string &name)
{
    std::string n = name;
    if (!n.empty() && n[0] == '-')
        n = n.substr(1);
    if (n == "O0") return OptLevel::O0;
    if (n == "O1") return OptLevel::O1;
    if (n == "O2") return OptLevel::O2;
    if (n == "O3") return OptLevel::O3;
    fatal("unknown optimization level '%s'", name.c_str());
}

namespace
{

/** @return true if @p fn contains no calls (inlining candidates only). */
bool
isLeaf(const ir::Function &fn)
{
    for (const auto &bb : fn.blocks)
        for (const auto &in : bb.insts)
            if (in.op == Opcode::Call)
                return false;
    return true;
}

/**
 * Inline one call site: the Call at @p call_idx in block @p bid of
 * @p caller, calling @p callee_id.
 */
void
inlineCallSite(ir::Module &mod, ir::Function &caller, int bid,
               size_t call_idx, int callee_id)
{
    const ir::Function &callee =
        mod.functions[static_cast<size_t>(callee_id)];

    int reg_offset = static_cast<int>(caller.numRegs);
    caller.numRegs += callee.numRegs;

    // Append the callee's frame below the caller's.
    uint32_t frame_offset = caller.frameSize;
    for (const auto &slot : callee.frame) {
        ir::FrameSlot s = slot;
        s.offset += frame_offset;
        s.name = callee.name + "." + s.name;
        caller.frame.push_back(s);
    }
    caller.frameSize += callee.frameSize;

    // Allocate new blocks: one per callee block, plus the continuation.
    std::vector<int> block_map(callee.blocks.size());
    for (size_t i = 0; i < callee.blocks.size(); ++i)
        block_map[i] = caller.newBlock();
    int cont = caller.newBlock();

    // Split the calling block.
    Instruction call = caller.block(bid).insts[call_idx];
    {
        ir::BasicBlock &bb = caller.block(bid);
        std::vector<Instruction> head(bb.insts.begin(),
                                      bb.insts.begin() +
                                          static_cast<long>(call_idx));
        std::vector<Instruction> tail(bb.insts.begin() +
                                          static_cast<long>(call_idx) + 1,
                                      bb.insts.end());
        caller.block(cont).insts = std::move(tail);
        caller.block(cont).term = bb.term;
        bb.insts = std::move(head);
        // Argument copies into the callee's parameter registers.
        for (size_t a = 0; a < call.args.size(); ++a) {
            bb.append(Instruction::mov(reg_offset + static_cast<int>(a),
                                       call.args[a],
                                       callee.paramTypes[a]));
        }
        bb.term = Terminator::jmp(block_map[0]);
    }

    // Clone the callee body.
    for (size_t i = 0; i < callee.blocks.size(); ++i) {
        const ir::BasicBlock &src = callee.blocks[i];
        ir::BasicBlock &dst = caller.block(block_map[i]);
        for (Instruction in : src.insts) {
            if (in.dst >= 0)
                in.dst += reg_offset;
            in.mapSrcs([&](int r) { return r + reg_offset; });
            if (in.touchesMemory() &&
                in.mem.symbol == ir::MemRef::frameBase)
                in.mem.offset += static_cast<int32_t>(frame_offset);
            dst.append(std::move(in));
        }
        switch (src.term.kind) {
          case Terminator::Kind::Jmp:
            dst.term = Terminator::jmp(block_map[
                static_cast<size_t>(src.term.target)]);
            break;
          case Terminator::Kind::Br:
            dst.term = Terminator::br(
                src.term.cond + reg_offset,
                block_map[static_cast<size_t>(src.term.target)],
                block_map[static_cast<size_t>(src.term.fallthrough)]);
            break;
          case Terminator::Kind::Ret:
            if (call.dst >= 0 && src.term.retReg >= 0) {
                dst.append(Instruction::mov(call.dst,
                                            src.term.retReg + reg_offset,
                                            callee.retType));
            }
            dst.term = Terminator::jmp(cont);
            break;
          case Terminator::Kind::None:
            panic("inliner: callee block without terminator");
        }
    }
}

bool
runBasePipeline(ir::Module &mod, OptLevel level)
{
    bool changed = false;
    changed |= promoteFrameSlots(mod);
    changed |= propagateCopies(mod);
    FoldOptions fold;
    fold.strengthReduction = level >= OptLevel::O2;
    changed |= foldConstants(mod, fold);
    if (level >= OptLevel::O2) {
        changed |= eliminateCommonSubexpressions(mod);
        changed |= hoistLoopInvariants(mod);
        changed |= propagateCopies(mod);
        changed |= foldConstants(mod, fold);
    }
    changed |= eliminateDeadCode(mod);
    changed |= simplifyControlFlow(mod);
    return changed;
}

} // namespace

int
inlineSmallFunctions(ir::Module &mod, size_t max_callee_insts)
{
    int inlined = 0;
    for (auto &fn : mod.functions) {
        int budget = 32; // per-caller guard against code explosion
        bool progress = true;
        while (progress && budget > 0) {
            progress = false;
            for (auto &bb : fn.blocks) {
                for (size_t i = 0; i < bb.insts.size(); ++i) {
                    const Instruction &in = bb.insts[i];
                    if (in.op != Opcode::Call)
                        continue;
                    const ir::Function &callee =
                        mod.functions[static_cast<size_t>(in.callee)];
                    if (&callee == &fn || !isLeaf(callee) ||
                        callee.instructionCount() > max_callee_insts)
                        continue;
                    inlineCallSite(mod, fn, bb.id, i, in.callee);
                    ++inlined;
                    --budget;
                    progress = true;
                    break;
                }
                if (progress)
                    break;
            }
        }
    }
    return inlined;
}

int
optimize(ir::Module &mod, OptLevel level, const OptOptions &opts)
{
    if (level == OptLevel::O0)
        return 0;

    int effective_rounds = 0;
    for (int round = 0; round < 4; ++round) {
        if (!runBasePipeline(mod, level))
            break;
        ++effective_rounds;
    }

    if (level >= OptLevel::O3 && opts.enableInlining) {
        if (inlineSmallFunctions(mod, opts.inlineThreshold) > 0) {
            for (int round = 0; round < 4; ++round) {
                if (!runBasePipeline(mod, level))
                    break;
                ++effective_rounds;
            }
        }
    }

    if (level >= OptLevel::O2 && opts.scheduleForInOrder)
        scheduleBlocks(mod);

    ir::verifyOrDie(mod);
    return effective_rounds;
}

} // namespace bsyn::opt
