#include "opt/simplify.hh"

#include "opt/pass.hh"

namespace bsyn::opt
{

bool
simplifyControlFlow(ir::Function &fn)
{
    bool changed = false;
    for (int round = 0; round < 64; ++round) {
        if (!simplifyCfg(fn))
            break;
        changed = true;
    }
    return changed;
}

bool
simplifyControlFlow(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= simplifyControlFlow(fn);
    return changed;
}

} // namespace bsyn::opt
