/**
 * @file
 * Local common-subexpression elimination (value numbering within a
 * basic block), including redundant-load elimination with a block-local
 * memory version counter.
 */

#ifndef BSYN_OPT_CSE_HH
#define BSYN_OPT_CSE_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Eliminate block-local redundancies in @p fn. @return changed. */
bool eliminateCommonSubexpressions(ir::Function &fn);

/** Run on every function. @return changed. */
bool eliminateCommonSubexpressions(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_CSE_HH
