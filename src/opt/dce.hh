/**
 * @file
 * Dead-code elimination driven by global register liveness: pure
 * computations (including loads) whose result is never observed are
 * deleted. Runs to a fixpoint because removing one instruction can kill
 * its operands' last uses.
 */

#ifndef BSYN_OPT_DCE_HH
#define BSYN_OPT_DCE_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Remove dead instructions from @p fn. @return changed. */
bool eliminateDeadCode(ir::Function &fn);

/** Run on every function. @return changed. */
bool eliminateDeadCode(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_DCE_HH
