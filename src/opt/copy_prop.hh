/**
 * @file
 * Local copy propagation and copy coalescing. Dissolves the register
 * moves that mem2reg introduces and the value-shuffling a naive front
 * end emits, mirroring GCC's -O1 copy propagation (the paper credits
 * exactly this class of optimization for the drop in load instructions
 * at higher optimization levels).
 */

#ifndef BSYN_OPT_COPY_PROP_HH
#define BSYN_OPT_COPY_PROP_HH

#include "ir/module.hh"

namespace bsyn::opt
{

/** Propagate and coalesce copies within each block. @return changed. */
bool propagateCopies(ir::Function &fn);

/** Run on every function. @return changed. */
bool propagateCopies(ir::Module &mod);

} // namespace bsyn::opt

#endif // BSYN_OPT_COPY_PROP_HH
