#include "opt/dce.hh"

#include "ir/cfg.hh"

namespace bsyn::opt
{

using ir::Instruction;
using ir::Opcode;
using ir::Terminator;

namespace
{

bool
removable(const Instruction &in)
{
    if (in.dst < 0)
        return false;
    switch (in.op) {
      case Opcode::Store:
      case Opcode::Call: // may have side effects / must preserve counts
      case Opcode::Print:
        return false;
      default:
        return true; // pure computations and loads
    }
}

bool
dcePass(ir::Function &fn)
{
    ir::Cfg cfg(fn);
    ir::Liveness live(fn, cfg);

    bool changed = false;
    for (auto &bb : fn.blocks) {
        std::vector<bool> live_now(fn.numRegs, false);
        for (size_t r = 0; r < fn.numRegs; ++r)
            live_now[r] = live.liveOut(bb.id, static_cast<int>(r));
        if (bb.term.kind == Terminator::Kind::Br && bb.term.cond >= 0)
            live_now[static_cast<size_t>(bb.term.cond)] = true;
        if (bb.term.kind == Terminator::Kind::Ret && bb.term.retReg >= 0)
            live_now[static_cast<size_t>(bb.term.retReg)] = true;

        bool block_changed = false;
        for (size_t ii = bb.insts.size(); ii-- > 0;) {
            Instruction &in = bb.insts[ii];
            bool dead = removable(in) &&
                        !live_now[static_cast<size_t>(in.dst)];
            if (dead) {
                in.op = Opcode::Nop;
                in.dst = -1;
                in.src0 = in.src1 = -1;
                in.mem = ir::MemRef();
                changed = true;
                block_changed = true;
                continue;
            }
            if (in.dst >= 0)
                live_now[static_cast<size_t>(in.dst)] = false;
            in.forEachSrc(
                [&](int r) { live_now[static_cast<size_t>(r)] = true; });
        }

        // Sweep the nops.
        if (block_changed) {
            std::vector<Instruction> kept;
            kept.reserve(bb.insts.size());
            for (auto &in : bb.insts)
                if (in.op != Opcode::Nop)
                    kept.push_back(std::move(in));
            bb.insts = std::move(kept);
        }
    }
    return changed;
}

} // namespace

bool
eliminateDeadCode(ir::Function &fn)
{
    bool changed = false;
    // Fixpoint: deleting an instruction can make its operands dead.
    for (int round = 0; round < 8; ++round) {
        if (!dcePass(fn))
            break;
        changed = true;
    }
    return changed;
}

bool
eliminateDeadCode(ir::Module &mod)
{
    bool changed = false;
    for (auto &fn : mod.functions)
        changed |= eliminateDeadCode(fn);
    return changed;
}

} // namespace bsyn::opt
