#include "opt/pass.hh"

#include <map>

#include "ir/cfg.hh"
#include "support/error.hh"

namespace bsyn::opt
{

using ir::BasicBlock;
using ir::Terminator;

bool
compactBlocks(ir::Function &fn)
{
    ir::Cfg cfg(fn);
    bool any_unreachable = false;
    for (const auto &bb : fn.blocks) {
        if (!cfg.reachable(bb.id)) {
            any_unreachable = true;
            break;
        }
    }
    if (!any_unreachable)
        return false;

    std::map<int, int> remap;
    std::vector<BasicBlock> kept;
    for (auto &bb : fn.blocks) {
        if (!cfg.reachable(bb.id))
            continue;
        int new_id = static_cast<int>(kept.size());
        remap[bb.id] = new_id;
        kept.push_back(std::move(bb));
        kept.back().id = new_id;
    }
    for (auto &bb : kept) {
        if (bb.term.kind == Terminator::Kind::Jmp) {
            bb.term.target = remap.at(bb.term.target);
        } else if (bb.term.kind == Terminator::Kind::Br) {
            bb.term.target = remap.at(bb.term.target);
            bb.term.fallthrough = remap.at(bb.term.fallthrough);
        }
    }
    fn.blocks = std::move(kept);
    return true;
}

namespace
{

/** Follow chains of trivial (empty, Jmp-only) blocks. */
int
threadTarget(const ir::Function &fn, int target)
{
    int seen = 0;
    while (seen++ < 64) { // cycle guard (e.g. empty infinite loop)
        const BasicBlock &bb = fn.block(target);
        if (!bb.insts.empty() || bb.term.kind != Terminator::Kind::Jmp ||
            bb.term.target == target)
            return target;
        target = bb.term.target;
    }
    return target;
}

} // namespace

bool
simplifyCfg(ir::Function &fn)
{
    bool changed = false;

    // Jump threading: retarget branches through empty Jmp-only blocks.
    for (auto &bb : fn.blocks) {
        if (bb.term.kind == Terminator::Kind::Jmp) {
            int t = threadTarget(fn, bb.term.target);
            if (t != bb.term.target) {
                bb.term.target = t;
                changed = true;
            }
        } else if (bb.term.kind == Terminator::Kind::Br) {
            int t = threadTarget(fn, bb.term.target);
            int f = threadTarget(fn, bb.term.fallthrough);
            if (t != bb.term.target || f != bb.term.fallthrough) {
                bb.term.target = t;
                bb.term.fallthrough = f;
                changed = true;
            }
            // Both arms equal: the branch is a jump.
            if (bb.term.target == bb.term.fallthrough) {
                bb.term = Terminator::jmp(bb.term.target);
                changed = true;
            }
        }
    }

    // Merge b -> s when b ends in Jmp s and s has exactly one pred.
    {
        ir::Cfg cfg(fn);
        for (auto &bb : fn.blocks) {
            if (bb.term.kind != Terminator::Kind::Jmp)
                continue;
            int s = bb.term.target;
            if (s == bb.id || s == 0)
                continue;
            if (cfg.preds(s).size() != 1)
                continue;
            BasicBlock &succ = fn.block(s);
            // Move succ's instructions and terminator into bb; succ
            // becomes unreachable and compactBlocks sweeps it away.
            for (auto &in : succ.insts)
                bb.insts.push_back(std::move(in));
            succ.insts.clear();
            bb.term = succ.term;
            succ.term = Terminator::ret();
            changed = true;
            break; // CFG changed; caller loops the pass to fixpoint
        }
    }

    changed |= compactBlocks(fn);
    return changed;
}

std::vector<int>
countDefs(const ir::Function &fn)
{
    std::vector<int> defs(fn.numRegs, 0);
    // Parameters are defined on entry.
    for (size_t p = 0; p < fn.paramTypes.size(); ++p)
        ++defs[p];
    for (const auto &bb : fn.blocks)
        for (const auto &in : bb.insts)
            if (in.dst >= 0)
                ++defs[static_cast<size_t>(in.dst)];
    return defs;
}

} // namespace bsyn::opt
