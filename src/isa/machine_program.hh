/**
 * @file
 * The lowered, executable machine program: a flat instruction array with
 * resolved branch targets. This is what the interpreter runs, what the
 * profiler observes (its PCs play the role of binary addresses under
 * Pin), and what the timing models consume.
 */

#ifndef BSYN_ISA_MACHINE_PROGRAM_HH
#define BSYN_ISA_MACHINE_PROGRAM_HH

#include <string>
#include <vector>

#include "ir/module.hh"
#include "isa/target.hh"

namespace bsyn::isa
{

/** Broad instruction classes used for mix statistics and timing. */
enum class MClass : uint8_t
{
    IntAlu, IntMul, IntDiv,
    FpAlu, FpMul, FpDiv,
    Load, Store,
    Branch, ///< conditional branch
    Jump,   ///< unconditional jump
    Call, Ret,
    Other,  ///< print, nop
};

/** @return a printable class name. */
const char *mclassName(MClass c);

/** Structural kind of a machine instruction. */
enum class MKind : uint8_t
{
    Compute, ///< ALU/compare/convert/mov (possibly with fused memory)
    Load,    ///< pure load
    Store,   ///< pure store (possibly with immediate source)
    CondBr,  ///< conditional branch: taken -> target, else fall through
    Jmp,     ///< unconditional branch
    Call,
    Ret,
    Print,
};

/** One machine instruction. */
struct MInst
{
    MKind kind = MKind::Compute;
    ir::Opcode op = ir::Opcode::Nop; ///< semantic op (Compute/Load/Store)
    ir::Type type = ir::Type::I32;

    int dst = -1;
    int src0 = -1;
    int src1 = -1;

    int64_t imm = 0;
    double fimm = 0.0;
    bool srcIsImm = false; ///< CISC: src operand is 'imm'/'fimm'
    int immSlot = 1;       ///< which source slot the immediate fills (0/1)

    ir::MemRef mem;        ///< memory operand
    bool memValid = false;
    bool loadFused = false;  ///< Compute reads mem as the 'fusedSlot' src
    bool storeFused = false; ///< Compute also writes its result to mem
    int fusedSlot = 1;       ///< source slot fed by the fused load

    /** CondBr: branch if cond register is zero instead of non-zero. */
    bool brIfZero = false;

    int target = -1; ///< CondBr/Jmp: flat PC of the taken target
    int callee = -1; ///< Call: function index

    std::string text;      ///< Print format
    std::vector<int> args; ///< Call/Print argument registers

    // Provenance back to the pre-lowering IR (drives the SFGL).
    int funcId = -1;
    int irBlockId = -1;

    /** Instruction class for statistics/timing. */
    MClass cls() const;

    /** @return true if executing this instruction reads memory. */
    bool readsMemory() const
    {
        return kind == MKind::Load || loadFused;
    }

    /** @return true if executing this instruction writes memory. */
    bool writesMemory() const
    {
        return kind == MKind::Store || storeFused;
    }

    /**
     * @return true if this instruction ends a basic block: control may
     * leave the straight-line sequence here (branches, jumps, calls and
     * returns). The next PC, if any, starts a new block.
     */
    bool isBlockEnd() const
    {
        return kind == MKind::CondBr || kind == MKind::Jmp ||
               kind == MKind::Call || kind == MKind::Ret;
    }
};

/** Per-function metadata in the lowered program. */
struct MFunction
{
    std::string name;
    int entry = -1;   ///< flat PC of the first instruction
    int end = -1;     ///< one-past-last flat PC
    uint32_t numRegs = 0;
    uint32_t frameSize = 0;
    uint32_t numParams = 0;
    ir::Type retType = ir::Type::Void;
};

/** The complete lowered program. */
struct MachineProgram
{
    std::string name;
    TargetInfo target;
    std::vector<MInst> code;
    std::vector<MFunction> funcs;
    std::vector<ir::Global> globals;
    int entryFunc = -1; ///< index of main()

    size_t size() const { return code.size(); }

    /** Function containing @p pc (linear search; diagnostics only). */
    const MFunction *functionAt(int pc) const;

    /** Static instruction counts per class. */
    std::vector<size_t> staticMix() const;

    /**
     * Basic-block leader PCs, sorted ascending: every function entry,
     * every branch/jump target, and every fall-through successor of a
     * block-ending instruction (see MInst::isBlockEnd). This is the
     * block structure the predecoded execution engine groups its
     * instructions by.
     */
    std::vector<int> blockLeaders() const;
};

} // namespace bsyn::isa

#endif // BSYN_ISA_MACHINE_PROGRAM_HH
