#include "isa/machine_program.hh"

#include "support/error.hh"

namespace bsyn::isa
{

const char *
mclassName(MClass c)
{
    switch (c) {
      case MClass::IntAlu: return "int_alu";
      case MClass::IntMul: return "int_mul";
      case MClass::IntDiv: return "int_div";
      case MClass::FpAlu: return "fp_alu";
      case MClass::FpMul: return "fp_mul";
      case MClass::FpDiv: return "fp_div";
      case MClass::Load: return "load";
      case MClass::Store: return "store";
      case MClass::Branch: return "branch";
      case MClass::Jump: return "jump";
      case MClass::Call: return "call";
      case MClass::Ret: return "ret";
      case MClass::Other: return "other";
    }
    panic("mclassName: bad class");
}

MClass
MInst::cls() const
{
    switch (kind) {
      case MKind::Load:
        return MClass::Load;
      case MKind::Store:
        return MClass::Store;
      case MKind::CondBr:
        return MClass::Branch;
      case MKind::Jmp:
        return MClass::Jump;
      case MKind::Call:
        return MClass::Call;
      case MKind::Ret:
        return MClass::Ret;
      case MKind::Print:
        return MClass::Other;
      case MKind::Compute:
        // A fused load-op behaves like a load in the memory system but
        // retires as one instruction; we classify by memory behaviour
        // (load first, store second) as Pin's mix tool would.
        if (loadFused && !storeFused)
            return MClass::Load;
        if (storeFused)
            return MClass::Store;
        switch (op) {
          case ir::Opcode::Mul:
            return MClass::IntMul;
          case ir::Opcode::Div:
          case ir::Opcode::Rem:
            return MClass::IntDiv;
          case ir::Opcode::FMul:
            return MClass::FpMul;
          case ir::Opcode::FDiv:
            return MClass::FpDiv;
          case ir::Opcode::FAdd:
          case ir::Opcode::FSub:
          case ir::Opcode::FNeg:
          case ir::Opcode::CvtIF:
          case ir::Opcode::CvtFI:
            return MClass::FpAlu;
          default:
            return MClass::IntAlu;
        }
    }
    panic("MInst::cls: bad kind");
}

const MFunction *
MachineProgram::functionAt(int pc) const
{
    for (const auto &f : funcs)
        if (pc >= f.entry && pc < f.end)
            return &f;
    return nullptr;
}

std::vector<int>
MachineProgram::blockLeaders() const
{
    std::vector<bool> leader(code.size(), false);
    for (const auto &f : funcs)
        if (f.entry >= 0 && static_cast<size_t>(f.entry) < code.size())
            leader[static_cast<size_t>(f.entry)] = true;
    for (size_t pc = 0; pc < code.size(); ++pc) {
        const MInst &mi = code[pc];
        if ((mi.kind == MKind::CondBr || mi.kind == MKind::Jmp) &&
            mi.target >= 0 && static_cast<size_t>(mi.target) < code.size())
            leader[static_cast<size_t>(mi.target)] = true;
        if (mi.isBlockEnd() && pc + 1 < code.size())
            leader[pc + 1] = true;
    }
    std::vector<int> out;
    for (size_t pc = 0; pc < code.size(); ++pc)
        if (leader[pc])
            out.push_back(static_cast<int>(pc));
    return out;
}

std::vector<size_t>
MachineProgram::staticMix() const
{
    std::vector<size_t> mix(static_cast<size_t>(MClass::Other) + 1, 0);
    for (const auto &mi : code)
        ++mix[static_cast<size_t>(mi.cls())];
    return mix;
}

} // namespace bsyn::isa
