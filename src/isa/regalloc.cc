#include "isa/regalloc.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "ir/cfg.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::isa
{

namespace
{

using ir::Instruction;
using ir::Opcode;
using ir::Type;

/** The type a register holds, judging from its defining instructions. */
Type
resultType(const Instruction &in)
{
    if (ir::isCompare(in.op))
        return Type::I32;
    if (in.op == Opcode::CvtIF)
        return Type::F64;
    return in.type;
}

struct Interval
{
    int reg = -1;
    int start = std::numeric_limits<int>::max();
    int end = -1;
    Type type = Type::I32;
    bool seen = false;
};

} // namespace

RegAllocResult
allocateRegisters(ir::Function &fn, int num_regs)
{
    RegAllocResult result;
    if (fn.numRegs == 0 || num_regs <= 0)
        return result;

    ir::Cfg cfg(fn);
    ir::Liveness live(fn, cfg);

    // Linear positions: blocks in id order, two slots per instruction.
    std::vector<Interval> iv(fn.numRegs);
    for (size_t r = 0; r < fn.numRegs; ++r)
        iv[r].reg = static_cast<int>(r);

    auto touch = [&](int r, int pos) {
        if (r < 0)
            return;
        auto &i = iv[static_cast<size_t>(r)];
        i.seen = true;
        i.start = std::min(i.start, pos);
        i.end = std::max(i.end, pos);
    };

    int pos = 0;
    // Parameters are defined on entry.
    for (size_t p = 0; p < fn.paramTypes.size(); ++p) {
        touch(static_cast<int>(p), 0);
        iv[p].type = fn.paramTypes[p];
    }
    for (const auto &bb : fn.blocks) {
        int block_start = pos;
        for (const auto &in : bb.insts) {
            in.forEachSrc([&](int r) { touch(r, pos); });
            if (in.dst >= 0) {
                touch(in.dst, pos + 1);
                iv[static_cast<size_t>(in.dst)].type = resultType(in);
            }
            pos += 2;
        }
        if (bb.term.kind == ir::Terminator::Kind::Br)
            touch(bb.term.cond, pos);
        if (bb.term.kind == ir::Terminator::Kind::Ret)
            touch(bb.term.retReg, pos);
        int block_end = pos + 1;
        for (size_t r = 0; r < fn.numRegs; ++r) {
            if (live.liveIn(bb.id, static_cast<int>(r)))
                touch(static_cast<int>(r), block_start);
            if (live.liveOut(bb.id, static_cast<int>(r)))
                touch(static_cast<int>(r), block_end);
        }
        pos += 2;
    }

    // Linear scan: find the spill set.
    std::vector<Interval> order;
    for (const auto &i : iv)
        if (i.seen)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start ||
                         (a.start == b.start && a.reg < b.reg);
              });

    std::vector<bool> spilled(fn.numRegs, false);
    // Active set ordered by interval end.
    std::multiset<std::pair<int, int>> active; // (end, reg)
    for (const auto &cur : order) {
        while (!active.empty() && active.begin()->first < cur.start)
            active.erase(active.begin());
        active.insert({cur.end, cur.reg});
        result.maxPressure = std::max(result.maxPressure, active.size());
        if (active.size() > static_cast<size_t>(num_regs)) {
            // Spill the interval with the furthest end.
            auto victim = std::prev(active.end());
            spilled[static_cast<size_t>(victim->second)] = true;
            ++result.spilledRegs;
            active.erase(victim);
        }
    }

    if (result.spilledRegs == 0)
        return result;

    // Rematerialization: a spilled register whose only definition is a
    // constant move is re-materialized at each use instead of reloaded
    // (what production allocators do with LICM-hoisted constants).
    std::vector<const Instruction *> soleDef(fn.numRegs, nullptr);
    {
        std::vector<int> defs(fn.numRegs, 0);
        for (size_t p = 0; p < fn.paramTypes.size(); ++p)
            ++defs[p];
        for (const auto &bb : fn.blocks) {
            for (const auto &in : bb.insts) {
                if (in.dst >= 0) {
                    ++defs[static_cast<size_t>(in.dst)];
                    soleDef[static_cast<size_t>(in.dst)] = &in;
                }
            }
        }
        for (size_t r = 0; r < fn.numRegs; ++r)
            if (defs[r] != 1)
                soleDef[r] = nullptr;
    }
    std::vector<bool> remat(fn.numRegs, false);
    for (size_t r = 0; r < fn.numRegs; ++r) {
        if (spilled[r] && soleDef[r] != nullptr &&
            soleDef[r]->op == Opcode::MovImm) {
            remat[r] = true;
            ++result.rematerialized;
        }
    }
    // Capture the constants before any rewriting invalidates pointers.
    std::vector<Instruction> rematDef(fn.numRegs);
    for (size_t r = 0; r < fn.numRegs; ++r)
        if (remat[r])
            rematDef[r] = *soleDef[r];

    // Allocate a frame slot per spilled (non-remat) register.
    std::vector<int32_t> slotOffset(fn.numRegs, -1);
    for (size_t r = 0; r < fn.numRegs; ++r) {
        if (!spilled[r] || remat[r])
            continue;
        slotOffset[r] = static_cast<int32_t>(
            fn.allocSlot(strprintf("spill_r%zu", r), iv[r].type));
    }

    auto slotRef = [&](int r) {
        ir::MemRef m;
        m.symbol = ir::MemRef::frameBase;
        m.offset = slotOffset[static_cast<size_t>(r)];
        return m;
    };

    // Rewrite each block: reload/rematerialize before uses, store after
    // definitions.
    for (auto &bb : fn.blocks) {
        std::vector<Instruction> out;
        out.reserve(bb.insts.size() * 2);
        auto reloadInto = [&](int r) {
            int tmp = fn.newReg();
            if (remat[static_cast<size_t>(r)]) {
                Instruction def = rematDef[static_cast<size_t>(r)];
                def.dst = tmp;
                out.push_back(std::move(def));
            } else {
                out.push_back(Instruction::load(
                    tmp, slotRef(r), iv[static_cast<size_t>(r)].type));
                ++result.spillLoads;
            }
            return tmp;
        };
        for (auto in : bb.insts) {
            // Reload spilled sources (one reload per distinct source).
            std::vector<std::pair<int, int>> replacements;
            in.mapSrcs([&](int r) {
                if (r < 0 || !spilled[static_cast<size_t>(r)])
                    return r;
                for (auto &[from, to] : replacements)
                    if (from == r)
                        return to;
                int tmp = reloadInto(r);
                replacements.emplace_back(r, tmp);
                return tmp;
            });
            bool dst_spilled = in.dst >= 0 &&
                               spilled[static_cast<size_t>(in.dst)] &&
                               !remat[static_cast<size_t>(in.dst)];
            int orig_dst = in.dst;
            if (dst_spilled) {
                int tmp = fn.newReg();
                in.dst = tmp;
                out.push_back(std::move(in));
                out.push_back(Instruction::store(
                    tmp, slotRef(orig_dst),
                    iv[static_cast<size_t>(orig_dst)].type));
                ++result.spillStores;
            } else {
                out.push_back(std::move(in));
            }
        }
        // Terminator uses.
        if (bb.term.kind == ir::Terminator::Kind::Br && bb.term.cond >= 0 &&
            spilled[static_cast<size_t>(bb.term.cond)]) {
            bb.term.cond = reloadInto(bb.term.cond);
        }
        if (bb.term.kind == ir::Terminator::Kind::Ret &&
            bb.term.retReg >= 0 &&
            spilled[static_cast<size_t>(bb.term.retReg)]) {
            bb.term.retReg = reloadInto(bb.term.retReg);
        }
        bb.insts = std::move(out);
    }

    // Spilled parameters must be stored to their slots on entry.
    std::vector<Instruction> prologue;
    for (size_t p = 0; p < fn.paramTypes.size(); ++p) {
        if (spilled[p] && !remat[p]) {
            prologue.push_back(Instruction::store(
                static_cast<int>(p), slotRef(static_cast<int>(p)),
                fn.paramTypes[p]));
            ++result.spillStores;
        }
    }
    if (!prologue.empty()) {
        auto &entry = fn.blocks.front().insts;
        entry.insert(entry.begin(), prologue.begin(), prologue.end());
    }

    return result;
}

RegAllocResult
allocateRegisters(ir::Module &mod, int num_regs)
{
    RegAllocResult total;
    for (auto &fn : mod.functions) {
        RegAllocResult r = allocateRegisters(fn, num_regs);
        total.spilledRegs += r.spilledRegs;
        total.spillLoads += r.spillLoads;
        total.spillStores += r.spillStores;
        total.rematerialized += r.rematerialized;
        total.maxPressure = std::max(total.maxPressure, r.maxPressure);
    }
    return total;
}

} // namespace bsyn::isa
