/**
 * @file
 * Lowering from IR to a MachineProgram for a given target ISA:
 * register allocation (spill insertion), block linearization, branch
 * resolution, and — on CISC targets — peephole fusion of loads,
 * immediates and stores into ALU operations (the x86 addressing-mode
 * patterns of the paper's Table II).
 */

#ifndef BSYN_ISA_LOWERING_HH
#define BSYN_ISA_LOWERING_HH

#include "isa/machine_program.hh"

namespace bsyn::isa
{

/** Lowering options. */
struct LoweringOptions
{
    bool applyRegAlloc = true; ///< insert spill code for the register file
    bool applyFusion = true;   ///< CISC memory/immediate operand fusion
};

/**
 * Lower @p mod for @p target.
 *
 * @param mod the IR module (copied; not mutated).
 * @param target the ISA description.
 * @param opts lowering options (ablation switches).
 * @return the executable machine program.
 */
MachineProgram lower(const ir::Module &mod, const TargetInfo &target,
                     const LoweringOptions &opts = {});

} // namespace bsyn::isa

#endif // BSYN_ISA_LOWERING_HH
