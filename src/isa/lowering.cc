#include "isa/lowering.hh"

#include <map>

#include "ir/cfg.hh"
#include "isa/regalloc.hh"
#include "support/error.hh"

namespace bsyn::isa
{

namespace
{

using ir::Instruction;
using ir::Opcode;
using ir::Terminator;

/**
 * Per-block fusion liveness. Every fusion pattern asks one question:
 * is insts[i].dst dead once the fused pair (i, i+1) has executed —
 * i.e. no use at positions > i+1, not used by the terminator, and not
 * live out of the block (a redefinition before any use does not keep
 * it alive)? One backward walk precomputes the answer for every
 * position, replacing the per-pair forward rescan that made lowering
 * quadratic in block length (synthesized clones have blocks tens of
 * thousands of instructions long).
 */
class BlockUses
{
  public:
    BlockUses(const ir::Function &fn, const ir::BasicBlock &bb,
              const ir::Liveness &live)
    {
        size_t n = bb.insts.size();
        pairDead.assign(n, true);
        if (n == 0)
            return;

        // What the next event for a register is, scanning forward from
        // the position under consideration. Unseen falls back to the
        // terminator and the block's live-out set.
        enum : uint8_t { Unseen = 0, NextIsUse = 1, NextIsDef = 2 };
        std::vector<uint8_t> state(fn.numRegs, Unseen);
        auto resolve = [&](int reg) -> bool {
            if (reg < 0)
                return true;
            uint8_t s = state[static_cast<size_t>(reg)];
            if (s != Unseen)
                return s == NextIsDef;
            if (bb.term.kind == Terminator::Kind::Br &&
                bb.term.cond == reg)
                return false;
            if (bb.term.kind == Terminator::Kind::Ret &&
                bb.term.retReg == reg)
                return false;
            return !live.liveOut(bb.id, reg);
        };

        pairDead[n - 1] = resolve(bb.insts[n - 1].dst);
        for (size_t j = n; j-- > 0;) {
            // state covers positions >= j+1 here — exactly what the
            // pair rooted at j-1 (spanning j-1, j) must look past.
            if (j >= 1)
                pairDead[j - 1] = resolve(bb.insts[j - 1].dst);
            const Instruction &in = bb.insts[j];
            // A use in the same instruction wins over its def, matching
            // the forward scan's used-before-redefined order.
            if (in.dst >= 0)
                state[static_cast<size_t>(in.dst)] = NextIsDef;
            in.forEachSrc([&](int r) {
                if (r >= 0)
                    state[static_cast<size_t>(r)] = NextIsUse;
            });
        }
    }

    /** @return true if insts[i].dst is dead after the pair (i, i+1). */
    bool
    pairDstDead(size_t i) const
    {
        return pairDead[i];
    }

  private:
    std::vector<bool> pairDead;
};

/** Count how many of @p in's register sources equal @p reg. */
int
useCount(const Instruction &in, int reg)
{
    int n = 0;
    in.forEachSrc([&](int r) {
        if (r == reg)
            ++n;
    });
    return n;
}

/** The type of the value instruction @p in produces. */
ir::Type
producedType(const Instruction &in)
{
    if (ir::isCompare(in.op))
        return ir::Type::I32;
    if (in.op == Opcode::CvtIF)
        return ir::Type::F64;
    return in.type;
}

/**
 * A fused memory operand is executed with the *compute* instruction's
 * type field, so fusion is only legal when the memory access interprets
 * bits the same way under both types (e.g. I32/U32 are interchangeable,
 * but an F64 compare must not drive a 4-byte store).
 */
bool
typesCompatible(ir::Type value_type, ir::Type mem_type,
                ir::Type compute_type)
{
    bool sizes_match = ir::typeSize(value_type) == ir::typeSize(mem_type);
    bool access_matches =
        ir::typeSize(compute_type) == ir::typeSize(mem_type);
    return sizes_match && access_matches;
}

class Lowerer
{
  public:
    Lowerer(const ir::Module &m, const TargetInfo &t,
            const LoweringOptions &o)
        : target(t), opts(o), mod(m)
    {}

    MachineProgram
    run()
    {
        MachineProgram prog;
        prog.name = mod.name;
        prog.target = target;
        prog.globals = mod.globals;

        // Register allocation mutates; work on a copy.
        ir::Module work = mod;
        if (opts.applyRegAlloc) {
            for (auto &fn : work.functions)
                allocateRegisters(fn, target.allocatableRegs());
        }

        for (size_t fi = 0; fi < work.functions.size(); ++fi)
            lowerFunction(prog, work.functions[fi], static_cast<int>(fi));

        // Resolve branch fixups now that all PCs are known.
        for (const auto &[code_idx, key] : fixups) {
            auto it = blockPc.find(key);
            BSYN_ASSERT(it != blockPc.end(), "unresolved branch target");
            prog.code[code_idx].target = it->second;
        }

        prog.entryFunc = work.findFunction("main");
        return prog;
    }

  private:
    using BlockKey = std::pair<int, int>; // (funcId, blockId)

    void
    lowerFunction(MachineProgram &prog, const ir::Function &fn,
                  int func_id)
    {
        MFunction mf;
        mf.name = fn.name;
        mf.entry = static_cast<int>(prog.code.size());
        mf.numRegs = fn.numRegs;
        mf.frameSize = fn.frameSize;
        mf.numParams = static_cast<uint32_t>(fn.paramTypes.size());
        mf.retType = fn.retType;

        ir::Cfg cfg(fn);
        ir::Liveness live(fn, cfg);

        // Layout: reachable blocks in id order (codegen emits loop
        // bodies right after their headers, which gives fall-through
        // loop entries like a real compiler).
        std::vector<int> layout;
        for (const auto &bb : fn.blocks)
            if (cfg.reachable(bb.id))
                layout.push_back(bb.id);

        std::map<int, int> next_in_layout;
        for (size_t i = 0; i < layout.size(); ++i)
            next_in_layout[layout[i]] =
                i + 1 < layout.size() ? layout[i + 1] : -1;

        for (int bid : layout) {
            const ir::BasicBlock &bb = fn.block(bid);
            blockPc[{func_id, bid}] = static_cast<int>(prog.code.size());
            emitBlockBody(prog, fn, bb, live, func_id);
            emitTerminator(prog, bb, func_id, next_in_layout[bid]);
        }

        mf.end = static_cast<int>(prog.code.size());
        prog.funcs.push_back(std::move(mf));
    }

    MInst
    base(const Instruction &in, int func_id, int block_id) const
    {
        MInst mi;
        mi.op = in.op;
        mi.type = in.type;
        mi.dst = in.dst;
        mi.src0 = in.src0;
        mi.src1 = in.src1;
        mi.imm = in.imm;
        mi.fimm = in.fimm;
        mi.funcId = func_id;
        mi.irBlockId = block_id;
        return mi;
    }

    void
    emitBlockBody(MachineProgram &prog, const ir::Function &fn,
                  const ir::BasicBlock &bb, const ir::Liveness &live,
                  int func_id)
    {
        bool cisc = target.family == IsaFamily::Cisc && opts.applyFusion;
        bool imm_fuse = target.fuseImmediates && opts.applyFusion;
        BlockUses uses(fn, bb, live);
        std::vector<bool> consumed(bb.insts.size(), false);

        for (size_t i = 0; i < bb.insts.size(); ++i) {
            if (consumed[i])
                continue;
            const Instruction &in = bb.insts[i];
            const Instruction *next =
                i + 1 < bb.insts.size() ? &bb.insts[i + 1] : nullptr;

            if ((cisc || imm_fuse) && next != nullptr &&
                !consumed[i + 1] &&
                tryFuse(prog, bb, uses, i, func_id, consumed, cisc))
                continue;

            emitPlain(prog, in, func_id, bb.id);
        }
    }

    /**
     * Try the CISC fusion patterns rooted at instruction @p i:
     *   load r,[m] ; alu ..,r,..        -> alu with memory operand
     *   movimm r,c ; alu ..,r,..        -> alu with immediate operand
     *   movimm r,c ; store [m],r        -> store-immediate
     *   alu d,..   ; store [m],d        -> alu-to-memory
     * @return true if a fused instruction was emitted (marks consumed).
     */
    bool
    tryFuse(MachineProgram &prog, const ir::BasicBlock &bb,
            const BlockUses &uses, size_t i, int func_id,
            std::vector<bool> &consumed, bool allow_memory_operands)
    {
        const Instruction &a = bb.insts[i];
        const Instruction &b = bb.insts[i + 1];

        // Pattern: load + alu (memory operand). The fused load executes
        // with the ALU's type field, so the access sizes must agree.
        if (allow_memory_operands &&
            a.op == Opcode::Load && b.dst != a.dst &&
            (ir::isBinaryAlu(b.op) || b.op == Opcode::Mov) &&
            ir::typeSize(a.type) == ir::typeSize(b.type) &&
            useCount(b, a.dst) == 1 && uses.pairDstDead(i)) {
            // A mov from a freshly loaded value is just the load itself;
            // don't fuse that (it would change register semantics).
            if (b.op != Opcode::Mov) {
                MInst mi = base(b, func_id, bb.id);
                mi.kind = MKind::Compute;
                mi.mem = a.mem;
                mi.memValid = true;
                mi.loadFused = true;
                mi.fusedSlot = b.src0 == a.dst ? 0 : 1;
                consumed[i + 1] = true;
                prog.code.push_back(std::move(mi));
                return true;
            }
        }

        // Pattern: movimm + alu (immediate operand). immRaw() reads the
        // immediate per the ALU's type, so the kinds must match.
        if (a.op == Opcode::MovImm && target.fuseImmediates &&
            ir::isBinaryAlu(b.op) && b.dst != a.dst &&
            (a.type == ir::Type::F64) == (b.type == ir::Type::F64) &&
            useCount(b, a.dst) == 1 && uses.pairDstDead(i)) {
            MInst mi = base(b, func_id, bb.id);
            mi.kind = MKind::Compute;
            mi.srcIsImm = true;
            mi.imm = a.imm;
            mi.fimm = a.fimm;
            mi.immSlot = b.src0 == a.dst ? 0 : 1;
            consumed[i + 1] = true;
            prog.code.push_back(std::move(mi));
            return true;
        }

        // Pattern: movimm + store (store immediate; CISC only — a
        // load-store machine must materialize the value in a register).
        if (allow_memory_operands &&
            a.op == Opcode::MovImm && target.fuseImmediates &&
            b.op == Opcode::Store && b.src0 == a.dst &&
            (a.type == ir::Type::F64) == (b.type == ir::Type::F64) &&
            b.mem.indexReg != a.dst && uses.pairDstDead(i)) {
            MInst mi = base(b, func_id, bb.id);
            mi.kind = MKind::Store;
            mi.mem = b.mem;
            mi.memValid = true;
            mi.src0 = -1;
            mi.srcIsImm = true;
            mi.imm = a.imm;
            mi.fimm = a.fimm;
            consumed[i + 1] = true;
            prog.code.push_back(std::move(mi));
            return true;
        }

        // Pattern: alu + store of its result (op-to-memory). The fused
        // store executes with the ALU's type field, so the value the ALU
        // produces, the store's access type and the ALU's type field
        // must all agree in size (rejects e.g. CvtIF + store.double,
        // whose type field is the *source* I32 type).
        if (allow_memory_operands &&
            (ir::isBinaryAlu(a.op) || ir::isUnaryAlu(a.op)) &&
            a.dst >= 0 && b.op == Opcode::Store && b.src0 == a.dst &&
            typesCompatible(producedType(a), b.type, a.type) &&
            b.mem.indexReg != a.dst && uses.pairDstDead(i)) {
            MInst mi = base(a, func_id, bb.id);
            mi.kind = MKind::Compute;
            mi.mem = b.mem;
            mi.memValid = true;
            mi.storeFused = true;
            consumed[i + 1] = true;
            prog.code.push_back(std::move(mi));
            return true;
        }

        return false;
    }

    void
    emitPlain(MachineProgram &prog, const Instruction &in, int func_id,
              int block_id)
    {
        MInst mi = base(in, func_id, block_id);
        switch (in.op) {
          case Opcode::Load:
            mi.kind = MKind::Load;
            mi.mem = in.mem;
            mi.memValid = true;
            break;
          case Opcode::Store:
            mi.kind = MKind::Store;
            mi.mem = in.mem;
            mi.memValid = true;
            break;
          case Opcode::Call:
            mi.kind = MKind::Call;
            mi.callee = in.callee;
            mi.args = in.args;
            break;
          case Opcode::Print:
            mi.kind = MKind::Print;
            mi.text = in.text;
            mi.args = in.args;
            break;
          case Opcode::Nop:
            return; // drop nops at lowering
          default:
            mi.kind = MKind::Compute;
            break;
        }
        prog.code.push_back(std::move(mi));
    }

    void
    emitTerminator(MachineProgram &prog, const ir::BasicBlock &bb,
                   int func_id, int next_block)
    {
        const Terminator &t = bb.term;
        switch (t.kind) {
          case Terminator::Kind::Jmp:
            if (t.target != next_block) {
                MInst mi;
                mi.kind = MKind::Jmp;
                mi.funcId = func_id;
                mi.irBlockId = bb.id;
                fixups.emplace_back(prog.code.size(),
                                    BlockKey{func_id, t.target});
                prog.code.push_back(std::move(mi));
            }
            break;
          case Terminator::Kind::Br: {
            if (t.fallthrough == next_block) {
                MInst mi;
                mi.kind = MKind::CondBr;
                mi.src0 = t.cond;
                mi.funcId = func_id;
                mi.irBlockId = bb.id;
                fixups.emplace_back(prog.code.size(),
                                    BlockKey{func_id, t.target});
                prog.code.push_back(std::move(mi));
            } else if (t.target == next_block) {
                MInst mi;
                mi.kind = MKind::CondBr;
                mi.src0 = t.cond;
                mi.brIfZero = true;
                mi.funcId = func_id;
                mi.irBlockId = bb.id;
                fixups.emplace_back(prog.code.size(),
                                    BlockKey{func_id, t.fallthrough});
                prog.code.push_back(std::move(mi));
            } else {
                MInst br;
                br.kind = MKind::CondBr;
                br.src0 = t.cond;
                br.funcId = func_id;
                br.irBlockId = bb.id;
                fixups.emplace_back(prog.code.size(),
                                    BlockKey{func_id, t.target});
                prog.code.push_back(std::move(br));
                MInst jmp;
                jmp.kind = MKind::Jmp;
                jmp.funcId = func_id;
                jmp.irBlockId = bb.id;
                fixups.emplace_back(prog.code.size(),
                                    BlockKey{func_id, t.fallthrough});
                prog.code.push_back(std::move(jmp));
            }
            break;
          }
          case Terminator::Kind::Ret: {
            MInst mi;
            mi.kind = MKind::Ret;
            mi.src0 = t.retReg;
            mi.funcId = func_id;
            mi.irBlockId = bb.id;
            prog.code.push_back(std::move(mi));
            break;
          }
          case Terminator::Kind::None:
            panic("lowering: block without terminator");
        }
    }

    const TargetInfo &target;
    const LoweringOptions &opts;
    const ir::Module &mod;

    std::map<BlockKey, int> blockPc;
    std::vector<std::pair<size_t, BlockKey>> fixups;
};

} // namespace

MachineProgram
lower(const ir::Module &mod, const TargetInfo &target,
      const LoweringOptions &opts)
{
    return Lowerer(mod, target, opts).run();
}

} // namespace bsyn::isa
