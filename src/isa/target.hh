/**
 * @file
 * Target ISA descriptions. The paper evaluates across x86, x86_64 and
 * IA64; we model the properties that drive its cross-ISA observations:
 * CISC targets fold memory operands and immediates into ALU operations
 * (fewer, fatter instructions) and have few architectural registers;
 * the RISC/EPIC target is load-store with a large register file.
 */

#ifndef BSYN_ISA_TARGET_HH
#define BSYN_ISA_TARGET_HH

#include <string>

namespace bsyn::isa
{

/** Instruction-set family. */
enum class IsaFamily : uint8_t
{
    Cisc, ///< memory operands + immediates fold into ALU ops (x86-like)
    Risc, ///< load-store only (IA64/Alpha-like)
};

/** A lowering target. */
struct TargetInfo
{
    std::string name;     ///< e.g. "x86"
    IsaFamily family = IsaFamily::Cisc;
    int numRegs = 8;      ///< architectural integer registers
    bool fuseImmediates = true; ///< immediates as ALU operands

    /** Registers available to the allocator (some reserved as scratch). */
    int allocatableRegs() const { return numRegs > 4 ? numRegs - 2 : 2; }
};

/** x86 (32-bit): CISC, 8 architectural registers. */
TargetInfo targetX86();

/** x86_64: CISC, 16 architectural registers. */
TargetInfo targetX8664();

/** IA64-like EPIC: load-store, 128 registers. */
TargetInfo targetIa64();

/** Look up a target by name ("x86", "x86_64", "ia64"); fatal() if unknown. */
TargetInfo targetByName(const std::string &name);

} // namespace bsyn::isa

#endif // BSYN_ISA_TARGET_HH
