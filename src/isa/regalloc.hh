/**
 * @file
 * Register allocation, modeled as spill insertion. Execution always uses
 * virtual registers (the interpreter does not care about physical
 * names), so the architecturally visible effect of allocating K
 * registers is exactly the spill traffic a real allocator would add —
 * which is what differentiates the paper's x86 (8 regs), x86_64 (16)
 * and IA64 (128) targets.
 *
 * The algorithm is classic linear scan over live intervals: when more
 * than K intervals are simultaneously live, the interval with the
 * furthest end is spilled; every use of a spilled register then loads it
 * from a frame slot and every definition stores it back.
 */

#ifndef BSYN_ISA_REGALLOC_HH
#define BSYN_ISA_REGALLOC_HH

#include "ir/function.hh"
#include "ir/module.hh"

namespace bsyn::isa
{

/** Spill statistics returned by allocateRegisters. */
struct RegAllocResult
{
    size_t spilledRegs = 0;  ///< virtual registers sent to the stack
    size_t spillLoads = 0;   ///< static reload instructions inserted
    size_t spillStores = 0;  ///< static spill-store instructions inserted
    size_t rematerialized = 0; ///< spills turned into constant remat
    size_t maxPressure = 0;  ///< peak simultaneous live intervals
};

/**
 * Run linear-scan allocation on @p fn with @p num_regs registers and
 * rewrite it with spill code where the register file is exceeded.
 *
 * @param fn the function (mutated in place).
 * @param num_regs allocatable register count (scratch already excluded).
 */
RegAllocResult allocateRegisters(ir::Function &fn, int num_regs);

/** Apply allocateRegisters to every function of @p mod. */
RegAllocResult allocateRegisters(ir::Module &mod, int num_regs);

} // namespace bsyn::isa

#endif // BSYN_ISA_REGALLOC_HH
