#include "isa/target.hh"

#include "support/error.hh"

namespace bsyn::isa
{

TargetInfo
targetX86()
{
    TargetInfo t;
    t.name = "x86";
    t.family = IsaFamily::Cisc;
    t.numRegs = 8;
    t.fuseImmediates = true;
    return t;
}

TargetInfo
targetX8664()
{
    TargetInfo t;
    t.name = "x86_64";
    t.family = IsaFamily::Cisc;
    t.numRegs = 16;
    t.fuseImmediates = true;
    return t;
}

TargetInfo
targetIa64()
{
    TargetInfo t;
    t.name = "ia64";
    t.family = IsaFamily::Risc;
    t.numRegs = 128;
    // IA64 instructions take immediate operands (add r1 = 14, r2), so
    // immediate folding stays on; only memory-operand fusion is
    // CISC-specific.
    t.fuseImmediates = true;
    return t;
}

TargetInfo
targetByName(const std::string &name)
{
    if (name == "x86")
        return targetX86();
    if (name == "x86_64")
        return targetX8664();
    if (name == "ia64")
        return targetIa64();
    fatal("unknown target '%s'", name.c_str());
}

} // namespace bsyn::isa
