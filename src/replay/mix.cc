#include "replay/mix.hh"

#include <map>

#include "gen/registry.hh"
#include "support/error.hh"
#include "support/rng.hh"
#include "support/string_util.hh"
#include "workloads/suite.hh"

namespace bsyn::replay
{

namespace
{

/** Parse a non-negative integer weight; fatal() on junk or overflow. */
uint64_t
parseWeight(const std::string &val, const std::string &spec)
{
    if (val.empty() ||
        val.find_first_not_of("0123456789") != std::string::npos)
        fatal("mix '%s': malformed weight '%s'", spec.c_str(),
              val.c_str());
    uint64_t w = 0;
    try {
        w = std::stoull(val);
    } catch (const std::exception &) {
        fatal("mix '%s': weight '%s' out of range", spec.c_str(),
              val.c_str());
    }
    if (w > 1000000)
        fatal("mix '%s': weight '%s' out of range (max 1000000)",
              spec.c_str(), val.c_str());
    return w;
}

/** Parse a mode-end fraction; fatal() unless 0 < f <= 1. */
double
parseEnd(const std::string &val, const std::string &spec)
{
    double f = 0.0;
    try {
        size_t pos = 0;
        f = std::stod(val, &pos);
        if (pos != val.size())
            throw std::invalid_argument(val);
    } catch (const std::exception &) {
        fatal("mix '%s': malformed mode end '@%s'", spec.c_str(),
              val.c_str());
    }
    if (!(f > 0.0) || f > 1.0)
        fatal("mix '%s': mode end '@%s' must be in (0, 1]", spec.c_str(),
              val.c_str());
    return f;
}

} // namespace

size_t
Mix::internWorkload(workloads::Workload w)
{
    for (size_t i = 0; i < population_.size(); ++i)
        if (population_[i].name() == w.name())
            return i;
    population_.push_back(std::move(w));
    return population_.size() - 1;
}

Mix
Mix::parse(const std::string &spec, uint64_t population)
{
    if (trim(spec).empty())
        fatal("mix spec must not be empty");
    if (population < 1 || population > 64)
        fatal("mix population %llu is out of range (1..64)",
              static_cast<unsigned long long>(population));

    Mix mix;
    mix.spec_ = spec;

    std::vector<bool> hasEnd;
    for (const auto &modeText : split(spec, '|')) {
        MixMode mode;
        std::string body = trim(modeText);

        // Optional "@end" suffix on the whole mode.
        size_t at = body.rfind('@');
        bool ended = at != std::string::npos;
        if (ended) {
            mode.end = parseEnd(trim(body.substr(at + 1)), spec);
            body = trim(body.substr(0, at));
        }
        hasEnd.push_back(ended);

        for (const auto &entryText : split(body, ';')) {
            MixEntry entry;
            std::string text = trim(entryText);
            size_t colon = text.find(':');
            if (colon != std::string::npos) {
                entry.weight =
                    parseWeight(trim(text.substr(colon + 1)), spec);
                text = trim(text.substr(0, colon));
            }
            if (text.empty())
                fatal("mix '%s': empty workload entry", spec.c_str());
            entry.spec = text;

            // A name with '/' is an instance (suite or generated);
            // anything else must be a registered family spec, which a
            // seedless entry expands to a small seed population.
            if (text.find('/') != std::string::npos) {
                entry.instances.push_back(
                    mix.internWorkload(workloads::findWorkload(text)));
            } else {
                gen::InstanceSpec is = gen::parseSpec(text);
                const gen::Family &family =
                    gen::Registry::global().require(is.family);
                if (is.hasSeed) {
                    entry.instances.push_back(mix.internWorkload(
                        family.make(is.knobs, is.seed)));
                } else {
                    for (uint64_t s = 1; s <= population; ++s)
                        entry.instances.push_back(
                            mix.internWorkload(family.make(is.knobs, s)));
                }
            }
            mode.totalWeight += entry.weight;
            mode.entries.push_back(std::move(entry));
        }
        if (mode.entries.empty())
            fatal("mix '%s': a mode lists no workloads", spec.c_str());
        if (mode.totalWeight == 0)
            fatal("mix '%s': mode weights sum to zero", spec.c_str());
        mix.modes_.push_back(std::move(mode));
    }

    // Mode ends: explicit fractions must cover the run and increase
    // strictly; with none given, the run splits evenly.
    bool anyEnd = false;
    for (bool e : hasEnd)
        anyEnd = anyEnd || e;
    size_t k = mix.modes_.size();
    if (!anyEnd) {
        for (size_t i = 0; i < k; ++i)
            mix.modes_[i].end = double(i + 1) / double(k);
    } else {
        for (size_t i = 0; i + 1 < k; ++i)
            if (!hasEnd[i])
                fatal("mix '%s': mode %zu needs an '@end' fraction "
                      "(only the last mode may omit it)",
                      spec.c_str(), i);
        if (!hasEnd[k - 1])
            mix.modes_[k - 1].end = 1.0;
        else if (mix.modes_[k - 1].end != 1.0)
            fatal("mix '%s': the last mode must end at 1", spec.c_str());
        for (size_t i = 0; i + 1 < k; ++i)
            if (mix.modes_[i].end >= mix.modes_[i + 1].end)
                fatal("mix '%s': mode ends must increase strictly",
                      spec.c_str());
    }
    // Force the exact 1.0 so modeAt(frac) for frac -> 1 never falls
    // off the end of the list.
    mix.modes_.back().end = 1.0;
    return mix;
}

size_t
Mix::modeAt(double frac) const
{
    for (size_t i = 0; i < modes_.size(); ++i)
        if (frac < modes_[i].end)
            return i;
    return modes_.size() - 1;
}

size_t
Mix::draw(uint64_t seed, uint64_t index, double frac) const
{
    // Per-arrival stream: splitmix inside Rng::reseed decorrelates
    // consecutive indices, so one 64-bit combine is enough.
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    const MixMode &mode = modes_[modeAt(frac)];
    uint64_t pick = rng.nextBounded(mode.totalWeight);
    for (const auto &entry : mode.entries) {
        if (pick < entry.weight)
            return entry.instances[rng.nextBounded(entry.instances.size())];
        pick -= entry.weight;
    }
    // totalWeight is the sum of entry weights; the loop must hit.
    return mode.entries.back().instances[0];
}

} // namespace bsyn::replay
