#include "replay/schedule.hh"

#include <cmath>
#include <map>
#include <set>

#include "support/error.hh"
#include "support/rng.hh"
#include "support/string_util.hh"

namespace bsyn::replay
{

namespace
{

/** Parse a positive-or-zero finite double; fatal() on junk. */
double
parseRate(const std::string &val, const char *key, const std::string &spec)
{
    try {
        size_t pos = 0;
        double v = std::stod(val, &pos);
        if (pos != val.size() || !std::isfinite(v))
            throw std::invalid_argument(val);
        return v;
    } catch (const std::exception &) {
        fatal("schedule '%s': malformed value '%s' for %s", spec.c_str(),
              val.c_str(), key);
    }
}

/** Split "kind,k=v,..." into the kind and a key->value map, rejecting
 *  malformed fields and duplicate keys. */
std::string
parseFields(const std::string &spec, std::map<std::string, std::string> &kv)
{
    auto fields = split(spec, ',');
    std::string kind = trim(fields[0]);
    if (kind.empty())
        fatal("schedule '%s': empty kind", spec.c_str());
    for (size_t i = 1; i < fields.size(); ++i) {
        std::string field = trim(fields[i]);
        size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= field.size())
            fatal("schedule '%s': malformed field '%s' (expected "
                  "key=value)",
                  spec.c_str(), field.c_str());
        std::string key = trim(field.substr(0, eq));
        if (kv.count(key))
            fatal("schedule '%s': duplicate key '%s'", spec.c_str(),
                  key.c_str());
        kv[key] = trim(field.substr(eq + 1));
    }
    return kind;
}

} // namespace

Schedule
Schedule::parse(const std::string &spec)
{
    Schedule s;
    s.spec_ = spec;

    std::map<std::string, std::string> kv;
    std::string kind = parseFields(spec, kv);
    std::set<std::string> known{"jitter"};

    if (kind == "constant") {
        s.model_ = RateModel::Constant;
        known.insert("rate");
    } else if (kind == "bursty") {
        s.model_ = RateModel::Bursty;
        known.insert({"rate", "on_ms", "off_ms"});
    } else if (kind == "ramp") {
        s.model_ = RateModel::Ramp;
        known.insert({"rate", "end_rate"});
    } else {
        fatal("schedule '%s': unknown kind '%s' (constant|bursty|ramp)",
              spec.c_str(), kind.c_str());
    }
    for (const auto &[key, val] : kv) {
        (void)val;
        if (!known.count(key))
            fatal("schedule '%s': unknown key '%s' for kind '%s'",
                  spec.c_str(), key.c_str(), kind.c_str());
    }

    if (!kv.count("rate"))
        fatal("schedule '%s': missing required rate=R", spec.c_str());
    s.rate_ = parseRate(kv["rate"], "rate", spec);

    switch (s.model_) {
      case RateModel::Constant:
        if (s.rate_ <= 0.0)
            fatal("schedule '%s': rate must be positive", spec.c_str());
        break;
      case RateModel::Bursty:
        if (s.rate_ <= 0.0)
            fatal("schedule '%s': rate must be positive", spec.c_str());
        s.onMs_ = kv.count("on_ms")
                      ? parseRate(kv["on_ms"], "on_ms", spec)
                      : 100.0;
        s.offMs_ = kv.count("off_ms")
                       ? parseRate(kv["off_ms"], "off_ms", spec)
                       : 400.0;
        if (s.onMs_ < 1.0 || s.offMs_ < 1.0)
            fatal("schedule '%s': on_ms/off_ms must be at least 1",
                  spec.c_str());
        break;
      case RateModel::Ramp:
        if (!kv.count("end_rate"))
            fatal("schedule '%s': ramp needs end_rate=R", spec.c_str());
        s.endRate_ = parseRate(kv["end_rate"], "end_rate", spec);
        if (s.rate_ < 0.0 || s.endRate_ < 0.0 ||
            s.rate_ + s.endRate_ <= 0.0)
            fatal("schedule '%s': ramp rates must be non-negative and "
                  "not both zero",
                  spec.c_str());
        break;
    }

    if (kv.count("jitter")) {
        const std::string &j = kv["jitter"];
        if (j != "0" && j != "1")
            fatal("schedule '%s': jitter must be 0 or 1", spec.c_str());
        s.jitter_ = (j == "1");
    }
    return s;
}

double
Schedule::cumulativeRate(double t, double durationS) const
{
    if (t <= 0.0)
        return 0.0;
    switch (model_) {
      case RateModel::Constant:
        return rate_ * t;
      case RateModel::Bursty: {
        // Integrated on-time: full periods plus the partial one, each
        // contributing at most the burst-window length.
        double onS = onMs_ / 1000.0;
        double periodS = (onMs_ + offMs_) / 1000.0;
        double full = std::floor(t / periodS);
        double partial = t - full * periodS;
        return rate_ * (full * onS + std::min(partial, onS));
      }
      case RateModel::Ramp: {
        // r(x) = rate + (end-rate - rate) * x / D, integrated to t.
        double d = std::max(durationS, 1e-9);
        return rate_ * t + (endRate_ - rate_) * t * t / (2.0 * d);
      }
    }
    return 0.0;
}

double
Schedule::offeredRate(double durationS) const
{
    if (durationS <= 0.0)
        return 0.0;
    return cumulativeRate(durationS, durationS) / durationS;
}

std::vector<uint64_t>
Schedule::arrivals(double durationS, uint64_t seed) const
{
    if (durationS <= 0.0)
        fatal("schedule '%s': duration must be positive", spec_.c_str());
    double total = cumulativeRate(durationS, durationS);
    constexpr double kMaxArrivals = 4e6;
    if (total > kMaxArrivals)
        fatal("schedule '%s' over %.3fs offers %.0f arrivals "
              "(limit %.0f) — lower the rate or the duration",
              spec_.c_str(), durationS, total, kMaxArrivals);

    // Distinct stream per purpose: the seed also feeds mix draws, so
    // perturbing it here keeps the two decoupled.
    Rng rng(seed ^ 0x5eedab1e5c4ed01eULL);
    std::vector<uint64_t> out;
    out.reserve(static_cast<size_t>(total) + 1);
    const uint64_t durNs = static_cast<uint64_t>(durationS * 1e9);
    double u = 0.0;
    double prev = 0.0;
    for (;;) {
        // Unit spacing in cumulative-arrival space is the deterministic
        // schedule; unit-mean exponential spacing is Poisson traffic at
        // the same time-varying rate.
        u += jitter_ ? -std::log(1.0 - rng.nextDouble()) : 1.0;
        if (u > total)
            break;
        // Invert L: smallest t in [prev, D] with L(t) >= u. L is
        // monotone, so bisection converges to the left edge even
        // across the flat (silent) windows of a bursty schedule.
        double lo = prev, hi = durationS;
        for (int iter = 0; iter < 64; ++iter) {
            double mid = 0.5 * (lo + hi);
            if (cumulativeRate(mid, durationS) >= u)
                hi = mid;
            else
                lo = mid;
        }
        prev = hi;
        uint64_t ns = static_cast<uint64_t>(hi * 1e9);
        out.push_back(ns >= durNs ? durNs - 1 : ns);
    }
    return out;
}

} // namespace bsyn::replay
