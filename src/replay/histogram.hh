/**
 * @file
 * Compatibility alias: the lock-free latency histogram the replay
 * engine introduced now lives in the observability layer
 * (obs/histogram.hh) so the metrics registry and the replay hot path
 * share one implementation. Existing replay::LatencyHistogram users
 * keep compiling unchanged.
 */

#ifndef BSYN_REPLAY_HISTOGRAM_HH
#define BSYN_REPLAY_HISTOGRAM_HH

#include "obs/histogram.hh"

namespace bsyn::replay
{

using LatencyHistogram = obs::LatencyHistogram;

} // namespace bsyn::replay

#endif // BSYN_REPLAY_HISTOGRAM_HH
