/**
 * @file
 * The open-loop traffic replay engine: replays a Schedule × Mix of
 * generated (and suite) workload instances against one warm
 * pipeline::Session from several driver threads, or through a
 * serve::Spool with in-process workers to exercise the serving path.
 * Arrivals are submitted at their scheduled wall-clock offsets
 * regardless of completion (open loop), so a saturated system shows up
 * as growing queue-wait latency instead of a silently reduced offered
 * rate.
 *
 * The report is split like `bsyn fidelity`: a deterministic *results*
 * half (the arrival stream, the drawn workloads, per-arrival outcomes
 * — a pure function of spec + seed, byte-identical across repeated
 * runs and driver thread counts) and a *bench* half (throughput,
 * achieved-vs-offered rate, per-stage latency percentiles from
 * lock-free histograms) that reports whatever the hardware did.
 */

#ifndef BSYN_REPLAY_ENGINE_HH
#define BSYN_REPLAY_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/session.hh"
#include "replay/histogram.hh"
#include "replay/mix.hh"
#include "replay/schedule.hh"
#include "support/json.hh"

namespace bsyn::replay
{

/** Configuration of one replay run. */
struct ReplayOptions
{
    std::string scheduleSpec = "constant,rate=50";
    std::string mixSpec;
    double durationS = 1.0;   ///< schedule horizon (virtual = wall)
    uint64_t seed = 0xb5e9c0de;

    /** Driver threads submitting arrivals; 0 = one per hardware
     *  thread (capped at 16). */
    unsigned threads = 4;

    /** Seeds (1..P) a seedless family entry of the mix expands to. */
    uint64_t population = 4;

    uint64_t targetInstr = 120000; ///< per-arrival synthesis budget
    std::string cacheDir;          ///< session artifact cache

    /** Non-empty: submit arrivals as spool jobs served by
     *  @ref spoolWorkers in-process serve::Worker threads instead of
     *  calling the session directly — the worker-path stress mode. */
    std::string spoolDir;
    unsigned spoolWorkers = 2;

    /** Give up on one arrival's spool result after this long. */
    double spoolTimeoutS = 300.0;

    bool verbose = false; ///< per-arrival progress on stderr
};

/** Deterministic outcome of one arrival (results half). */
struct ArrivalResult
{
    uint64_t offsetNs = 0; ///< scheduled arrival, ns from run start
    uint32_t mode = 0;     ///< mix mode active at the arrival
    uint32_t instance = 0; ///< index into the mix population
    bool ok = true;
    std::string error;     ///< failure description when !ok
};

/** Latency percentiles of one pipeline stage (bench half). */
struct StageSummary
{
    std::string stage; ///< queue | compile | profile | synth | total
    uint64_t count = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
    double p999Ms = 0.0;
    double maxMs = 0.0;
    double meanMs = 0.0;
};

/** Everything one replay run produced. */
struct ReplayReport
{
    // ------------------------------------------- deterministic results
    std::string scheduleSpec;
    std::string mixSpec;
    double durationS = 0.0;
    uint64_t seed = 0;
    uint64_t population = 0;

    std::vector<std::string> instanceNames; ///< mix population order
    std::vector<ArrivalResult> arrivals;    ///< schedule order
    std::vector<uint64_t> drawCounts;       ///< per population instance
    std::vector<uint64_t> modeCounts;       ///< per mix mode
    uint64_t okCount = 0;
    uint64_t failCount = 0;

    /** SHA-256 over the canonical per-arrival stream
     *  ("index,offsetNs,mode,instance,ok\n" lines) — a compact
     *  byte-equality check over millions of arrivals without
     *  serializing each one. */
    std::string streamDigest;

    // ---------------------------------------------------- bench timings
    double elapsedS = 0.0;
    double offeredRate = 0.0;  ///< scheduled arrivals per second
    double achievedRate = 0.0; ///< completed arrivals per second
    std::vector<StageSummary> stages;
    pipeline::CacheStats cacheStats;

    /** Deterministic half ("bsyn.traffic.v1"): byte-identical for a
     *  fixed (schedule, mix, duration, seed, population) at any driver
     *  thread count. */
    Json resultsJson() const;

    /** Full report: results plus the "bench" section. */
    Json toJson() const;
};

/** Run one replay. fatal() on an invalid spec or configuration (the
 *  CLI validates specs even earlier, at argument-parse time). */
ReplayReport runReplay(const ReplayOptions &opts);

} // namespace bsyn::replay

#endif // BSYN_REPLAY_ENGINE_HH
