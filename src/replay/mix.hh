/**
 * @file
 * Workload mixes for the traffic replay engine: which workload each
 * arrival runs. A Mix is parsed from a spec string naming a weighted
 * population of workloads — suite instances and generator-family
 * specs — optionally shifting over the run (K-modal traffic with
 * deterministic switch points):
 *
 *   entry      workload[:weight]    weight a non-negative integer
 *                                   (default 1); workload is a suite
 *                                   instance ("crc32/small") or a gen
 *                                   spec ("pointer_chase,nodes=256")
 *   mode       entry(;entry)*[@end] end = fraction of the run where
 *                                   this mode stops (0 < end <= 1)
 *   mix        mode(|mode)*         later modes take over at their
 *                                   predecessors' end fractions
 *
 * "crc32/small:3;fp_kernel:1" is a constant 3:1 mix;
 * "crc32/small@0.5|stream_mix" flips the population at half-time. When
 * no mode carries an @end the run is split evenly. A seedless family
 * spec expands to a small per-entry population (seeds 1..P), so one
 * entry can stand for P distinct instances. Everything is resolved and
 * validated eagerly at parse time: unknown families/instances, weights
 * summing to zero and malformed fractions are all fatal() before a
 * single arrival replays.
 */

#ifndef BSYN_REPLAY_MIX_HH
#define BSYN_REPLAY_MIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace bsyn::replay
{

/** One weighted entry of a mode, resolved to concrete instances. */
struct MixEntry
{
    std::string spec;   ///< entry text as written (minus the weight)
    uint64_t weight = 1;
    std::vector<size_t> instances; ///< indices into Mix::population()
};

/** One mode: a weighted population active until @ref end. */
struct MixMode
{
    std::vector<MixEntry> entries;
    double end = 1.0;          ///< exclusive end, fraction of the run
    uint64_t totalWeight = 0;  ///< sum of entry weights (positive)
};

/** A parsed, resolved, validated traffic mix. */
class Mix
{
  public:
    /**
     * Parse and resolve @p spec against the suite and the global
     * family registry. @p population is how many seeds (1..P) a
     * seedless family spec expands to. fatal() on any malformed or
     * unresolvable part — this is the eager validation path the CLI
     * turns into usage + exit 2.
     */
    static Mix parse(const std::string &spec, uint64_t population = 4);

    const std::string &spec() const { return spec_; }
    const std::vector<MixMode> &modes() const { return modes_; }

    /** Every distinct workload the mix can draw, in first-reference
     *  order. Draws return indices into this vector. */
    const std::vector<workloads::Workload> &population() const
    {
        return population_;
    }

    /** Mode index active at run fraction @p frac (in [0, 1)). */
    size_t modeAt(double frac) const;

    /**
     * Draw the workload (population index) of arrival @p index at run
     * fraction @p frac. A pure function of (mix, seed, index, frac) —
     * independent of thread count, scheduling and wall-clock, which is
     * what keeps the replay results half byte-deterministic.
     */
    size_t draw(uint64_t seed, uint64_t index, double frac) const;

  private:
    size_t internWorkload(workloads::Workload w);

    std::string spec_;
    std::vector<MixMode> modes_;
    std::vector<workloads::Workload> population_;
};

} // namespace bsyn::replay

#endif // BSYN_REPLAY_MIX_HH
