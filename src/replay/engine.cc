#include "replay/engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/spool.hh"
#include "serve/worker.hh"
#include "support/error.hh"
#include "support/hash.hh"
#include "support/string_util.hh"
#include "workloads/suite.hh"

namespace bsyn::replay
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Stage histogram slots. Direct mode fills all five; the spool path
 *  cannot see inside the worker, so it fills queue and total only. */
enum Stage { kQueue, kCompile, kProfile, kSynth, kTotal, kStages };

const char *const kStageNames[kStages] = {"queue", "compile", "profile",
                                          "synth", "total"};

uint64_t
elapsedNs(Clock::time_point from, Clock::time_point to)
{
    return to <= from
               ? 0
               : std::chrono::duration_cast<std::chrono::nanoseconds>(
                     to - from)
                     .count();
}

unsigned
resolveDriverThreads(unsigned requested, size_t arrivals)
{
    unsigned n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        n = std::min(n ? n : 1u, 16u);
    }
    if (n > 256)
        fatal("replay: %u driver threads is out of range (1..256)", n);
    // More drivers than arrivals would only idle.
    return std::max<size_t>(1, std::min<size_t>(n, arrivals));
}

/** Shared state of one run's driver threads. The stage histograms are
 *  run-local registry entries ("replay.stage.<name>") that also
 *  aggregate into obs::Registry::global() through the parent chain. */
struct Drive
{
    const ReplayOptions &opts;
    const Mix &mix;
    const std::vector<uint64_t> &offsets;
    std::vector<ArrivalResult> &results;
    LatencyHistogram *const *hists; // [kStages]
    Clock::time_point start;
    std::atomic<size_t> next{0};
};

/** Trace the time an arrival spent waiting past its due instant as a
 *  complete "queue-wait" span ending now. */
void
traceQueueWait(size_t i, uint64_t queueNs)
{
    if (!obs::Trace::enabled())
        return;
    uint64_t now = obs::Trace::nowNs();
    obs::Trace::complete("queue-wait", now > queueNs ? now - queueNs : 0,
                         queueNs, {{"arrival", std::to_string(i)}});
}

/** Claim arrivals and run them against @p session (direct mode). */
void
driveDirect(Drive &d, pipeline::Session &session)
{
    const auto &population = d.mix.population();
    for (;;) {
        size_t i = d.next.fetch_add(1);
        if (i >= d.offsets.size())
            break;
        ArrivalResult &res = d.results[i];
        Clock::time_point due =
            d.start + std::chrono::nanoseconds(d.offsets[i]);
        std::this_thread::sleep_until(due);

        const workloads::Workload &w = population[res.instance];
        Clock::time_point t0 = Clock::now();
        uint64_t queueNs = elapsedNs(due, t0);
        d.hists[kQueue]->record(queueNs);
        traceQueueWait(i, queueNs);
        {
            obs::Span span("arrival", "workload", w.name());
            span.arg("index", std::to_string(i));
            try {
                session.compile(w.source, w.name(), opt::OptLevel::O0);
                Clock::time_point t1 = Clock::now();
                d.hists[kCompile]->record(elapsedNs(t0, t1));

                auto prof = session.profile(w);
                Clock::time_point t2 = Clock::now();
                d.hists[kProfile]->record(elapsedNs(t1, t2));

                synth::SynthesisOptions so = session.options().synthesis;
                so.targetInstructions = d.opts.targetInstr;
                so.seed =
                    pipeline::deriveWorkloadSeed(d.opts.seed, w.name());
                session.synthesize(prof, so);
                d.hists[kSynth]->record(elapsedNs(t2, Clock::now()));
            } catch (const std::exception &e) {
                res.ok = false;
                res.error = e.what();
            }
            span.arg("ok", res.ok ? "true" : "false");
        }
        d.hists[kTotal]->record(elapsedNs(due, Clock::now()));
        if (d.opts.verbose)
            obs::logf(obs::LogLevel::Info, "[bsyn] arrival %zu %-30s %s",
                      i, w.name().c_str(), res.ok ? "ok" : "FAILED");
    }
}

/** Claim arrivals and push them through the spool (serving mode). */
void
driveSpool(Drive &d, const serve::Spool &spool)
{
    const auto &population = d.mix.population();
    for (;;) {
        size_t i = d.next.fetch_add(1);
        if (i >= d.offsets.size())
            break;
        ArrivalResult &res = d.results[i];
        Clock::time_point due =
            d.start + std::chrono::nanoseconds(d.offsets[i]);
        std::this_thread::sleep_until(due);

        const workloads::Workload &w = population[res.instance];
        serve::Job job;
        job.id = spool.freeId("r" + std::to_string(i));
        job.kind = "synth";
        job.workload = w.name();
        job.seed = d.opts.seed;
        job.targetInstr = d.opts.targetInstr;
        Json status;
        {
            obs::Span span("arrival", "workload", w.name());
            span.arg("index", std::to_string(i));
            span.arg("job", job.id);
            try {
                spool.submit(job);
                auto outcome = serve::waitForResult(
                    spool, job.id, status, d.opts.spoolTimeoutS, 1);
                if (outcome != serve::WaitOutcome::Done)
                    fatal("replay: no result for job '%s' (%s)",
                          job.id.c_str(),
                          serve::waitOutcomeName(outcome));
                res.ok = status.get("ok").asBool();
                if (!res.ok)
                    res.error = status.get("error").asString();
            } catch (const std::exception &e) {
                res.ok = false;
                res.error = e.what();
            }
            span.arg("ok", res.ok ? "true" : "false");
        }
        Clock::time_point done = Clock::now();
        uint64_t totalNs = elapsedNs(due, done);
        d.hists[kTotal]->record(totalNs);
        // The worker reports its service time; the rest of the
        // round-trip — spool latency plus waiting for a free worker —
        // is the queue share.
        uint64_t serviceNs = 0;
        if (!status.isNull() && status.has("secs"))
            serviceNs =
                static_cast<uint64_t>(status.get("secs").asNumber() * 1e9);
        uint64_t queueNs = totalNs > serviceNs ? totalNs - serviceNs : 0;
        d.hists[kQueue]->record(queueNs);
        traceQueueWait(i, queueNs);
        if (d.opts.verbose)
            obs::logf(obs::LogLevel::Info, "[bsyn] arrival %zu %-30s %s",
                      i, w.name().c_str(), res.ok ? "ok" : "FAILED");
    }
}

StageSummary
summarize(const char *name, const LatencyHistogram &h)
{
    StageSummary s;
    s.stage = name;
    s.count = h.count();
    s.p50Ms = h.quantile(0.50) / 1e6;
    s.p99Ms = h.quantile(0.99) / 1e6;
    s.p999Ms = h.quantile(0.999) / 1e6;
    s.maxMs = h.max() / 1e6;
    s.meanMs = h.mean() / 1e6;
    return s;
}

void
accumulateCacheStats(pipeline::CacheStats &into,
                     const pipeline::CacheStats &from)
{
    into.profileHits += from.profileHits;
    into.profileMisses += from.profileMisses;
    into.synthHits += from.synthHits;
    into.synthMisses += from.synthMisses;
    into.decodeHits += from.decodeHits;
    into.decodeMisses += from.decodeMisses;
}

} // namespace

ReplayReport
runReplay(const ReplayOptions &opts)
{
    Schedule schedule = Schedule::parse(opts.scheduleSpec);
    Mix mix = Mix::parse(opts.mixSpec, opts.population);
    if (!(opts.durationS > 0.0) || opts.durationS > 3600.0)
        fatal("replay: duration %.3fs is out of range (0, 3600]",
              opts.durationS);

    std::vector<uint64_t> offsets =
        schedule.arrivals(opts.durationS, opts.seed);
    const uint64_t durNs = static_cast<uint64_t>(opts.durationS * 1e9);

    ReplayReport rep;
    rep.scheduleSpec = opts.scheduleSpec;
    rep.mixSpec = opts.mixSpec;
    rep.durationS = opts.durationS;
    rep.seed = opts.seed;
    rep.population = opts.population;
    for (const auto &w : mix.population())
        rep.instanceNames.push_back(w.name());
    rep.drawCounts.assign(mix.population().size(), 0);
    rep.modeCounts.assign(mix.modes().size(), 0);

    // The whole arrival stream — who arrives when, running what — is
    // fixed before any thread starts: the run only fills in outcomes.
    rep.arrivals.resize(offsets.size());
    for (size_t i = 0; i < offsets.size(); ++i) {
        double frac = double(offsets[i]) / double(durNs);
        ArrivalResult &a = rep.arrivals[i];
        a.offsetNs = offsets[i];
        a.mode = static_cast<uint32_t>(mix.modeAt(frac));
        a.instance =
            static_cast<uint32_t>(mix.draw(opts.seed, i, frac));
        ++rep.drawCounts[a.instance];
        ++rep.modeCounts[a.mode];
    }

    unsigned threads = resolveDriverThreads(opts.threads, offsets.size());

    // Run-local stage histograms: counts stay exact per run (a test
    // binary may replay several times) while the same recordings
    // aggregate process-wide through the registry parent chain.
    obs::Registry metrics(&obs::Registry::global());
    LatencyHistogram *hists[kStages];
    for (int s = 0; s < kStages; ++s)
        hists[s] = &metrics.histogram(std::string("replay.stage.") +
                                      kStageNames[s]);
    Drive drive{opts, mix, offsets, rep.arrivals, hists, {}, {}};

    Clock::time_point runStart;
    if (opts.spoolDir.empty()) {
        pipeline::SessionOptions so;
        so.cacheDir = opts.cacheDir;
        so.threads = threads;
        so.synthesis.targetInstructions = opts.targetInstr;
        so.synthesis.seed = opts.seed;
        pipeline::Session session(so);

        runStart = Clock::now();
        drive.start = runStart;
        std::vector<std::thread> drivers;
        for (unsigned t = 0; t < threads; ++t)
            drivers.emplace_back(
                [&] { driveDirect(drive, session); });
        for (auto &t : drivers)
            t.join();
        rep.elapsedS =
            std::chrono::duration<double>(Clock::now() - runStart)
                .count();
        rep.cacheStats = session.cacheStats();
    } else {
        if (opts.spoolWorkers < 1 || opts.spoolWorkers > 64)
            fatal("replay: %u spool workers is out of range (1..64)",
                  opts.spoolWorkers);
        serve::Spool spool(opts.spoolDir);
        spool.clearStop(); // a stale stop flag would starve the run

        serve::WorkerOptions wo;
        wo.spoolDir = opts.spoolDir;
        wo.cacheDir = opts.cacheDir;
        wo.threads = 1;
        wo.pollMs = 1;
        std::vector<std::unique_ptr<serve::Worker>> workers;
        std::vector<std::thread> workerThreads;
        for (unsigned t = 0; t < opts.spoolWorkers; ++t) {
            workers.push_back(std::make_unique<serve::Worker>(wo));
            workerThreads.emplace_back(
                [w = workers.back().get()] { w->run(); });
        }

        runStart = Clock::now();
        drive.start = runStart;
        std::vector<std::thread> drivers;
        for (unsigned t = 0; t < threads; ++t)
            drivers.emplace_back([&] { driveSpool(drive, spool); });
        for (auto &t : drivers)
            t.join();
        rep.elapsedS =
            std::chrono::duration<double>(Clock::now() - runStart)
                .count();

        for (auto &w : workers)
            w->requestStop();
        for (auto &t : workerThreads)
            t.join();
        for (auto &w : workers)
            accumulateCacheStats(rep.cacheStats,
                                 w->session().cacheStats());
    }

    // Outcome aggregates + the canonical stream digest.
    Sha256 digest;
    for (size_t i = 0; i < rep.arrivals.size(); ++i) {
        const ArrivalResult &a = rep.arrivals[i];
        a.ok ? ++rep.okCount : ++rep.failCount;
        digest.update(strprintf("%zu,%llu,%u,%u,%d\n", i,
                                static_cast<unsigned long long>(
                                    a.offsetNs),
                                a.mode, a.instance, a.ok ? 1 : 0));
    }
    rep.streamDigest = digest.hexDigest();

    rep.offeredRate = schedule.offeredRate(opts.durationS);
    rep.achievedRate =
        rep.elapsedS > 0.0 ? double(rep.arrivals.size()) / rep.elapsedS
                           : 0.0;
    for (int s = 0; s < kStages; ++s)
        rep.stages.push_back(summarize(kStageNames[s], *hists[s]));
    return rep;
}

Json
ReplayReport::resultsJson() const
{
    Json j = Json::object();
    j.set("schema", Json("bsyn.traffic.v1"));
    j.set("schedule", Json(scheduleSpec));
    j.set("mix", Json(mixSpec));
    j.set("durationS", Json(durationS));
    j.set("seed", Json(seed));
    j.set("population", Json(population));

    Json names = Json::array();
    for (const auto &n : instanceNames)
        names.push(Json(n));
    j.set("instances", std::move(names));

    j.set("arrivals", Json(static_cast<uint64_t>(arrivals.size())));
    Json modes = Json::array();
    for (uint64_t c : modeCounts)
        modes.push(Json(c));
    j.set("modeArrivals", std::move(modes));
    Json draws = Json::array();
    for (uint64_t c : drawCounts)
        draws.push(Json(c));
    j.set("draws", std::move(draws));

    j.set("ok", Json(okCount));
    j.set("failed", Json(failCount));
    Json failures = Json::array();
    for (size_t i = 0; i < arrivals.size(); ++i) {
        if (arrivals[i].ok)
            continue;
        Json f = Json::object();
        f.set("index", Json(static_cast<uint64_t>(i)));
        f.set("workload", Json(instanceNames[arrivals[i].instance]));
        f.set("error", Json(arrivals[i].error));
        failures.push(std::move(f));
    }
    j.set("failures", std::move(failures));
    j.set("streamDigest", Json(streamDigest));
    return j;
}

Json
ReplayReport::toJson() const
{
    Json j = resultsJson();

    Json bench = Json::object();
    bench.set("elapsedS", Json(elapsedS));
    bench.set("offeredRate", Json(offeredRate));
    bench.set("achievedRate", Json(achievedRate));
    Json st = Json::object();
    for (const auto &s : stages) {
        Json one = Json::object();
        one.set("count", Json(s.count));
        one.set("p50Ms", Json(s.p50Ms));
        one.set("p99Ms", Json(s.p99Ms));
        one.set("p999Ms", Json(s.p999Ms));
        one.set("maxMs", Json(s.maxMs));
        one.set("meanMs", Json(s.meanMs));
        st.set(s.stage, std::move(one));
    }
    bench.set("stages", std::move(st));

    Json cache = Json::object();
    cache.set("profileHits", Json(cacheStats.profileHits));
    cache.set("profileMisses", Json(cacheStats.profileMisses));
    cache.set("synthHits", Json(cacheStats.synthHits));
    cache.set("synthMisses", Json(cacheStats.synthMisses));
    cache.set("decodeHits", Json(cacheStats.decodeHits));
    cache.set("decodeMisses", Json(cacheStats.decodeMisses));
    bench.set("cache", std::move(cache));

    j.set("bench", std::move(bench));
    return j;
}

} // namespace bsyn::replay
