/**
 * @file
 * Clone-fidelity scoring: the quantitative answer to "how closely does
 * the synthesized clone track the original's behavioral profile?". For
 * every workload (Figure-4 instance or generated family instance) the
 * report profiles the original, synthesizes its clone through the
 * session (so both stages ride the artifact cache), profiles the
 * clone, and scores per-metric errors — instruction-mix fractions,
 * SFGL block/edge counts, aggregate branch taken/transition rates,
 * the access-weighted cache miss rate, and timing-model CPI — plus a
 * per-metric mean/max summary across the batch. Serialized as JSON,
 * this is the repo's clone-accuracy scoreboard (CI's
 * BENCH_families.json).
 */

#ifndef BSYN_GEN_FIDELITY_HH
#define BSYN_GEN_FIDELITY_HH

#include <string>
#include <vector>

#include "pipeline/session.hh"
#include "sim/machine.hh"

namespace bsyn::gen
{

/** Configuration for a fidelity run. */
struct FidelityOptions
{
    /** Synthesis configuration; the seed is the batch base seed that
     *  deriveWorkloadSeed() specializes per workload, exactly like
     *  Session::processSuite — so fidelity scores the same clones a
     *  suite run produces. */
    synth::SynthesisOptions synthesis;

    /** Optimization level for the timing-model comparison. */
    opt::OptLevel timingLevel = opt::OptLevel::O2;

    /** Machine the CPI metric is measured on. */
    sim::MachineSpec machine;

    /** Skip the (comparatively slow) timing-model CPI metric. */
    bool timing = true;

    FidelityOptions();
};

/** One scored metric: original value, clone value, and the error
 *  |orig - clone| / max(|orig|, 0.01) — relative, with a floor that
 *  keeps near-zero metrics (e.g. fpFraction of integer kernels) from
 *  exploding the score. */
struct MetricScore
{
    std::string metric;
    double original = 0.0;
    double clone = 0.0;
    double error = 0.0;
};

/** Per-phase comparison of one original phase against the clone phase
 *  covering the same normalized execution interval. */
struct PhaseScore
{
    size_t original = 0; ///< original phase index
    size_t clone = 0;    ///< aligned clone phase index
    double mixError = 0.0;       ///< mean rel. error of the 5 mix fractions
    double missRateError = 0.0;  ///< rel. error of the expected miss rate
    double takenRateError = 0.0; ///< rel. error of the taken rate

    /** Timing half (filled when FidelityOptions::timing): CPI of the
     *  original and the clone over this phase's normalized execution
     *  interval — both timed runs are cut at the original's phase
     *  boundaries (sim::TimedCore::setCheckpoints), so the comparison
     *  covers the same slice of each run. */
    double originalCpi = 0.0;
    double cloneCpi = 0.0;
    double cpiError = 0.0; ///< rel. error of the per-phase CPI
};

/** Fidelity of one workload's clone. */
struct InstanceFidelity
{
    std::string workload;       ///< "crc32/small" or generated name

    /** Position in the full scored batch. scoreFidelity fills the
     *  local batch index; a sharded run remaps it to the global index
     *  so `bsyn merge` can restore full-batch order. */
    uint64_t index = 0;

    std::string family;         ///< registered family name, or ""
    bool ok = true;
    std::string error;          ///< failure description when !ok
    std::vector<MetricScore> metrics; ///< fixed metric order

    double meanError = 0.0;
    double maxError = 0.0;

    /** Phase half: detected phase counts on both sides, the per-phase
     *  alignment scores, and the worst/mean per-phase mix error — the
     *  number a phase-aware clone must beat an aggregate-only clone
     *  on (time-varying behaviour an aggregate cannot reproduce). */
    uint64_t originalPhases = 1;
    uint64_t clonePhases = 1;
    std::vector<PhaseScore> phaseScores; ///< one per original phase
    double phaseWorstMixError = 0.0;
    double phaseMeanMixError = 0.0;

    /** Worst per-phase CPI error (0 when timing is skipped) — the
     *  timing analogue of phaseWorstMixError: an aggregate clone that
     *  nails whole-run CPI can still miss a phase's CPI badly. */
    double phaseWorstCpiError = 0.0;

    /** Wall-clock provenance (bench half of the report; not part of
     *  the deterministic results). */
    double profileSecs = 0.0;
    double synthSecs = 0.0;
    double cloneProfileSecs = 0.0;
    double timingSecs = 0.0;
};

/** The whole scoreboard. */
struct FidelityReport
{
    std::vector<InstanceFidelity> instances; ///< batch order

    /** Wall-clock of workload generation, set by callers that
     *  generated part of the batch (the CLI does); serialized into the
     *  bench section. */
    double generationSecs = 0.0;

    /** Total wall-clock of the fidelity run. */
    double totalSecs = 0.0;

    /** Deterministic half: instances + per-metric summary. Stable for
     *  fixed inputs at any thread count — what the determinism tests
     *  compare. */
    Json resultsJson() const;

    /** Full report: results + bench timings (generation, per-family
     *  profile/synth/timing seconds). What `bsyn fidelity -o` writes. */
    Json toJson() const;
};

/**
 * Score every workload of @p batch on @p session, fanned across the
 * session's pool. Per-workload failures are isolated (ok=false with
 * the error string); they never abort the batch.
 */
FidelityReport scoreFidelity(pipeline::Session &session,
                             const std::vector<workloads::Workload> &batch,
                             const FidelityOptions &opts = {});

} // namespace bsyn::gen

#endif // BSYN_GEN_FIDELITY_HH
