/**
 * @file
 * branch_maze — irregular, data-dependent control flow. Two fixed
 * control branches target the requested taken rate (iid draws against
 * `taken_pct`) and transition rate (a Markov state that flips with
 * probability `trans_pct`, so consecutive outcomes of the
 * state-controlled branch differ at that rate). `sites` adds further
 * seed-derived branch sites, each keyed off different bits of the
 * per-iteration random draw with its own threshold around the target,
 * so the static branch population is decorrelated and hard for simple
 * predictors.
 */

#include "gen/families.hh"

#include <algorithm>
#include <vector>

#include "gen/mirror.hh"
#include "support/rng.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

namespace
{

/** One generated branch site: both the emitted MiniC text and the C++
 *  mirror interpret this same record, so they cannot drift. */
struct Site
{
    enum class Op { AddC, XorC, AddShifted, SubMasked };

    uint32_t shift = 0;  ///< which bits of r drive the condition
    uint32_t thresh = 0; ///< taken when ((r >> shift) % 100) < thresh
    Op thenOp = Op::AddC;
    Op elseOp = Op::XorC;
    uint32_t thenArg = 0;
    uint32_t elseArg = 0;
};

uint32_t siteArg(Site::Op op, Rng &rng);

std::vector<Site>
deriveSites(long long count, long long takenPct, uint64_t seed)
{
    // Structure (not just data) is seed-driven: thresholds scatter
    // around the target and each site keys off its own bit window.
    Rng rng(seed ^ 0x6272616e63686dULL); // "branchm"
    std::vector<Site> sites;
    for (long long s = 0; s < count; ++s) {
        Site site;
        site.shift = static_cast<uint32_t>(rng.nextRange(0, 16));
        long long delta = rng.nextRange(-20, 20);
        site.thresh = static_cast<uint32_t>(
            std::clamp<long long>(takenPct + delta, 0, 100));
        site.thenOp = static_cast<Site::Op>(rng.nextRange(0, 3));
        site.elseOp = static_cast<Site::Op>(rng.nextRange(0, 3));
        site.thenArg = siteArg(site.thenOp, rng);
        site.elseArg = siteArg(site.elseOp, rng);
        sites.push_back(site);
    }
    return sites;
}

uint32_t
siteArg(Site::Op op, Rng &rng)
{
    switch (op) {
      case Site::Op::AddC:
      case Site::Op::XorC:
        return static_cast<uint32_t>(rng.nextRange(1, 0xffff));
      case Site::Op::AddShifted:
        return static_cast<uint32_t>(rng.nextRange(1, 12)); // shift
      case Site::Op::SubMasked:
        return (1u << rng.nextRange(2, 6)) - 1; // mask
    }
    return 1;
}

/** MiniC statement for one arm. */
std::string
armText(Site::Op op, uint32_t arg)
{
    switch (op) {
      case Site::Op::AddC:
        return strprintf("acc = acc + %uu;", arg);
      case Site::Op::XorC:
        return strprintf("acc = acc ^ %uu;", arg);
      case Site::Op::AddShifted:
        return strprintf("acc = acc + (r >> %u);", arg);
      case Site::Op::SubMasked:
        return strprintf("acc = acc - (r & %uu);", arg);
    }
    return "acc = acc;";
}

/** Mirror of one arm. */
uint32_t
armApply(Site::Op op, uint32_t arg, uint32_t acc, uint32_t r)
{
    switch (op) {
      case Site::Op::AddC:
        return acc + arg;
      case Site::Op::XorC:
        return acc ^ arg;
      case Site::Op::AddShifted:
        return acc + (r >> arg);
      case Site::Op::SubMasked:
        return acc - (r & arg);
    }
    return acc;
}

class BranchMazeFamily : public Family
{
  public:
    std::string name() const override { return "branch_maze"; }

    std::string
    description() const override
    {
        return "irregular data-dependent control flow with tunable "
               "taken-rate and transition-rate targets across "
               "seed-derived branch sites";
    }

    std::vector<KnobSpec>
    knobs() const override
    {
        return {
            {"sites", "extra seed-derived branch sites in the loop body",
             6, 0, 12},
            {"iters", "loop iterations (every site branches once per "
                      "iteration)",
             60000, 1000, 2000000},
            {"taken_pct", "target taken rate of the iid branch sites "
                          "(percent)",
             65, 0, 100},
            {"trans_pct", "target transition rate of the Markov-state "
                          "branch (percent)",
             30, 0, 100},
        };
    }

    std::vector<KnobValues>
    presets() const override
    {
        return {
            {},                                          // default mix
            {{"taken_pct", 92}, {"trans_pct", 6}},       // predictable
            {{"taken_pct", 50}, {"trans_pct", 50},
             {"sites", 10}},                             // adversarial
        };
    }

    workloads::Workload
    instantiate(const KnobValues &knobs, uint64_t seed) const override
    {
        const long long sites = knobs.at("sites");
        const long long iters = knobs.at("iters");
        const long long taken = knobs.at("taken_pct");
        const long long trans = knobs.at("trans_pct");
        const uint32_t s32 = programSeed(seed);
        const std::vector<Site> derived =
            deriveSites(sites, taken, seed);

        std::string body;
        for (const auto &site : derived) {
            body += strprintf(
                "    if (((r >> %u) %% 100u) < %uu) { %s } "
                "else { %s }\n",
                site.shift, site.thresh,
                armText(site.thenOp, site.thenArg).c_str(),
                armText(site.elseOp, site.elseArg).c_str());
        }

        workloads::Workload w;
        w.benchmark = name();
        w.input = instanceInput(knobs, seed);
        w.source = strprintf(R"(uint rngState;

uint nextRand() {
  rngState = rngState * 1664525u + 1013904223u;
  return rngState;
}

int main() {
  int i;
  int state;
  uint acc;
  acc = 0x1d5cu;
  state = 0;
  rngState = %uu;
  for (i = 0; i < %lld; i++) {
    uint r = nextRand();
    uint d = nextRand();
    if ((r %% 100u) < %lldu) acc = acc + 3u; else acc = acc ^ 0x5bd1u;
    if ((d %% 100u) < %lldu) state = 1 - state;
    if (state > 0) acc = acc + (r & 7u); else acc = acc ^ (r >> 5);
%s  }
  printf("branch_maze=%%u\n", acc);
  return (int)(acc & 255u);
}
)",
                             s32, iters, taken, trans, body.c_str());
        w.expectedOutput = strprintf(
            "branch_maze=%u",
            expected(derived, iters, taken, trans, s32));
        return w;
    }

  private:
    static uint32_t
    expected(const std::vector<Site> &sites, long long iters,
             long long taken, long long trans, uint32_t s32)
    {
        uint32_t state32 = s32;
        uint32_t acc = 0x1d5cu;
        int state = 0;
        for (long long i = 0; i < iters; ++i) {
            uint32_t r = mirror::lcg(state32);
            uint32_t d = mirror::lcg(state32);
            if ((r % 100u) < static_cast<uint32_t>(taken))
                acc = acc + 3u;
            else
                acc = acc ^ 0x5bd1u;
            if ((d % 100u) < static_cast<uint32_t>(trans))
                state = 1 - state;
            if (state > 0)
                acc = acc + (r & 7u);
            else
                acc = acc ^ (r >> 5);
            for (const auto &s : sites) {
                if (((r >> s.shift) % 100u) < s.thresh)
                    acc = armApply(s.thenOp, s.thenArg, acc, r);
                else
                    acc = armApply(s.elseOp, s.elseArg, acc, r);
            }
        }
        return acc;
    }
};

} // namespace

std::unique_ptr<Family>
makeBranchMazeFamily()
{
    return std::make_unique<BranchMazeFamily>();
}

} // namespace bsyn::gen
