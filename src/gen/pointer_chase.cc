/**
 * @file
 * pointer_chase — serialized pointer chasing over a successor array.
 * `shuffle=1` builds a random single-cycle permutation with Sattolo's
 * algorithm (every load depends on the previous one and jumps across
 * the whole footprint), `shuffle=0` walks a sequential ring (the
 * cache-line-friendly control). `nodes` scales the footprint from
 * L1-resident (16 nodes = 64 B) to L2-thrashing (256 K nodes = 1 MB
 * against the profiler's 8 KB cache and the timing models' L1/L2).
 */

#include "gen/families.hh"

#include <vector>

#include "gen/mirror.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

namespace
{

class PointerChaseFamily : public Family
{
  public:
    std::string name() const override { return "pointer_chase"; }

    std::string
    description() const override
    {
        return "serialized pointer chasing over a shuffled or "
               "sequential successor ring; footprint tunable from "
               "L1-resident to L2-thrashing";
    }

    std::vector<KnobSpec>
    knobs() const override
    {
        return {
            {"nodes", "successor-ring size (4-byte nodes; footprint "
                      "= 4*nodes bytes)",
             4096, 16, 262144},
            {"steps", "chase steps (each is one dependent load)",
             250000, 1000, 5000000},
            {"shuffle", "1 = Sattolo single-cycle permutation, "
                        "0 = sequential ring",
             1, 0, 1},
        };
    }

    std::vector<KnobValues>
    presets() const override
    {
        return {
            {},                                   // default: 16 KB shuffled
            {{"nodes", 1024}, {"steps", 300000}}, // L1-resident (4 KB)
            {{"nodes", 65536}, {"steps", 200000}}, // L2-stressing (256 KB)
            {{"shuffle", 0}},                     // sequential control
        };
    }

    workloads::Workload
    instantiate(const KnobValues &knobs, uint64_t seed) const override
    {
        const long long nodes = knobs.at("nodes");
        const long long steps = knobs.at("steps");
        const long long shuffle = knobs.at("shuffle");
        const uint32_t s32 = programSeed(seed);

        workloads::Workload w;
        w.benchmark = name();
        w.input = instanceInput(knobs, seed);
        w.source = strprintf(R"(uint nxt[%lld];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525u + 1013904223u;
  return rngState;
}

int main() {
  int i;
  int j;
  uint p;
  uint acc;
  rngState = %uu;
  if (%lld > 0) {
    for (i = 0; i < %lld; i++) nxt[i] = (uint)i;
    for (i = %lld - 1; i > 0; i = i - 1) {
      j = (int)(nextRand() %% (uint)i);
      uint t = nxt[i];
      nxt[i] = nxt[j];
      nxt[j] = t;
    }
  } else {
    for (i = 0; i < %lld; i++) nxt[i] = (uint)(i + 1);
    nxt[%lld - 1] = 0u;
  }
  p = 0u;
  acc = 0u;
  for (i = 0; i < %lld; i++) {
    p = nxt[p];
    acc = acc + p + (uint)i;
  }
  printf("pointer_chase=%%u\n", acc);
  return (int)(acc & 255u);
}
)",
                             nodes, s32, shuffle, nodes, nodes, nodes,
                             nodes, steps);
        w.expectedOutput =
            strprintf("pointer_chase=%u", expected(nodes, steps,
                                                   shuffle != 0, s32));
        return w;
    }

  private:
    /** Mirror of the emitted program (exact uint32 semantics). */
    static uint32_t
    expected(long long nodes, long long steps, bool shuffle,
             uint32_t s32)
    {
        std::vector<uint32_t> nxt(static_cast<size_t>(nodes));
        uint32_t state = s32;
        if (shuffle) {
            for (long long i = 0; i < nodes; ++i)
                nxt[static_cast<size_t>(i)] = static_cast<uint32_t>(i);
            for (long long i = nodes - 1; i > 0; --i) {
                uint32_t j =
                    mirror::lcg(state) % static_cast<uint32_t>(i);
                std::swap(nxt[static_cast<size_t>(i)], nxt[j]);
            }
        } else {
            for (long long i = 0; i < nodes; ++i)
                nxt[static_cast<size_t>(i)] =
                    static_cast<uint32_t>(i + 1);
            nxt[static_cast<size_t>(nodes - 1)] = 0;
        }
        uint32_t p = 0, acc = 0;
        for (long long i = 0; i < steps; ++i) {
            p = nxt[p];
            acc = acc + p + static_cast<uint32_t>(i);
        }
        return acc;
    }
};

} // namespace

std::unique_ptr<Family>
makePointerChaseFamily()
{
    return std::make_unique<PointerChaseFamily>();
}

} // namespace bsyn::gen
