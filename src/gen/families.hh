/**
 * @file
 * Factories for the built-in workload families (one .cc each):
 *
 *   pointer_chase — linked-node graph traversal; Sattolo-shuffled or
 *       sequential successor ring, footprint from L1-resident to
 *       L2-thrashing.
 *   branch_maze   — irregular data-dependent control flow with tunable
 *       taken-rate and transition-rate targets per branch site.
 *   fp_kernel     — FLOP-dense ping-pong stencil sweeps with a running
 *       reduction (tunable radius and array size).
 *   stream_mix    — strided + gathered memory streams with tunable
 *       stride, working set and gather fraction.
 *   phase_shift   — multi-phase programs whose instruction mix and
 *       miss rates drift between phases (ALU / FP / memory / branch
 *       phases); the first workloads whose profiles are not
 *       stationary.
 */

#ifndef BSYN_GEN_FAMILIES_HH
#define BSYN_GEN_FAMILIES_HH

#include <memory>

#include "gen/family.hh"

namespace bsyn::gen
{

std::unique_ptr<Family> makePointerChaseFamily();
std::unique_ptr<Family> makeBranchMazeFamily();
std::unique_ptr<Family> makeFpKernelFamily();
std::unique_ptr<Family> makeStreamMixFamily();
std::unique_ptr<Family> makePhaseShiftFamily();

} // namespace bsyn::gen

#endif // BSYN_GEN_FAMILIES_HH
