/**
 * @file
 * fp_kernel — FLOP-dense ping-pong stencil sweeps with a running
 * reduction. Each sweep applies a symmetric (2*radius+1)-point stencil
 * a -> b and then b -> a, and accumulates two probes into a scalar;
 * the stencil gain is kept below 1 so values decay toward a small
 * injected bias and every quantity stays exactly representable. The
 * expected output is the truncated `(int)(acc * 1000.0)` of the same
 * IEEE double arithmetic mirrored in C++ (identical op order; no FMA
 * contraction on the baseline x86-64 target).
 */

#include "gen/families.hh"

#include <vector>

#include "gen/mirror.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

namespace
{

/** Per-distance stencil weights by radius. The SAME literal values
 *  feed the emitted source text and the mirror, so both compute with
 *  the identical nearest-double constants. */
const char *const kWeightText[4][4] = {
    {"0.24", nullptr, nullptr, nullptr},
    {"0.12", "0.12", nullptr, nullptr},
    {"0.08", "0.08", "0.08", nullptr},
    {"0.06", "0.06", "0.06", "0.06"},
};
const double kWeight[4][4] = {
    {0.24, 0.0, 0.0, 0.0},
    {0.12, 0.12, 0.0, 0.0},
    {0.08, 0.08, 0.08, 0.0},
    {0.06, 0.06, 0.06, 0.06},
};

class FpKernelFamily : public Family
{
  public:
    std::string name() const override { return "fp_kernel"; }

    std::string
    description() const override
    {
        return "FLOP-dense ping-pong stencil sweeps (tunable radius "
               "and array size) with a running reduction";
    }

    std::vector<KnobSpec>
    knobs() const override
    {
        return {
            {"size", "array length (two double arrays; footprint = "
                     "16*size bytes)",
             2048, 64, 65536},
            {"sweeps", "stencil sweep pairs (a->b then b->a)",
             40, 1, 2000},
            {"radius", "stencil radius (points = 2*radius+1)",
             2, 1, 4},
        };
    }

    std::vector<KnobValues>
    presets() const override
    {
        return {
            {},                                    // default: 32 KB
            {{"size", 512}, {"sweeps", 120},
             {"radius", 4}},                       // compute-bound, wide
            {{"size", 32768}, {"sweeps", 6}},      // 512 KB footprint
        };
    }

    workloads::Workload
    instantiate(const KnobValues &knobs, uint64_t seed) const override
    {
        const long long size = knobs.at("size");
        const long long sweeps = knobs.at("sweeps");
        const long long radius = knobs.at("radius");
        const uint32_t s32 = programSeed(seed);

        // The stencil body, unrolled per distance; identical text for
        // the a->b and b->a passes modulo the array names.
        auto stencilBody = [&](const char *src, const char *dst) {
            std::string text =
                strprintf("    double v = %s[i] * 0.5;\n", src);
            for (long long k = 1; k <= radius; ++k)
                text += strprintf(
                    "    v = v + (%s[i - %lld] + %s[i + %lld]) * %s;\n",
                    src, k, src, k, kWeightText[radius - 1][k - 1]);
            text += strprintf("    %s[i] = v * 0.9 + 0.001;\n", dst);
            return text;
        };

        workloads::Workload w;
        w.benchmark = name();
        w.input = instanceInput(knobs, seed);
        w.source = strprintf(R"(double a[%lld];
double b[%lld];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525u + 1013904223u;
  return rngState;
}

void stencilAB() {
  int i;
  for (i = %lld; i < %lld - %lld; i++) {
%s  }
}

void stencilBA() {
  int i;
  for (i = %lld; i < %lld - %lld; i++) {
%s  }
}

int main() {
  int s;
  int i;
  double acc;
  rngState = %uu;
  for (i = 0; i < %lld; i++) {
    a[i] = (double)((int)(nextRand() & 2047u) - 1024) / 512.0;
    b[i] = 0.0;
  }
  acc = 0.0;
  for (s = 0; s < %lld; s++) {
    stencilAB();
    stencilBA();
    acc = acc + a[%lld] + b[%lld];
  }
  printf("fp_kernel=%%d\n", (int)(acc * 1000.0));
  return 0;
}
)",
                             size, size, radius, size, radius,
                             stencilBody("a", "b").c_str(), radius,
                             size, radius,
                             stencilBody("b", "a").c_str(), s32, size,
                             sweeps, size / 2, size / 3);
        w.expectedOutput = strprintf(
            "fp_kernel=%d", expected(size, sweeps, radius, s32));
        return w;
    }

  private:
    static int32_t
    expected(long long size, long long sweeps, long long radius,
             uint32_t s32)
    {
        const size_t n = static_cast<size_t>(size);
        std::vector<double> a(n), b(n, 0.0);
        uint32_t state = s32;
        for (size_t i = 0; i < n; ++i)
            a[i] = static_cast<double>(
                       static_cast<int32_t>(mirror::lcg(state) &
                                            2047u) -
                       1024) /
                   512.0;

        auto stencil = [&](const std::vector<double> &src,
                           std::vector<double> &dst) {
            for (long long i = radius; i < size - radius; ++i) {
                double v = src[static_cast<size_t>(i)] * 0.5;
                for (long long k = 1; k <= radius; ++k)
                    v = v + (src[static_cast<size_t>(i - k)] +
                             src[static_cast<size_t>(i + k)]) *
                                kWeight[radius - 1][k - 1];
                dst[static_cast<size_t>(i)] = v * 0.9 + 0.001;
            }
        };

        double acc = 0.0;
        for (long long s = 0; s < sweeps; ++s) {
            stencil(a, b);
            stencil(b, a);
            acc = acc + a[static_cast<size_t>(size / 2)] +
                  b[static_cast<size_t>(size / 3)];
        }
        return mirror::castF64ToI32(acc * 1000.0);
    }
};

} // namespace

std::unique_ptr<Family>
makeFpKernelFamily()
{
    return std::make_unique<FpKernelFamily>();
}

} // namespace bsyn::gen
