#include "gen/fidelity.hh"

#include <chrono>
#include <cmath>
#include <map>

#include "gen/registry.hh"
#include "support/error.hh"

namespace bsyn::gen
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
relError(double orig, double clone)
{
    double denom = std::max(std::fabs(orig), 0.01);
    return std::fabs(orig - clone) / denom;
}

/** Aggregate, comparable numbers of one profile. */
struct ProfileAggregates
{
    double loadFrac = 0, storeFrac = 0, branchFrac = 0, otherFrac = 0;
    double fpFrac = 0;
    double blocks = 0, edges = 0;
    double takenRate = 0, transitionRate = 0;
    double missRate = 0;
};

ProfileAggregates
aggregate(const profile::InstrMix &mix, const profile::Sfgl &sfgl)
{
    ProfileAggregates a;
    a.loadFrac = mix.loadFraction();
    a.storeFrac = mix.storeFraction();
    a.branchFrac = mix.branchFraction();
    a.otherFrac = mix.otherFraction();
    a.fpFrac = mix.fpFraction();

    double takenW = 0, taken = 0, trans = 0;
    double accesses = 0, expectedMisses = 0;
    size_t edges = 0;
    for (const auto &b : sfgl.blocks) {
        edges += b.succs.size();
        for (const auto &d : b.code) {
            if (d.branchExecutions > 0) {
                double w = static_cast<double>(d.branchExecutions);
                takenW += w;
                taken += w * d.takenRate;
                trans += w * d.transitionRate;
            }
            if ((d.readsMem || d.writesMem) && b.execCount > 0) {
                double w = static_cast<double>(b.execCount);
                accesses += w;
                expectedMisses +=
                    w * profile::missRateForClass(d.missClass);
            }
        }
    }
    a.blocks = static_cast<double>(sfgl.blocks.size());
    a.edges = static_cast<double>(edges);
    a.takenRate = takenW > 0 ? taken / takenW : 0.0;
    a.transitionRate = takenW > 0 ? trans / takenW : 0.0;
    a.missRate = accesses > 0 ? expectedMisses / accesses : 0.0;
    return a;
}

ProfileAggregates
aggregate(const profile::StatisticalProfile &prof)
{
    return aggregate(prof.mix, prof.sfgl);
}

/** One phase's aggregates plus its normalized execution interval
 *  [begin, end) in units of the whole run. */
struct PhaseSpan
{
    double begin = 0.0;
    double end = 1.0;
    ProfileAggregates agg;
};

std::vector<PhaseSpan>
phaseSpans(const profile::StatisticalProfile &prof)
{
    std::vector<PhaseSpan> spans;
    double total = 0;
    for (const auto &ph : prof.phases)
        total += static_cast<double>(ph.dynamicInstructions);
    if (total <= 0)
        total = 1;
    double at = 0;
    for (const auto &ph : prof.phases) {
        PhaseSpan s;
        s.begin = at / total;
        at += static_cast<double>(ph.dynamicInstructions);
        s.end = at / total;
        s.agg = aggregate(ph.mix, ph.sfgl);
        spans.push_back(std::move(s));
    }
    return spans;
}

double
mixError(const ProfileAggregates &o, const ProfileAggregates &c)
{
    return (relError(o.loadFrac, c.loadFrac) +
            relError(o.storeFrac, c.storeFrac) +
            relError(o.branchFrac, c.branchFrac) +
            relError(o.otherFrac, c.otherFrac) +
            relError(o.fpFrac, c.fpFrac)) /
           5.0;
}

void
pushMetric(InstanceFidelity &inst, const std::string &name,
           double orig, double clone)
{
    MetricScore m;
    m.metric = name;
    m.original = orig;
    m.clone = clone;
    m.error = relError(orig, clone);
    inst.metrics.push_back(std::move(m));
}

/**
 * Score the clone's phase behaviour against the original's. Phases are
 * aligned by normalized execution time: each original phase compares
 * against the clone phase covering its midpoint, so the comparison is
 * meaningful even when the detected phase counts differ (an aggregate
 * clone has one phase covering everything — its flat behaviour is
 * scored against every original phase, which is exactly the error a
 * phase-aware clone exists to remove).
 */
void
scorePhases(InstanceFidelity &inst,
            const profile::StatisticalProfile &orig,
            const profile::StatisticalProfile &clone)
{
    inst.originalPhases = orig.phaseCount();
    inst.clonePhases = clone.phaseCount();
    // Bounded error |o-c|/max(o,c): a plain relative error on small
    // counts (1 vs 5 -> 4.0) would drown every behavioural metric in
    // the instance summary.
    {
        double o = static_cast<double>(inst.originalPhases);
        double c = static_cast<double>(inst.clonePhases);
        MetricScore m;
        m.metric = "phase.count";
        m.original = o;
        m.clone = c;
        m.error = std::fabs(o - c) / std::max(o, c);
        inst.metrics.push_back(std::move(m));
    }

    std::vector<PhaseSpan> os = phaseSpans(orig);
    std::vector<PhaseSpan> cs = phaseSpans(clone);
    if (os.empty() || cs.empty())
        return;

    double sum = 0;
    for (size_t i = 0; i < os.size(); ++i) {
        double mid = (os[i].begin + os[i].end) / 2;
        size_t j = cs.size() - 1;
        for (size_t k = 0; k < cs.size(); ++k) {
            if (mid < cs[k].end) {
                j = k;
                break;
            }
        }
        PhaseScore ps;
        ps.original = i;
        ps.clone = j;
        ps.mixError = mixError(os[i].agg, cs[j].agg);
        ps.missRateError =
            relError(os[i].agg.missRate, cs[j].agg.missRate);
        ps.takenRateError =
            relError(os[i].agg.takenRate, cs[j].agg.takenRate);
        inst.phaseWorstMixError =
            std::max(inst.phaseWorstMixError, ps.mixError);
        sum += ps.mixError;
        inst.phaseScores.push_back(ps);
    }
    inst.phaseMeanMixError = sum / double(os.size());
}

/** CPI of each interval between consecutive cuts (plus the tail up to
 *  the end of the run). */
std::vector<double>
intervalCpis(const pipeline::PhasedTiming &t)
{
    std::vector<double> cpis;
    uint64_t prevInstr = 0, prevCycles = 0;
    size_t n = t.cutCycles.size();
    for (size_t i = 0; i <= n; ++i) {
        uint64_t bi =
            i < n ? t.cutInstructions[i] : t.stats.instructions;
        uint64_t bc = i < n ? t.cutCycles[i] : t.stats.cycles;
        double instr = static_cast<double>(bi - prevInstr);
        cpis.push_back(instr > 0
                           ? static_cast<double>(bc - prevCycles) / instr
                           : 0.0);
        prevInstr = bi;
        prevCycles = bc;
    }
    return cpis;
}

InstanceFidelity
scoreOne(pipeline::Session &session, const workloads::Workload &w,
         const FidelityOptions &opts)
{
    InstanceFidelity inst;
    inst.workload = w.name();
    if (Registry::global().find(w.benchmark))
        inst.family = w.benchmark;

    auto t0 = Clock::now();
    auto prof = session.profile(w);
    inst.profileSecs = secondsSince(t0);

    synth::SynthesisOptions so = opts.synthesis;
    so.seed = pipeline::deriveWorkloadSeed(so.seed, w.name());
    t0 = Clock::now();
    auto clone = session.synthesize(prof, so);
    inst.synthSecs = secondsSince(t0);

    t0 = Clock::now();
    auto cloneProf =
        session.profile(clone.cSource, w.name() + ".clone");
    inst.cloneProfileSecs = secondsSince(t0);

    ProfileAggregates o = aggregate(prof);
    ProfileAggregates c = aggregate(cloneProf);
    pushMetric(inst, "mix.load", o.loadFrac, c.loadFrac);
    pushMetric(inst, "mix.store", o.storeFrac, c.storeFrac);
    pushMetric(inst, "mix.branch", o.branchFrac, c.branchFrac);
    pushMetric(inst, "mix.other", o.otherFrac, c.otherFrac);
    pushMetric(inst, "mix.fp", o.fpFrac, c.fpFrac);
    pushMetric(inst, "sfgl.blocks", o.blocks, c.blocks);
    pushMetric(inst, "sfgl.edges", o.edges, c.edges);
    pushMetric(inst, "branch.takenRate", o.takenRate, c.takenRate);
    pushMetric(inst, "branch.transitionRate", o.transitionRate,
               c.transitionRate);
    pushMetric(inst, "mem.missRate", o.missRate, c.missRate);
    scorePhases(inst, prof, cloneProf);

    if (opts.timing) {
        t0 = Clock::now();
        // Cut both timed runs at the original's phase boundaries
        // (normalized execution fractions), so phase i's CPI covers
        // the same slice of each run.
        std::vector<double> cuts;
        std::vector<PhaseSpan> os = phaseSpans(prof);
        for (size_t i = 0; i + 1 < os.size(); ++i)
            cuts.push_back(os[i].end);
        auto ot = pipeline::timeOnMachinePhased(w.source, w.name(),
                                                opts.timingLevel,
                                                opts.machine, cuts);
        auto ct = pipeline::timeOnMachinePhased(clone.cSource,
                                                w.name() + ".clone",
                                                opts.timingLevel,
                                                opts.machine, cuts);
        inst.timingSecs = secondsSince(t0);
        pushMetric(inst, "timing.cpi", ot.stats.cpi(),
                   ct.stats.cpi());

        std::vector<double> ocpi = intervalCpis(ot);
        std::vector<double> ccpi = intervalCpis(ct);
        size_t n = std::min(
            {ocpi.size(), ccpi.size(), inst.phaseScores.size()});
        for (size_t i = 0; i < n; ++i) {
            PhaseScore &ps = inst.phaseScores[i];
            ps.originalCpi = ocpi[i];
            ps.cloneCpi = ccpi[i];
            ps.cpiError = relError(ps.originalCpi, ps.cloneCpi);
            inst.phaseWorstCpiError =
                std::max(inst.phaseWorstCpiError, ps.cpiError);
        }
        // Aggregate-only profiles (no detected phases) score the whole
        // run as one phase.
        if (inst.phaseScores.empty())
            inst.phaseWorstCpiError =
                relError(ot.stats.cpi(), ct.stats.cpi());
    }

    double sum = 0;
    for (const auto &m : inst.metrics) {
        sum += m.error;
        inst.maxError = std::max(inst.maxError, m.error);
    }
    inst.meanError =
        inst.metrics.empty() ? 0.0 : sum / double(inst.metrics.size());
    return inst;
}

} // namespace

FidelityOptions::FidelityOptions()
    : synthesis(pipeline::defaultSynthesisOptions()),
      machine(sim::ptlsimConfig(8))
{
}

FidelityReport
scoreFidelity(pipeline::Session &session,
              const std::vector<workloads::Workload> &batch,
              const FidelityOptions &opts)
{
    FidelityReport report;
    report.instances.resize(batch.size());
    auto t0 = Clock::now();
    session.parallelFor(batch.size(), [&](size_t i) {
        try {
            report.instances[i] = scoreOne(session, batch[i], opts);
        } catch (const std::exception &e) {
            InstanceFidelity bad;
            bad.workload = batch[i].name();
            if (Registry::global().find(batch[i].benchmark))
                bad.family = batch[i].benchmark;
            bad.ok = false;
            bad.error = e.what();
            report.instances[i] = std::move(bad);
        }
        report.instances[i].index = i;
    });
    report.totalSecs = secondsSince(t0);
    return report;
}

Json
FidelityReport::resultsJson() const
{
    Json root = Json::object();
    // v3: instances carry their batch index, so sharded reports can be
    // merged back into full-batch order (serve/merge.hh).
    // v4: per-phase CPI (originalCpi/cloneCpi/cpiError per phase,
    // worstCpiError per instance, phaseWorstCpi in the summary).
    root.set("schema", Json("bsyn.fidelity.v4"));

    Json list = Json::array();
    // Per-metric accumulation across ok instances, in first-seen
    // metric order (deterministic: every instance scores the same
    // metric list).
    std::vector<std::string> metricOrder;
    std::map<std::string, std::pair<double, double>> metricAgg; // sum,max
    size_t okCount = 0;

    for (const auto &inst : instances) {
        Json j = Json::object();
        j.set("workload", Json(inst.workload));
        j.set("index", Json(inst.index));
        j.set("family", Json(inst.family));
        j.set("ok", Json(inst.ok));
        if (!inst.ok) {
            j.set("error", Json(inst.error));
            list.push(std::move(j));
            continue;
        }
        ++okCount;
        Json metrics = Json::object();
        for (const auto &m : inst.metrics) {
            Json entry = Json::object();
            entry.set("original", Json(m.original));
            entry.set("clone", Json(m.clone));
            entry.set("relError", Json(m.error));
            metrics.set(m.metric, std::move(entry));
            auto it = metricAgg.find(m.metric);
            if (it == metricAgg.end()) {
                metricOrder.push_back(m.metric);
                metricAgg[m.metric] = {m.error, m.error};
            } else {
                it->second.first += m.error;
                it->second.second =
                    std::max(it->second.second, m.error);
            }
        }
        j.set("metrics", std::move(metrics));
        j.set("meanRelError", Json(inst.meanError));
        j.set("maxRelError", Json(inst.maxError));

        // Phase half (v2): counts, per-phase alignment scores and the
        // worst/mean per-phase mix error.
        Json phases = Json::object();
        phases.set("original", Json(inst.originalPhases));
        phases.set("clone", Json(inst.clonePhases));
        phases.set("worstMixError", Json(inst.phaseWorstMixError));
        phases.set("meanMixError", Json(inst.phaseMeanMixError));
        phases.set("worstCpiError", Json(inst.phaseWorstCpiError));
        Json perPhase = Json::array();
        for (const auto &ps : inst.phaseScores) {
            Json p = Json::object();
            p.set("original", Json(static_cast<uint64_t>(ps.original)));
            p.set("clone", Json(static_cast<uint64_t>(ps.clone)));
            p.set("mixError", Json(ps.mixError));
            p.set("missRateError", Json(ps.missRateError));
            p.set("takenRateError", Json(ps.takenRateError));
            p.set("originalCpi", Json(ps.originalCpi));
            p.set("cloneCpi", Json(ps.cloneCpi));
            p.set("cpiError", Json(ps.cpiError));
            perPhase.push(std::move(p));
        }
        phases.set("perPhase", std::move(perPhase));
        j.set("phases", std::move(phases));
        list.push(std::move(j));
    }
    root.set("instances", std::move(list));

    Json summary = Json::object();
    for (const auto &name : metricOrder) {
        const auto &agg = metricAgg.at(name);
        Json entry = Json::object();
        entry.set("mean", Json(okCount ? agg.first / double(okCount)
                                       : 0.0));
        entry.set("max", Json(agg.second));
        summary.set(name, std::move(entry));
    }
    // Batch-level phase summary: mean/max of the per-instance
    // worst-phase mix error (the phase-aware vs aggregate-only
    // comparison CI smokes on).
    {
        double sum = 0, mx = 0;
        for (const auto &inst : instances) {
            if (!inst.ok)
                continue;
            sum += inst.phaseWorstMixError;
            mx = std::max(mx, inst.phaseWorstMixError);
        }
        Json entry = Json::object();
        entry.set("mean", Json(okCount ? sum / double(okCount) : 0.0));
        entry.set("max", Json(mx));
        summary.set("phaseWorstMix", std::move(entry));
    }
    // Same shape for the timing half: mean/max of the per-instance
    // worst-phase CPI error.
    {
        double sum = 0, mx = 0;
        for (const auto &inst : instances) {
            if (!inst.ok)
                continue;
            sum += inst.phaseWorstCpiError;
            mx = std::max(mx, inst.phaseWorstCpiError);
        }
        Json entry = Json::object();
        entry.set("mean", Json(okCount ? sum / double(okCount) : 0.0));
        entry.set("max", Json(mx));
        summary.set("phaseWorstCpi", std::move(entry));
    }
    root.set("summary", std::move(summary));
    root.set("scored", Json(static_cast<uint64_t>(okCount)));
    root.set("failed",
             Json(static_cast<uint64_t>(instances.size() - okCount)));
    return root;
}

Json
FidelityReport::toJson() const
{
    Json root = resultsJson();

    // Bench half: wall-clock provenance, aggregated per family ("" =
    // the hand-written suite). Not deterministic, not compared.
    struct FamilyBench
    {
        size_t count = 0;
        double profileSecs = 0, synthSecs = 0, cloneProfileSecs = 0,
               timingSecs = 0;
    };
    std::map<std::string, FamilyBench> perFamily;
    for (const auto &inst : instances) {
        auto &fb = perFamily[inst.family.empty() ? "figure4"
                                                 : inst.family];
        ++fb.count;
        fb.profileSecs += inst.profileSecs;
        fb.synthSecs += inst.synthSecs;
        fb.cloneProfileSecs += inst.cloneProfileSecs;
        fb.timingSecs += inst.timingSecs;
    }

    Json bench = Json::object();
    bench.set("generationSecs", Json(generationSecs));
    bench.set("totalSecs", Json(totalSecs));
    Json families = Json::object();
    for (const auto &[name, fb] : perFamily) {
        Json f = Json::object();
        f.set("instances", Json(static_cast<uint64_t>(fb.count)));
        f.set("profileSecs", Json(fb.profileSecs));
        f.set("synthSecs", Json(fb.synthSecs));
        f.set("cloneProfileSecs", Json(fb.cloneProfileSecs));
        f.set("timingSecs", Json(fb.timingSecs));
        families.set(name, std::move(f));
    }
    bench.set("perFamily", std::move(families));
    root.set("bench", std::move(bench));
    return root;
}

} // namespace bsyn::gen
