#include "gen/family.hh"

#include "support/error.hh"
#include "support/rng.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

KnobValues
Family::resolve(const KnobValues &overrides) const
{
    const std::vector<KnobSpec> schema = knobs();
    for (const auto &kv : overrides) {
        const KnobSpec *spec = nullptr;
        for (const auto &k : schema)
            if (k.name == kv.first)
                spec = &k;
        if (!spec) {
            std::vector<std::string> names;
            for (const auto &k : schema)
                names.push_back(k.name);
            fatal("family '%s' has no knob '%s' (knobs: %s)",
                  name().c_str(), kv.first.c_str(),
                  join(names, ", ").c_str());
        }
        if (kv.second < spec->min || kv.second > spec->max)
            fatal("family '%s': knob %s=%lld out of range [%lld, %lld]",
                  name().c_str(), kv.first.c_str(),
                  static_cast<long long>(kv.second),
                  static_cast<long long>(spec->min),
                  static_cast<long long>(spec->max));
    }
    KnobValues resolved;
    for (const auto &k : schema) {
        auto it = overrides.find(k.name);
        resolved[k.name] = it != overrides.end() ? it->second : k.def;
    }
    return resolved;
}

workloads::Workload
Family::make(const KnobValues &overrides, uint64_t seed) const
{
    return instantiate(resolve(overrides), seed);
}

std::string
Family::instanceInput(const KnobValues &resolved, uint64_t seed) const
{
    std::vector<std::string> parts;
    for (const auto &k : knobs()) {
        auto it = resolved.find(k.name);
        if (it == resolved.end())
            fatal("family '%s': instanceInput() needs resolved knobs "
                  "(missing '%s')",
                  name().c_str(), k.name.c_str());
        parts.push_back(strprintf("%s=%lld", k.name.c_str(),
                                  static_cast<long long>(it->second)));
    }
    parts.push_back(strprintf(
        "seed=%llu", static_cast<unsigned long long>(seed)));
    return join(parts, ",");
}

InstanceSpec
parseSpec(const std::string &text)
{
    InstanceSpec spec;
    // "family/k=v,..." (instance-name form) or "family,k=v,...".
    std::string rest;
    size_t slash = text.find('/');
    size_t comma = text.find(',');
    size_t cut = std::min(slash, comma);
    if (cut == std::string::npos) {
        spec.family = trim(text);
    } else {
        spec.family = trim(text.substr(0, cut));
        rest = text.substr(cut + 1);
    }
    if (spec.family.empty())
        fatal("empty family name in spec '%s'", text.c_str());

    if (trim(rest).empty())
        return spec;
    for (const auto &field : split(rest, ',')) {
        std::string kv = trim(field);
        size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= kv.size())
            fatal("malformed knob assignment '%s' in spec '%s' "
                  "(expected knob=value)",
                  kv.c_str(), text.c_str());
        std::string key = trim(kv.substr(0, eq));
        std::string val = trim(kv.substr(eq + 1));
        bool neg = !val.empty() && val[0] == '-';
        std::string digits = neg ? val.substr(1) : val;
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") != std::string::npos)
            fatal("malformed knob value '%s' for '%s' in spec '%s'",
                  val.c_str(), key.c_str(), text.c_str());
        if (key == "seed") {
            // Seeds span the full uint64 range (derived sample seeds
            // regularly exceed int64), so they get their own parse —
            // the canonical name a sample prints must round-trip.
            if (neg)
                fatal("seed must be non-negative in spec '%s'",
                      text.c_str());
            if (spec.hasSeed)
                fatal("duplicate seed in spec '%s'", text.c_str());
            try {
                spec.seed = std::stoull(digits);
            } catch (const std::exception &) {
                fatal("seed '%s' out of range in spec '%s'",
                      val.c_str(), text.c_str());
            }
            spec.hasSeed = true;
            continue;
        }
        long long parsed = 0;
        try {
            parsed = std::stoll(val);
        } catch (const std::exception &) {
            fatal("knob value '%s' for '%s' out of range", val.c_str(),
                  key.c_str());
        }
        if (spec.knobs.count(key))
            fatal("duplicate knob '%s' in spec '%s'", key.c_str(),
                  text.c_str());
        spec.knobs[key] = parsed;
    }
    return spec;
}

uint32_t
programSeed(uint64_t seed)
{
    // One splitmix-quality scramble via the shared Rng, truncated to
    // the 32 bits the emitted LCG state holds. Never zero so the first
    // nextRand() is never the degenerate all-zero draw.
    Rng rng(seed ^ 0x67656e5f73656564ULL); // "gen_seed"
    uint32_t s = static_cast<uint32_t>(rng.next());
    return s ? s : 0x1u;
}

} // namespace bsyn::gen
