/**
 * @file
 * Parameterized workload-family generation. A Family is a deterministic,
 * seed-driven generator of MiniC workloads: it publishes a schema of
 * integer knobs (footprint, iteration counts, rate targets...) and
 * instantiate() turns a fully-resolved knob assignment plus a 64-bit
 * seed into a workloads::Workload whose expectedOutput the generator
 * computes itself, by mirroring the emitted program's arithmetic in
 * C++. Generated instances are ordinary workloads — they flow through
 * compilation, profiling, synthesis, the artifact cache and the
 * differential test suites exactly like the hand-written MiBench
 * analogues — which is what turns the fixed Figure-4 evaluation surface
 * into an open-ended family of scenarios (ROADMAP "scenario
 * diversity").
 */

#ifndef BSYN_GEN_FAMILY_HH
#define BSYN_GEN_FAMILY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace bsyn::gen
{

/** Schema entry for one integer knob of a family. */
struct KnobSpec
{
    std::string name;        ///< e.g. "nodes"
    std::string description; ///< one-line meaning incl. units
    int64_t def = 0;         ///< value used when the knob is omitted
    int64_t min = 0;         ///< inclusive lower bound
    int64_t max = 0;         ///< inclusive upper bound
};

/** A (partial or resolved) knob assignment. Ordered so canonical
 *  instance names and cache keys are deterministic. */
using KnobValues = std::map<std::string, int64_t>;

/**
 * One generator family. Implementations are stateless and
 * thread-safe: instantiate() may be called concurrently from pool
 * workers. Everything an instance contains — source text, name,
 * expected output — is a pure function of (knobs, seed).
 */
class Family
{
  public:
    virtual ~Family() = default;

    /** Family name, e.g. "pointer_chase" (also the instance's
     *  Workload::benchmark). */
    virtual std::string name() const = 0;

    /** One-line description of the behavioral shape the family covers. */
    virtual std::string description() const = 0;

    /** The knob schema, in canonical (naming/cache-key) order. */
    virtual std::vector<KnobSpec> knobs() const = 0;

    /**
     * Knob presets sampling the family's interesting corners (e.g.
     * L1-resident vs L2-thrashing footprints). Used by
     * Registry::sample() and the CLI's `--family all`. Presets may be
     * partial; they are resolved against the schema.
     */
    virtual std::vector<KnobValues> presets() const = 0;

    /**
     * Generate the instance for a *fully resolved* knob assignment
     * (every schema knob present and in range — use make() for
     * overrides). The returned workload's expectedOutput is the exact
     * line the program prints, computed by the generator itself.
     */
    virtual workloads::Workload instantiate(const KnobValues &knobs,
                                            uint64_t seed) const = 0;

    // ------------------------------------------------- shared helpers

    /** Apply defaults and validate: fatal() on an unknown knob name
     *  (listing the valid ones) or an out-of-range value. */
    KnobValues resolve(const KnobValues &overrides) const;

    /** resolve() + instantiate(). */
    workloads::Workload make(const KnobValues &overrides,
                             uint64_t seed) const;

    /** Canonical instance input string: every schema knob in schema
     *  order plus the seed — "nodes=4096,steps=200000,shuffle=1,seed=1".
     *  Workload::input of generated instances; deterministic, so the
     *  content-addressed cache keys on it. */
    std::string instanceInput(const KnobValues &resolved,
                              uint64_t seed) const;
};

/** A parsed generation request: family plus (partial) knob overrides.
 *  Accepted shapes: "family", "family,k=v,...", and the instance-name
 *  form "family/k=v,...,seed=S". "seed=S" is recognized in both. */
struct InstanceSpec
{
    std::string family;
    KnobValues knobs;
    bool hasSeed = false;
    uint64_t seed = 0;
};

/** Parse a spec; fatal() on malformed text (bad k=v syntax, duplicate
 *  knob, malformed number). Family existence is NOT checked here. */
InstanceSpec parseSpec(const std::string &text);

/** Derive the 32-bit in-program RNG seed every family feeds its
 *  emitted MiniC LCG from (and its C++ mirror). Never zero. */
uint32_t programSeed(uint64_t seed);

} // namespace bsyn::gen

#endif // BSYN_GEN_FAMILY_HH
