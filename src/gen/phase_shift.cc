/**
 * @file
 * phase_shift — multi-phase programs whose profiles are not
 * stationary: each round runs up to four phases with deliberately
 * different instruction mixes and miss rates (integer ALU over a small
 * buffer, an FP recurrence, dependent walks over a 256 KB array, and a
 * Markov-branchy loop), so the aggregate instruction mix and the
 * per-block counts drift with the phase structure. `only_phase`
 * isolates a single phase — same static program text modulo the main
 * loop — which is how the tests (and users) observe the per-phase
 * instruction-mix deltas directly in the profile.
 */

#include "gen/families.hh"

#include <vector>

#include "gen/mirror.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

namespace
{

class PhaseShiftFamily : public Family
{
  public:
    std::string name() const override { return "phase_shift"; }

    std::string
    description() const override
    {
        return "multi-phase programs whose instruction mix and miss "
               "rates drift between ALU / FP / memory / branch phases";
    }

    std::vector<KnobSpec>
    knobs() const override
    {
        return {
            {"phases", "phases per round (order: alu, fp, mem, "
                       "branch)",
             3, 2, 4},
            {"rounds", "times the phase sequence repeats",
             4, 1, 64},
            {"work", "inner iterations per phase per round",
             12000, 2000, 500000},
            {"only_phase", "isolate one phase index (-1 = run all; "
                           "must be < phases)",
             -1, -1, 3},
        };
    }

    std::vector<KnobValues>
    presets() const override
    {
        return {
            {},                                   // alu -> fp -> mem
            {{"phases", 4}, {"rounds", 6}},       // all four phases
            {{"phases", 2}, {"work", 30000}},     // alu <-> fp flip
        };
    }

    workloads::Workload
    instantiate(const KnobValues &knobs, uint64_t seed) const override
    {
        const long long phases = knobs.at("phases");
        const long long rounds = knobs.at("rounds");
        const long long work = knobs.at("work");
        const long long only = knobs.at("only_phase");
        if (only >= phases)
            fatal("phase_shift: only_phase=%lld but the instance has "
                  "%lld phases",
                  static_cast<long long>(only),
                  static_cast<long long>(phases));
        const uint32_t s32 = programSeed(seed);

        std::string calls;
        static const char *const kCall[4] = {
            "    acc = phaseAlu(%lld, acc);\n",
            "    facc = phaseFp(%lld, facc);\n",
            "    acc = phaseMem(%lld, acc);\n",
            "    acc = phaseBr(%lld, acc);\n",
        };
        for (long long k = 0; k < phases; ++k)
            if (only < 0 || only == k)
                calls += strprintf(kCall[k], work);

        workloads::Workload w;
        w.benchmark = name();
        w.input = instanceInput(knobs, seed);
        w.source = strprintf(R"(uint ibuf[1024];
uint big[65536];
double fa[1024];
double fb[1024];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525u + 1013904223u;
  return rngState;
}

uint phaseAlu(int n, uint acc) {
  int i;
  for (i = 0; i < n; i++) {
    uint x = ibuf[i & 1023];
    acc = acc + ((x ^ (acc << 3)) + (x >> 7));
    acc = acc ^ (acc >> 11);
    acc = acc + (acc << 2);
    ibuf[(i * 3) & 1023] = acc;
  }
  return acc;
}

double phaseFp(int n, double facc) {
  int i;
  for (i = 0; i < n; i++) {
    int k = i & 1023;
    double v = fa[k] * 0.7 + fb[k] * 0.29;
    fb[k] = v * 0.9 + 0.001;
    fa[k] = v;
    facc = facc * 0.5 + v;
  }
  return facc;
}

uint phaseMem(int n, uint acc) {
  int i;
  for (i = 0; i < n; i++) {
    uint j = (acc ^ ((uint)i * 2654435761u)) & 65535u;
    acc = acc + big[j];
    big[(j + 11u) & 65535u] = acc;
  }
  return acc;
}

uint phaseBr(int n, uint acc) {
  int i;
  int state;
  state = 0;
  for (i = 0; i < n; i++) {
    uint r = nextRand();
    if ((r %% 100u) < 47u) acc = acc + 5u; else acc = acc ^ 0x2545u;
    if (((r >> 8) %% 100u) < 31u) state = 1 - state;
    if (state > 0) acc = acc + (r & 15u); else acc = acc - (r & 3u);
  }
  return acc;
}

int main() {
  int r;
  int i;
  uint acc;
  double facc;
  rngState = %uu;
  for (i = 0; i < 1024; i++) {
    fa[i] = (double)((int)(nextRand() & 1023u) - 512) / 256.0;
    fb[i] = 0.0;
  }
  acc = 0x9e37u;
  facc = 0.0;
  for (r = 0; r < %lld; r++) {
%s  }
  printf("phase_shift=%%u\n", acc ^ (uint)((int)(facc * 1000.0)));
  return (int)(acc & 255u);
}
)",
                             s32, rounds, calls.c_str());
        w.expectedOutput = strprintf(
            "phase_shift=%u",
            expected(phases, rounds, work, only, s32));
        return w;
    }

  private:
    static uint32_t
    expected(long long phases, long long rounds, long long work,
             long long only, uint32_t s32)
    {
        std::vector<uint32_t> ibuf(1024, 0);
        std::vector<uint32_t> big(65536, 0);
        std::vector<double> fa(1024), fb(1024, 0.0);
        uint32_t rng = s32;
        for (int i = 0; i < 1024; ++i)
            fa[static_cast<size_t>(i)] =
                static_cast<double>(
                    static_cast<int32_t>(mirror::lcg(rng) & 1023u) -
                    512) /
                256.0;

        uint32_t acc = 0x9e37u;
        double facc = 0.0;
        auto alu = [&](long long n) {
            for (long long i = 0; i < n; ++i) {
                uint32_t x = ibuf[static_cast<size_t>(i & 1023)];
                acc = acc + ((x ^ (acc << 3)) + (x >> 7));
                acc = acc ^ (acc >> 11);
                acc = acc + (acc << 2);
                ibuf[static_cast<size_t>((i * 3) & 1023)] = acc;
            }
        };
        auto fp = [&](long long n) {
            for (long long i = 0; i < n; ++i) {
                size_t k = static_cast<size_t>(i & 1023);
                double v = fa[k] * 0.7 + fb[k] * 0.29;
                fb[k] = v * 0.9 + 0.001;
                fa[k] = v;
                facc = facc * 0.5 + v;
            }
        };
        auto mem = [&](long long n) {
            for (long long i = 0; i < n; ++i) {
                uint32_t j =
                    (acc ^ (static_cast<uint32_t>(i) * 2654435761u)) &
                    65535u;
                acc = acc + big[j];
                big[(j + 11u) & 65535u] = acc;
            }
        };
        auto br = [&](long long n) {
            int state = 0;
            for (long long i = 0; i < n; ++i) {
                uint32_t r = mirror::lcg(rng);
                if ((r % 100u) < 47u)
                    acc = acc + 5u;
                else
                    acc = acc ^ 0x2545u;
                if (((r >> 8) % 100u) < 31u)
                    state = 1 - state;
                if (state > 0)
                    acc = acc + (r & 15u);
                else
                    acc = acc - (r & 3u);
            }
        };

        for (long long r = 0; r < rounds; ++r) {
            for (long long k = 0; k < phases; ++k) {
                if (only >= 0 && only != k)
                    continue;
                if (k == 0)
                    alu(work);
                else if (k == 1)
                    fp(work);
                else if (k == 2)
                    mem(work);
                else
                    br(work);
            }
        }
        return acc ^ static_cast<uint32_t>(
                         mirror::castF64ToI32(facc * 1000.0));
    }
};

} // namespace

std::unique_ptr<Family>
makePhaseShiftFamily()
{
    return std::make_unique<PhaseShiftFamily>();
}

} // namespace bsyn::gen
