/**
 * @file
 * Exact-semantics helpers for the C++ mirrors inside the family
 * generators. Every family self-computes its instance's expectedOutput
 * by re-running the emitted program's arithmetic in C++; these helpers
 * pin the two places where C++ and MiniC could drift — the shared
 * in-program LCG and the saturating float-to-int conversion the
 * interpreter defines (sim/interpreter.cc CvtFI: NaN -> 0, clamp to
 * the destination range, then truncate).
 */

#ifndef BSYN_GEN_MIRROR_HH
#define BSYN_GEN_MIRROR_HH

#include <cmath>
#include <cstdint>

namespace bsyn::gen::mirror
{

/** The LCG every family emits as `nextRand()` (Numerical Recipes
 *  constants, same as the hand-written workloads use). */
inline uint32_t
lcg(uint32_t &state)
{
    state = state * 1664525u + 1013904223u;
    return state;
}

/** MiniC `(int)<double>`: NaN -> 0, saturate, truncate toward zero. */
inline int32_t
castF64ToI32(double d)
{
    if (std::isnan(d))
        return 0;
    if (d < -2147483648.0)
        return INT32_MIN;
    if (d > 2147483647.0)
        return INT32_MAX;
    return static_cast<int32_t>(d);
}

/** MiniC `(uint)<double>`: NaN -> 0, saturate into [0, 2^32), truncate. */
inline uint32_t
castF64ToU32(double d)
{
    if (std::isnan(d))
        return 0;
    if (d < 0.0)
        return 0;
    if (d > 4294967295.0)
        return UINT32_MAX;
    return static_cast<uint32_t>(d);
}

} // namespace bsyn::gen::mirror

#endif // BSYN_GEN_MIRROR_HH
