/**
 * @file
 * The family registry: the one place that knows every registered
 * workload family. The workloads:: suite lookup, the pipeline batch
 * API and the bsyn CLI (`gen`, `list`, `suite --family`, `fidelity`)
 * all resolve families through it, so a new family registered here is
 * immediately generatable, profileable, synthesizable, cacheable and
 * testable everywhere.
 */

#ifndef BSYN_GEN_REGISTRY_HH
#define BSYN_GEN_REGISTRY_HH

#include <memory>
#include <vector>

#include "gen/family.hh"

namespace bsyn::gen
{

class Registry
{
  public:
    /** The process-wide registry holding the built-in families. */
    static const Registry &global();

    /** Registration order (stable; drives `bsyn list` and sample()). */
    std::vector<const Family *> families() const;

    /** Family names in registration order. */
    std::vector<std::string> names() const;

    /** Look up by name; nullptr if not registered. */
    const Family *find(const std::string &name) const;

    /** Look up by name; fatal() listing registered families. */
    const Family &require(const std::string &name) const;

    /**
     * A deterministic fixed-seed sample across every family: for each
     * family, its first @p perFamily presets (cycling when a family
     * publishes fewer), instantiated with seeds derived from
     * @p baseSeed, the family name and the preset index. The same
     * (perFamily, baseSeed) always yields byte-identical workloads —
     * this is the instance set CI profiles and scores nightly.
     */
    std::vector<workloads::Workload> sample(size_t perFamily,
                                            uint64_t baseSeed) const;

    /**
     * One instance of *every* published preset of every family, with
     * the same seed derivation as sample() (base, family name, preset
     * index). Byte-identical for a fixed @p baseSeed. This is the
     * full-coverage batch the CI fidelity smoke scores now that the
     * timing metric is cheap — sample() remains the smaller
     * fixed-width variant.
     */
    std::vector<workloads::Workload> allPresets(uint64_t baseSeed) const;

    /** Add a family (test/extension hook; not thread-safe vs reads). */
    void add(std::unique_ptr<Family> family);

  private:
    std::vector<std::unique_ptr<Family>> families_;
};

/**
 * Resolve a generated-instance name of the form
 * "family/knob=value,...,seed=S" (any knob subset, any order; omitted
 * knobs take their defaults, omitted seed is 1). Returns nullptr when
 * the name's family prefix is not registered — the caller falls back
 * to its own error path. fatal() when the family exists but the knob
 * string is malformed or out of range. The returned workload is
 * interned: repeated lookups of the same name return the same stable
 * reference (workloads::findWorkload hands these out by reference).
 */
const workloads::Workload *findGenerated(const std::string &name);

/** Instantiate from a parsed spec via the global registry; fatal() on
 *  an unknown family. Seed defaults to 1 when the spec carries none. */
workloads::Workload instantiateSpec(const InstanceSpec &spec);

} // namespace bsyn::gen

#endif // BSYN_GEN_REGISTRY_HH
