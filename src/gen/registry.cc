#include "gen/registry.hh"

#include <mutex>
#include <unordered_map>

#include "gen/families.hh"
#include "pipeline/pipeline.hh"
#include "support/error.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

const Registry &
Registry::global()
{
    static const Registry reg = [] {
        Registry r;
        r.add(makePointerChaseFamily());
        r.add(makeBranchMazeFamily());
        r.add(makeFpKernelFamily());
        r.add(makeStreamMixFamily());
        r.add(makePhaseShiftFamily());
        return r;
    }();
    return reg;
}

void
Registry::add(std::unique_ptr<Family> family)
{
    if (find(family->name()))
        fatal("gen: family '%s' registered twice",
              family->name().c_str());
    families_.push_back(std::move(family));
}

std::vector<const Family *>
Registry::families() const
{
    std::vector<const Family *> out;
    out.reserve(families_.size());
    for (const auto &f : families_)
        out.push_back(f.get());
    return out;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(families_.size());
    for (const auto &f : families_)
        out.push_back(f->name());
    return out;
}

const Family *
Registry::find(const std::string &name) const
{
    for (const auto &f : families_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

const Family &
Registry::require(const std::string &name) const
{
    if (const Family *f = find(name))
        return *f;
    fatal("unknown workload family '%s' (registered: %s)", name.c_str(),
          join(names(), ", ").c_str());
}

std::vector<workloads::Workload>
Registry::sample(size_t perFamily, uint64_t baseSeed) const
{
    std::vector<workloads::Workload> out;
    for (const auto &f : families_) {
        const std::vector<KnobValues> presets = f->presets();
        if (presets.empty())
            fatal("gen: family '%s' publishes no presets",
                  f->name().c_str());
        for (size_t i = 0; i < perFamily; ++i) {
            // The seed depends only on (base, family, preset index) —
            // not on registry order or batch position — so a sample is
            // stable under family additions elsewhere in the registry.
            uint64_t seed = pipeline::deriveWorkloadSeed(
                baseSeed,
                f->name() + "#" + std::to_string(i));
            out.push_back(
                f->make(presets[i % presets.size()], seed));
        }
    }
    return out;
}

std::vector<workloads::Workload>
Registry::allPresets(uint64_t baseSeed) const
{
    std::vector<workloads::Workload> out;
    for (const auto &f : families_) {
        const std::vector<KnobValues> presets = f->presets();
        if (presets.empty())
            fatal("gen: family '%s' publishes no presets",
                  f->name().c_str());
        for (size_t i = 0; i < presets.size(); ++i) {
            // Same derivation as sample(): preset i of a family gets
            // the same seed in both batches, so the all-presets run
            // scores a superset of the sampled clones.
            uint64_t seed = pipeline::deriveWorkloadSeed(
                baseSeed,
                f->name() + "#" + std::to_string(i));
            out.push_back(f->make(presets[i], seed));
        }
    }
    return out;
}

workloads::Workload
instantiateSpec(const InstanceSpec &spec)
{
    const Family &family = Registry::global().require(spec.family);
    return family.make(spec.knobs, spec.hasSeed ? spec.seed : 1);
}

const workloads::Workload *
findGenerated(const std::string &name)
{
    size_t slash = name.find('/');
    std::string familyName =
        slash == std::string::npos ? name : name.substr(0, slash);
    const Family *family = Registry::global().find(familyName);
    if (!family)
        return nullptr;

    // Interned by requested name: findWorkload() hands out references,
    // so every instance generated through the lookup must stay alive
    // (and stable) for the life of the process.
    static std::mutex mtx;
    static std::unordered_map<std::string,
                              std::unique_ptr<workloads::Workload>>
        interned;
    {
        std::lock_guard<std::mutex> lock(mtx);
        auto it = interned.find(name);
        if (it != interned.end())
            return it->second.get();
    }

    // Generate outside the lock — instantiation runs the family's full
    // C++ mirror and concurrent lookups of *different* names must not
    // serialize behind it. A racing duplicate generation is identical
    // (pure function of the name); the first inserter wins.
    InstanceSpec spec = parseSpec(name); // fatal on malformed knobs
    auto w = std::make_unique<workloads::Workload>(
        instantiateSpec(spec));
    std::lock_guard<std::mutex> lock(mtx);
    auto [pos, inserted] = interned.emplace(name, std::move(w));
    (void)inserted;
    return pos->second.get();
}

} // namespace bsyn::gen
