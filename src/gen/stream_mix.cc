/**
 * @file
 * stream_mix — concurrent memory streams over a power-of-two working
 * set: a strided load stream (tunable element stride), a data-dependent
 * gather stream taken on a tunable fraction of iterations, and a
 * strided store stream at 7x the load stride. `wset_log2` scales the
 * footprint from L1-resident (1 KB) to deep-L2 (1 MB per array), which
 * moves every stream's miss class without touching the instruction
 * mix.
 */

#include "gen/families.hh"

#include <vector>

#include "gen/mirror.hh"
#include "support/string_util.hh"

namespace bsyn::gen
{

namespace
{

class StreamMixFamily : public Family
{
  public:
    std::string name() const override { return "stream_mix"; }

    std::string
    description() const override
    {
        return "strided load + data-dependent gather + strided store "
               "streams with tunable stride, working set and gather "
               "fraction";
    }

    std::vector<KnobSpec>
    knobs() const override
    {
        return {
            {"wset_log2", "log2 of the per-array working set in "
                          "4-byte elements (3 arrays)",
             14, 8, 18},
            {"stride", "load-stream stride in elements",
             3, 1, 64},
            {"gather_pct", "approximate percent of iterations taking "
                           "the gather access",
             25, 0, 100},
            {"iters", "stream iterations",
             120000, 1000, 4000000},
        };
    }

    std::vector<KnobValues>
    presets() const override
    {
        return {
            {},                                        // default: 64 KB
            {{"wset_log2", 9}, {"iters", 250000}},     // L1-resident
            {{"wset_log2", 17}, {"stride", 9},
             {"gather_pct", 60}},                      // 512 KB, gathers
        };
    }

    workloads::Workload
    instantiate(const KnobValues &knobs, uint64_t seed) const override
    {
        const long long wsetLog2 = knobs.at("wset_log2");
        const long long stride = knobs.at("stride");
        const long long gatherPct = knobs.at("gather_pct");
        const long long iters = knobs.at("iters");
        const long long wset = 1ll << wsetLog2;
        const long long mask = wset - 1;
        // ~gather_pct% of iterations: the low 7 checksum bits are
        // close to uniform, so compare against gather_pct * 128 / 100.
        const long long gthresh = gatherPct * 128 / 100;
        const uint32_t s32 = programSeed(seed);

        workloads::Workload w;
        w.benchmark = name();
        w.input = instanceInput(knobs, seed);
        w.source = strprintf(R"(uint A[%lld];
uint B[%lld];
uint idx[%lld];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525u + 1013904223u;
  return rngState;
}

int main() {
  int i;
  uint pos;
  uint acc;
  rngState = %uu;
  for (i = 0; i < %lld; i++) {
    A[i] = nextRand();
    idx[i] = nextRand() & %lldu;
    B[i] = 0u;
  }
  pos = 0u;
  acc = 0u;
  for (i = 0; i < %lld; i++) {
    pos = (pos + %lldu) & %lldu;
    acc = acc + A[pos];
    if ((acc & 127u) < %lldu) acc = acc ^ A[idx[pos]];
    B[(pos * 7u) & %lldu] = acc;
  }
  printf("stream_mix=%%u\n", acc);
  return (int)(acc & 255u);
}
)",
                             wset, wset, wset, s32, wset, mask, iters,
                             stride, mask, gthresh, mask);
        w.expectedOutput = strprintf(
            "stream_mix=%u",
            expected(wset, stride, gthresh, iters, s32));
        return w;
    }

  private:
    static uint32_t
    expected(long long wset, long long stride, long long gthresh,
             long long iters, uint32_t s32)
    {
        const uint32_t mask = static_cast<uint32_t>(wset - 1);
        std::vector<uint32_t> A(static_cast<size_t>(wset));
        std::vector<uint32_t> B(static_cast<size_t>(wset), 0);
        std::vector<uint32_t> idx(static_cast<size_t>(wset));
        uint32_t state = s32;
        for (long long i = 0; i < wset; ++i) {
            A[static_cast<size_t>(i)] = mirror::lcg(state);
            idx[static_cast<size_t>(i)] = mirror::lcg(state) & mask;
            B[static_cast<size_t>(i)] = 0;
        }
        uint32_t pos = 0, acc = 0;
        for (long long i = 0; i < iters; ++i) {
            pos = (pos + static_cast<uint32_t>(stride)) & mask;
            acc = acc + A[pos];
            if ((acc & 127u) < static_cast<uint32_t>(gthresh))
                acc = acc ^ A[idx[pos]];
            B[(pos * 7u) & mask] = acc;
        }
        return acc;
    }
};

} // namespace

std::unique_ptr<Family>
makeStreamMixFamily()
{
    return std::make_unique<StreamMixFamily>();
}

} // namespace bsyn::gen
