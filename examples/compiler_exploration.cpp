/**
 * @file
 * Compiler exploration with clones — the capability that separates this
 * paper from binary-level benchmark synthesis: because clones are C,
 * a compiler team can evaluate optimization pipelines on them. This
 * example plays "iterative compilation": it searches pass configurations
 * on the fast-running clone and validates the winner on the original.
 *
 * Build & run:  ./build/examples/compiler_exploration
 */

#include <cstdio>
#include <iostream>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/session.hh"
#include "support/table.hh"

using namespace bsyn;

namespace
{

struct CompilerConfig
{
    const char *name;
    opt::OptLevel level;
    bool inlining;
    bool schedule;
};

uint64_t
instructionsUnder(const std::string &source, const CompilerConfig &cc)
{
    ir::Module m = lang::compile(source, "cc");
    opt::OptOptions oo;
    oo.enableInlining = cc.inlining;
    oo.scheduleForInOrder = cc.schedule;
    opt::optimize(m, cc.level, oo);
    auto prog = isa::lower(m, isa::targetX86());
    return sim::execute(prog).instructions;
}

} // namespace

int
main()
{
    const auto &w = workloads::findWorkload("bitcount/large");
    pipeline::Session session;
    auto run = session.process(w);

    const CompilerConfig configs[] = {
        {"O0", opt::OptLevel::O0, false, false},
        {"O1", opt::OptLevel::O1, false, false},
        {"O2", opt::OptLevel::O2, false, false},
        {"O2+sched", opt::OptLevel::O2, false, true},
        {"O3-inline", opt::OptLevel::O3, false, false},
        {"O3", opt::OptLevel::O3, true, false},
        {"O3+sched", opt::OptLevel::O3, true, true},
    };

    TextTable table("iterative compilation on the clone "
                    "(dynamic instructions, lower is better)");
    table.setHeader({"config", "clone", "clone vs O0"});
    uint64_t clone_base = 0;
    const CompilerConfig *best = nullptr;
    uint64_t best_count = ~0ull;
    for (const auto &cc : configs) {
        uint64_t n = instructionsUnder(run.synthetic.cSource, cc);
        if (clone_base == 0)
            clone_base = n;
        if (n < best_count) {
            best_count = n;
            best = &cc;
        }
        table.addRow({cc.name, TextTable::count(n),
                      TextTable::pct(double(n) / double(clone_base))});
    }
    table.print(std::cout);

    // Validate the chosen configuration on the original workload.
    uint64_t orig_base = instructionsUnder(w.source, configs[0]);
    uint64_t orig_best = instructionsUnder(w.source, *best);
    std::printf("\nclone picked '%s'; on the original it gives %s of "
                "the -O0 instruction count\n",
                best->name,
                TextTable::pct(double(orig_best) / double(orig_base))
                    .c_str());
    std::printf("search cost: every trial ran %llu instructions instead "
                "of %llu\n",
                static_cast<unsigned long long>(clone_base),
                static_cast<unsigned long long>(orig_base));
    return 0;
}
