/**
 * @file
 * Quickstart: the complete benchmark-synthesis flow on one small
 * workload, end to end —
 *
 *   1. compile a C workload at -O0 (the paper's low optimization level),
 *   2. profile it (SFGL + branch + memory behaviour),
 *   3. synthesize the C clone,
 *   4. run the clone and compare behaviour,
 *   5. confirm the clone does not resemble the original source.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/session.hh"
#include "similarity/report.hh"

using namespace bsyn;

namespace
{

// A stand-in for someone's "proprietary" kernel: fixed-point IIR filter
// over a generated signal.
const char *proprietarySource = R"(
int history[4];
uint out[2048];
uint rngState;

uint nextRand() {
  rngState = rngState * 1664525 + 1013904223;
  return rngState;
}

int filterStep(int x) {
  int y = (x * 6 + history[0] * 3 + history[1] * 2 + history[2]) >> 3;
  history[2] = history[1];
  history[1] = history[0];
  history[0] = y;
  return y;
}

int main() {
  int i, r;
  uint check = 0;
  rngState = 42u;
  for (r = 0; r < 30; r++) {
    for (i = 0; i < 2048; i++) {
      int sample = (int)((nextRand() >> 20) & 2047) - 1024;
      out[i] = (uint)(filterStep(sample) & 65535);
    }
    check = check * 31 + out[100] + out[2000];
  }
  printf("filter_check=%u\n", check);
  return 0;
}
)";

} // namespace

int
main()
{
    std::printf("=== bsyn quickstart ===\n\n");

    // The session owns the pipeline state (worker pool, artifact
    // cache); every stage below is one call on it.
    pipeline::Session session;

    // 1+2. Compile at -O0 and profile (the paper's Pin step).
    profile::StatisticalProfile prof =
        session.profile(proprietarySource, "filter");
    std::printf("profiled:   %llu dynamic instructions, %zu basic "
                "blocks, %zu loops\n",
                static_cast<unsigned long long>(prof.dynamicInstructions),
                prof.sfgl.blocks.size(), prof.sfgl.loops.size());
    std::printf("mix:        loads %.1f%%  stores %.1f%%  branches "
                "%.1f%%  others %.1f%%\n",
                100 * prof.mix.loadFraction(),
                100 * prof.mix.storeFraction(),
                100 * prof.mix.branchFraction(),
                100 * prof.mix.otherFraction());

    // 3. Synthesize the clone (auto-chosen reduction factor).
    synth::SynthesisOptions opts;
    opts.targetInstructions = 50000;
    synth::SyntheticBenchmark clone = session.synthesize(prof, opts);
    std::printf("synthetic:  reduction factor R = %llu, pattern "
                "coverage %.1f%%\n",
                static_cast<unsigned long long>(clone.reductionFactor),
                100 * clone.patternStats.coverage());

    // 4. Run both and compare.
    auto orig = pipeline::runSource(proprietarySource, "orig",
                                    opt::OptLevel::O0, isa::targetX86());
    auto syn = pipeline::runSource(clone.cSource, "clone",
                                   opt::OptLevel::O0, isa::targetX86());
    std::printf("original:   %llu instructions -> %s",
                static_cast<unsigned long long>(orig.instructions),
                orig.output.c_str());
    std::printf("clone:      %llu instructions -> %s",
                static_cast<unsigned long long>(syn.instructions),
                syn.output.c_str());
    std::printf("speedup:    the clone is %.1fx shorter-running\n",
                double(orig.instructions) / double(syn.instructions));

    // 5. Obfuscation check (the paper's Moss/JPlag experiment).
    auto report =
        similarity::compareSources(proprietarySource, clone.cSource);
    std::printf("similarity: winnowing %.1f%%, tiling %.1f%% -> %s\n",
                100 * report.winnow, 100 * report.tiling,
                report.hidesProprietaryInformation()
                    ? "proprietary information hidden"
                    : "WARNING: similarity detected");

    std::printf("\n--- synthetic clone source (excerpt) ---\n%.1200s...\n",
                clone.cSource.c_str());
    return 0;
}
