/**
 * @file
 * Emerging-workload generation (paper §II-B.c): no original program
 * exists — an architect *specifies* the behaviour a future workload is
 * expected to have (large working set with poor locality, mixed int/fp
 * compute, hard branches) and synthesizes a runnable C benchmark from
 * the specification, then uses it to size a cache hierarchy.
 *
 * Build & run:  ./build/examples/emerging_workload
 */

#include <cstdio>
#include <iostream>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/session.hh"
#include "support/table.hh"
#include "synth/profile_builder.hh"

using namespace bsyn;

int
main()
{
    // ------------------------------------------------------------------
    // Specify the expected behaviour of a future "edge analytics"
    // workload: an outer event loop; a hot inner kernel streaming a
    // working set far beyond any L1 (Table I class 4 = ~50% misses);
    // a floating-point scoring block; and a hard data-dependent branch.
    // ------------------------------------------------------------------
    synth::ProfileBuilder spec("edge-analytics-2030");

    int event_loop = spec.addLoop(/*iterations=*/400, /*entries=*/1);
    int kernel_loop =
        spec.addLoop(/*iterations=*/60, /*entries=*/400, event_loop);

    synth::BlockSpec stream;
    stream.execCount = 24000; // 400 * 60
    stream.loads = 3;
    stream.stores = 1;
    stream.intOps = 5;
    stream.loadMissClass = 4;  // ~50% miss: pointer-ish traversal
    stream.storeMissClass = 1; // mostly-resident output buffer
    spec.addBlock(kernel_loop, stream);

    synth::BlockSpec scoring;
    scoring.execCount = 24000;
    scoring.fpOps = 6;
    scoring.loads = 2;
    scoring.stores = 1;
    scoring.fpMemory = true;
    scoring.loadMissClass = 2;
    scoring.endsInBranch = true;
    scoring.takenRate = 0.4;
    scoring.transitionRate = 0.5; // hard to predict
    spec.addBlock(kernel_loop, scoring);

    synth::BlockSpec bookkeeping;
    bookkeeping.execCount = 400;
    bookkeeping.intOps = 12;
    bookkeeping.loads = 2;
    bookkeeping.stores = 2;
    spec.addBlock(event_loop, bookkeeping);

    auto prof = spec.build();
    std::printf("specified profile: %llu instructions, %.1f%% loads, "
                "%.1f%% fp\n",
                static_cast<unsigned long long>(
                    prof.dynamicInstructions),
                100 * prof.mix.loadFraction(),
                100 * prof.mix.fpFraction());

    // ------------------------------------------------------------------
    // Synthesize — R=1 keeps the full specified size (a fixed R skips
    // the calibration loop).
    // ------------------------------------------------------------------
    pipeline::Session session;
    synth::SynthesisOptions opts;
    opts.reductionFactor = 1;
    auto bench = session.synthesize(prof, opts);
    auto stats = pipeline::runSource(bench.cSource, "emerging",
                                     opt::OptLevel::O2, isa::targetX86());
    std::printf("generated benchmark runs %llu instructions at -O2\n\n",
                static_cast<unsigned long long>(stats.instructions));

    // ------------------------------------------------------------------
    // Use it: how much cache does the future workload need?
    // ------------------------------------------------------------------
    TextTable table("cache sizing for the specified workload (2-wide "
                    "OoO)");
    table.setHeader({"D$", "hit rate", "CPI"});
    for (uint64_t kb : {4, 8, 16, 32, 64, 128}) {
        auto machine = sim::ptlsimConfig(kb);
        ir::Module m = lang::compile(bench.cSource, "emerging");
        opt::optimize(m, opt::OptLevel::O2);
        auto prog = isa::lower(m, machine.isa);
        auto t = sim::simulateTiming(prog, machine.core);
        table.addRow({std::to_string(kb) + "KB",
                      TextTable::pct(t.l1d.hitRate()),
                      TextTable::num(t.cpi(), 3)});
    }
    table.print(std::cout);
    std::printf("\nthe class-4 streams keep missing every cache below "
                "the working set — the architect sees exactly the "
                "pressure the spec asked for.\n");
    return 0;
}
