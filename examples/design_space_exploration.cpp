/**
 * @file
 * Architecture design-space exploration with synthetic clones (the
 * paper's simulation-time-reduction application): sweep cache sizes and
 * branch predictors, and check that the clone leads the architect to
 * the same design point as the original workload — in a fraction of the
 * simulated instructions.
 *
 * Build & run:  ./build/examples/design_space_exploration
 */

#include <cstdio>
#include <iostream>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/session.hh"
#include "support/table.hh"

using namespace bsyn;

namespace
{

double
cpiWith(const std::string &source, uint64_t dcache_kb,
        const std::string &predictor)
{
    auto machine = sim::ptlsimConfig(dcache_kb);
    machine.core.predictor = predictor;
    ir::Module m = lang::compile(source, "dse");
    auto prog = isa::lower(m, machine.isa);
    return sim::simulateTiming(prog, machine.core).cpi();
}

} // namespace

int
main()
{
    // dijkstra: the paper's cache-sensitive benchmark.
    const auto &w = workloads::findWorkload("dijkstra/large");
    pipeline::Session session;
    auto run = session.process(w);
    std::printf(
        "exploring with clone: %llu vs %llu original instructions "
        "(%.0fx faster per design point)\n\n",
        static_cast<unsigned long long>(
            pipeline::measureInstructions(run.synthetic.cSource)),
        static_cast<unsigned long long>(run.profile.dynamicInstructions),
        double(run.profile.dynamicInstructions) /
            double(pipeline::measureInstructions(run.synthetic.cSource)));

    TextTable cache_table("cache sweep (2-wide OoO, tournament "
                          "predictor): CPI");
    cache_table.setHeader({"D$ size", "original", "clone"});
    uint64_t best_org = 0, best_syn = 0;
    double best_org_gain = 0, best_syn_gain = 0;
    double prev_org = 0, prev_syn = 0;
    for (uint64_t kb : {4, 8, 16, 32, 64}) {
        double o = cpiWith(w.source, kb, "tournament");
        double s = cpiWith(run.synthetic.cSource, kb, "tournament");
        if (prev_org > 0 && prev_org - o > best_org_gain) {
            best_org_gain = prev_org - o;
            best_org = kb;
        }
        if (prev_syn > 0 && prev_syn - s > best_syn_gain) {
            best_syn_gain = prev_syn - s;
            best_syn = kb;
        }
        prev_org = o;
        prev_syn = s;
        cache_table.addRow({std::to_string(kb) + "KB",
                            TextTable::num(o, 3), TextTable::num(s, 3)});
    }
    cache_table.print(std::cout);
    std::printf("largest marginal win when growing to: original %lluKB, "
                "clone %lluKB\n\n",
                static_cast<unsigned long long>(best_org),
                static_cast<unsigned long long>(best_syn));

    TextTable bp_table("branch predictor sweep (8KB D$): CPI");
    bp_table.setHeader({"predictor", "original", "clone"});
    for (const char *p : {"static", "bimodal", "gshare", "tournament"}) {
        bp_table.addRow({p, TextTable::num(cpiWith(w.source, 8, p), 3),
                         TextTable::num(
                             cpiWith(run.synthetic.cSource, 8, p), 3)});
    }
    bp_table.print(std::cout);
    std::printf("\nboth versions should rank the predictors the same "
                "way.\n");
    return 0;
}
