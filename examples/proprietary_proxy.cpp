/**
 * @file
 * Proprietary-proxy scenario (the paper's flagship application): a
 * company profiles its code in-house, writes ONLY the statistical
 * profile and the synthetic clone to disk, and ships those to a
 * hardware vendor. The vendor — this program's second half — never sees
 * the original source, yet can recompile the clone at every optimization
 * level and use it to drive architecture decisions.
 *
 * Build & run:  ./build/examples/proprietary_proxy [output-dir]
 */

#include <cstdio>
#include <string>

#include "pipeline/session.hh"
#include "support/string_util.hh"

using namespace bsyn;

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : ".";

    // ------------------------------------------------------------------
    // Company side: profile the proprietary workload, synthesize, ship.
    // ------------------------------------------------------------------
    const auto &secret = workloads::findWorkload("gsm/small1");
    std::printf("[company] profiling proprietary workload (%llu dynamic "
                "instructions)\n",
                static_cast<unsigned long long>(
                    pipeline::measureInstructions(secret.source)));

    pipeline::Session session;
    auto run = session.process(secret);

    std::string profile_path = dir + "/proxy_profile.json";
    std::string clone_path = dir + "/proxy_clone.c";
    run.profile.saveTo(profile_path);
    writeFile(clone_path, run.synthetic.cSource);
    std::printf("[company] shipped %s and %s (the original source stays "
                "in-house)\n\n",
                profile_path.c_str(), clone_path.c_str());

    // ------------------------------------------------------------------
    // Vendor side: everything below uses ONLY the shipped files.
    // ------------------------------------------------------------------
    std::string clone = readFile(clone_path);
    auto shipped = profile::StatisticalProfile::loadFrom(profile_path);
    std::printf("[vendor] received profile of '%s': %llu instructions, "
                "%zu blocks\n",
                shipped.workloadName.c_str(),
                static_cast<unsigned long long>(
                    shipped.dynamicInstructions),
                shipped.sfgl.blocks.size());

    std::printf("[vendor] compiler sweep on the clone:\n");
    for (auto lvl : {opt::OptLevel::O0, opt::OptLevel::O1,
                     opt::OptLevel::O2, opt::OptLevel::O3}) {
        auto stats = pipeline::runSource(clone, "clone", lvl,
                                         isa::targetX86());
        std::printf("  %-3s %10llu dynamic instructions\n",
                    opt::optLevelName(lvl),
                    static_cast<unsigned long long>(stats.instructions));
    }

    std::printf("[vendor] machine sweep on the clone (-O2):\n");
    for (const auto &machine : sim::paperMachines()) {
        auto t = pipeline::timeOnMachine(clone, "clone",
                                         opt::OptLevel::O2, machine);
        std::printf("  %-18s CPI %.3f  time %.2f us\n",
                    machine.name.c_str(), t.cpi(),
                    machine.timeNs(t.cycles) / 1000.0);
    }

    std::printf("\n[vendor] decisions made without ever seeing the "
                "proprietary source.\n");
    return 0;
}
