/**
 * @file
 * Benchmark consolidation (paper §II-B.e): merge the statistical
 * profiles of several workloads into one and synthesize a single clone
 * that stands in for the whole set — fewer binaries to distribute, and
 * one more layer of information hiding.
 *
 * Build & run:  ./build/examples/consolidation
 */

#include <cstdio>
#include <iostream>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "pipeline/session.hh"
#include "support/table.hh"
#include "synth/consolidate.hh"

using namespace bsyn;

int
main()
{
    const char *names[] = {"crc32/small", "sha/small", "fft/small1",
                           "dijkstra/small"};

    pipeline::Session session;
    std::vector<profile::StatisticalProfile> profiles;
    uint64_t total_instructions = 0;
    for (const char *n : names) {
        const auto &w = workloads::findWorkload(n);
        profiles.push_back(session.profile(w));
        total_instructions += profiles.back().dynamicInstructions;
        std::printf("profiled %-16s %12llu instructions\n", n,
                    static_cast<unsigned long long>(
                        profiles.back().dynamicInstructions));
    }

    auto merged = synth::consolidate(profiles, "mibench-mini");
    std::printf("\nconsolidated profile: %llu instructions, %zu blocks, "
                "%zu loops\n",
                static_cast<unsigned long long>(
                    merged.dynamicInstructions),
                merged.sfgl.blocks.size(), merged.sfgl.loops.size());

    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 250000;
    auto clone = session.synthesize(merged, opts);
    uint64_t clone_n = pipeline::measureInstructions(clone.cSource);
    std::printf("single consolidated clone: %llu instructions "
                "(%.0fx shorter than the four originals together)\n\n",
                static_cast<unsigned long long>(clone_n),
                double(total_instructions) / double(clone_n));

    // The consolidated clone mixes integer and floating-point behaviour.
    ir::Module cm = lang::compile(clone.cSource, "consolidated");
    auto cp = profile::profileModule(cm);

    TextTable table("instruction mix: union of originals vs consolidated "
                    "clone");
    table.setHeader({"who", "loads", "stores", "branches", "fp share"});
    profile::InstrMix orig_mix;
    for (const auto &p : profiles)
        orig_mix.merge(p.mix);
    table.addRow({"originals", TextTable::pct(orig_mix.loadFraction()),
                  TextTable::pct(orig_mix.storeFraction()),
                  TextTable::pct(orig_mix.branchFraction()),
                  TextTable::pct(orig_mix.fpFraction())});
    table.addRow({"clone", TextTable::pct(cp.mix.loadFraction()),
                  TextTable::pct(cp.mix.storeFraction()),
                  TextTable::pct(cp.mix.branchFraction()),
                  TextTable::pct(cp.mix.fpFraction())});
    table.print(std::cout);
    return 0;
}
