/**
 * @file
 * Differential tests for the predecoded execution engine: every suite
 * workload and the whole test_fuzz program corpus run through both the
 * reference decode-per-step interpreter and the predecoded
 * threaded-dispatch engine, and the results — ExecStats including
 * captured output, and the profile JSON built on top of the observer
 * stream — must be identical bit for bit. This is the property that
 * lets the fast engine be the default everywhere: it is purely an
 * accelerator, never a semantic fork.
 */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "lang/frontend.hh"
#include "opt/pipeline.hh"
#include "profile/profiler.hh"
#include "sim/decoded_program.hh"
#include "workloads/suite.hh"

#include "program_fuzzer.hh"

namespace bsyn
{
namespace
{

/** One instance per benchmark: the engine differential does not need
 *  every input size of the same kernel. */
const std::vector<workloads::Workload> &
representativeSuite()
{
    static const std::vector<workloads::Workload> suite = [] {
        std::vector<workloads::Workload> out;
        std::string last;
        for (const auto &w : workloads::mibenchSuite()) {
            if (w.benchmark == last)
                continue;
            last = w.benchmark;
            out.push_back(w);
        }
        return out;
    }();
    return suite;
}

isa::MachineProgram
lowerAt(const workloads::Workload &w, opt::OptLevel level)
{
    ir::Module m = lang::compile(w.source, w.name());
    opt::optimize(m, level);
    return isa::lower(m, isa::targetX86());
}

class WorkloadDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, opt::OptLevel>>
{};

TEST_P(WorkloadDifferential, StatsAndOutputIdentical)
{
    const auto &[idx, level] = GetParam();
    const workloads::Workload &w = representativeSuite()[idx];
    isa::MachineProgram prog = lowerAt(w, level);

    sim::ExecStats ref = sim::executeReference(prog);
    sim::DecodedProgram decoded(prog);
    sim::ExecStats fast = sim::execute(decoded);

    EXPECT_EQ(ref.instructions, fast.instructions) << w.name();
    EXPECT_EQ(ref.memReads, fast.memReads) << w.name();
    EXPECT_EQ(ref.memWrites, fast.memWrites) << w.name();
    EXPECT_EQ(ref.branches, fast.branches) << w.name();
    EXPECT_EQ(ref.takenBranches, fast.takenBranches) << w.name();
    EXPECT_EQ(ref.calls, fast.calls) << w.name();
    EXPECT_EQ(ref.exitCode, fast.exitCode) << w.name();
    EXPECT_EQ(ref.output, fast.output) << w.name();
}

std::string
workloadDiffName(
    const ::testing::TestParamInfo<WorkloadDifferential::ParamType> &info)
{
    const auto &[idx, level] = info.param;
    std::string name = representativeSuite()[idx].benchmark;
    for (char &c : name)
        if (c == '/' || c == '-')
            c = '_';
    return name + "_" + opt::optLevelName(level);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, representativeSuite().size()),
        ::testing::Values(opt::OptLevel::O0, opt::OptLevel::O2)),
    workloadDiffName);

TEST(ProfileDifferential, ProfileJsonIdenticalOnBothEngines)
{
    // The profiler attaches as an ExecObserver; the predecoded engine
    // must drive it through the exact same callback sequence, so the
    // serialized profile — block counts, edges, branch rates, miss
    // classes, the lot — is byte-identical.
    for (const auto &w : representativeSuite()) {
        ir::Module m = workloads::compileWorkload(w);

        profile::ProfileOptions fast_opts; // default: predecoded
        profile::ProfileOptions ref_opts;
        ref_opts.limits.engine = sim::ExecEngine::Reference;

        std::string fast_json =
            profile::profileModule(m, fast_opts).serialize();
        std::string ref_json =
            profile::profileModule(m, ref_opts).serialize();
        EXPECT_EQ(ref_json, fast_json) << w.name();
    }
}

class FuzzCorpusDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzCorpusDifferential, StatsIdenticalAtO0AndO2)
{
    ProgramFuzzer fuzzer(GetParam());
    std::string src = fuzzer.generate();
    for (auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
        ir::Module m = lang::compile(src, "fuzz");
        opt::optimize(m, level);
        isa::MachineProgram prog = isa::lower(m, isa::targetX86());
        sim::ExecStats ref = sim::executeReference(prog);
        sim::ExecStats fast = sim::execute(sim::DecodedProgram(prog));
        EXPECT_TRUE(ref == fast)
            << "seed " << GetParam() << " at "
            << opt::optLevelName(level) << "\n"
            << src;
    }
}

// The same seed range as test_fuzz's Seeds instantiation — one corpus,
// two differential properties.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCorpusDifferential,
                         ::testing::Range<uint64_t>(1, 41));

TEST(DecodedStructure, BlocksPartitionTheProgram)
{
    const auto &w = workloads::findWorkload("sha/small");
    isa::MachineProgram prog = lowerAt(w, opt::OptLevel::O2);
    sim::DecodedProgram decoded(prog);

    ASSERT_EQ(decoded.size(), prog.size());
    ASSERT_FALSE(decoded.blocks().empty());

    // Blocks tile the PC range exactly, in order, with no overlap.
    int32_t expect = 0;
    for (const auto &b : decoded.blocks()) {
        EXPECT_EQ(b.first, expect);
        EXPECT_LT(b.first, b.end);
        expect = b.end;
    }
    EXPECT_EQ(expect, static_cast<int32_t>(prog.size()));

    // Every branch/jump target is a block leader, and blockOf() agrees
    // with the tiling.
    for (size_t pc = 0; pc < prog.size(); ++pc) {
        const isa::MInst &mi = prog.code[pc];
        if (mi.kind == isa::MKind::CondBr || mi.kind == isa::MKind::Jmp) {
            int b = decoded.blockOf(mi.target);
            EXPECT_EQ(decoded.blocks()[static_cast<size_t>(b)].first,
                      mi.target);
        }
        int b = decoded.blockOf(static_cast<int>(pc));
        EXPECT_LE(decoded.blocks()[static_cast<size_t>(b)].first,
                  static_cast<int32_t>(pc));
        EXPECT_LT(static_cast<int32_t>(pc),
                  decoded.blocks()[static_cast<size_t>(b)].end);
    }
}

} // namespace
} // namespace bsyn
