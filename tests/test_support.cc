/** @file Unit tests for the support layer (rng, stats, json, strings). */

#include <gtest/gtest.h>

#include "support/error.hh"
#include "support/hash.hh"
#include "support/json.hh"
#include "support/rng.hh"
#include "support/statistics.hh"
#include "support/string_util.hh"
#include "support/table.hh"

namespace bsyn
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, WeightedRespectsWeights)
{
    Rng r(11);
    std::vector<double> w{1.0, 0.0, 9.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 10000; ++i)
        ++counts[r.nextWeighted(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Rng, BoolProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
    EXPECT_FALSE(r.nextBool(0.0));
    EXPECT_TRUE(r.nextBool(1.0));
}

TEST(Statistics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
}

TEST(Statistics, Pearson)
{
    std::vector<double> x{1, 2, 3, 4};
    std::vector<double> y{2, 4, 6, 8};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> z{8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Statistics, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(110, 100), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(relativeError(5, 0), 1.0);
}

TEST(Statistics, RunningStat)
{
    RunningStat s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Json, RoundTrip)
{
    Json obj = Json::object();
    obj.set("name", Json("bsyn"));
    obj.set("count", Json(int64_t(42)));
    obj.set("ratio", Json(0.5));
    obj.set("flag", Json(true));
    Json arr = Json::array();
    arr.push(Json(1));
    arr.push(Json("two"));
    arr.push(Json());
    obj.set("items", std::move(arr));

    Json parsed = Json::parse(obj.dump(2));
    EXPECT_EQ(parsed.get("name").asString(), "bsyn");
    EXPECT_EQ(parsed.get("count").asInt(), 42);
    EXPECT_DOUBLE_EQ(parsed.get("ratio").asNumber(), 0.5);
    EXPECT_TRUE(parsed.get("flag").asBool());
    EXPECT_EQ(parsed.get("items").size(), 3u);
    EXPECT_TRUE(parsed.get("items").at(2).isNull());
}

TEST(Json, EscapesStrings)
{
    Json j(std::string("a\"b\\c\nd"));
    Json parsed = Json::parse(j.dump(-1));
    EXPECT_EQ(parsed.asString(), "a\"b\\c\nd");
}

TEST(Json, RoundTripsControlCharacters)
{
    // Every byte below 0x20 must survive dump -> parse, whether it uses
    // a short escape (\n, \t, \r) or the generic \u00XX form.
    std::string all;
    for (int c = 1; c < 0x20; ++c)
        all += static_cast<char>(c);
    all += '\0'; // embedded NUL too
    Json parsed = Json::parse(Json(all).dump(-1));
    EXPECT_EQ(parsed.asString(), all);

    // Spot-check the serialized form itself.
    EXPECT_EQ(Json(std::string("\x01")).dump(-1), "\"\\u0001\"");
    EXPECT_EQ(Json(std::string("\x1f")).dump(-1), "\"\\u001f\"");
    EXPECT_EQ(Json(std::string("\n")).dump(-1), "\"\\n\"");
}

TEST(Json, ParsesUnicodeEscapes)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(Json::parse("\"\\u000a\"").asString(), "\n");
    EXPECT_EQ(Json::parse("\"a\\u0042c\"").asString(), "aBc");
    // Beyond ASCII, escapes decode to UTF-8 byte sequences.
    EXPECT_EQ(Json::parse("\"\\u00Ff\"").asString(), "\xc3\xbf"); // ÿ
    EXPECT_EQ(Json::parse("\"\\u0100\"").asString(), "\xc4\x80"); // Ā
    EXPECT_EQ(Json::parse("\"\\u20ac\"").asString(), "\xe2\x82\xac"); // €
    EXPECT_EQ(Json::parse("\"\\uFFFD\"").asString(), "\xef\xbf\xbd");
}

TEST(Json, ParsesSurrogatePairs)
{
    // U+1F600 as the \ud83d\ude00 pair -> 4-byte UTF-8.
    EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    // First and last supplementary-plane code points.
    EXPECT_EQ(Json::parse("\"\\uD800\\uDC00\"").asString(),
              "\xf0\x90\x80\x80"); // U+10000
    EXPECT_EQ(Json::parse("\"\\udbff\\udfff\"").asString(),
              "\xf4\x8f\xbf\xbf"); // U+10FFFF
    // Surrounding text survives.
    EXPECT_EQ(Json::parse("\"a\\ud83d\\ude00b\"").asString(),
              "a\xf0\x9f\x98\x80"
              "b");
}

TEST(Json, NonAsciiStringsRoundTrip)
{
    // Raw UTF-8 workload names survive dump -> parse untouched, and a
    // name arriving escaped compares equal to the same name raw.
    std::string name = "espresso-\xc3\xa9\xe2\x82\xac-\xf0\x9f\x98\x80";
    EXPECT_EQ(Json::parse(Json(name).dump(-1)).asString(), name);
    EXPECT_EQ(
        Json::parse("\"espresso-\\u00e9\\u20ac-\\ud83d\\ude00\"")
            .asString(),
        name);
}

TEST(Json, MalformedEscapesAreFatal)
{
    // Unknown escape letter.
    EXPECT_THROW(Json::parse("\"\\x41\""), FatalError);
    // Truncated \u escapes (end of string / end of input).
    EXPECT_THROW(Json::parse("\"\\u12\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\u"), FatalError);
    // Non-hex digits must not crash with an uncaught std::stoul error.
    EXPECT_THROW(Json::parse("\"\\uzzzz\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\u00g0\""), FatalError);
    // Broken surrogate pairs: lone high, lone low, high followed by
    // something that is not a low surrogate, truncated second escape.
    EXPECT_THROW(Json::parse("\"\\ud83d\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\ude00\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\ud83dx\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\ud83d\\u0041\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\ud83d\\ud83d\""), FatalError);
    EXPECT_THROW(Json::parse("\"\\ud83d\\u12\""), FatalError);
    // Backslash at end of input.
    EXPECT_THROW(Json::parse("\"\\"), FatalError);
}

TEST(Json, ParseErrors)
{
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]2"), FatalError);
    EXPECT_THROW(Json::parse(""), FatalError);
}

TEST(Sha256, MatchesKnownVectors)
{
    // FIPS 180-4 / RFC 6234 test vectors.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934c"
              "a495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9c"
              "b410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmn"
                        "lmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167"
              "f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot)
{
    // Chunked absorption across block boundaries equals one update.
    std::string text;
    for (int i = 0; i < 500; ++i)
        text += static_cast<char>('a' + (i % 26));
    Sha256 ctx;
    for (size_t off = 0; off < text.size(); off += 7)
        ctx.update(text.substr(off, 7));
    EXPECT_EQ(ctx.hexDigest(), sha256Hex(text));
    EXPECT_NE(sha256Hex(text), sha256Hex(text + "x"));
}

TEST(Json, MissingKeyIsFatal)
{
    Json obj = Json::object();
    EXPECT_THROW(obj.get("nope"), FatalError);
    EXPECT_FALSE(obj.has("nope"));
}

TEST(StringUtil, SplitTrimJoin)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  x y \n"), "x y");
    EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
    EXPECT_TRUE(startsWith("foobar", "foo"));
    EXPECT_FALSE(startsWith("fo", "foo"));
}

TEST(StringUtil, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(ErrorHandling, FatalAndPanicThrow)
{
    EXPECT_THROW(fatal("bad user input %d", 1), FatalError);
    EXPECT_THROW(panic("bug %d", 2), PanicError);
}

TEST(TextTable, FormatsAligned)
{
    TextTable t("demo");
    t.setHeader({"a", "bbbb"});
    t.addRow({"xx", "1"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("demo"), std::string::npos);
    EXPECT_NE(os.str().find("bbbb"), std::string::npos);
    EXPECT_EQ(TextTable::pct(0.125), "12.5%");
    EXPECT_EQ(TextTable::num(1.5, 1), "1.5");
}

} // namespace
} // namespace bsyn
