/** @file Lowering/target tests: CISC fusion, register allocation with
 *  spilling and rematerialization, branch resolution, cross-ISA
 *  instruction counts. */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "isa/regalloc.hh"
#include "ir/verifier.hh"
#include "support/error.hh"
#include "lang/frontend.hh"
#include "opt/pipeline.hh"
#include "sim/interpreter.hh"

namespace bsyn
{
namespace
{

const char *kernel = R"(
uint t[64];
int main() {
  int i;
  for (i = 0; i < 40; i++)
    t[i & 63] = t[(i + 1) & 63] + (uint)i * 3 + 5;
  printf("%u\n", t[10]);
  return 0;
}
)";

TEST(Targets, CatalogueByName)
{
    EXPECT_EQ(isa::targetByName("x86").numRegs, 8);
    EXPECT_EQ(isa::targetByName("x86_64").numRegs, 16);
    EXPECT_EQ(isa::targetByName("ia64").numRegs, 128);
    EXPECT_EQ(isa::targetByName("ia64").family, isa::IsaFamily::Risc);
    EXPECT_THROW(isa::targetByName("mips"), FatalError);
}

TEST(Lowering, CiscExecutesFewerInstructionsThanRisc)
{
    ir::Module m = lang::compile(kernel, "k");
    auto cisc = sim::execute(isa::lower(m, isa::targetX86()));
    auto risc = sim::execute(isa::lower(m, isa::targetIa64()));
    EXPECT_EQ(cisc.output, risc.output);
    EXPECT_LT(cisc.instructions, risc.instructions);
    // Memory behaviour is identical: fused operands still access memory.
    EXPECT_EQ(cisc.memReads, risc.memReads);
    EXPECT_EQ(cisc.memWrites, risc.memWrites);
}

TEST(Lowering, FusionToggleChangesCountsNotSemantics)
{
    ir::Module m = lang::compile(kernel, "k");
    isa::LoweringOptions no_fuse;
    no_fuse.applyFusion = false;
    auto fused = sim::execute(isa::lower(m, isa::targetX86()));
    auto plain = sim::execute(isa::lower(m, isa::targetX86(), no_fuse));
    EXPECT_EQ(fused.output, plain.output);
    EXPECT_LT(fused.instructions, plain.instructions);
}

TEST(Lowering, FusionTypeCompatibility)
{
    // Regression test for the fft miscompare: a CvtIF result stored to
    // a double must not be store-fused (the compute type field is the
    // I32 source type and would truncate the store to 4 bytes).
    const char *src = R"(
double d[4];
int main() {
  int i;
  for (i = 0; i < 4; i++) d[i] = (double)(i + 100);
  printf("%f %f\n", d[0], d[3]);
  return 0;
})";
    ir::Module m = lang::compile(src, "cvt");
    opt::optimize(m, opt::OptLevel::O2);
    auto stats = sim::execute(isa::lower(m, isa::targetX86()));
    EXPECT_EQ(stats.output, "100.000000 103.000000\n");
}

TEST(Lowering, CompareStoreFusionStaysCorrect)
{
    const char *src = R"(
uint flags[8];
int main() {
  int i;
  double x = 1.5;
  for (i = 0; i < 8; i++)
    flags[i] = (uint)(x > (double)i);
  printf("%u %u %u\n", flags[0], flags[1], flags[2]);
  return 0;
})";
    ir::Module m = lang::compile(src, "cmp");
    opt::optimize(m, opt::OptLevel::O2);
    auto stats = sim::execute(isa::lower(m, isa::targetX86()));
    EXPECT_EQ(stats.output, "1 1 0\n");
}

TEST(RegAlloc, NoSpillsWithAmpleRegisters)
{
    ir::Module m = lang::compile(kernel, "k");
    opt::optimize(m, opt::OptLevel::O1);
    auto result = isa::allocateRegisters(m, 64);
    EXPECT_EQ(result.spilledRegs, 0u);
}

TEST(RegAlloc, SpillsUnderPressureAndStaysCorrect)
{
    // Many simultaneously live values force spills at K=4.
    const char *src = R"(
int main() {
  int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
  int i;
  for (i = 0; i < 10; i++) {
    a += b; b += c; c += d; d += e; e += f; f += g; g += h; h += a;
  }
  printf("%d %d %d %d\n", a, c, e, h);
  return 0;
})";
    ir::Module ref = lang::compile(src, "ref");
    opt::optimize(ref, opt::OptLevel::O1);
    auto ref_out =
        sim::execute(isa::lower(ref, isa::targetIa64())).output;

    ir::Module m = lang::compile(src, "m");
    opt::optimize(m, opt::OptLevel::O1);
    auto result = isa::allocateRegisters(m, 4);
    EXPECT_GT(result.spilledRegs, 0u);
    EXPECT_GT(result.spillLoads + result.rematerialized, 0u);
    ir::verifyOrDie(m);
    isa::LoweringOptions lo;
    lo.applyRegAlloc = false; // already applied manually
    auto out = sim::execute(isa::lower(m, isa::targetIa64(), lo)).output;
    EXPECT_EQ(out, ref_out);
}

TEST(RegAlloc, RematerializesConstants)
{
    // A loop-hoisted constant that spills should be rematerialized, not
    // reloaded from the stack.
    const char *src = R"(
uint t[16];
int main() {
  int i;
  for (i = 0; i < 20; i++) {
    uint v = (uint)i;
    t[i & 15] = (v ^ 11) + (v & 22) + (v | 33) + (v * 44) + (v + 55) +
                (v - 66) + (v >> 2) + 77;
  }
  printf("%u\n", t[3]);
  return 0;
})";
    ir::Module ref = lang::compile(src, "ref");
    opt::optimize(ref, opt::OptLevel::O2);
    auto ref_out = sim::execute(isa::lower(ref, isa::targetIa64())).output;

    ir::Module m = lang::compile(src, "m");
    opt::optimize(m, opt::OptLevel::O2);
    auto result = isa::allocateRegisters(m, 4);
    EXPECT_GT(result.rematerialized, 0u);
    ir::verifyOrDie(m);
    isa::LoweringOptions lo;
    lo.applyRegAlloc = false;
    auto out = sim::execute(isa::lower(m, isa::targetIa64(), lo)).output;
    EXPECT_EQ(out, ref_out);
}

TEST(RegAlloc, FewerRegistersMeansMoreDynamicInstructions)
{
    const char *src = R"(
uint t[64];
int main() {
  int i;
  uint a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8, x = 9;
  for (i = 0; i < 200; i++) {
    a = b * 3 + c; b = c * 5 + d; c = d * 7 + e; d = e * 11 + f;
    e = f * 13 + g; f = g * 17 + h; g = h * 19 + x; h = x * 23 + a;
    x = a ^ b;
    t[i & 63] = x;
  }
  printf("%u\n", t[0]);
  return 0;
})";
    uint64_t insts_small, insts_big;
    {
        ir::Module m = lang::compile(src, "m");
        opt::optimize(m, opt::OptLevel::O1);
        isa::TargetInfo small = isa::targetX86(); // 8 regs
        insts_small = sim::execute(isa::lower(m, small)).instructions;
    }
    {
        ir::Module m = lang::compile(src, "m");
        opt::optimize(m, opt::OptLevel::O1);
        isa::TargetInfo big = isa::targetX8664(); // 16 regs
        insts_big = sim::execute(isa::lower(m, big)).instructions;
    }
    EXPECT_GT(insts_small, insts_big);
}

TEST(MachineProgram, ClassificationAndMix)
{
    ir::Module m = lang::compile(kernel, "k");
    auto prog = isa::lower(m, isa::targetX86());
    auto mix = prog.staticMix();
    EXPECT_GT(mix[static_cast<size_t>(isa::MClass::Load)], 0u);
    EXPECT_GT(mix[static_cast<size_t>(isa::MClass::Store)], 0u);
    EXPECT_GT(mix[static_cast<size_t>(isa::MClass::Branch)], 0u);
    EXPECT_GT(prog.size(), 0u);
    EXPECT_NE(prog.functionAt(prog.funcs[0].entry), nullptr);
    EXPECT_GE(prog.entryFunc, 0);
}

TEST(MachineProgram, ProvenanceCoversEveryInstruction)
{
    ir::Module m = lang::compile(kernel, "k");
    auto prog = isa::lower(m, isa::targetX86());
    for (const auto &mi : prog.code) {
        EXPECT_GE(mi.funcId, 0);
        EXPECT_GE(mi.irBlockId, 0);
    }
}

TEST(Lowering, BranchTargetsAreValidPcs)
{
    ir::Module m = lang::compile(kernel, "k");
    auto prog = isa::lower(m, isa::targetX86());
    for (const auto &mi : prog.code) {
        if (mi.kind == isa::MKind::CondBr || mi.kind == isa::MKind::Jmp) {
            EXPECT_GE(mi.target, 0);
            EXPECT_LT(mi.target, static_cast<int>(prog.size()));
        }
        if (mi.kind == isa::MKind::Call) {
            EXPECT_GE(mi.callee, 0);
            EXPECT_LT(mi.callee, static_cast<int>(prog.funcs.size()));
        }
    }
}

} // namespace
} // namespace bsyn
