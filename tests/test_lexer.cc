/** @file MiniC lexer tests. */

#include <gtest/gtest.h>

#include "lang/lexer.hh"
#include "support/error.hh"

namespace bsyn::lang
{
namespace
{

std::vector<Tok>
kinds(const std::string &src)
{
    std::vector<Tok> out;
    for (const auto &t : lex(src, "test"))
        out.push_back(t.kind);
    return out;
}

TEST(Lexer, BasicTokens)
{
    auto toks = lex("int x = 42;", "t");
    ASSERT_EQ(toks.size(), 6u); // int x = 42 ; <eof>
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "x");
    EXPECT_EQ(toks[3].kind, Tok::IntLit);
    EXPECT_EQ(toks[3].intValue, 42);
}

TEST(Lexer, HexAndSuffixes)
{
    auto toks = lex("0xFF 10u 3l", "t");
    EXPECT_EQ(toks[0].intValue, 255);
    EXPECT_EQ(toks[1].intValue, 10);
    EXPECT_EQ(toks[2].intValue, 3);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lex("1.5 2. 3e2 1.5e-1", "t");
    EXPECT_EQ(toks[0].kind, Tok::FloatLit);
    EXPECT_DOUBLE_EQ(toks[0].floatValue, 1.5);
    EXPECT_DOUBLE_EQ(toks[1].floatValue, 2.0);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 300.0);
    EXPECT_DOUBLE_EQ(toks[3].floatValue, 0.15);
}

TEST(Lexer, CharLiterals)
{
    auto toks = lex("'a' '\\n' '\\0'", "t");
    EXPECT_EQ(toks[0].intValue, 'a');
    EXPECT_EQ(toks[1].intValue, '\n');
    EXPECT_EQ(toks[2].intValue, 0);
}

TEST(Lexer, UnsignedIntCollapses)
{
    // "unsigned int" and "unsigned" both lex to one KwUint token.
    auto a = kinds("unsigned int x;");
    auto b = kinds("unsigned x;");
    EXPECT_EQ(a, b);
}

TEST(Lexer, CommentsAndPreprocessorSkipped)
{
    auto toks = kinds("// line\n#include <stdio.h>\n/* block\n */ int");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0], Tok::KwInt);
}

TEST(Lexer, CompoundOperators)
{
    auto toks = kinds("<<= >>= << >> <= >= == != && || ++ -- += &=");
    std::vector<Tok> expect{
        Tok::ShlAssign, Tok::ShrAssign, Tok::Shl, Tok::Shr,
        Tok::Le, Tok::Ge, Tok::EqEq, Tok::NotEq,
        Tok::AmpAmp, Tok::PipePipe, Tok::PlusPlus, Tok::MinusMinus,
        Tok::PlusAssign, Tok::AmpAssign, Tok::End};
    EXPECT_EQ(toks, expect);
}

TEST(Lexer, StringLiteralEscapes)
{
    auto toks = lex("\"a\\nb\"", "t");
    EXPECT_EQ(toks[0].kind, Tok::StrLit);
    EXPECT_EQ(toks[0].text, "a\nb");
}

TEST(Lexer, TracksLineNumbers)
{
    auto toks = lex("int\nx", "t");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, ErrorsOnBadInput)
{
    EXPECT_THROW(lex("int $", "t"), FatalError);
    EXPECT_THROW(lex("\"unterminated", "t"), FatalError);
    EXPECT_THROW(lex("/* unterminated", "t"), FatalError);
    EXPECT_THROW(lex("'x", "t"), FatalError);
}

} // namespace
} // namespace bsyn::lang
