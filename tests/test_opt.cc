/** @file Optimizer pass tests: each pass does its job and preserves
 *  semantics; the pipelines reproduce the paper's compiler behaviour. */

#include <gtest/gtest.h>

#include "isa/lowering.hh"
#include "ir/verifier.hh"
#include "lang/frontend.hh"
#include "opt/const_fold.hh"
#include "opt/copy_prop.hh"
#include "opt/cse.hh"
#include "opt/dce.hh"
#include "opt/licm.hh"
#include "opt/mem2reg.hh"
#include "opt/pipeline.hh"
#include "opt/scheduler.hh"
#include "opt/simplify.hh"
#include "sim/interpreter.hh"

namespace bsyn
{
namespace
{

sim::ExecStats
runModule(const ir::Module &m)
{
    // ia64 with fusion off: the huge register file keeps the allocator
    // out of the measurement and unfused lowering exposes IR-level pass
    // effects directly in the dynamic instruction counts.
    isa::LoweringOptions lo;
    lo.applyFusion = false;
    auto prog = isa::lower(m, isa::targetIa64(), lo);
    return sim::execute(prog);
}

/** Compile, apply @p fn, check output unchanged; @return new stats. */
template <typename PassFn>
sim::ExecStats
passPreservesOutput(const char *src, PassFn pass)
{
    ir::Module ref = lang::compile(src, "ref");
    auto ref_stats = runModule(ref);

    ir::Module m = lang::compile(src, "opt");
    pass(m);
    ir::verifyOrDie(m);
    auto stats = runModule(m);
    EXPECT_EQ(stats.output, ref_stats.output);
    return stats;
}

const char *loopKernel = R"(
uint acc[64];
int main() {
  int i, j;
  for (i = 0; i < 50; i++) {
    for (j = 0; j < 8; j++) {
      acc[(i + j) & 63] = acc[(i + j) & 63] * 3 + (uint)(i * 100) + 7;
    }
  }
  printf("%u %u\n", acc[0], acc[33]);
  return 0;
}
)";

TEST(Mem2Reg, EliminatesFrameTraffic)
{
    ir::Module before = lang::compile(loopKernel, "b");
    auto before_stats = runModule(before);

    auto after_stats = passPreservesOutput(loopKernel, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
    });
    // The defining -O1 effect: memory traffic collapses.
    EXPECT_LT(after_stats.memReads, before_stats.memReads / 2);
    EXPECT_LT(after_stats.instructions, before_stats.instructions);
}

TEST(Mem2Reg, DoesNotPromoteArrays)
{
    const char *src = R"(
int main() {
  int a[4];
  int i;
  for (i = 0; i < 4; i++) a[i] = i;
  printf("%d\n", a[2]);
  return 0;
})";
    auto stats = passPreservesOutput(src, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
    });
    // The array writes must still hit memory.
    EXPECT_GE(stats.memWrites, 4u);
}

TEST(CopyProp, RemovesMovChains)
{
    const char *src = R"(
int main() {
  int a = 3;
  int b = a;
  int c = b;
  int d = c;
  printf("%d\n", d);
  return 0;
})";
    ir::Module before = lang::compile(src, "b");
    auto bs = runModule(before);
    auto as = passPreservesOutput(src, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
    });
    EXPECT_LT(as.instructions, bs.instructions);
}

TEST(ConstFold, FoldsConstantExpressions)
{
    const char *src = R"(
int main() {
  int a = 2 + 3 * 4;
  int b = (100 / 5) % 7;
  double d = 1.5 * 2.0;
  printf("%d %d %f\n", a, b, d);
  return 0;
})";
    auto as = passPreservesOutput(src, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::foldConstants(m);
        opt::eliminateDeadCode(m);
    });
    EXPECT_EQ(as.output, "14 6 3.000000\n");
}

TEST(ConstFold, FoldsConstantBranches)
{
    const char *src = R"(
int main() {
  if (1 > 2) printf("impossible\n");
  else printf("ok\n");
  return 0;
})";
    ir::Module m = lang::compile(src, "m");
    opt::promoteFrameSlots(m);
    opt::propagateCopies(m);
    opt::foldConstants(m);
    opt::eliminateDeadCode(m);
    opt::simplifyControlFlow(m);
    ir::verifyOrDie(m);
    // The impossible arm should be unreachable and removed.
    size_t prints = 0;
    for (const auto &f : m.functions)
        for (const auto &bb : f.blocks)
            for (const auto &in : bb.insts)
                if (in.op == ir::Opcode::Print)
                    ++prints;
    EXPECT_EQ(prints, 1u);
    EXPECT_EQ(runModule(m).output, "ok\n");
}

TEST(ConstFold, StrengthReductionPreservesValues)
{
    const char *src = R"(
int main() {
  int i;
  uint s = 0;
  for (i = 1; i < 100; i++) {
    s += (uint)i * 8;
    s += (uint)i / 4;
    s %= 4096;
  }
  printf("%u\n", s);
  return 0;
})";
    opt::FoldOptions fo;
    fo.strengthReduction = true;
    passPreservesOutput(src, [&](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::foldConstants(m, fo);
        opt::eliminateDeadCode(m);
    });
}

TEST(Dce, RemovesDeadComputation)
{
    const char *src = R"(
int main() {
  int dead1 = 1 * 2 * 3;
  int dead2 = dead1 + 4;
  int live = 5;
  printf("%d\n", live);
  return 0;
})";
    ir::Module before = lang::compile(src, "b");
    auto bs = runModule(before);
    auto as = passPreservesOutput(src, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
    });
    EXPECT_LT(as.instructions, bs.instructions);
}

TEST(Dce, KeepsStoresAndCalls)
{
    const char *src = R"(
uint g[4];
int sideEffect() { g[0] = g[0] + 1; return 0; }
int main() {
  int unused = sideEffect();
  g[1] = 7;
  printf("%u %u\n", g[0], g[1]);
  return 0;
})";
    auto as = passPreservesOutput(src, [](ir::Module &m) {
        opt::eliminateDeadCode(m);
    });
    EXPECT_EQ(as.output, "1 7\n");
}

TEST(Cse, EliminatesRedundantComputation)
{
    const char *src = R"(
uint t[128];
int main() {
  int i;
  for (i = 0; i < 64; i++) {
    t[(i * 7) & 127] = t[(i * 7) & 127] + (uint)((i * 7) & 127);
  }
  printf("%u\n", t[7]);
  return 0;
})";
    auto o1 = [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::foldConstants(m);
        opt::eliminateDeadCode(m);
    };
    ir::Module base = lang::compile(src, "b");
    o1(base);
    auto bs = runModule(base);

    auto as = passPreservesOutput(src, [&](ir::Module &m) {
        o1(m);
        opt::eliminateCommonSubexpressions(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
    });
    EXPECT_LT(as.instructions, bs.instructions);
}

TEST(Licm, HoistsInvariantsOutOfLoops)
{
    auto o1 = [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::foldConstants(m);
        opt::eliminateDeadCode(m);
        opt::simplifyControlFlow(m);
    };
    ir::Module base = lang::compile(loopKernel, "b");
    o1(base);
    auto bs = runModule(base);

    auto as = passPreservesOutput(loopKernel, [&](ir::Module &m) {
        o1(m);
        opt::hoistLoopInvariants(m);
        opt::eliminateDeadCode(m);
    });
    EXPECT_LT(as.instructions, bs.instructions);
}

TEST(Licm, WholeSuiteKernelsSurvive)
{
    // Regression guard for the fft miscompare: LICM + lowering with
    // register allocation must preserve outputs on FP loop nests.
    const char *src = R"(
double re[64]; double im[64];
int main() {
  int i, len, n;
  n = 32;
  for (i = 0; i < n; i++) { re[i] = (double)i * 0.25; im[i] = 1.0; }
  for (len = 2; len <= n; len = len << 1) {
    double ang = 6.28318 / (double)len;
    double s = ang;
    int j;
    for (j = 0; j < n; j++) {
      double xr = re[j] * s - im[j] * ang;
      im[j] = re[j] * ang + im[j] * s;
      re[j] = xr;
    }
  }
  double acc = 0.0;
  for (i = 0; i < n; i++) acc = acc + re[i] + im[i];
  printf("%d\n", (int)(acc * 100.0));
  return 0;
})";
    passPreservesOutput(src, [](ir::Module &m) {
        opt::OptOptions oo;
        opt::optimize(m, opt::OptLevel::O2, oo);
    });
}

TEST(Scheduler, PreservesSemanticsWhileReordering)
{
    const char *src = R"(
uint a[32];
int main() {
  int i;
  for (i = 0; i < 32; i++)
    a[i] = ((uint)i * 3 + 1) ^ ((uint)i << 2);
  uint s = 0;
  for (i = 0; i < 32; i++) s += a[i];
  printf("%u\n", s);
  return 0;
})";
    passPreservesOutput(src, [](ir::Module &m) {
        opt::promoteFrameSlots(m);
        opt::propagateCopies(m);
        opt::eliminateDeadCode(m);
        opt::scheduleBlocks(m);
    });
}

TEST(Inliner, InlinesLeafCalls)
{
    const char *src = R"(
int add3(int a, int b, int c) { return a + b + c; }
int main() {
  int i, s = 0;
  for (i = 0; i < 100; i++) s = add3(s, i, 1);
  printf("%d\n", s);
  return 0;
})";
    ir::Module m = lang::compile(src, "m");
    int inlined = opt::inlineSmallFunctions(m, 64);
    EXPECT_GE(inlined, 1);
    ir::verifyOrDie(m);
    auto stats = runModule(m);
    EXPECT_EQ(stats.output, "5050\n");
    EXPECT_EQ(stats.calls, 0u); // only main's frame remains
}

TEST(Pipelines, LevelsMonotonicallyHelpOnLoopKernel)
{
    uint64_t counts[4];
    int idx = 0;
    for (auto lvl : {opt::OptLevel::O0, opt::OptLevel::O1,
                     opt::OptLevel::O2, opt::OptLevel::O3}) {
        ir::Module m = lang::compile(loopKernel, "m");
        opt::optimize(m, lvl);
        counts[idx++] = runModule(m).instructions;
    }
    // The paper's Fig 5 shape: O0 is far above the optimized levels,
    // which sit near each other.
    EXPECT_LT(counts[1], counts[0] * 0.8);
    EXPECT_LT(counts[2], counts[0] * 0.8);
    EXPECT_LT(counts[3], counts[0] * 0.8);
}

TEST(SimplifyCfg, MergesAndThreadsBlocks)
{
    const char *src = R"(
int main() {
  int x = 1;
  if (x) { x = 2; }
  if (x) { x = 3; }
  printf("%d\n", x);
  return 0;
})";
    ir::Module m = lang::compile(src, "m");
    size_t before = 0;
    for (const auto &bb : m.functions[0].blocks)
        (void)bb, ++before;
    opt::promoteFrameSlots(m);
    opt::propagateCopies(m);
    opt::foldConstants(m);
    opt::eliminateDeadCode(m);
    opt::simplifyControlFlow(m);
    size_t after = m.functions[m.findFunction("main")].blocks.size();
    EXPECT_LT(after, before);
    EXPECT_EQ(runModule(m).output, "3\n");
}

} // namespace
} // namespace bsyn
