/** @file Tests for the clone-fidelity report: metric coverage and
 *  sanity, family attribution, per-instance failure isolation, and
 *  determinism of the results JSON across thread counts. */

#include <gtest/gtest.h>

#include <cmath>

#include "gen/fidelity.hh"
#include "gen/registry.hh"
#include "support/error.hh"

namespace bsyn
{
namespace
{

synth::SynthesisOptions
fastSynthesis()
{
    auto opts = pipeline::defaultSynthesisOptions();
    opts.targetInstructions = 20000;
    return opts;
}

std::vector<workloads::Workload>
smallBatch()
{
    return {
        workloads::findWorkload("crc32/small"),
        gen::Registry::global().require("stream_mix").make(
            {{"wset_log2", 10}, {"iters", 10000}}, 4),
    };
}

TEST(Fidelity, ScoresEveryMetricWithFiniteErrors)
{
    pipeline::Session session;
    gen::FidelityOptions opts;
    opts.synthesis = fastSynthesis();
    auto report = gen::scoreFidelity(session, smallBatch(), opts);

    ASSERT_EQ(report.instances.size(), 2u);
    const char *expected[] = {
        "mix.load",          "mix.store",
        "mix.branch",        "mix.other",
        "mix.fp",            "sfgl.blocks",
        "sfgl.edges",        "branch.takenRate",
        "branch.transitionRate", "mem.missRate",
        "phase.count",       "timing.cpi",
    };
    for (const auto &inst : report.instances) {
        EXPECT_TRUE(inst.ok) << inst.workload << ": " << inst.error;
        ASSERT_EQ(inst.metrics.size(), std::size(expected))
            << inst.workload;
        for (size_t i = 0; i < inst.metrics.size(); ++i) {
            EXPECT_EQ(inst.metrics[i].metric, expected[i]);
            EXPECT_TRUE(std::isfinite(inst.metrics[i].error))
                << inst.workload << " " << expected[i];
            EXPECT_GE(inst.metrics[i].error, 0.0);
        }
        EXPECT_GE(inst.maxError, inst.meanError);
        // Original-side values describe a real profile.
        EXPECT_GT(inst.metrics[0].original, 0.0) << "no loads?";
        EXPECT_GT(inst.metrics[11].original, 0.0) << "no CPI?";
        // Phase half: counts at least 1, per-phase scores aligned.
        EXPECT_GE(inst.originalPhases, 1u);
        EXPECT_GE(inst.clonePhases, 1u);
        EXPECT_EQ(inst.phaseScores.size(), inst.originalPhases);
        EXPECT_GE(inst.phaseWorstMixError, inst.phaseMeanMixError);
        // Timing on: every phase carries a CPI comparison cut at the
        // original's phase boundaries.
        for (const auto &ps : inst.phaseScores) {
            EXPECT_GT(ps.originalCpi, 0.0) << inst.workload;
            EXPECT_GT(ps.cloneCpi, 0.0) << inst.workload;
            EXPECT_GE(inst.phaseWorstCpiError, ps.cpiError);
        }
    }

    // Family attribution: suite instance bare, generated tagged.
    EXPECT_EQ(report.instances[0].family, "");
    EXPECT_EQ(report.instances[1].family, "stream_mix");
}

TEST(Fidelity, NoTimingSkipsTheCpiMetric)
{
    pipeline::Session session;
    gen::FidelityOptions opts;
    opts.synthesis = fastSynthesis();
    opts.timing = false;
    auto report = gen::scoreFidelity(
        session, {workloads::findWorkload("bitcount/small")}, opts);
    ASSERT_EQ(report.instances.size(), 1u);
    for (const auto &m : report.instances[0].metrics)
        EXPECT_NE(m.metric, "timing.cpi");
    EXPECT_EQ(report.instances[0].metrics.size(), 11u);
}

TEST(Fidelity, ResultsJsonIsDeterministicAcrossThreadCounts)
{
    auto batch = smallBatch();
    gen::FidelityOptions opts;
    opts.synthesis = fastSynthesis();

    std::string a, b;
    for (unsigned threads : {1u, 3u}) {
        pipeline::SessionOptions so;
        so.threads = threads;
        pipeline::Session session(std::move(so));
        auto report = gen::scoreFidelity(session, batch, opts);
        (threads == 1 ? a : b) = report.resultsJson().dump(-1);
    }
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(Fidelity, JsonShapeAndSummary)
{
    pipeline::Session session;
    gen::FidelityOptions opts;
    opts.synthesis = fastSynthesis();
    opts.timing = false;
    auto report = gen::scoreFidelity(session, smallBatch(), opts);
    report.generationSecs = 0.25;

    Json full = report.toJson();
    EXPECT_EQ(full.get("schema").asString(), "bsyn.fidelity.v4");
    EXPECT_EQ(full.get("instances").size(), 2u);
    EXPECT_EQ(full.get("scored").asInt(), 2);
    EXPECT_EQ(full.get("failed").asInt(), 0);
    ASSERT_TRUE(full.has("summary"));
    const Json &load = full.get("summary").get("mix.load");
    EXPECT_GE(load.get("max").asNumber(), load.get("mean").asNumber());

    // Phase half (v2): per-instance phase block and batch summary.
    const Json &inst0 = full.get("instances").at(0);
    ASSERT_TRUE(inst0.has("phases"));
    EXPECT_GE(inst0.get("phases").get("original").asInt(), 1);
    EXPECT_GE(inst0.get("phases").get("clone").asInt(), 1);
    EXPECT_EQ(inst0.get("phases").get("perPhase").size(),
              static_cast<size_t>(
                  inst0.get("phases").get("original").asInt()));
    ASSERT_TRUE(full.get("summary").has("phaseWorstMix"));
    const Json &pw = full.get("summary").get("phaseWorstMix");
    EXPECT_GE(pw.get("max").asNumber(), pw.get("mean").asNumber());

    // Timing half (v4): the per-phase CPI fields are present even in a
    // timing-skipped run (zeros), so the schema is shape-stable.
    EXPECT_TRUE(inst0.get("phases").has("worstCpiError"));
    EXPECT_TRUE(
        inst0.get("phases").get("perPhase").at(0).has("cpiError"));
    ASSERT_TRUE(full.get("summary").has("phaseWorstCpi"));

    // Bench half present in the full report, absent from results.
    ASSERT_TRUE(full.has("bench"));
    EXPECT_EQ(full.get("bench").get("generationSecs").asNumber(), 0.25);
    ASSERT_TRUE(full.get("bench").has("perFamily"));
    EXPECT_TRUE(full.get("bench").get("perFamily").has("figure4"));
    EXPECT_TRUE(full.get("bench").get("perFamily").has("stream_mix"));
    EXPECT_FALSE(report.resultsJson().has("bench"));

    // Round-trips through the parser.
    Json parsed = Json::parse(full.dump(2));
    EXPECT_EQ(parsed.get("instances").size(), 2u);
}

TEST(Fidelity, PerInstanceFailureIsolation)
{
    workloads::Workload bad;
    bad.benchmark = "broken";
    bad.input = "syntax";
    bad.source = "int main( { nope";
    auto batch = smallBatch();
    batch.insert(batch.begin() + 1, bad);

    pipeline::Session session;
    gen::FidelityOptions opts;
    opts.synthesis = fastSynthesis();
    opts.timing = false;
    auto report = gen::scoreFidelity(session, batch, opts);

    ASSERT_EQ(report.instances.size(), 3u);
    EXPECT_TRUE(report.instances[0].ok);
    EXPECT_FALSE(report.instances[1].ok);
    EXPECT_FALSE(report.instances[1].error.empty());
    EXPECT_TRUE(report.instances[2].ok);

    Json j = report.resultsJson();
    EXPECT_EQ(j.get("scored").asInt(), 2);
    EXPECT_EQ(j.get("failed").asInt(), 1);
    EXPECT_FALSE(j.get("instances").at(1).get("ok").asBool());
}

} // namespace
} // namespace bsyn
